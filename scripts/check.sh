#!/usr/bin/env bash
# Correctness gate for AutoIndex: lint, a hardened (-Werror) build, and
# the tier-1 suite under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer build/run (lint + plain -Werror build only)
#
# Exits non-zero on the first failing stage.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n==== %s ====\n' "$*"; }

step "lint (scripts/lint.py)"
python3 scripts/lint.py src

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Library sources only; tests/benches inherit the same headers anyway.
  find src -name '*.cc' | xargs clang-tidy -p build-tidy --quiet
else
  echo "clang-tidy not installed; skipping (lint.py rules still enforced)"
fi

step "hardened build (-Werror)"
cmake -B build-werror -S . -DAUTOINDEX_WERROR=ON >/dev/null
cmake --build build-werror -j "${JOBS}"

step "tier-1 tests (plain build)"
ctest --test-dir build-werror -L tier1 --output-on-failure

step "bench smoke (micro benchmarks, short deterministic mode)"
ctest --test-dir build-werror -L bench-smoke --output-on-failure

step "recovery tests (snapshot/WAL crash matrix, plain build)"
ctest --test-dir build-werror -L recovery --output-on-failure

if [[ "${FAST}" == "1" ]]; then
  step "OK (fast mode: sanitizer stages skipped)"
  exit 0
fi

step "sanitizer build (ASan + UBSan, -Werror)"
cmake -B build-asan -S . \
  -DAUTOINDEX_SANITIZE=address,undefined -DAUTOINDEX_WERROR=ON >/dev/null
cmake --build build-asan -j "${JOBS}"

step "tier-1 tests under ASan + UBSan"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L tier1 --output-on-failure

step "fuzz + property tests under ASan + UBSan"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L 'property|fuzz' --output-on-failure

step "recovery tests under ASan + UBSan"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L recovery --output-on-failure

step "sanitizer build (TSan, -Werror)"
cmake -B build-tsan -S . \
  -DAUTOINDEX_SANITIZE=thread -DAUTOINDEX_WERROR=ON >/dev/null
cmake --build build-tsan -j "${JOBS}"

step "tier-1 + concurrency tests under TSan"
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ctest --test-dir build-tsan -L 'tier1|concurrency' --output-on-failure

step "OK"
