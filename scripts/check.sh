#!/usr/bin/env bash
# Correctness gate for AutoIndex: static analysis (lint framework +
# analyzer self-test + clang-tidy + Clang thread-safety analysis), a
# hardened (-Werror) build, and the tier-1 suite under
# AddressSanitizer + UndefinedBehaviorSanitizer and ThreadSanitizer.
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer builds/runs (static analysis + plain
#            -Werror build only)
#
# Exits non-zero on the first failing stage.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n==== %s ====\n' "$*"; }

step "lint (scripts/lint.py — scripts/analysis framework)"
python3 scripts/lint.py src

step "lint self-test (analyzer corpus)"
python3 tests/analysis/run_corpus_test.py

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Library sources only; tests/benches inherit the same headers anyway.
  # Any tidy diagnostic fails the gate.
  find src -name '*.cc' | xargs clang-tidy -p build-tidy --quiet \
    --warnings-as-errors='*'
else
  echo "SKIPPED: clang-tidy not installed (lint framework rules still enforced)"
fi

step "thread-safety analysis (clang -Wthread-safety)"
CLANGXX=""
for cand in clang++ clang++-19 clang++-18 clang++-17 clang++-16 clang++-15; do
  if command -v "${cand}" >/dev/null 2>&1; then
    CLANGXX="${cand}"
    break
  fi
done
if [[ -n "${CLANGXX}" ]]; then
  # A dedicated clang build with -Wthread-safety promoted to an error:
  # the capability annotations in src/util/thread_annotations.h only
  # expand under clang, so this is the one stage that proves the lock
  # discipline (GUARDED_BY/REQUIRES/EXCLUDES) at compile time.
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER="${CLANGXX}" \
    -DAUTOINDEX_THREAD_SAFETY=ON \
    -DAUTOINDEX_WERROR=ON >/dev/null
  cmake --build build-tsa -j "${JOBS}"
else
  echo "SKIPPED: no clang++ found — thread-safety annotations compile to"
  echo "         nothing under this toolchain, so the lock discipline is"
  echo "         NOT being verified at compile time on this machine."
fi

step "hardened build (-Werror)"
cmake -B build-werror -S . -DAUTOINDEX_WERROR=ON >/dev/null
cmake --build build-werror -j "${JOBS}"

step "tier-1 tests (plain build)"
ctest --test-dir build-werror -L tier1 --output-on-failure

step "index lifecycle tests (plain build)"
ctest --test-dir build-werror -L lifecycle --output-on-failure

step "bench smoke (micro benchmarks, short deterministic mode)"
ctest --test-dir build-werror -L bench-smoke --output-on-failure

step "recovery tests (snapshot/WAL crash matrix, plain build)"
ctest --test-dir build-werror -L recovery --output-on-failure

step "net tests (wire protocol + server, plain build)"
ctest --test-dir build-werror -L net --output-on-failure

# End-to-end service drill (DESIGN.md §12): boot autoindex_server on an
# ephemeral port, drive it with the remote bench over loopback, stop it
# with the shell's \shutdown, and demand a clean drain — the server exits
# non-zero when any connection leaked or an admitted statement got no
# response, so `wait` alone enforces the invariant.
net_e2e() {
  local bindir="$1"
  local log
  log="$(mktemp)"
  "${bindir}/examples/autoindex_server" --workload tpcc --port 0 \
    >"${log}" 2>&1 &
  local srv=$!
  local port=""
  for _ in $(seq 1 150); do
    port="$(awk '/^LISTENING/ {print $2}' "${log}")"
    [[ -n "${port}" ]] && break
    sleep 0.2
  done
  if [[ -z "${port}" ]]; then
    echo "FAIL: server never reported LISTENING"
    cat "${log}"
    kill "${srv}" 2>/dev/null || true
    return 1
  fi
  "${bindir}/bench/bench_concurrent" --short --connect "127.0.0.1:${port}"
  printf '\\shutdown\n' | \
    "${bindir}/examples/autoindex_shell" --connect "127.0.0.1:${port}"
  if ! wait "${srv}"; then
    echo "FAIL: server exited dirty (leaked connection or lost statement)"
    cat "${log}"
    return 1
  fi
  grep -q '^SHUTDOWN clean' "${log}"
  rm -f "${log}"
}

step "net end-to-end (server + remote bench + \\shutdown over loopback)"
net_e2e build-werror

step "metrics overhead gate (ON vs AUTOINDEX_METRICS=OFF, bench_concurrent --short)"
# The observability layer's contract (DESIGN.md §11) is < 5% overhead on
# the concurrent bench. Build a metrics-free baseline of just the bench
# binary, run both min-of-3 (min is the right statistic for noise: the
# fastest run is the least-perturbed one), and compare TOTAL_WALL_MS.
# AUTOINDEX_METRICS=OFF also compiles out request-scoped tracing
# (DESIGN.md §13) — every ScopedTrace/ScopedSpan in the hot path becomes
# a no-op — so this same budget gates the combined metrics + tracing
# cost, including the per-statement span recording the bench drives
# through the server's net.request traces.
cmake -B build-nometrics -S . -DAUTOINDEX_METRICS=OFF >/dev/null
cmake --build build-nometrics -j "${JOBS}" --target bench_concurrent
bench_min_ms() {
  local binary="$1" best="" ms
  for _ in 1 2 3; do
    ms="$("${binary}" --short | awk '/^TOTAL_WALL_MS/ {print $2}')"
    if [[ -z "${best}" ]] || awk -v a="${ms}" -v b="${best}" \
        'BEGIN {exit !(a < b)}'; then
      best="${ms}"
    fi
  done
  echo "${best}"
}
ON_MS="$(bench_min_ms build-werror/bench/bench_concurrent)"
OFF_MS="$(bench_min_ms build-nometrics/bench/bench_concurrent)"
echo "metrics ON:  ${ON_MS} ms (min of 3)"
echo "metrics OFF: ${OFF_MS} ms (min of 3)"
# 5% relative plus a 20 ms absolute grace so sub-second --short runs
# don't fail on scheduler jitter alone.
python3 - "${ON_MS}" "${OFF_MS}" <<'EOF'
import sys
on, off = float(sys.argv[1]), float(sys.argv[2])
budget = off * 1.05 + 20.0
if on > budget:
    sys.exit(f"FAIL: metrics-on {on:.1f} ms exceeds budget {budget:.1f} ms "
             f"(baseline {off:.1f} ms + 5% + 20 ms grace)")
print(f"OK: overhead {on - off:+.1f} ms ({(on / off - 1) * 100:+.1f}%) "
      f"within budget")
EOF

if [[ "${FAST}" == "1" ]]; then
  step "OK (fast mode: sanitizer stages skipped)"
  exit 0
fi

step "sanitizer build (ASan + UBSan, -Werror)"
cmake -B build-asan -S . \
  -DAUTOINDEX_SANITIZE=address,undefined -DAUTOINDEX_WERROR=ON >/dev/null
cmake --build build-asan -j "${JOBS}"

step "tier-1 tests under ASan + UBSan"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L tier1 --output-on-failure

step "fuzz + property tests under ASan + UBSan"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L 'property|fuzz' --output-on-failure

step "recovery tests under ASan + UBSan"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L recovery --output-on-failure

step "net tests under ASan + UBSan"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  ctest --test-dir build-asan -L net --output-on-failure

step "net end-to-end under ASan + UBSan"
ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
  net_e2e build-asan

step "sanitizer build (TSan, -Werror)"
cmake -B build-tsan -S . \
  -DAUTOINDEX_SANITIZE=thread -DAUTOINDEX_WERROR=ON >/dev/null
cmake --build build-tsan -j "${JOBS}"

step "tier-1 + concurrency + lifecycle tests under TSan"
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ctest --test-dir build-tsan -L 'tier1|concurrency|lifecycle' \
  --output-on-failure

step "OK"
