"""include-cycle: circular #include chains among the scanned files.
Cycles compile today only by accident of include order (#pragma once
breaks the infinite regress but leaves one of the two headers truncated
from the other's point of view) and make layering rot invisible. Each
cycle is reported once, anchored at the #include line that closes it."""

import os
import re

from .. import framework

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def _resolve(including_rel, inc, known):
    """Resolve `#include "inc"` seen in including_rel against the scanned
    file set: first relative to the including file's directory, then
    against each of its ancestor directories (the project includes
    headers relative to src/)."""
    d = os.path.dirname(including_rel)
    while True:
        cand = os.path.normpath(os.path.join(d, inc)).replace(os.sep, "/")
        if cand in known:
            return cand
        if not d:
            return None
        d = os.path.dirname(d)


@framework.register
class IncludeCycle(framework.ProjectRule):
    name = "include-cycle"
    description = "circular #include chain among scanned files"

    def check_project(self, files, ctx):
        known = {sf.rel for sf in files}
        # rel -> [(target_rel, lineno)]
        edges = {sf.rel: [] for sf in files}
        for sf in files:
            for lineno, raw in enumerate(sf.raw_lines, start=1):
                m = _INCLUDE_RE.match(raw)
                if not m:
                    continue
                target = _resolve(sf.rel, m.group(1), known)
                if target is not None and target != sf.rel:
                    edges[sf.rel].append((target, lineno))

        findings = []
        seen_cycles = set()
        # Iterative DFS with white/grey/black coloring; a grey target is a
        # back edge, i.e. a cycle.
        color = {rel: 0 for rel in edges}  # 0 white, 1 grey, 2 black
        for start in sorted(edges):
            if color[start] != 0:
                continue
            stack = [(start, iter(edges[start]))]
            color[start] = 1
            path = [start]
            while stack:
                rel, it = stack[-1]
                advanced = False
                for target, lineno in it:
                    if color[target] == 1:
                        cycle = path[path.index(target):] + [target]
                        nodes = cycle[:-1]
                        pivot = nodes.index(min(nodes))
                        key = tuple(nodes[pivot:] + nodes[:pivot])
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            findings.append(framework.Finding(
                                rel, lineno, self.name,
                                "include cycle: " + " -> ".join(cycle)))
                    elif color[target] == 0:
                        color[target] = 1
                        path.append(target)
                        stack.append((target, iter(edges[target])))
                        advanced = True
                        break
                if not advanced:
                    color[rel] = 2
                    path.pop()
                    stack.pop()
        return findings
