"""Bundled analysis rules. Importing this package registers every rule
with the framework registry (each module uses @framework.register)."""

from . import banned_random     # noqa: F401
from . import detached_thread   # noqa: F401
from . import direct_index_build  # noqa: F401
from . import include_cycle     # noqa: F401
from . import naked_mutex       # noqa: F401
from . import pragma_once       # noqa: F401
from . import raw_chrono_metric  # noqa: F401
from . import raw_file_io       # noqa: F401
from . import raw_new_delete    # noqa: F401
from . import raw_socket        # noqa: F401
from . import raw_trace_span    # noqa: F401
from . import status_ignored    # noqa: F401
