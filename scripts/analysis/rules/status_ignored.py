"""status-ignored: a call to a Status-returning function used as a bare
statement silently drops the error. Such calls must be consumed:
returned, assigned, tested, or explicitly discarded with (void).
Function names are harvested from header declarations (see
framework.Context.status_function_names), so the rule tracks the API
automatically."""

import re

from .. import framework

# Names that also have common non-Status overloads or whose bare call is
# legitimately valueless would go here. Kept empty on purpose: today every
# harvested name is unambiguous; add entries only with a justification.
EXCEPTIONS = set()


@framework.register
class StatusIgnored(framework.Rule):
    name = "status-ignored"
    description = "Status-returning call used as a bare statement"

    def check(self, sf, ctx):
        names = ctx.status_function_names() - EXCEPTIONS
        if not names:
            return
        call_re = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(%s)\s*\(" %
            "|".join(sorted(names)))

        # Tail of the previous non-blank code line, used to spot
        # continuation lines: `StatusOr<T> x =\n    Foo(...)` is
        # consumed, not dropped.
        prev_tail = ""
        for lineno, code in sf.code_lines:
            m = call_re.match(code)
            if m:
                # A bare-statement call: the line starts with the call
                # itself AND the previous line completed a statement.
                # Consumed forms start with return/(void)/assignment/if
                # etc. (which the anchored pattern never matches) or
                # continue a line ending in '=', '(', ',', '&&', etc.
                # (which prev_tail rules out).
                statement_start = prev_tail in ("", ";", "{", "}", ":")
                if statement_start and code.rstrip().endswith((";", "(", ",")):
                    yield self.finding(
                        sf, lineno,
                        "result of Status-returning %s() is dropped; "
                        "check it or cast to (void)" % m.group(1))
            stripped = code.strip()
            if stripped:
                prev_tail = stripped[-1]
