"""pragma-once: every header uses #pragma once (no include guards)."""

from .. import framework


@framework.register
class PragmaOnce(framework.Rule):
    name = "pragma-once"
    description = "every header starts with #pragma once"

    def check(self, sf, ctx):
        if sf.is_header and "#pragma once" not in sf.text:
            yield self.finding(sf, 1, "header missing '#pragma once'")
