"""raw-trace-span: span bookkeeping outside the tracing module.

The two-phase span API (TraceContext::StartSpan / DetachSpan /
FinishSpan / SetSpanAttr, and hand-built SpanRecord/TraceContext
objects) is how src/obs/ maintains the span-tree invariants the
TraceValidator audits: dense ids, parent-before-child, intervals nested
inside the parent. A call site that drives it directly can detach out
of order or finish a span twice and corrupt the tree for every later
span in the trace. Instrumentation uses the RAII surface instead —
obs::ScopedTrace, obs::ScopedSpan, obs::OperatorSpan — which also
compiles out under AUTOINDEX_METRICS=OFF."""

import re

from .. import framework

# The tracing module owns the raw API (and its tests live with it).
ALLOW_PREFIX = "src/obs/"

# Raw span-lifecycle calls through any receiver, or *construction* of
# the recording types (SpanRecord rec; / TraceContext ctx; / brace
# init). Read-only uses — const references into a snapshot, the
# kMaxSpansPerTrace constant — stay legal (the TraceValidator audits
# these structures), as do the RAII helpers (ScopedTrace / ScopedSpan /
# OperatorSpan and their Begin/Leave/End/SetAttr members).
_RAW_SPAN_RE = re.compile(
    r"(?:(?:\.|->|::)\s*(?:StartSpan|DetachSpan|FinishSpan|EndSpan"
    r"|SetSpanAttr)\s*\()"
    r"|(?:(?<!struct\s)(?<!class\s)\b(?:obs\s*::\s*)?"
    r"(?:SpanRecord|TraceContext)\s*(?:\{|\w+\s*[;=({]))")


@framework.register
class RawTraceSpan(framework.Rule):
    name = "raw-trace-span"
    description = "raw span API outside src/obs/; use the RAII helpers"

    def check(self, sf, ctx):
        if sf.rel.startswith(ALLOW_PREFIX):
            return
        for lineno, code in sf.code_lines:
            m = _RAW_SPAN_RE.search(code)
            if m:
                yield self.finding(
                    sf, lineno,
                    "%s manipulates spans directly; instrument through "
                    "obs::ScopedTrace / obs::ScopedSpan / obs::OperatorSpan "
                    "(src/obs/trace.h)" % m.group().rstrip("(").strip())
