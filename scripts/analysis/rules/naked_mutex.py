"""naked-mutex: raw std::mutex / std::shared_mutex /
std::condition_variable (and their lock RAII types) outside src/util/
are invisible to Clang thread-safety analysis. All locking goes through
util/mutex.h (util::Mutex, util::SharedMutex, util::MutexLock,
util::ReaderLock, util::WriterLock, util::CondVar), whose capability
annotations let `-Wthread-safety` prove the lock discipline at compile
time."""

import re

from .. import framework

# util/mutex.h wraps the raw primitives; it is the one place they may
# appear.
ALLOWDIR = "src/util/"

_NAKED_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b")


@framework.register
class NakedMutex(framework.Rule):
    name = "naked-mutex"
    description = "raw std synchronization primitive outside src/util/"

    def check(self, sf, ctx):
        if sf.rel.startswith(ALLOWDIR):
            return
        for lineno, code in sf.code_lines:
            m = _NAKED_RE.search(code)
            if m:
                yield self.finding(
                    sf, lineno,
                    "%s is invisible to thread-safety analysis; use the "
                    "annotated wrappers in util/mutex.h" % m.group().replace(
                        " ", ""))
