"""detached-thread: std::thread::detach() makes shutdown ordering
unprovable — a detached thread can outlive the objects it captured
(the database, the queue it drains) and crash at exit. Threads are
joined; long-running workers get a stop flag + join."""

import re

from .. import framework

_DETACH_RE = re.compile(r"(?:\.|->)\s*detach\s*\(\s*\)")


@framework.register
class DetachedThread(framework.Rule):
    name = "detached-thread"
    description = "std::thread::detach() breaks shutdown ordering"

    def check(self, sf, ctx):
        for lineno, code in sf.code_lines:
            if _DETACH_RE.search(code):
                yield self.finding(
                    sf, lineno,
                    "detached thread outlives the state it captured; "
                    "join it (stop flag + join for workers)")
