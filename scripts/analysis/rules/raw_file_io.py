"""raw-file-io: std::ofstream / std::ifstream / std::fstream (and
C-style fopen) outside src/persist/ bypass the durability layer: no
checksum, no Status on short reads, no atomic-rename writes. File IO
goes through persist/io.h (ReadFileToString / AtomicWriteFile) or a
persist file format."""

import re

from .. import framework

# Directory whose files implement the checked IO primitives and so may
# touch raw streams/descriptors themselves.
ALLOWDIR = "src/persist/"

_IO_RE = re.compile(
    r"\bstd\s*::\s*(?:o|i)?fstream\b|(?<![\w.>])fopen\s*\(")


@framework.register
class RawFileIo(framework.Rule):
    name = "raw-file-io"
    description = "unchecked stream IO outside src/persist/"

    def check(self, sf, ctx):
        if sf.rel.startswith(ALLOWDIR):
            return
        for lineno, code in sf.code_lines:
            if _IO_RE.search(code):
                yield self.finding(
                    sf, lineno,
                    "unchecked stream IO; use persist/io.h "
                    "(ReadFileToString/AtomicWriteFile) or a persist format")
