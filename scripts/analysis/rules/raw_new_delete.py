"""raw-new-delete: no raw `new` / `delete` outside src/index/btree.cc,
which owns manual node wiring for the B+Tree. All other ownership goes
through unique_ptr/make_unique."""

import re

from .. import framework

# Files allowed to use raw new/delete: the B+Tree does manual node
# surgery during splits/merges and documents its ownership protocol.
ALLOWLIST = {"src/index/btree.cc"}

_NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(]")
_DELETE_RE = re.compile(r"\bdelete(\[\])?\s+[A-Za-z_*(]")


@framework.register
class RawNewDelete(framework.Rule):
    name = "raw-new-delete"
    description = "raw new/delete outside the B+Tree node allocator"

    def check(self, sf, ctx):
        if sf.rel in ALLOWLIST:
            return
        for lineno, code in sf.code_lines:
            if _NEW_RE.search(code):
                yield self.finding(sf, lineno,
                                   "raw 'new'; use std::make_unique")
            if _DELETE_RE.search(code):
                yield self.finding(sf, lineno,
                                   "raw 'delete'; use owning smart pointers")
