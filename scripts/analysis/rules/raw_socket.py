"""raw-socket: POSIX socket syscalls outside src/net/ bypass the
service layer: no Status on failure, no timeout discipline, no RAII fd
ownership, and no metrics. Network IO goes through net/socket.h
(Socket/ListenSocket) or the higher-level net/client.h / net/server.h."""

import re

from .. import framework

# Directory that implements the checked socket primitives and so may
# issue the raw syscalls itself.
ALLOWDIR = "src/net/"

# Free (optionally ::-qualified) calls to the socket syscall family. The
# lookbehind drops member calls (sock.send(...)), qualified wrappers
# (base::connect(...)), and std::bind; a leading `::` is still caught so
# the global-namespace spelling cannot slip through.
_SOCK_RE = re.compile(
    r"(?<![\w.:>])(?:::\s*)?"
    r"(?:socket|bind|listen|accept4?|connect|send(?:to|msg)?|"
    r"recv(?:from|msg)?|setsockopt|getsockopt|getsockname|getpeername|"
    r"shutdown)\s*\(")


@framework.register
class RawSocket(framework.Rule):
    name = "raw-socket"
    description = "raw socket syscall outside src/net/"

    def check(self, sf, ctx):
        if sf.rel.startswith(ALLOWDIR):
            return
        for lineno, code in sf.code_lines:
            if _SOCK_RE.search(code):
                yield self.finding(
                    sf, lineno,
                    "raw socket syscall; use net/socket.h "
                    "(Socket/ListenSocket) or net/client.h")
