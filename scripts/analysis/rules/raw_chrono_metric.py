"""raw-chrono-metric: naked steady_clock/system_clock/
high_resolution_clock ::now() calls outside the sanctioned timing
modules. Ad-hoc clock math scattered through subsystems is how latency
accounting drifts (mixed clocks, ms-vs-us confusion, unrecorded timings
the metrics layer never sees). Subsystem code times itself through
util::Stopwatch / util::ScopedTimer (src/util/metrics.h), which also
compile out cleanly under AUTOINDEX_METRICS=OFF."""

import re

from .. import framework

# Modules that implement or legitimately own raw clock reads: the metrics
# layer itself, the tracing layer built on it, the workload drivers
# (open-loop pacing needs raw timepoints), and benchmarks.
ALLOW_PREFIXES = (
    "src/util/metrics.",
    "src/obs/",
    "src/workload/",
    "bench/",
)

_CLOCK_NOW_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*"
    r"(?:::|\s)\s*now\s*\(")


@framework.register
class RawChronoMetric(framework.Rule):
    name = "raw-chrono-metric"
    description = "raw chrono ::now() outside util/metrics, workload, bench"

    def check(self, sf, ctx):
        if any(sf.rel.startswith(p) for p in ALLOW_PREFIXES):
            return
        for lineno, code in sf.code_lines:
            if _CLOCK_NOW_RE.search(code):
                yield self.finding(
                    sf, lineno,
                    "raw chrono clock read; time through util::Stopwatch / "
                    "util::ScopedTimer (src/util/metrics.h)")
