"""banned-random: rand()/srand()/time() break reproducibility; all
randomness goes through util/random.h (seeded) and timing through
util/timer.h."""

import re

from .. import framework

BANNED = {
    "rand": "use autoindex::Random (util/random.h) for reproducibility",
    "srand": "use autoindex::Random (util/random.h) for reproducibility",
    "time": "use util/timer.h; wall-clock seeds break reproducibility",
}

# Bare calls only: `rand(`, `std::time(`, not `x.time(` or identifiers
# that merely end with the name.
_CALL_RES = {
    name: re.compile(r"(?<![\w.>])(?:std::)?%s\s*\(" % name)
    for name in BANNED
}


@framework.register
class BannedRandom(framework.Rule):
    name = "banned-random"
    description = "wall-clock/libc randomness outside util/random.h"

    def check(self, sf, ctx):
        for lineno, code in sf.code_lines:
            for name, why in BANNED.items():
                if _CALL_RES[name].search(code):
                    yield self.finding(
                        sf, lineno, "call to %s(): %s" % (name, why))
