"""direct-index-build: index DDL must flow through the Database facade.

Calling IndexManager::CreateIndex / BeginBuild / PublishBuild /
FinishBuildDrain / AbortBuild directly skips the lifecycle the facade
enforces: table latching, the phased online build (snapshot scan, delta
catch-up, paced convergence), WAL-at-publish durability, and the
invariant hook. An index created behind the facade's back is invisible
to recovery and can race every concurrent writer. Only
src/engine/database.cc (the facade itself) may drive these entry
points; everything else calls Database::CreateIndex / DropIndex."""

import re

from .. import framework

# The facade owns the lifecycle; it is the one caller allowed.
ALLOWFILE = "src/engine/database.cc"

# Receiver spellings an IndexManager travels under inside src/, followed
# by a lifecycle entry point. Plain `db->CreateIndex(` (the facade call)
# deliberately does not match.
_DIRECT_RE = re.compile(
    r"\b(?:index_manager_|index_manager\(\)|indexes_|indexes)\s*"
    r"(?:\.|->)\s*"
    r"(?:CreateIndex|BeginBuild|PublishBuild|FinishBuildDrain|AbortBuild)"
    r"\s*\(")


@framework.register
class DirectIndexBuild(framework.Rule):
    name = "direct-index-build"
    description = "IndexManager DDL bypasses the Database lifecycle facade"

    def check(self, sf, ctx):
        if sf.rel == ALLOWFILE:
            return
        for lineno, code in sf.code_lines:
            m = _DIRECT_RE.search(code)
            if m:
                yield self.finding(
                    sf, lineno,
                    "%s bypasses the online index lifecycle (latching, "
                    "phased build, WAL-at-publish); route DDL through the "
                    "Database facade" % m.group().rstrip("("))
