"""Core of the AutoIndex static-analysis framework.

Concepts:
  Finding     one diagnostic: (file, line, rule, message).
  SourceFile  a parsed source file: raw lines, comment-stripped code
              lines, and per-line `// lint:allow(<rule>)` suppressions.
  Rule        file-scope rule: check(sf, ctx) yields Findings. Rules
              self-register via the @register decorator.
  ProjectRule project-scope rule: sees every scanned file at once
              (e.g. include-cycle detection).
  Context     shared state for one run: repo root, the scanned file
              set, and lazily harvested project facts (Status names).

The runner applies every enabled rule to every file, then drops any
finding whose line carries a matching lint:allow marker. Suppressions
are parsed from the *raw* line (they live inside comments, which the
code view blanks out).
"""

import os
import re

from . import cpp

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# `// lint:allow(rule-a, rule-b)` suppresses those rules on its line.
_ALLOW_RE = re.compile(r"lint:allow\(([^)]*)\)")

# Declarations like `Status Foo(...)`, `StatusOr<T> Bar(...)`, including
# qualified definitions `Status BTree::Insert(...)`. The bare method name
# is harvested; call sites match on `obj.Name(` / `Name(`.
_STATUS_DECL_RE = re.compile(
    r"\b(?:static\s+)?(?:virtual\s+)?Status(?:Or<[^;>]*>)?\s+"
    r"(?:[A-Za-z_]\w*::)?([A-Z]\w*)\s*\(")


class Finding(object):
    __slots__ = ("file", "line", "rule", "message")

    def __init__(self, file, line, rule, message):
        self.file = file
        self.line = line
        self.rule = rule
        self.message = message

    def sort_key(self):
        return (self.file, self.line, self.rule)

    def as_dict(self):
        return {"file": self.file, "line": self.line, "rule": self.rule,
                "message": self.message}

    def __repr__(self):
        return "%s:%d: [%s] %s" % (self.file, self.line, self.rule,
                                   self.message)


class SourceFile(object):
    """One scanned file, parsed once and shared by every rule."""

    def __init__(self, rel, root=REPO_ROOT):
        self.rel = rel.replace(os.sep, "/")
        self.path = os.path.join(root, rel)
        with open(self.path, encoding="utf-8") as f:
            self.text = f.read()
        self.raw_lines = self.text.splitlines()
        self.is_header = self.rel.endswith(cpp.HEADER_EXTS)
        # [(lineno, comment/string-stripped code)]
        self.code_lines = list(cpp.iter_code_lines(self.text))
        # lineno -> set of rule names allowed (suppressed) on that line.
        self.allowed = {}
        for lineno, raw in enumerate(self.raw_lines, start=1):
            m = _ALLOW_RE.search(raw)
            if m:
                names = {n.strip() for n in m.group(1).split(",") if n.strip()}
                if names:
                    self.allowed[lineno] = names

    def suppressed(self, finding):
        return finding.rule in self.allowed.get(finding.line, set())


class Rule(object):
    """File-scope rule. Subclasses set `name`/`description` and implement
    check(sf, ctx) yielding Findings for one file."""

    name = None
    description = None

    def check(self, sf, ctx):
        raise NotImplementedError

    def finding(self, sf, line, message):
        return Finding(sf.rel, line, self.name, message)


class ProjectRule(Rule):
    """Project-scope rule: check_project(files, ctx) sees every scanned
    file at once. check() is unused."""

    def check(self, sf, ctx):
        return ()

    def check_project(self, files, ctx):
        raise NotImplementedError


REGISTRY = {}


def register(rule_cls):
    """Class decorator: instantiate and register a rule by name."""
    rule = rule_cls()
    assert rule.name, "rule class %s has no name" % rule_cls.__name__
    assert rule.name not in REGISTRY, "duplicate rule %s" % rule.name
    REGISTRY[rule.name] = rule
    return rule_cls


def all_rules():
    # Import triggers registration of every bundled rule module.
    from . import rules  # noqa: F401
    return dict(REGISTRY)


class Context(object):
    """Shared per-run state. Project facts (the Status-returning function
    names) are harvested lazily so runs that don't need them stay fast."""

    def __init__(self, root=REPO_ROOT, api_paths=("src",)):
        self.root = root
        self.api_paths = list(api_paths)
        self._status_names = None

    def status_function_names(self):
        if self._status_names is None:
            names = set()
            for rel in collect_files(self.api_paths, self.root):
                if not rel.endswith(cpp.HEADER_EXTS):
                    continue
                sf = SourceFile(rel, self.root)
                for _, code in sf.code_lines:
                    for m in _STATUS_DECL_RE.finditer(code):
                        names.add(m.group(1))
            self._status_names = names
        return self._status_names


def collect_files(paths, root=REPO_ROOT):
    files = []
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            files.append(os.path.relpath(full, root))
            continue
        for dirpath, _, names in os.walk(full):
            for name in sorted(names):
                if name.endswith(cpp.SOURCE_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(rel)
    return sorted(set(files))


def run(paths, rule_names=None, root=REPO_ROOT, api_paths=None):
    """Run the analysis.

    Returns (findings, files, rules): the surviving findings sorted by
    (file, line, rule), the scanned file list, and the applied rules.
    """
    rules = all_rules()
    if rule_names is not None:
        unknown = set(rule_names) - set(rules)
        if unknown:
            raise KeyError("unknown rule(s): %s" % ", ".join(sorted(unknown)))
        rules = {n: r for n, r in rules.items() if n in rule_names}

    rels = collect_files(paths, root)
    # Status-returning names come from all project headers plus whatever
    # is being scanned, so call sites resolve consistently and fixture
    # trees (tests/analysis/corpus) stay self-contained.
    if api_paths is None:
        api_paths = ["src"] + [p for p in paths if p != "src"]
    ctx = Context(root, api_paths)
    sources = [SourceFile(rel, root) for rel in rels]
    by_rel = {sf.rel: sf for sf in sources}

    findings = []
    for rule in rules.values():
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(sources, ctx))
        else:
            for sf in sources:
                findings.extend(rule.check(sf, ctx))

    kept = [f for f in findings
            if f.file not in by_rel or not by_rel[f.file].suppressed(f)]
    kept.sort(key=Finding.sort_key)
    return kept, rels, sorted(rules)
