"""C++ lexical helpers shared by the analysis rules.

The rules are regex-based, so the one thing they all need is source text
with comments and string/char literals blanked out — a rule must never
fire on prose. Positions are preserved (blanked spans become spaces) so
line/column information stays meaningful.
"""

import re

HEADER_EXTS = (".h", ".hpp")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

_BLOCK_RE = re.compile(r"/\*.*?\*/")


def strip_comments_and_strings(line):
    """Blank out string/char literals and // comments in one line.

    Block comments are handled by iter_code_lines (they span lines).
    """
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        ch = line[i]
        if in_str:
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == in_str:
                in_str = None
            out.append(" ")
        elif ch in ("\"", "'"):
            in_str = ch
            out.append(" ")
        elif ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def iter_code_lines(text):
    """Yield (lineno, code) with comments and literals blanked."""
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Remove complete /* ... */ spans, then detect an opener.
        line = _BLOCK_RE.sub(lambda m: " " * len(m.group()), line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block = True
        yield lineno, strip_comments_and_strings(line)
