"""Command-line front end for the analysis framework.

Usage: scripts/lint.py [--format=text|json] [--rules=a,b] [paths...]
       (default paths: src)

Text output is one `file:line: [rule] message` per finding, plus a
summary line. JSON output (--format=json) is a single object:

  {"findings": [{"file","line","rule","message"}, ...],
   "files_scanned": N,
   "rules": ["banned-random", ...],
   "ok": bool}

Exit code 0 when clean, 1 when any rule fires, 2 on usage errors.
"""

import json
import sys

from . import framework


def _usage(msg):
    sys.stderr.write("lint: %s\n" % msg)
    sys.stderr.write(
        "usage: lint.py [--format=text|json] [--rules=a,b] "
        "[--list-rules] [paths...]\n")
    return 2


def main(argv):
    fmt = "text"
    rule_names = None
    list_rules = False
    paths = []
    for arg in argv:
        if arg.startswith("--format="):
            fmt = arg.split("=", 1)[1]
            if fmt not in ("text", "json"):
                return _usage("unknown format %r" % fmt)
        elif arg.startswith("--rules="):
            rule_names = [r for r in arg.split("=", 1)[1].split(",") if r]
        elif arg == "--list-rules":
            list_rules = True
        elif arg.startswith("-"):
            return _usage("unknown flag %r" % arg)
        else:
            paths.append(arg)
    if not paths:
        paths = ["src"]

    if list_rules:
        for name, rule in sorted(framework.all_rules().items()):
            print("%-16s %s" % (name, rule.description))
        return 0

    try:
        findings, files, rules = framework.run(paths, rule_names)
    except KeyError as e:
        return _usage(str(e.args[0]))

    if not files:
        sys.stderr.write(
            "lint: no source files found under: %s\n" % ", ".join(paths))
        return 2

    if fmt == "json":
        print(json.dumps({
            "findings": [f.as_dict() for f in findings],
            "files_scanned": len(files),
            "rules": rules,
            "ok": not findings,
        }, indent=2, sort_keys=True))
        return 1 if findings else 0

    if findings:
        for f in findings:
            print("%s:%d: [%s] %s" % (f.file, f.line, f.rule, f.message))
        print("lint: %d problem(s) in %d file(s)" %
              (len(findings), len({f.file for f in findings})))
        return 1

    print("lint: OK (%d files, %d rules)" % (len(files), len(rules)))
    return 0
