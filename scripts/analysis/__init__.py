"""AutoIndex static-analysis framework.

A small, dependency-free lint engine for the project's structural rules:
things clang-tidy either cannot express or that must hold even on
machines without clang installed. `scripts/lint.py` is the command-line
entry point; rules live in `scripts/analysis/rules/` and register
themselves with the framework registry on import.

Layout:
  framework.py   Finding / SourceFile / Rule / registry / runner
  cpp.py         C++ lexical helpers (comment+string stripping)
  cli.py         argument parsing, text and JSON output
  rules/         one module per rule
"""

from . import framework  # noqa: F401  (re-exported for convenience)
