"""Allows `python3 -m analysis` (with scripts/ on sys.path) or
`python3 scripts/analysis` directly."""

import os
import sys

if __package__ in (None, ""):
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from analysis.cli import main
else:
    from .cli import main

sys.exit(main(sys.argv[1:]))
