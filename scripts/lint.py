#!/usr/bin/env python3
"""Project lint pass for AutoIndex.

Structural rules that clang-tidy either cannot express or that must hold
even on machines without clang-tidy installed:

  1. pragma-once     every header uses #pragma once (no include guards).
  2. raw-new-delete  no raw `new` / `delete` outside src/index/btree.cc,
                     which owns manual node wiring for the B+Tree. All
                     other ownership goes through unique_ptr/make_unique.
  3. status-ignored  a call to a Status-returning function used as a bare
                     statement silently drops the error. Such calls must
                     be consumed: returned, assigned, tested, or
                     explicitly discarded with (void). Function names are
                     harvested from header declarations, so the rule
                     tracks the API automatically.
  4. banned-random   rand()/srand()/time() break reproducibility; all
                     randomness goes through util/random.h (seeded) and
                     timing through util/timer.h.
  5. raw-file-io     std::ofstream / std::ifstream / std::fstream (and
                     C-style fopen) outside src/persist/ bypass the
                     durability layer: no checksum, no Status on short
                     reads, no atomic-rename writes. File IO goes through
                     persist/io.h (ReadFileToString / AtomicWriteFile) or
                     a persist file format.

Usage: scripts/lint.py [paths...]   (default: src)
Exit code 0 when clean, 1 when any rule fires.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HEADER_EXTS = (".h", ".hpp")
SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")

# Files allowed to use raw new/delete: the B+Tree does manual node
# surgery during splits/merges and documents its ownership protocol.
RAW_NEW_ALLOWLIST = {os.path.join("src", "index", "btree.cc")}

# Directory whose files implement the checked IO primitives and so may
# touch raw streams/descriptors themselves.
RAW_FILE_IO_ALLOWDIR = os.path.join("src", "persist")

RAW_FILE_IO_RE = re.compile(
    r"\bstd\s*::\s*(?:o|i)?fstream\b|(?<![\w.>])fopen\s*\(")

BANNED_CALLS = {
    "rand": "use autoindex::Random (util/random.h) for reproducibility",
    "srand": "use autoindex::Random (util/random.h) for reproducibility",
    "time": "use util/timer.h; wall-clock seeds break reproducibility",
}


def strip_comments_and_strings(line):
    """Blank out string/char literals and // comments so the regex rules
    never fire on prose. Block comments are handled by the caller."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        ch = line[i]
        if in_str:
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == in_str:
                in_str = None
            out.append(" ")
        elif ch in ("\"", "'"):
            in_str = ch
            out.append(" ")
        elif ch == "/" and i + 1 < n and line[i + 1] == "/":
            break
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def iter_code_lines(text):
    """Yield (lineno, code) with comments and literals blanked."""
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block:
            end = line.find("*/")
            if end < 0:
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        # Remove complete /* ... */ spans, then detect an opener.
        line = re.sub(r"/\*.*?\*/", lambda m: " " * len(m.group()), line)
        start = line.find("/*")
        if start >= 0:
            line = line[:start]
            in_block = True
        yield lineno, strip_comments_and_strings(line)


def collect_files(paths):
    files = []
    for path in paths:
        full = os.path.join(REPO_ROOT, path)
        if os.path.isfile(full):
            files.append(path)
            continue
        for dirpath, _, names in os.walk(full):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name),
                                          REPO_ROOT)
                    files.append(rel)
    return sorted(set(files))


# --- Rule 3 support: harvest Status-returning function names. ------------

# Declarations like `Status Foo(...)`, `StatusOr<T> Bar(...)`, including
# qualified definitions `Status BTree::Insert(...)`. We harvest the bare
# method name; call sites are matched on `obj.Name(` / `Name(`.
DECL_RE = re.compile(
    r"\b(?:static\s+)?(?:virtual\s+)?Status(?:Or<[^;>]*>)?\s+"
    r"(?:[A-Za-z_]\w*::)?([A-Z]\w*)\s*\(")

# Names that also have common non-Status overloads or whose bare call is
# legitimately valueless would go here. Kept empty on purpose: today every
# harvested name is unambiguous; add entries only with a justification.
STATUS_NAME_EXCEPTIONS = set()


def harvest_status_functions(files):
    names = set()
    for rel in files:
        if not rel.endswith(HEADER_EXTS):
            continue
        with open(os.path.join(REPO_ROOT, rel), encoding="utf-8") as f:
            text = f.read()
        for _, code in iter_code_lines(text):
            for m in DECL_RE.finditer(code):
                names.add(m.group(1))
    return names - STATUS_NAME_EXCEPTIONS


def lint_file(rel, status_names, problems):
    full = os.path.join(REPO_ROOT, rel)
    with open(full, encoding="utf-8") as f:
        text = f.read()

    is_header = rel.endswith(HEADER_EXTS)
    if is_header and "#pragma once" not in text:
        problems.append((rel, 1, "pragma-once",
                         "header missing '#pragma once'"))

    allow_raw = rel.replace(os.sep, "/") in {
        p.replace(os.sep, "/") for p in RAW_NEW_ALLOWLIST}
    allow_raw_io = rel.replace(os.sep, "/").startswith(
        RAW_FILE_IO_ALLOWDIR.replace(os.sep, "/") + "/")

    call_re = None
    if status_names:
        call_re = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(%s)\s*\(" %
            "|".join(sorted(status_names)))

    # Tail of the previous non-blank code line, used to spot continuation
    # lines: `StatusOr<T> x =\n    Foo(...)` is consumed, not dropped.
    prev_tail = ""
    for lineno, code in iter_code_lines(text):
        if not allow_raw:
            if re.search(r"\bnew\s+[A-Za-z_(]", code):
                problems.append((rel, lineno, "raw-new-delete",
                                 "raw 'new'; use std::make_unique"))
            if re.search(r"\bdelete(\[\])?\s+[A-Za-z_*(]", code):
                problems.append((rel, lineno, "raw-new-delete",
                                 "raw 'delete'; use owning smart pointers"))

        if not allow_raw_io and RAW_FILE_IO_RE.search(code):
            problems.append(
                (rel, lineno, "raw-file-io",
                 "unchecked stream IO; use persist/io.h "
                 "(ReadFileToString/AtomicWriteFile) or a persist format"))

        for name, why in BANNED_CALLS.items():
            # Bare calls only: `rand(`, `std::time(`, not `x.time(` or
            # identifiers that merely end with the name.
            if re.search(r"(?<![\w.>])(?:std::)?%s\s*\(" % name, code):
                problems.append((rel, lineno, "banned-random",
                                 "call to %s(): %s" % (name, why)))

        if call_re and call_re.match(code):
            # A bare-statement call: the line starts with the call itself
            # AND the previous line completed a statement. Consumed forms
            # start with return/(void)/assignment/if etc. (which the
            # anchored pattern never matches) or continue a line ending in
            # '=', '(', ',', '&&', etc. (which prev_tail rules out).
            statement_start = prev_tail in ("", ";", "{", "}", ":")
            if statement_start and code.rstrip().endswith((";", "(", ",")):
                name = call_re.match(code).group(1)
                problems.append(
                    (rel, lineno, "status-ignored",
                     "result of Status-returning %s() is dropped; "
                     "check it or cast to (void)" % name))

        stripped = code.strip()
        if stripped:
            prev_tail = stripped[-1]


def main(argv):
    paths = argv[1:] or ["src"]
    files = collect_files(paths)
    if not files:
        print("lint.py: no source files found under: %s" % ", ".join(paths))
        return 1

    # Status-returning names come from all project headers regardless of
    # which subset is being linted, so call sites resolve consistently.
    api_files = collect_files(["src"])
    status_names = harvest_status_functions(api_files)

    problems = []
    for rel in files:
        lint_file(rel, status_names, problems)

    if problems:
        for rel, lineno, rule, msg in problems:
            print("%s:%d: [%s] %s" % (rel, lineno, rule, msg))
        print("lint.py: %d problem(s) in %d file(s)" %
              (len(problems), len({p[0] for p in problems})))
        return 1

    print("lint.py: OK (%d files, %d Status-returning functions tracked)" %
          (len(files), len(status_names)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
