#!/usr/bin/env python3
"""Project lint pass for AutoIndex — thin shim over scripts/analysis/.

The rules (structural checks that clang-tidy either cannot express or
that must hold even on machines without clang installed) live in
scripts/analysis/rules/, one module per rule; the engine — file
collection, comment stripping, `// lint:allow(<rule>)` suppressions,
text/JSON output — is scripts/analysis/framework.py and cli.py.

Usage: scripts/lint.py [--format=text|json] [--rules=a,b] [paths...]
       (default: src)
Exit code 0 when clean, 1 when any rule fires.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
