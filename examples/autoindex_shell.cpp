// An interactive shell over the engine + AutoIndex: type SQL, see rows and
// per-query cost; meta-commands drive the index manager.
//
//   $ ./build/examples/autoindex_shell
//   autoindex> CREATE TABLE is not SQL here — tables come from \demo
//   autoindex> \demo            (loads a small demo table)
//   autoindex> SELECT * FROM orders WHERE customer_id = 42
//   autoindex> \diagnose
//   autoindex> \tune
//   autoindex> \indexes
//   autoindex> \save /tmp/aidb       (checkpoint + WAL into a directory)
//   autoindex> \open /tmp/aidb       (recover a saved database)
//   autoindex> \wal status
//   autoindex> \quit
//
// Remote mode: `autoindex_shell --connect host:port` attaches to a
// running autoindex_server instead of embedding an engine. SQL executes
// remotely; \ping probes the server, \shutdown drains and stops it.

#include <sys/stat.h>

#include <cctype>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "check/validator.h"
#include "core/manager.h"
#include "engine/explain.h"
#include "net/client.h"
#include "persist/io.h"
#include "persist/snapshot.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "workload/workload.h"

using namespace autoindex;  // NOLINT — example brevity

namespace {

void LoadDemo(Database* db) {
  if (db->catalog().GetTable("orders") != nullptr) {
    std::printf("demo already loaded\n");
    return;
  }
  db->CreateTable("orders", Schema({{"order_id", ValueType::kInt},
                                    {"customer_id", ValueType::kInt},
                                    {"status", ValueType::kInt},
                                    {"amount", ValueType::kDouble}}));
  Random rng(42);
  std::vector<Row> rows;
  for (int i = 0; i < 50000; ++i) {
    rows.push_back({Value(int64_t(i)),
                    Value(int64_t(rng.Uniform(5000))),
                    Value(int64_t(rng.Uniform(7))),
                    Value(rng.NextDouble() * 500.0)});
  }
  db->BulkInsert("orders", std::move(rows)).ok();
  db->Analyze();
  std::printf("loaded table orders (50000 rows)\n");
}

void PrintRows(const std::vector<Row>& rows, size_t cap = 20) {
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= cap) {
      std::printf("... (%zu more rows)\n", rows.size() - cap);
      break;
    }
    std::string line = "  ";
    for (const Value& v : row) line += v.ToString() + "\t";
    std::printf("%s\n", line.c_str());
  }
}

void PrintIndexes(const Database& db) {
  // AnyState: in-flight builds show up as "building" while ready indexes
  // (the planner's view) report "ready".
  const auto all = db.index_manager().AllIndexesAnyState();
  if (all.empty()) {
    std::printf("(no indexes)\n");
    return;
  }
  for (const BuiltIndex* index : all) {
    std::printf("  %-40s %-8s %8.2f MiB  entries=%zu height=%zu uses=%zu\n",
                index->def().DisplayName().c_str(),
                IndexStateName(index->state()),
                index->SizeBytes() / 1048576.0, index->num_entries(),
                index->height(), index->uses());
  }
}

AutoIndexConfig ShellConfig() {
  AutoIndexConfig config;
  config.mcts.iterations = 200;
  return config;
}

// Thin client REPL against a running autoindex_server: SQL round-trips
// over the wire protocol; meta-commands are the connection-level subset
// (\ping \shutdown \quit — tuning/persistence stay server-side).
int RunRemoteShell(const std::string& spec) {
  std::string host;
  int port = 0;
  Status parsed = net::ParseHostPort(spec, &host, &port);
  if (!parsed.ok()) {
    std::printf("bad --connect argument: %s\n", parsed.ToString().c_str());
    return 2;
  }
  net::Client client;
  Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::printf("connect failed: %s\n", connected.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%d (session %llu) — \\metrics \\ping "
              "\\shutdown \\quit; SQL executes remotely\n",
              host.c_str(), port,
              static_cast<unsigned long long>(client.session_id()));
  std::string line;
  while (true) {
    std::printf("autoindex(%s:%d)> ", host.c_str(), port);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string input(Trim(line));
    if (input.empty()) continue;

    if (input[0] == '\\') {
      std::istringstream iss(input.substr(1));
      std::string cmd;
      iss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "ping") {
        const util::Stopwatch watch;
        Status pong = client.Ping();
        if (pong.ok()) {
          std::printf("pong (%.2f ms)\n", watch.ElapsedMs());
        } else {
          std::printf("ping failed: %s\n", pong.ToString().c_str());
          if (!client.connected()) return 1;
        }
      } else if (cmd == "shutdown") {
        Status bye = client.Shutdown();
        if (bye.ok()) {
          std::printf("server acknowledged shutdown, draining\n");
          return 0;
        }
        std::printf("shutdown failed: %s\n", bye.ToString().c_str());
        return 1;
      } else if (cmd == "metrics") {
        // Remote scrape: the server renders its own registry (satisfying
        // prefix filter server-side) and ships the text back.
        std::string prefix;
        iss >> prefix;
        StatusOr<std::string> text = client.Metrics(prefix);
        if (!text.ok()) {
          std::printf("metrics failed: %s\n",
                      text.status().ToString().c_str());
          if (!client.connected()) return 1;
        } else if (text->empty()) {
          std::printf("no metrics%s%s yet\n", prefix.empty() ? "" : " under ",
                      prefix.c_str());
        } else {
          std::printf("%s", text->c_str());
        }
      } else {
        std::printf("unknown remote command \\%s (have \\metrics \\ping "
                    "\\shutdown \\quit)\n",
                    cmd.c_str());
      }
      continue;
    }

    StatusOr<net::QueryResult> result = client.Query(input);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      if (!client.connected()) {
        std::printf("connection lost\n");
        return 1;
      }
      continue;
    }
    PrintRows(result->rows);
    const CostBreakdown cost = result->stats.ToCost(CostParams());
    std::printf("(%zu rows, cost %.2f%s)\n", result->rows.size(),
                cost.Total(),
                result->stats.used_index ? ", via index" : "");
  }
  client.Close();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--connect") {
    return RunRemoteShell(argv[2]);
  }
  if (argc != 1) {
    std::printf("usage: %s [--connect host:port]\n", argv[0]);
    return 2;
  }
  // The database/manager/WAL live behind pointers so \open can swap in a
  // recovered instance. Teardown order matters: the manager observes the
  // database, and the database holds a raw pointer to the WAL.
  auto db = std::make_unique<Database>();
  auto manager = std::make_unique<AutoIndexManager>(db.get(), ShellConfig());
  std::unique_ptr<persist::Wal> wal;

  std::printf("AutoIndex shell — \\demo \\tune \\diagnose \\indexes "
              "\\templates \\explain [analyze] <sql> \\budget <MiB> "
              "\\check [on|off] \\metrics [prefix] \\trace show|dump "
              "\\save <dir> \\open <dir> \\wal status \\quit\n");
  std::string line;
  while (true) {
    std::printf("autoindex> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string input(Trim(line));
    if (input.empty()) continue;

    if (input[0] == '\\') {
      std::istringstream iss(input.substr(1));
      std::string cmd;
      iss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "demo") {
        LoadDemo(db.get());
      } else if (cmd == "indexes") {
        PrintIndexes(*db);
      } else if (cmd == "templates") {
        for (const QueryTemplate* t :
             manager->templates().TemplatesByFrequency()) {
          std::printf("  %8.1f  %s\n", t->frequency,
                      t->fingerprint.c_str());
        }
      } else if (cmd == "budget") {
        double mib = 0;
        if (iss >> mib) {
          manager->set_storage_budget(
              static_cast<size_t>(mib * 1048576.0));
          std::printf("storage budget set to %.1f MiB\n", mib);
        } else {
          std::printf("usage: \\budget <MiB>\n");
        }
      } else if (cmd == "check") {
        // "\check" validates every structure now; "\check on" keeps doing
        // it after each mutation batch, "\check off" stops.
        std::string mode;
        iss >> mode;
        if (mode == "on") {
          InstallDebugChecks(db.get());
          std::printf("debug checks on: structures validated after every "
                      "mutation batch\n");
        } else if (mode == "off") {
          InstallDebugChecks(db.get(), /*install=*/false);
          std::printf("debug checks off\n");
        } else if (mode.empty()) {
          const CheckReport report = CheckAll(*db);
          std::printf("%s\n", report.ToString().c_str());
        } else {
          std::printf("usage: \\check [on|off]\n");
        }
      } else if (cmd == "metrics") {
        // "\metrics" dumps every series; "\metrics wal." just that
        // subsystem. Prometheus text format, same as RenderMetricsText.
        std::string prefix;
        iss >> prefix;
        const std::string text = db->RenderMetricsText(prefix);
        if (text.empty()) {
          std::printf("no metrics%s%s yet\n", prefix.empty() ? "" : " under ",
                      prefix.c_str());
        } else {
          std::printf("%s", text.c_str());
        }
      } else if (cmd == "trace") {
        // "\trace show [n]" renders the most recent flight-recorder
        // traces as indented span trees; "\trace dump <file>" writes the
        // whole ring as Chrome trace-event JSON (chrome://tracing,
        // Perfetto).
        std::string sub;
        iss >> sub;
        if (sub == "show") {
          size_t n = 5;
          iss >> n;
          std::printf("%s", db->RenderTraceTrees(n).c_str());
        } else if (sub == "dump") {
          std::string file;
          iss >> file;
          if (file.empty()) {
            std::printf("usage: \\trace dump <file>\n");
            continue;
          }
          Status written = persist::AtomicWriteFile(file, db->DumpTraces());
          if (written.ok()) {
            std::printf("wrote traces to %s\n", file.c_str());
          } else {
            std::printf("dump failed: %s\n", written.ToString().c_str());
          }
        } else {
          std::printf("usage: \\trace show [n] | \\trace dump <file>\n");
        }
      } else if (cmd == "diagnose") {
        DiagnosisReport report = manager->Diagnose();
        std::printf("built=%zu unbuilt-beneficial=%zu rarely-used=%zu "
                    "negative=%zu -> problem ratio %.2f, %s\n",
                    report.built_indexes,
                    report.unbuilt_beneficial.size(),
                    report.rarely_used.size(),
                    report.negative_benefit.size(), report.problem_ratio,
                    report.should_tune ? "TUNE" : "healthy");
      } else if (cmd == "explain") {
        std::string rest;
        std::getline(iss, rest);
        std::string sql(Trim(rest));
        // "\explain analyze <sql>" executes and shows measured counters.
        bool analyze = false;
        if (sql.size() >= 7) {
          std::string head = sql.substr(0, 7);
          for (char& c : head) c = static_cast<char>(std::tolower(c));
          if (head == "analyze") {
            analyze = true;
            sql = std::string(Trim(sql.substr(7)));
          }
        }
        auto plan = analyze ? ExplainAnalyzeSql(*db, sql) : ExplainSql(*db, sql);
        if (plan.ok()) {
          std::printf("%s", plan->c_str());
        } else {
          std::printf("error: %s\n", plan.status().ToString().c_str());
        }
      } else if (cmd == "tune") {
        TuningResult r = manager->RunManagementRound();
        std::printf("round done in %.1f ms: +%zu / -%zu indexes "
                    "(est. benefit %.1f)\n",
                    r.elapsed_ms, r.added.size(), r.removed.size(),
                    r.est_benefit);
        for (const IndexDef& d : r.added) {
          std::printf("  + %s\n", d.DisplayName().c_str());
        }
        for (const IndexDef& d : r.removed) {
          std::printf("  - %s\n", d.DisplayName().c_str());
        }
        for (const ApplyError& e : r.apply_errors) {
          std::printf("  ! %s %s failed: %s\n", e.drop ? "drop" : "create",
                      e.def.DisplayName().c_str(), e.message.c_str());
        }
      } else if (cmd == "save") {
        std::string dir;
        iss >> dir;
        if (dir.empty()) {
          std::printf("usage: \\save <dir>\n");
          continue;
        }
        ::mkdir(dir.c_str(), 0755);  // EEXIST is fine
        StatusOr<uint64_t> version =
            persist::SaveSnapshot(db.get(), manager.get(), dir);
        if (!version.ok()) {
          std::printf("save failed: %s\n",
                      version.status().ToString().c_str());
          continue;
        }
        if (wal == nullptr) {
          // First save: start logging statements so the snapshot stays
          // current without another \save.
          auto created = persist::Wal::Create(persist::WalPath(dir), *version);
          if (created.ok()) {
            wal = std::move(*created);
            db->set_durability_log(wal.get());
          } else {
            std::printf("warning: WAL not started: %s\n",
                        created.status().ToString().c_str());
          }
        }
        std::printf("saved snapshot at data version %llu to %s\n",
                    static_cast<unsigned long long>(*version), dir.c_str());
      } else if (cmd == "open") {
        std::string dir;
        iss >> dir;
        if (dir.empty()) {
          std::printf("usage: \\open <dir>\n");
          continue;
        }
        auto fresh_db = std::make_unique<Database>();
        auto fresh_manager =
            std::make_unique<AutoIndexManager>(fresh_db.get(), ShellConfig());
        persist::RecoveryReport report;
        StatusOr<std::unique_ptr<persist::Wal>> opened = persist::OpenSnapshot(
            fresh_db.get(), fresh_manager.get(), dir, &report);
        if (!opened.ok()) {
          std::printf("open failed: %s\n",
                      opened.status().ToString().c_str());
          continue;
        }
        // Swap in the recovered instance; drop the old one (manager first,
        // then database, then its WAL).
        manager = std::move(fresh_manager);
        db->set_durability_log(nullptr);
        db = std::move(fresh_db);
        wal = std::move(*opened);
        std::printf(
            "recovered %zu tables (%zu rows), %zu indexes rebuilt, "
            "%zu WAL records replayed%s, data version %llu%s\n",
            report.tables_restored, report.rows_restored,
            report.indexes_rebuilt, report.wal_records_replayed,
            report.info.wal_bytes_truncated > 0 ? " (torn tail dropped)" : "",
            static_cast<unsigned long long>(
                report.info.recovered_data_version),
            report.tuning_state_restored ? ", tuning state restored" : "");
      } else if (cmd == "wal") {
        std::string sub;
        iss >> sub;
        if (sub != "status") {
          std::printf("usage: \\wal status\n");
        } else if (wal == nullptr) {
          std::printf("no WAL attached (use \\save <dir> or "
                      "\\open <dir>)\n");
        } else {
          std::printf("wal %s: epoch=%llu records=%llu size=%llu bytes\n",
                      wal->path().c_str(),
                      static_cast<unsigned long long>(wal->epoch()),
                      static_cast<unsigned long long>(wal->records_appended()),
                      static_cast<unsigned long long>(wal->size_bytes()));
        }
      } else {
        std::printf("unknown command \\%s\n", cmd.c_str());
      }
      continue;
    }

    StatusOr<ExecResult> result = manager->ExecuteAndObserve(input);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintRows(result->rows);
    const CostBreakdown cost = result->stats.ToCost(db->params());
    std::printf("(%zu rows, cost %.2f%s)\n", result->rows.size(),
                cost.Total(),
                result->stats.used_index ? ", via index" : "");
  }
  return 0;
}
