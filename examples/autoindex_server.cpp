// Standalone AutoIndex server: exposes one Database over TCP via the
// src/net/ service layer so remote shells and benches can drive it.
//
//   $ ./build/examples/autoindex_server --workload tpcc --port 0
//   LISTENING 43187
//
// Prints "LISTENING <port>" (the ephemeral port when --port 0) once it
// accepts connections — scripts/check.sh parses that line. Stops on
// SIGINT/SIGTERM or a client's \shutdown, drains in-flight statements,
// and exits 0 only when the drain lost nothing and every connection
// closed (the "leaked connections" gate).
//
//   --port N                  bind port (0 = ephemeral, the default)
//   --host H                  bind address (default 127.0.0.1)
//   --workload demo|tpcc|none initial data (default demo)
//   --max-connections N       admission: connection cap (default 64)
//   --max-inflight N          admission: concurrent statements (default 32)
//   --idle-timeout-ms N       per-connection idle limit (default 0 = off)
//   --statement-timeout-us N  per-statement deadline (default 0 = off)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "engine/database.h"
#include "net/server.h"
#include "util/random.h"
#include "workload/tpcc.h"

using namespace autoindex;  // NOLINT — example brevity

namespace {

void LoadDemo(Database* db) {
  db->CreateTable("orders", Schema({{"order_id", ValueType::kInt},
                                    {"customer_id", ValueType::kInt},
                                    {"status", ValueType::kInt},
                                    {"amount", ValueType::kDouble}}));
  Random rng(42);
  std::vector<Row> rows;
  for (int i = 0; i < 50000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(rng.Uniform(5000))),
                    Value(int64_t(rng.Uniform(7))),
                    Value(rng.NextDouble() * 500.0)});
  }
  CheckOk(db->BulkInsert("orders", std::move(rows)));
  db->Analyze();
  std::printf("loaded demo table orders (50000 rows)\n");
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host H] [--workload demo|tpcc|none]\n"
               "          [--max-connections N] [--max-inflight N]\n"
               "          [--idle-timeout-ms N] [--statement-timeout-us N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerConfig config;
  std::string workload = "demo";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    bool ok = true;
    if (arg == "--port") {
      ok = next_int(&config.port);
    } else if (arg == "--host") {
      ok = i + 1 < argc;
      if (ok) config.host = argv[++i];
    } else if (arg == "--workload") {
      ok = i + 1 < argc;
      if (ok) workload = argv[++i];
    } else if (arg == "--max-connections") {
      ok = next_int(&config.max_connections);
    } else if (arg == "--max-inflight") {
      ok = next_int(&config.max_inflight_statements);
    } else if (arg == "--idle-timeout-ms") {
      ok = next_int(&config.idle_timeout_ms);
    } else if (arg == "--statement-timeout-us") {
      ok = next_int(&config.statement_timeout_us);
    } else {
      ok = false;
    }
    if (!ok) return Usage(argv[0]);
  }

  Database db;
  if (workload == "demo") {
    LoadDemo(&db);
  } else if (workload == "tpcc") {
    const TpccConfig tpcc;
    TpccWorkload::Populate(&db, tpcc);
    db.Analyze();
    std::printf("loaded TPC-C tables\n");
  } else if (workload != "none") {
    std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
    return Usage(argv[0]);
  }

  net::Server server(&db, config);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  Status signals = server.InstallSignalHandlers();
  if (!signals.ok()) {
    std::fprintf(stderr, "signal setup failed: %s\n",
                 signals.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %d\n", server.port());
  std::fflush(stdout);

  server.WaitUntilStopped();

  const net::ServerStats stats = server.stats();
  const size_t open = server.open_connections();
  const bool clean =
      open == 0 && stats.requests_started == stats.responses_sent;
  std::printf(
      "SHUTDOWN %s open=%zu connections=%llu rejected=%llu "
      "requests=%llu responses=%llu busy=%llu idle_disconnects=%llu "
      "statement_timeouts=%llu\n",
      clean ? "clean" : "DIRTY", open,
      (unsigned long long)stats.connections_total,
      (unsigned long long)stats.connections_rejected,
      (unsigned long long)stats.requests_started,
      (unsigned long long)stats.responses_sent,
      (unsigned long long)stats.busy_rejections,
      (unsigned long long)stats.idle_disconnects,
      (unsigned long long)stats.statement_timeouts);
  // The service-layer metrics, so a scrape of the final state is in the
  // log (the bench drives these same series remotely).
  std::printf("%s", db.RenderMetricsText("net.").c_str());
  return clean ? 0 : 1;
}
