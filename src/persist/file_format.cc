#include "persist/file_format.h"

#include "persist/io.h"
#include "util/string_util.h"

namespace autoindex {
namespace persist {

namespace {
// id + size + crc.
constexpr size_t kSectionHeaderBytes = 4 + 8 + 4;
}  // namespace

FileWriter::FileWriter(const std::string& magic, uint32_t version)
    : magic_(magic), version_(version) {
  magic_.resize(kMagicBytes, '\0');
}

void FileWriter::AddSection(uint32_t id, const Writer& payload) {
  sections_.push_back({id, payload.buffer()});
}

std::string FileWriter::Serialize() const {
  Writer w;
  w.PutBytes(magic_.data(), kMagicBytes);
  w.PutU32(version_);
  for (const Section& section : sections_) {
    w.PutU32(section.id);
    w.PutU64(section.payload.size());
    w.PutU32(Crc32(section.payload.data(), section.payload.size()));
    w.PutBytes(section.payload.data(), section.payload.size());
  }
  return w.buffer();
}

Status FileWriter::WriteAtomic(const std::string& path) const {
  return AtomicWriteFile(path, Serialize());
}

std::vector<size_t> FileWriter::SectionBoundaries() const {
  std::vector<size_t> offsets;
  size_t pos = kMagicBytes + 4;
  offsets.push_back(pos);
  for (const Section& section : sections_) {
    pos += kSectionHeaderBytes + section.payload.size();
    offsets.push_back(pos);
  }
  return offsets;
}

StatusOr<FileReader> FileReader::Parse(std::string bytes,
                                       const std::string& magic,
                                       uint32_t expected_version) {
  std::string want = magic;
  want.resize(kMagicBytes, '\0');
  if (bytes.size() < kMagicBytes + 4 ||
      bytes.compare(0, kMagicBytes, want) != 0) {
    return Status::InvalidArgument(
        StrCat("not a ", magic, " file (bad magic or too short)"));
  }
  FileReader out;
  {
    Reader header(bytes.data() + kMagicBytes, 4);
    out.version_ = header.GetU32();
  }
  if (out.version_ != expected_version) {
    return Status::InvalidArgument(
        StrCat(magic, " format version ", out.version_, " unsupported (want ",
               expected_version, ")"));
  }
  size_t pos = kMagicBytes + 4;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kSectionHeaderBytes) {
      return Status::InvalidArgument(
          StrCat(magic, " file truncated mid section header (",
                 bytes.size() - pos, " trailing bytes)"));
    }
    Reader header(bytes.data() + pos, kSectionHeaderBytes);
    const uint32_t id = header.GetU32();
    const uint64_t size = header.GetU64();
    const uint32_t crc = header.GetU32();
    pos += kSectionHeaderBytes;
    if (size > bytes.size() - pos) {
      return Status::InvalidArgument(
          StrCat(magic, " file truncated: section ", id, " claims ", size,
                 " bytes, only ", bytes.size() - pos, " remain"));
    }
    std::string payload = bytes.substr(pos, static_cast<size_t>(size));
    pos += static_cast<size_t>(size);
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::InvalidArgument(
          StrCat(magic, " file corrupt: section ", id, " checksum mismatch"));
    }
    out.ids_.push_back(id);
    out.payloads_.push_back(std::move(payload));
  }
  return out;
}

const std::string* FileReader::Find(uint32_t id) const {
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return &payloads_[i];
  }
  return nullptr;
}

}  // namespace persist
}  // namespace autoindex
