#include "persist/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "persist/io.h"
#include "persist/serde.h"
#include "persist/sql_serde.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace autoindex {
namespace persist {
namespace {

// WAL observability series (DESIGN.md §11): append/fsync latency is the
// durability tax every committed write pays.
struct WalMetrics {
  util::Counter* appends;
  util::Counter* append_bytes;
  util::LatencyHistogram* append_us;
  util::Counter* fsyncs;
  util::LatencyHistogram* fsync_us;

  static const WalMetrics& Get() {
    static const WalMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return WalMetrics{registry.GetCounter("wal.appends"),
                        registry.GetCounter("wal.append_bytes"),
                        registry.GetHistogram("wal.append_us"),
                        registry.GetCounter("wal.fsyncs"),
                        registry.GetHistogram("wal.fsync_us")};
    }();
    return metrics;
  }
};

constexpr char kWalMagic[] = "AIXWAL01";
constexpr uint32_t kWalVersion = 1;
// magic (8) + format version (u32) + epoch (u64).
constexpr size_t kHeaderBytes = 8 + 4 + 8;
// payload size (u32) + crc (u32).
constexpr size_t kRecordHeaderBytes = 4 + 4;

std::string SerializeHeader(uint64_t epoch) {
  Writer w;
  w.PutBytes(kWalMagic, 8);
  w.PutU32(kWalVersion);
  w.PutU64(epoch);
  return w.buffer();
}

std::string SerializePayload(const WalRecord& record) {
  Writer w;
  w.PutU8(static_cast<uint8_t>(record.type));
  w.PutU64(record.data_version);
  switch (record.type) {
    case WalRecord::Type::kStatement:
      PutStatement(&w, record.stmt);
      break;
    case WalRecord::Type::kCreateTable:
      w.PutString(record.name);
      PutSchema(&w, record.schema);
      break;
    case WalRecord::Type::kCreateIndex:
      PutIndexDef(&w, record.def);
      break;
    case WalRecord::Type::kDropIndex:
    case WalRecord::Type::kAnalyze:
      w.PutString(record.name);
      break;
    case WalRecord::Type::kBulkInsert:
      w.PutString(record.name);
      w.PutU32(static_cast<uint32_t>(record.rows.size()));
      for (const Row& row : record.rows) PutRow(&w, row);
      break;
  }
  return w.buffer();
}

// Decodes one payload. False (with the reader poisoned or not even that —
// an unknown type tag) means the record is not usable; since the CRC
// already matched, that can only be version skew or a bug, and replay
// stops there as it would for a torn record.
bool DecodePayload(const std::string& payload, WalRecord* out) {
  Reader r(payload);
  const uint8_t type_tag = r.GetU8();
  if (type_tag < static_cast<uint8_t>(WalRecord::Type::kStatement) ||
      type_tag > static_cast<uint8_t>(WalRecord::Type::kAnalyze)) {
    return false;
  }
  out->type = static_cast<WalRecord::Type>(type_tag);
  out->data_version = r.GetU64();
  switch (out->type) {
    case WalRecord::Type::kStatement:
      out->stmt = GetStatement(&r);
      break;
    case WalRecord::Type::kCreateTable:
      out->name = r.GetString();
      out->schema = GetSchema(&r);
      break;
    case WalRecord::Type::kCreateIndex:
      out->def = GetIndexDef(&r);
      break;
    case WalRecord::Type::kDropIndex:
    case WalRecord::Type::kAnalyze:
      out->name = r.GetString();
      break;
    case WalRecord::Type::kBulkInsert: {
      out->name = r.GetString();
      const uint32_t nrows = r.GetU32();
      for (uint32_t i = 0; i < nrows && r.ok(); ++i) {
        out->rows.push_back(GetRow(&r));
      }
      break;
    }
  }
  return r.AtEnd();
}

}  // namespace

Wal::Wal(std::string path, uint64_t epoch, WalOptions options)
    : path_(std::move(path)), epoch_(epoch), options_(options) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::OpenFd(bool truncate) {
  int flags = O_WRONLY | O_CREAT;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::Internal(
        StrCat("open failed for ", path_, ": ", std::strerror(errno)));
  }
  if (truncate) {
    const std::string header = SerializeHeader(epoch_);
    Status s = CrashCheckedWrite(fd_, header.data(), header.size());
    if (s.ok() && ::fsync(fd_) != 0) {
      s = Status::Internal(
          StrCat("fsync failed for ", path_, ": ", std::strerror(errno)));
    }
    if (!s.ok()) return s;
    size_bytes_ = header.size();
  } else {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      return Status::Internal(
          StrCat("lseek failed for ", path_, ": ", std::strerror(errno)));
    }
    size_bytes_ = static_cast<uint64_t>(end);
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Wal>> Wal::Create(const std::string& path,
                                           uint64_t checkpoint_data_version,
                                           WalOptions options) {
  auto wal = std::make_unique<Wal>(path, checkpoint_data_version, options);
  Status s = wal->OpenFd(/*truncate=*/true);
  if (!s.ok()) return s;
  return wal;
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                         WalReplay* replay,
                                         WalOptions options) {
  std::string bytes;
  Status s = ReadFileToString(path, &bytes);
  if (!s.ok()) return s;
  if (bytes.size() < kHeaderBytes ||
      bytes.compare(0, 8, kWalMagic, 8) != 0) {
    return Status::InvalidArgument(
        StrCat("not a WAL file (bad magic or short header): ", path));
  }
  Reader header(bytes.data() + 8, kHeaderBytes - 8);
  const uint32_t version = header.GetU32();
  if (version != kWalVersion) {
    return Status::InvalidArgument(
        StrCat("WAL format version ", version, " unsupported"));
  }
  replay->epoch = header.GetU64();
  replay->records.clear();
  replay->bytes_truncated = 0;

  // Scan records; the first incomplete or checksum-failing record ends the
  // durable prefix.
  size_t pos = kHeaderBytes;
  size_t durable_end = pos;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderBytes) break;
    Reader frame(bytes.data() + pos, kRecordHeaderBytes);
    const uint32_t payload_size = frame.GetU32();
    const uint32_t crc = frame.GetU32();
    if (bytes.size() - pos - kRecordHeaderBytes < payload_size) break;
    const std::string payload =
        bytes.substr(pos + kRecordHeaderBytes, payload_size);
    if (Crc32(payload.data(), payload.size()) != crc) break;
    WalRecord record;
    if (!DecodePayload(payload, &record)) break;
    replay->records.push_back(std::move(record));
    pos += kRecordHeaderBytes + payload_size;
    durable_end = pos;
  }
  replay->bytes_truncated = bytes.size() - durable_end;
  if (replay->bytes_truncated > 0) {
    s = TruncateFile(path, durable_end);
    if (!s.ok()) return s;
  }

  auto wal = std::make_unique<Wal>(path, replay->epoch, options);
  wal->records_appended_ = replay->records.size();
  s = wal->OpenFd(/*truncate=*/false);
  if (!s.ok()) return s;
  return wal;
}

Status Wal::AppendRecord(const WalRecord& record) {
  if (fd_ < 0) return Status::Internal("WAL is not open");
  util::ScopedTimer append_timer(WalMetrics::Get().append_us);
  obs::ScopedSpan append_span("wal.append");
  const std::string payload = SerializePayload(record);
  Writer frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data(), payload.size()));
  frame.PutBytes(payload.data(), payload.size());
  Status s = CrashCheckedWrite(fd_, frame.buffer().data(), frame.size());
  if (!s.ok()) {
    append_timer.Cancel();  // failed writes would skew the latency series
    return s;
  }
  size_bytes_ += frame.size();
  ++records_appended_;
  WalMetrics::Get().appends->Add();
  WalMetrics::Get().append_bytes->Add(frame.size());
  if (options_.fsync_each_append) return Sync();
  return Status::Ok();
}

Status Wal::Sync() {
  if (fd_ < 0) return Status::Internal("WAL is not open");
  util::ScopedTimer fsync_timer(WalMetrics::Get().fsync_us);
  obs::ScopedSpan fsync_span("wal.fsync");
  if (::fsync(fd_) != 0) {
    fsync_timer.Cancel();
    return Status::Internal(
        StrCat("fsync failed for ", path_, ": ", std::strerror(errno)));
  }
  WalMetrics::Get().fsyncs->Add();
  return Status::Ok();
}

Status Wal::AppendStatement(const Statement& stmt, uint64_t data_version) {
  WalRecord record;
  record.type = WalRecord::Type::kStatement;
  record.data_version = data_version;
  record.stmt = stmt.Clone();
  return AppendRecord(record);
}

Status Wal::AppendCreateTable(const std::string& name, const Schema& schema,
                              uint64_t data_version) {
  WalRecord record;
  record.type = WalRecord::Type::kCreateTable;
  record.data_version = data_version;
  record.name = name;
  record.schema = schema;
  return AppendRecord(record);
}

Status Wal::AppendCreateIndex(const IndexDef& def, uint64_t data_version) {
  WalRecord record;
  record.type = WalRecord::Type::kCreateIndex;
  record.data_version = data_version;
  record.def = def;
  return AppendRecord(record);
}

Status Wal::AppendDropIndex(const std::string& key_or_name,
                            uint64_t data_version) {
  WalRecord record;
  record.type = WalRecord::Type::kDropIndex;
  record.data_version = data_version;
  record.name = key_or_name;
  return AppendRecord(record);
}

Status Wal::AppendBulkInsert(const std::string& table,
                             const std::vector<Row>& rows,
                             uint64_t data_version) {
  WalRecord record;
  record.type = WalRecord::Type::kBulkInsert;
  record.data_version = data_version;
  record.name = table;
  record.rows = rows;
  return AppendRecord(record);
}

Status Wal::AppendAnalyze(const std::string& table, uint64_t data_version) {
  WalRecord record;
  record.type = WalRecord::Type::kAnalyze;
  record.data_version = data_version;
  record.name = table;
  return AppendRecord(record);
}

Status Wal::OnCheckpoint(uint64_t checkpoint_data_version) {
  // Atomic reset: the fresh header lands via rename, so a crash mid-reset
  // leaves the old log (whose stale epoch replay skips) intact.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  epoch_ = checkpoint_data_version;
  Status s = AtomicWriteFile(path_, SerializeHeader(epoch_));
  if (!s.ok()) return s;
  records_appended_ = 0;
  return OpenFd(/*truncate=*/false);
}

}  // namespace persist
}  // namespace autoindex
