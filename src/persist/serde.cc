#include "persist/serde.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace autoindex {
namespace persist {

namespace {

// Lazily built 256-entry CRC-32 table (IEEE polynomial, reflected).
const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
    return entries;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const uint32_t* table = CrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Writer::PutU32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf_.append(b, 4);
}

void Writer::PutU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf_.append(b, 8);
}

void Writer::PutDouble(double v) {
  static_assert(sizeof(double) == sizeof(uint64_t));
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void Writer::PutBytes(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

bool Reader::Need(size_t n) {
  if (!status_.ok()) return false;
  if (size_ - pos_ < n) {
    status_ = Status::OutOfRange(
        StrCat("short read: need ", n, " bytes, have ", size_ - pos_));
    return false;
  }
  return true;
}

void Reader::Fail(Status status) {
  if (status_.ok() && !status.ok()) status_ = std::move(status);
}

uint8_t Reader::GetU8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t Reader::GetU32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t Reader::GetU64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::GetString() {
  const uint32_t len = GetU32();
  if (!Need(len)) return std::string();
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

// --- Value / Row / Schema -----------------------------------------------

void PutValue(Writer* w, const Value& v) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      w->PutString(v.AsString());
      break;
  }
}

Value GetValue(Reader* r) {
  const uint8_t tag = r->GetU8();
  switch (tag) {
    case static_cast<uint8_t>(ValueType::kNull):
      return Value::Null();
    case static_cast<uint8_t>(ValueType::kInt):
      return Value(r->GetI64());
    case static_cast<uint8_t>(ValueType::kDouble):
      return Value(r->GetDouble());
    case static_cast<uint8_t>(ValueType::kString):
      return Value(r->GetString());
    default:
      r->Fail(Status::InvalidArgument(
          StrCat("bad value type tag ", static_cast<int>(tag))));
      return Value::Null();
  }
}

void PutRow(Writer* w, const Row& row) {
  w->PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(w, v);
}

Row GetRow(Reader* r) {
  const uint32_t n = r->GetU32();
  Row row;
  // Bound the reserve by what the buffer could possibly hold (a cell is
  // at least one byte) so a corrupt count cannot force a huge allocation.
  row.reserve(std::min<size_t>(n, r->remaining()));
  for (uint32_t i = 0; i < n && r->ok(); ++i) row.push_back(GetValue(r));
  return row;
}

void PutSchema(Writer* w, const Schema& schema) {
  w->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& col : schema.columns()) {
    w->PutString(col.name);
    w->PutU8(static_cast<uint8_t>(col.type));
    w->PutU64(col.avg_width);
  }
}

Schema GetSchema(Reader* r) {
  const uint32_t n = r->GetU32();
  std::vector<Column> columns;
  columns.reserve(std::min<size_t>(n, r->remaining()));
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    Column col;
    col.name = r->GetString();
    const uint8_t tag = r->GetU8();
    if (tag > static_cast<uint8_t>(ValueType::kString)) {
      r->Fail(Status::InvalidArgument(
          StrCat("bad column type tag ", static_cast<int>(tag))));
      break;
    }
    col.type = static_cast<ValueType>(tag);
    col.avg_width = r->GetU64();
    columns.push_back(std::move(col));
  }
  return Schema(std::move(columns));
}

}  // namespace persist
}  // namespace autoindex
