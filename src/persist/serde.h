#pragma once

#include <cstdint>
#include <string>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace autoindex {
namespace persist {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `len` bytes. `seed`
// chains partial computations: Crc32(b, n2, Crc32(a, n1)) equals the CRC
// of the concatenation.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// Little-endian binary writer over an in-memory buffer. The buffer is
// handed to the file layer (file_format.h) which frames it into a
// checksummed section; Writer itself never touches disk.
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  // u32 byte length + raw bytes; embedded NULs round-trip.
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t len);

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  std::string buf_;
};

// Sticky-error reader over a borrowed byte range. Every getter returns a
// zero value once the stream has failed; callers check status() once at
// the end (or wherever a failure changes control flow) instead of
// threading a Status through every primitive read. Running off the end of
// the buffer — the torn-write case — is an OutOfRange error, never UB.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& buf) : Reader(buf.data(), buf.size()) {}

  uint8_t GetU8();
  bool GetBool() { return GetU8() != 0; }
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble();
  std::string GetString();

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return size_ - pos_; }
  // True when every byte has been consumed and no read failed.
  bool AtEnd() const { return ok() && pos_ == size_; }

  // Lets higher-level decoders poison the stream on semantic errors (an
  // enum tag out of range, an implausible element count); subsequent
  // reads short-circuit. The first failure wins.
  void Fail(Status status);

 private:
  // True when `n` more bytes are available; fails the stream otherwise.
  bool Need(size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  Status status_;
};

// --- storage-type serde (Value / Row / Schema) --------------------------
// Shared by the snapshot (heap pages, stats min/max, histogram bounds)
// and the WAL (INSERT rows, UPDATE assignments).

void PutValue(Writer* w, const Value& v);
Value GetValue(Reader* r);

void PutRow(Writer* w, const Row& row);
Row GetRow(Reader* r);

void PutSchema(Writer* w, const Schema& schema);
Schema GetSchema(Reader* r);

}  // namespace persist
}  // namespace autoindex
