#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "persist/serde.h"
#include "util/status.h"

namespace autoindex {
namespace persist {

// Versioned, sectioned, checksummed container — the on-disk shape shared
// by snapshots and workload traces:
//
//   magic (8 bytes) | format version (u32) | section*
//   section := id (u32) | payload size (u64) | crc32(payload) (u32) | payload
//
// Readers verify magic, version, and every section's CRC before any
// payload byte is interpreted, so truncation and bit rot surface as a
// Status instead of a half-loaded structure. Unknown section ids are
// preserved (skipped by consumers) for forward compatibility.

inline constexpr size_t kMagicBytes = 8;

// Serializes sections appended via AddSection into one buffer; the caller
// hands that to AtomicWriteFile.
class FileWriter {
 public:
  FileWriter(const std::string& magic, uint32_t version);

  // Frames the writer's buffer as a section. The payload is copied;
  // callers may reuse `payload` afterwards.
  void AddSection(uint32_t id, const Writer& payload);

  std::string Serialize() const;

  // Serialize + temp-file/fsync/rename write.
  Status WriteAtomic(const std::string& path) const;

  // Byte offsets (within Serialize()'s output) where each section's
  // framing begins, plus the final file size — the crash-matrix test
  // truncates at exactly these boundaries.
  std::vector<size_t> SectionBoundaries() const;

 private:
  struct Section {
    uint32_t id;
    std::string payload;
  };

  std::string magic_;
  uint32_t version_;
  std::vector<Section> sections_;
};

class FileReader {
 public:
  // Parses and CRC-verifies the whole buffer. InvalidArgument on a
  // foreign/corrupt/truncated file.
  static StatusOr<FileReader> Parse(std::string bytes,
                                    const std::string& magic,
                                    uint32_t expected_version);

  // The first section with this id; nullptr when absent.
  const std::string* Find(uint32_t id) const;

  uint32_t version() const { return version_; }
  size_t num_sections() const { return ids_.size(); }

 private:
  FileReader() = default;

  uint32_t version_ = 0;
  // Owns the file bytes; payloads_ views index into it by value (copied
  // out at parse time for simplicity — snapshot files are read once).
  std::vector<uint32_t> ids_;
  std::vector<std::string> payloads_;
};

}  // namespace persist
}  // namespace autoindex
