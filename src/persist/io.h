#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace autoindex {
namespace persist {

// File IO for the durability layer. All durable bytes flow through these
// helpers, which makes two things possible in one place: every error
// surfaces as a Status (scripts/lint.py bans raw fstream use outside
// src/persist/ for this reason), and the crash-injection hook below can
// tear any write at an exact byte to exercise recovery.

// Reads the whole file. NotFound when absent, Internal on read errors.
Status ReadFileToString(const std::string& path, std::string* out);

// Crash-safe replace: writes to `path`.tmp, fsyncs, renames over `path`,
// and fsyncs the parent directory. A crash (real or injected) at any
// point leaves either the old complete file or the new complete file —
// never a torn mix.
Status AtomicWriteFile(const std::string& path, const std::string& data);

// Truncates `path` to `size` bytes (drops a torn tail found by replay).
Status TruncateFile(const std::string& path, uint64_t size);

// --- crash injection ----------------------------------------------------
// Arms a global byte budget over all subsequent persist writes: once
// `budget` bytes have been written, the write in progress is cut short at
// exactly that byte and fails with Status::Internal("injected crash..."),
// simulating power loss mid-write. Negative disarms. The budget is also
// seeded from the AUTOINDEX_CRASH_AT_BYTE environment variable on first
// use, so shell experiments can tear writes without code changes.
void SetCrashAfterBytes(int64_t budget);
// Remaining budget; negative when disarmed.
int64_t CrashBudgetRemaining();
// True when a previous write already hit the injected crash point.
bool CrashTriggered();

// Internal: writes `len` bytes to `fd` honoring the crash budget. On an
// injected crash the leading slice of the data is still written (the torn
// prefix a real crash would leave) and Internal is returned.
Status CrashCheckedWrite(int fd, const char* data, size_t len);

}  // namespace persist
}  // namespace autoindex
