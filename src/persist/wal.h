#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/durability.h"
#include "index/index_def.h"
#include "sql/statement.h"
#include "storage/schema.h"
#include "util/status.h"

namespace autoindex {
namespace persist {

// One decoded log record. Which fields are meaningful depends on `type`;
// the rest stay default-constructed.
struct WalRecord {
  enum class Type : uint8_t {
    kStatement = 1,    // stmt
    kCreateTable = 2,  // name + schema
    kCreateIndex = 3,  // def
    kDropIndex = 4,    // name (key or display name)
    kBulkInsert = 5,   // name + rows
    kAnalyze = 6,      // name (empty = all tables)
  };

  Type type = Type::kStatement;
  uint64_t data_version = 0;
  Statement stmt;
  std::string name;
  Schema schema;
  IndexDef def;
  std::vector<Row> rows;
};

// What scanning an existing log recovered.
struct WalReplay {
  // Data version of the checkpoint this log was opened against.
  uint64_t epoch = 0;
  // Every complete, checksum-valid record, in append order.
  std::vector<WalRecord> records;
  // Bytes dropped from the tail (torn final append); 0 on a clean log.
  uint64_t bytes_truncated = 0;
};

// The statement write-ahead log: an append-only file of logical records.
//
//   header := magic "AIXWAL01" | format version (u32) | epoch (u64)
//   record := payload size (u32) | crc32(payload) (u32) | payload
//   payload := type (u8) | data_version (u64) | type-specific body
//
// The epoch is the data version of the checkpoint the log extends; replay
// applies only records with data_version > epoch, so a log that survived
// a crash between "checkpoint renamed" and "log reset" is harmless. A
// torn final record (bad CRC or short read) marks the end of the durable
// prefix: it is truncated away, never applied.
//
// Appends happen through the DurabilityLog interface, called by Database
// under its wal_mu_, so no extra locking lives here.
// Append behavior knobs (a free struct so it can be a default argument —
// a nested class is incomplete where Wal's own defaults are parsed).
struct WalOptions {
  // fsync after every append. Off by default: the recovery tests tear
  // writes explicitly, and per-statement fsync makes them crawl.
  bool fsync_each_append = false;
};

class Wal : public DurabilityLog {
 public:
  // Use Create/Open — this constructor only wires fields and leaves the
  // log unopened. Public so the factories can make_unique it.
  Wal(std::string path, uint64_t epoch, WalOptions options);

  // Starts a fresh log at `path` (overwriting any previous one) whose
  // epoch is `checkpoint_data_version`.
  static StatusOr<std::unique_ptr<Wal>> Create(const std::string& path,
                                               uint64_t checkpoint_data_version,
                                               WalOptions options = WalOptions());

  // Opens an existing log: validates the header, decodes every complete
  // record into `replay`, truncates a torn tail in place, and returns the
  // log positioned for further appends. NotFound when the file is absent;
  // InvalidArgument on a foreign file or corrupt header.
  static StatusOr<std::unique_ptr<Wal>> Open(const std::string& path,
                                             WalReplay* replay,
                                             WalOptions options = WalOptions());

  ~Wal() override;

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // DurabilityLog:
  Status AppendStatement(const Statement& stmt, uint64_t data_version) override;
  Status AppendCreateTable(const std::string& name, const Schema& schema,
                           uint64_t data_version) override;
  Status AppendCreateIndex(const IndexDef& def,
                           uint64_t data_version) override;
  Status AppendDropIndex(const std::string& key_or_name,
                         uint64_t data_version) override;
  Status AppendBulkInsert(const std::string& table,
                          const std::vector<Row>& rows,
                          uint64_t data_version) override;
  Status AppendAnalyze(const std::string& table,
                       uint64_t data_version) override;
  // Resets the log to a fresh header at the new epoch (atomic replace).
  Status OnCheckpoint(uint64_t checkpoint_data_version) override;

  // Flushes appended records to stable storage.
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t records_appended() const { return records_appended_; }
  uint64_t size_bytes() const { return size_bytes_; }

 private:
  // Opens fd_ (creating/truncating per `truncate`) and writes or keeps the
  // header; size_bytes_ ends at the append position.
  Status OpenFd(bool truncate);
  Status AppendRecord(const WalRecord& record);

  std::string path_;
  uint64_t epoch_;
  WalOptions options_;
  int fd_ = -1;
  uint64_t records_appended_ = 0;
  uint64_t size_bytes_ = 0;
};

}  // namespace persist
}  // namespace autoindex
