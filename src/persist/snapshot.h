#pragma once

#include <memory>
#include <string>

#include "check/recovery_validator.h"
#include "persist/file_format.h"
#include "persist/wal.h"
#include "util/status.h"

namespace autoindex {

class AutoIndexManager;
class Database;

namespace persist {

// Checkpointed snapshots + WAL-tail recovery — the durability protocol
// (DESIGN.md §8):
//
//   save: freeze every table (shared latches) -> serialize catalog, heap
//         contents, index definitions, column statistics, and tuning state
//         at one data version -> temp-file/fsync/rename -> reset the WAL
//         to that version.
//   open: load the checkpoint into an empty database -> rebuild indexes
//         from the restored heaps -> replay the WAL tail (records beyond
//         the checkpoint's data version), truncating a torn tail -> run
//         the recovery validator -> attach the WAL for new appends.
//
// A crash at any byte leaves either the previous or the new checkpoint
// intact (rename is the commit point), and at most a torn WAL tail, which
// replay drops.

// File names inside a snapshot directory.
std::string CheckpointPath(const std::string& dir);
std::string WalPath(const std::string& dir);

// How recovery went: the protocol-level facts (RecoveryInfo, fed to the
// recovery validator) plus restore counters for reporting.
struct RecoveryReport {
  RecoveryInfo info;
  size_t tables_restored = 0;
  size_t rows_restored = 0;
  size_t indexes_rebuilt = 0;
  size_t wal_records_replayed = 0;
  bool tuning_state_restored = false;
};

// Serializes the full checkpoint image without touching disk. Exposed so
// the crash-matrix test can truncate the image at every section boundary;
// SaveSnapshot is the production path. `manager` may be null (no tuning
// section). Acquires shared latches on every table for a consistent cut;
// `data_version` (optional) receives the version the image was cut at.
StatusOr<FileWriter> BuildCheckpoint(const Database& db,
                                     const AutoIndexManager* manager,
                                     uint64_t* data_version = nullptr);

// Writes <dir>/checkpoint.aidb atomically (the directory must exist) and,
// when a WAL is attached to `db`, resets it to the checkpoint's version.
// Returns the checkpoint's data version.
StatusOr<uint64_t> SaveSnapshot(Database* db, const AutoIndexManager* manager,
                                const std::string& dir);

// Restores a snapshot directory into `db` (which must hold no tables) and
// `manager` (may be null: the tuning section is then ignored), replays the
// WAL tail, validates the result, and returns the WAL attached to `db`
// and open for new appends. On any error the database contents are
// unspecified — discard the Database object rather than using it.
StatusOr<std::unique_ptr<Wal>> OpenSnapshot(Database* db,
                                            AutoIndexManager* manager,
                                            const std::string& dir,
                                            RecoveryReport* report);

}  // namespace persist
}  // namespace autoindex
