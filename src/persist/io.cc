#include "persist/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/string_util.h"

namespace autoindex {
namespace persist {
namespace {

// -1 = disarmed. Decremented by every CrashCheckedWrite.
std::atomic<int64_t> g_crash_budget{-1};
std::atomic<bool> g_crash_triggered{false};
std::once_flag g_crash_env_once;

void InitCrashBudgetFromEnv() {
  std::call_once(g_crash_env_once, [] {
    const char* env = std::getenv("AUTOINDEX_CRASH_AT_BYTE");
    if (env != nullptr && *env != '\0') {
      g_crash_budget.store(std::strtoll(env, nullptr, 10),
                           std::memory_order_relaxed);
    }
  });
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(
      StrCat(what, " failed for ", path, ": ", std::strerror(errno)));
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open for fsync", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync", path);
  return Status::Ok();
}

}  // namespace

void SetCrashAfterBytes(int64_t budget) {
  // Mark the env var consumed so a later first-write cannot re-arm over a
  // test's explicit setting.
  std::call_once(g_crash_env_once, [] {});
  g_crash_budget.store(budget, std::memory_order_relaxed);
  g_crash_triggered.store(false, std::memory_order_relaxed);
}

int64_t CrashBudgetRemaining() {
  return g_crash_budget.load(std::memory_order_relaxed);
}

bool CrashTriggered() {
  return g_crash_triggered.load(std::memory_order_relaxed);
}

Status CrashCheckedWrite(int fd, const char* data, size_t len) {
  InitCrashBudgetFromEnv();
  size_t allowed = len;
  bool crash = false;
  const int64_t budget = g_crash_budget.load(std::memory_order_relaxed);
  if (budget >= 0) {
    if (static_cast<uint64_t>(budget) < len) {
      allowed = static_cast<size_t>(budget);
      crash = true;
      g_crash_budget.store(0, std::memory_order_relaxed);
      g_crash_triggered.store(true, std::memory_order_relaxed);
    } else {
      g_crash_budget.store(budget - static_cast<int64_t>(len),
                           std::memory_order_relaxed);
    }
  }
  size_t written = 0;
  while (written < allowed) {
    const ssize_t n = ::write(fd, data + written, allowed - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrCat("write failed: ", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  if (crash) {
    return Status::Internal(
        StrCat("injected crash: write torn after ", written, " of ", len,
               " bytes (AUTOINDEX_CRASH_AT_BYTE)"));
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path);
  }
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = ErrnoStatus("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  Status s = CrashCheckedWrite(fd, data.data(), data.size());
  if (s.ok() && ::fsync(fd) != 0) s = ErrnoStatus("fsync", tmp);
  ::close(fd);
  if (!s.ok()) {
    // The torn temp file is left behind deliberately: a real crash would
    // leave it too, and recovery must ignore it. The target is untouched.
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename", tmp);
  }
  // Persist the rename itself.
  return FsyncPath(ParentDir(path));
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path);
  }
  return Status::Ok();
}

}  // namespace persist
}  // namespace autoindex
