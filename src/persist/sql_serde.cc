#include "persist/sql_serde.h"

#include <algorithm>

#include "util/string_util.h"

namespace autoindex {
namespace persist {

namespace {

// Parser output nests a handful of levels deep (DNF rewrites stay shallow
// too); anything past this on the read side is a corrupt or hostile
// buffer, not a real statement.
constexpr uint32_t kMaxExprDepth = 1000;

void PutColumnRef(Writer* w, const ColumnRef& col) {
  w->PutString(col.table);
  w->PutString(col.column);
}

ColumnRef GetColumnRef(Reader* r) {
  ColumnRef col;
  col.table = r->GetString();
  col.column = r->GetString();
  return col;
}

void PutExprNode(Writer* w, const Expr& e) {
  w->PutU8(static_cast<uint8_t>(e.kind));
  w->PutU8(static_cast<uint8_t>(e.op));
  PutColumnRef(w, e.column);
  PutValue(w, e.literal);
  w->PutU32(static_cast<uint32_t>(e.in_list.size()));
  for (const Value& v : e.in_list) PutValue(w, v);
  w->PutBool(e.negated);
  w->PutU32(static_cast<uint32_t>(e.children.size()));
  for (const ExprPtr& child : e.children) PutExprNode(w, *child);
}

ExprPtr GetExprNode(Reader* r, uint32_t depth) {
  if (depth > kMaxExprDepth) {
    r->Fail(Status::InvalidArgument("expression nesting too deep"));
    return nullptr;
  }
  auto e = std::make_unique<Expr>();
  const uint8_t kind_tag = r->GetU8();
  if (kind_tag > static_cast<uint8_t>(ExprKind::kIsNull)) {
    r->Fail(Status::InvalidArgument(
        StrCat("bad expr kind tag ", static_cast<int>(kind_tag))));
    return nullptr;
  }
  e->kind = static_cast<ExprKind>(kind_tag);
  const uint8_t op_tag = r->GetU8();
  if (op_tag > static_cast<uint8_t>(CompareOp::kLike)) {
    r->Fail(Status::InvalidArgument(
        StrCat("bad compare op tag ", static_cast<int>(op_tag))));
    return nullptr;
  }
  e->op = static_cast<CompareOp>(op_tag);
  e->column = GetColumnRef(r);
  e->literal = GetValue(r);
  const uint32_t nlist = r->GetU32();
  e->in_list.reserve(std::min<size_t>(nlist, r->remaining()));
  for (uint32_t i = 0; i < nlist && r->ok(); ++i) {
    e->in_list.push_back(GetValue(r));
  }
  e->negated = r->GetBool();
  const uint32_t nchildren = r->GetU32();
  e->children.reserve(std::min<size_t>(nchildren, r->remaining()));
  for (uint32_t i = 0; i < nchildren && r->ok(); ++i) {
    ExprPtr child = GetExprNode(r, depth + 1);
    if (!r->ok()) return nullptr;
    e->children.push_back(std::move(child));
  }
  if (!r->ok()) return nullptr;
  return e;
}

void PutSelect(Writer* w, const SelectStatement& s) {
  w->PutU32(static_cast<uint32_t>(s.from.size()));
  for (const TableRef& t : s.from) {
    w->PutString(t.table);
    w->PutString(t.alias);
  }
  w->PutU32(static_cast<uint32_t>(s.items.size()));
  for (const SelectItem& item : s.items) {
    w->PutBool(item.star);
    w->PutU8(static_cast<uint8_t>(item.agg));
    PutColumnRef(w, item.column);
  }
  PutExpr(w, s.where.get());
  w->PutU32(static_cast<uint32_t>(s.group_by.size()));
  for (const ColumnRef& col : s.group_by) PutColumnRef(w, col);
  w->PutU32(static_cast<uint32_t>(s.order_by.size()));
  for (const OrderByItem& item : s.order_by) {
    PutColumnRef(w, item.column);
    w->PutBool(item.desc);
  }
  w->PutI64(s.limit);
}

std::unique_ptr<SelectStatement> GetSelect(Reader* r) {
  auto s = std::make_unique<SelectStatement>();
  const uint32_t nfrom = r->GetU32();
  for (uint32_t i = 0; i < nfrom && r->ok(); ++i) {
    TableRef t;
    t.table = r->GetString();
    t.alias = r->GetString();
    s->from.push_back(std::move(t));
  }
  const uint32_t nitems = r->GetU32();
  for (uint32_t i = 0; i < nitems && r->ok(); ++i) {
    SelectItem item;
    item.star = r->GetBool();
    const uint8_t agg_tag = r->GetU8();
    if (agg_tag > static_cast<uint8_t>(AggFunc::kMax)) {
      r->Fail(Status::InvalidArgument(
          StrCat("bad agg func tag ", static_cast<int>(agg_tag))));
      return nullptr;
    }
    item.agg = static_cast<AggFunc>(agg_tag);
    item.column = GetColumnRef(r);
    s->items.push_back(std::move(item));
  }
  s->where = GetExpr(r);
  const uint32_t ngroup = r->GetU32();
  for (uint32_t i = 0; i < ngroup && r->ok(); ++i) {
    s->group_by.push_back(GetColumnRef(r));
  }
  const uint32_t norder = r->GetU32();
  for (uint32_t i = 0; i < norder && r->ok(); ++i) {
    OrderByItem item;
    item.column = GetColumnRef(r);
    item.desc = r->GetBool();
    s->order_by.push_back(std::move(item));
  }
  s->limit = r->GetI64();
  if (!r->ok()) return nullptr;
  return s;
}

void PutInsert(Writer* w, const InsertStatement& s) {
  w->PutString(s.table);
  w->PutU32(static_cast<uint32_t>(s.columns.size()));
  for (const std::string& col : s.columns) w->PutString(col);
  w->PutU32(static_cast<uint32_t>(s.rows.size()));
  for (const Row& row : s.rows) PutRow(w, row);
}

std::unique_ptr<InsertStatement> GetInsert(Reader* r) {
  auto s = std::make_unique<InsertStatement>();
  s->table = r->GetString();
  const uint32_t ncols = r->GetU32();
  for (uint32_t i = 0; i < ncols && r->ok(); ++i) {
    s->columns.push_back(r->GetString());
  }
  const uint32_t nrows = r->GetU32();
  s->rows.reserve(std::min<size_t>(nrows, r->remaining()));
  for (uint32_t i = 0; i < nrows && r->ok(); ++i) {
    s->rows.push_back(GetRow(r));
  }
  if (!r->ok()) return nullptr;
  return s;
}

void PutUpdate(Writer* w, const UpdateStatement& s) {
  w->PutString(s.table);
  w->PutU32(static_cast<uint32_t>(s.assignments.size()));
  for (const auto& [col, v] : s.assignments) {
    w->PutString(col);
    PutValue(w, v);
  }
  PutExpr(w, s.where.get());
}

std::unique_ptr<UpdateStatement> GetUpdate(Reader* r) {
  auto s = std::make_unique<UpdateStatement>();
  s->table = r->GetString();
  const uint32_t nassign = r->GetU32();
  for (uint32_t i = 0; i < nassign && r->ok(); ++i) {
    std::string col = r->GetString();
    Value v = GetValue(r);
    s->assignments.emplace_back(std::move(col), std::move(v));
  }
  s->where = GetExpr(r);
  if (!r->ok()) return nullptr;
  return s;
}

void PutDelete(Writer* w, const DeleteStatement& s) {
  w->PutString(s.table);
  PutExpr(w, s.where.get());
}

std::unique_ptr<DeleteStatement> GetDelete(Reader* r) {
  auto s = std::make_unique<DeleteStatement>();
  s->table = r->GetString();
  s->where = GetExpr(r);
  if (!r->ok()) return nullptr;
  return s;
}

}  // namespace

void PutExpr(Writer* w, const Expr* expr) {
  w->PutBool(expr != nullptr);
  if (expr != nullptr) PutExprNode(w, *expr);
}

ExprPtr GetExpr(Reader* r) {
  if (!r->GetBool()) return nullptr;
  return GetExprNode(r, 0);
}

void PutStatement(Writer* w, const Statement& stmt) {
  w->PutU8(static_cast<uint8_t>(stmt.kind));
  switch (stmt.kind) {
    case StatementKind::kSelect:
      PutSelect(w, *stmt.select);
      break;
    case StatementKind::kInsert:
      PutInsert(w, *stmt.insert);
      break;
    case StatementKind::kUpdate:
      PutUpdate(w, *stmt.update);
      break;
    case StatementKind::kDelete:
      PutDelete(w, *stmt.del);
      break;
  }
}

Statement GetStatement(Reader* r) {
  Statement stmt;
  const uint8_t tag = r->GetU8();
  if (tag > static_cast<uint8_t>(StatementKind::kDelete)) {
    r->Fail(Status::InvalidArgument(
        StrCat("bad statement kind tag ", static_cast<int>(tag))));
    return stmt;
  }
  stmt.kind = static_cast<StatementKind>(tag);
  switch (stmt.kind) {
    case StatementKind::kSelect:
      stmt.select = GetSelect(r);
      break;
    case StatementKind::kInsert:
      stmt.insert = GetInsert(r);
      break;
    case StatementKind::kUpdate:
      stmt.update = GetUpdate(r);
      break;
    case StatementKind::kDelete:
      stmt.del = GetDelete(r);
      break;
  }
  return stmt;
}

void PutIndexDef(Writer* w, const IndexDef& def) {
  w->PutString(def.name);
  w->PutString(def.table);
  w->PutU32(static_cast<uint32_t>(def.columns.size()));
  for (const std::string& col : def.columns) w->PutString(col);
  w->PutU8(static_cast<uint8_t>(def.kind));
}

IndexDef GetIndexDef(Reader* r) {
  IndexDef def;
  def.name = r->GetString();
  def.table = r->GetString();
  const uint32_t ncols = r->GetU32();
  for (uint32_t i = 0; i < ncols && r->ok(); ++i) {
    def.columns.push_back(r->GetString());
  }
  const uint8_t kind_tag = r->GetU8();
  if (kind_tag > static_cast<uint8_t>(IndexKind::kLocal)) {
    r->Fail(Status::InvalidArgument(
        StrCat("bad index kind tag ", static_cast<int>(kind_tag))));
    return def;
  }
  def.kind = static_cast<IndexKind>(kind_tag);
  return def;
}

}  // namespace persist
}  // namespace autoindex
