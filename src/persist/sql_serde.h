#pragma once

#include "index/index_manager.h"
#include "persist/serde.h"
#include "sql/statement.h"

namespace autoindex {
namespace persist {

// Binary serialization for SQL ASTs and index definitions. The WAL logs
// statements in this form rather than as SQL text: Value::ToString prints
// doubles with %g, so a text round-trip is lossy, while these encoders
// preserve every bit of the original statement.

void PutExpr(Writer* w, const Expr* expr);  // expr may be null
// Returns null for an absent expression; poisons the reader on a corrupt
// tag or a nesting depth beyond what any parser output could contain.
ExprPtr GetExpr(Reader* r);

void PutStatement(Writer* w, const Statement& stmt);
Statement GetStatement(Reader* r);

void PutIndexDef(Writer* w, const IndexDef& def);
IndexDef GetIndexDef(Reader* r);

}  // namespace persist
}  // namespace autoindex
