#include "persist/snapshot.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/manager.h"
#include "engine/database.h"
#include "persist/io.h"
#include "persist/serde.h"
#include "persist/sql_serde.h"
#include "util/string_util.h"

namespace autoindex {
namespace persist {
namespace {

constexpr char kSnapshotMagic[] = "AIXSNAP1";
constexpr uint32_t kSnapshotVersion = 1;

// Section ids. kTuning is optional; the rest are required.
constexpr uint32_t kMeta = 1;
constexpr uint32_t kCatalog = 2;
constexpr uint32_t kIndexes = 3;
constexpr uint32_t kStats = 4;
constexpr uint32_t kTuning = 5;

void SerializeCatalog(const Database& db, Writer* w) {
  std::vector<std::string> names = db.catalog().TableNames();
  std::sort(names.begin(), names.end());
  w->PutU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const HeapTable* table = db.catalog().GetTable(name);
    w->PutString(name);
    PutSchema(w, table->schema());
    w->PutBool(table->partitioned());
    if (table->partitioned()) {
      const size_t ordinal = static_cast<size_t>(table->partition_column());
      w->PutString(table->schema().columns()[ordinal].name);
      w->PutU64(table->num_partitions());
    }
    // Every slot, tombstones included: restoring deletes as (insert,
    // delete) pairs reproduces RowIds, slot counts, and page counts, so
    // the reloaded cost model prices scans identically.
    const size_t nslots = table->num_slots();
    w->PutU64(nslots);
    for (RowId rid = 0; rid < nslots; ++rid) {
      const bool live = table->IsLive(rid);
      w->PutBool(!live);
      PutRow(w, table->Get(rid));
    }
  }
}

Status RestoreCatalog(Database* db, Reader* r, RecoveryReport* report) {
  const uint32_t ntables = r->GetU32();
  for (uint32_t i = 0; i < ntables && r->ok(); ++i) {
    const std::string name = r->GetString();
    Schema schema = GetSchema(r);
    if (!r->ok()) break;
    StatusOr<HeapTable*> created =
        db->catalog().CreateTable(name, std::move(schema));
    if (!created.ok()) return created.status();
    HeapTable* table = *created;
    if (r->GetBool()) {
      const std::string partition_column = r->GetString();
      const uint64_t num_partitions = r->GetU64();
      if (!table->SetPartitioning(partition_column,
                                  static_cast<size_t>(num_partitions))) {
        return Status::InvalidArgument(
            StrCat("checkpoint names unknown partition column ",
                   partition_column, " on table ", name));
      }
    }
    const uint64_t nslots = r->GetU64();
    for (uint64_t slot = 0; slot < nslots && r->ok(); ++slot) {
      const bool deleted = r->GetBool();
      Row row = GetRow(r);
      if (!r->ok()) break;
      StatusOr<RowId> rid = table->Insert(std::move(row));
      if (!rid.ok()) return rid.status();
      if (deleted) {
        Status s = table->Delete(*rid);
        if (!s.ok()) return s;
      } else {
        ++report->rows_restored;
      }
    }
    ++report->tables_restored;
  }
  return r->status();
}

void SerializeIndexes(const Database& db, Writer* w) {
  std::vector<IndexDef> defs;
  // AllIndexes is ready-only by contract: an in-flight (kBuilding) index
  // never reaches a checkpoint, so a crash mid-build recovers to "index
  // absent" — matching the WAL, whose create record lands at publish.
  for (const BuiltIndex* index : db.index_manager().AllIndexes()) {
    defs.push_back(index->def());
  }
  // AllIndexes already orders by display name; sort by canonical key as
  // well so the section bytes never depend on iteration details.
  std::sort(defs.begin(), defs.end(),
            [](const IndexDef& a, const IndexDef& b) {
              return a.Key() < b.Key();
            });
  w->PutU32(static_cast<uint32_t>(defs.size()));
  for (const IndexDef& def : defs) PutIndexDef(w, def);
}

Status RestoreIndexes(Database* db, Reader* r, RecoveryReport* report) {
  const uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    IndexDef def = GetIndexDef(r);
    if (!r->ok()) break;
    // Rebuilds the tree by scanning the restored heap — only definitions
    // are checkpointed. Blocking build: recovery is quiesced, so the
    // online build's phased latching would only add overhead.
    Status s = db->CreateIndexBlocking(def);
    if (!s.ok()) return s;
    ++report->indexes_rebuilt;
  }
  return r->status();
}

Status ApplyWalRecord(Database* db, AutoIndexManager* manager,
                      const WalRecord& record) {
  switch (record.type) {
    case WalRecord::Type::kStatement: {
      StatusOr<ExecResult> result = db->Execute(record.stmt);
      return result.status();
    }
    case WalRecord::Type::kCreateTable: {
      StatusOr<HeapTable*> table =
          db->CreateTable(record.name, record.schema);
      return table.status();
    }
    case WalRecord::Type::kCreateIndex:
      // Quiesced replay: blocking build (see RestoreIndexes).
      return db->CreateIndexBlocking(record.def);
    case WalRecord::Type::kDropIndex:
      return db->DropIndex(record.name);
    case WalRecord::Type::kBulkInsert:
      return db->BulkInsert(record.name, record.rows);
    case WalRecord::Type::kAnalyze:
      if (record.name.empty()) {
        db->Analyze();
      } else {
        db->Analyze(record.name);
      }
      return Status::Ok();
  }
  (void)manager;
  return Status::Internal("unreachable WAL record type");
}

}  // namespace

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.aidb";
}

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }

StatusOr<FileWriter> BuildCheckpoint(const Database& db,
                                     const AutoIndexManager* manager,
                                     uint64_t* data_version_out) {
  // Freeze: shared latches on every table block writers (which take
  // exclusive) for the duration of the cut, the same protocol CheckAll
  // uses. The data version read under the freeze is the checkpoint's
  // version — nothing can bump it until the latches drop.
  LatchManager::Guard freeze =
      db.latches().AcquireShared(db.catalog().TableNames());
  const uint64_t data_version = db.data_version();
  if (data_version_out != nullptr) *data_version_out = data_version;

  FileWriter file(kSnapshotMagic, kSnapshotVersion);
  {
    Writer w;
    w.PutU64(data_version);
    w.PutBool(manager != nullptr);
    file.AddSection(kMeta, w);
  }
  {
    Writer w;
    SerializeCatalog(db, &w);
    file.AddSection(kCatalog, w);
  }
  {
    Writer w;
    SerializeIndexes(db, &w);
    file.AddSection(kIndexes, w);
  }
  {
    Writer w;
    db.stats_manager().Save(&w);
    file.AddSection(kStats, w);
  }
  if (manager != nullptr) {
    Writer w;
    manager->SaveTuningState(&w);
    file.AddSection(kTuning, w);
  }
  return file;
}

StatusOr<uint64_t> SaveSnapshot(Database* db, const AutoIndexManager* manager,
                                const std::string& dir) {
  uint64_t data_version = 0;
  StatusOr<FileWriter> file = BuildCheckpoint(*db, manager, &data_version);
  if (!file.ok()) return file.status();

  Status s = file->WriteAtomic(CheckpointPath(dir));
  if (!s.ok()) return s;
  // The checkpoint is durable; the WAL's history below its version is now
  // redundant. A crash between these two steps leaves a stale-epoch log,
  // which recovery skips harmlessly.
  if (db->durability_log() != nullptr) {
    s = db->durability_log()->OnCheckpoint(data_version);
    if (!s.ok()) return s;
  }
  return data_version;
}

StatusOr<std::unique_ptr<Wal>> OpenSnapshot(Database* db,
                                            AutoIndexManager* manager,
                                            const std::string& dir,
                                            RecoveryReport* report) {
  *report = RecoveryReport();
  if (db->catalog().num_tables() != 0) {
    return Status::InvalidArgument(
        "OpenSnapshot requires a freshly constructed (empty) database");
  }
  if (db->durability_log() != nullptr) {
    return Status::InvalidArgument(
        "OpenSnapshot requires no durability log attached yet");
  }

  std::string bytes;
  Status s = ReadFileToString(CheckpointPath(dir), &bytes);
  if (!s.ok()) return s;
  StatusOr<FileReader> parsed =
      FileReader::Parse(std::move(bytes), kSnapshotMagic, kSnapshotVersion);
  if (!parsed.ok()) return parsed.status();

  const std::string* meta_payload = parsed->Find(kMeta);
  const std::string* catalog_payload = parsed->Find(kCatalog);
  const std::string* indexes_payload = parsed->Find(kIndexes);
  const std::string* stats_payload = parsed->Find(kStats);
  if (meta_payload == nullptr || catalog_payload == nullptr ||
      indexes_payload == nullptr || stats_payload == nullptr) {
    return Status::InvalidArgument(
        "checkpoint is missing a required section");
  }

  Reader meta(*meta_payload);
  const uint64_t checkpoint_version = meta.GetU64();
  const bool has_tuning = meta.GetBool();
  if (!meta.ok()) return meta.status();
  report->info.checkpoint_data_version = checkpoint_version;

  {
    Reader r(*catalog_payload);
    s = RestoreCatalog(db, &r, report);
    if (!s.ok()) return s;
  }
  {
    // Stats precede index builds only by convention — index construction
    // reads heap rows, not statistics — but restoring them before any
    // replayed statement runs keeps cost estimates identical to the saved
    // process from the first query on.
    Reader r(*stats_payload);
    db->stats_manager().Load(&r);
    if (!r.ok()) return r.status();
  }
  {
    Reader r(*indexes_payload);
    s = RestoreIndexes(db, &r, report);
    if (!s.ok()) return s;
  }
  if (has_tuning && manager != nullptr) {
    const std::string* tuning_payload = parsed->Find(kTuning);
    if (tuning_payload == nullptr) {
      return Status::InvalidArgument(
          "checkpoint advertises tuning state but has no tuning section");
    }
    Reader r(*tuning_payload);
    s = manager->LoadTuningState(&r);
    if (!s.ok()) return s;
    report->tuning_state_restored = true;
  }

  // --- WAL tail ---
  WalReplay replay;
  std::unique_ptr<Wal> wal;
  StatusOr<std::unique_ptr<Wal>> opened = Wal::Open(WalPath(dir), &replay);
  if (opened.ok()) {
    wal = std::move(*opened);
  } else if (opened.status().code() == StatusCode::kNotFound ||
             opened.status().code() == StatusCode::kInvalidArgument) {
    // Absent (never created) or torn before the header completed — in
    // both cases no record was ever durable, so start a fresh log at the
    // checkpoint's version.
    StatusOr<std::unique_ptr<Wal>> created =
        Wal::Create(WalPath(dir), checkpoint_version);
    if (!created.ok()) return created.status();
    wal = std::move(*created);
    replay.epoch = checkpoint_version;
  } else {
    return opened.status();
  }
  report->info.wal_epoch = replay.epoch;
  report->info.wal_bytes_truncated = replay.bytes_truncated;
  if (replay.epoch > checkpoint_version) {
    return Status::Internal(
        StrCat("WAL epoch ", replay.epoch, " is beyond checkpoint version ",
               checkpoint_version,
               " — the log belongs to a lost checkpoint"));
  }

  uint64_t recovered_version = checkpoint_version;
  for (const WalRecord& record : replay.records) {
    // Records at or below the checkpoint version are already inside the
    // checkpoint image (stale log after a crash mid-checkpoint).
    if (record.data_version <= checkpoint_version) continue;
    s = ApplyWalRecord(db, manager, record);
    if (!s.ok()) {
      return Status::Internal(
          StrCat("WAL replay failed at data version ", record.data_version,
                 ": ", s.ToString()));
    }
    report->info.replayed_data_versions.push_back(record.data_version);
    recovered_version = record.data_version;
    ++report->wal_records_replayed;
  }

  // Replay re-executed statements through the normal paths, which bump
  // the counter arbitrarily; pin it to the recorded history.
  db->RestoreDataVersion(recovered_version);
  report->info.recovered_data_version = recovered_version;

  s = ValidateRecovery(*db, report->info);
  if (!s.ok()) return s;

  if (replay.epoch < checkpoint_version) {
    // Stale log fully superseded by the checkpoint: reset it so future
    // appends extend the right epoch.
    s = wal->OnCheckpoint(checkpoint_version);
    if (!s.ok()) return s;
  }
  db->set_durability_log(wal.get());
  return wal;
}

}  // namespace persist
}  // namespace autoindex
