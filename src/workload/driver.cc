#include "workload/driver.h"

#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "engine/session.h"
#include "net/client.h"
#include "obs/trace.h"
#include "util/mutex.h"

namespace autoindex {
namespace {

// Statements executed by client threads, drained by the tuning thread.
// Unbounded: observation is strictly cheaper than execution, so the queue
// cannot outgrow the trace.
class ObservationQueue {
 public:
  void Push(const std::string& sql) EXCLUDES(mu_) {
    {
      util::MutexLock lock(mu_);
      items_.push_back(sql);
    }
    cv_.NotifyOne();
  }

  // Blocks until an item arrives or the queue is closed AND empty.
  bool Pop(std::string* out) EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (items_.empty() && !closed_) cv_.Wait(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void Close() EXCLUDES(mu_) {
    {
      util::MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::string> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

uint64_t DurationUs(std::chrono::steady_clock::duration d) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

// Shared latency sinks for one replay: every client thread records into
// the same pair (LatencyHistogram is sharded and lock-free by design).
struct LatencySinks {
  util::LatencyHistogram service;
  util::LatencyHistogram response;
};

// One client thread: replay an interleaved slice of the trace through a
// private Session, feed the observation queue.
void ClientLoop(Database* db, const std::vector<std::string>& queries,
                size_t offset, size_t stride, int pace_us,
                ObservationQueue* observations, ClientMetrics* metrics,
                LatencySinks* sinks) {
  const auto start = std::chrono::steady_clock::now();
  std::unique_ptr<Session> session = db->CreateSession();
  for (size_t i = offset; i < queries.size(); i += stride) {
    // Open loop: trace position i is *scheduled* at start + i*pace_us
    // regardless of how long earlier queries took. Sleep if we are ahead
    // of schedule; if we are behind (the server stalled), issue
    // immediately — and charge the wait to response time below. Measuring
    // from the schedule instead of the issue instant is the
    // coordinated-omission fix: every query queued behind a stall pays
    // for it, exactly as an independently-arriving client would.
    auto scheduled = std::chrono::steady_clock::time_point{};
    if (pace_us > 0) {
      scheduled = start + std::chrono::microseconds(
                              static_cast<int64_t>(i) * pace_us);
      std::this_thread::sleep_until(scheduled);
    }
    const auto issue = std::chrono::steady_clock::now();
    if (pace_us <= 0) scheduled = issue;  // closed loop: no schedule

    StatusOr<ExecResult> result = session->Execute(queries[i]);
    const auto end = std::chrono::steady_clock::now();
    sinks->service.Record(DurationUs(end - issue));
    sinks->response.Record(DurationUs(end - scheduled));
    ++metrics->queries;
    if (!result.ok()) {
      ++metrics->failed;
      continue;
    }
    metrics->total_cost += result->stats.ToCost(db->params()).Total();
    if (observations != nullptr) observations->Push(queries[i]);
  }
  metrics->wall_ms = ElapsedMs(start);
}

// One remote client thread: same trace slicing and schedule accounting as
// ClientLoop, but each statement round-trips through a net::Client. A
// kBusy shed is retried a few times with a short backoff (admission
// control asks the client to come back, not to give up); anything else
// non-ok counts as failed. A dead connection fails the rest of the slice
// rather than silently shrinking the measured population.
void RemoteClientLoop(const std::string& host, int port,
                      const std::vector<std::string>& queries, size_t offset,
                      size_t stride, int pace_us, ClientMetrics* metrics,
                      LatencySinks* sinks) {
  const auto start = std::chrono::steady_clock::now();
  net::Client client;
  Status connected = client.Connect(host, port);
  for (size_t i = offset; i < queries.size(); i += stride) {
    ++metrics->queries;
    if (!connected.ok() || !client.connected()) {
      ++metrics->failed;
      continue;
    }
    auto scheduled = std::chrono::steady_clock::time_point{};
    if (pace_us > 0) {
      scheduled = start + std::chrono::microseconds(
                              static_cast<int64_t>(i) * pace_us);
      std::this_thread::sleep_until(scheduled);
    }
    const auto issue = std::chrono::steady_clock::now();
    if (pace_us <= 0) scheduled = issue;

    // Client-side trace: its id rides the kQuery frame, so a slow remote
    // statement can be matched to the server's net.request record.
    obs::ScopedTrace trace("client.query");
    StatusOr<net::QueryResult> result = client.Query(queries[i]);
    for (int attempt = 0; attempt < 3 && !result.ok() &&
                          net::IsServerBusy(result.status());
         ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      result = client.Query(queries[i]);
    }
    if (result.ok()) {
      trace.SetRootAttr("server_spans",
                        static_cast<int64_t>(result->server_span_count));
    }
    const auto end = std::chrono::steady_clock::now();
    sinks->service.Record(DurationUs(end - issue));
    sinks->response.Record(DurationUs(end - scheduled));
    if (!result.ok()) {
      ++metrics->failed;
      continue;
    }
    metrics->total_cost += result->stats.ToCost(CostParams()).Total();
  }
  client.Close();
  metrics->wall_ms = ElapsedMs(start);
}

}  // namespace

ClientMetrics DriverReport::Aggregate() const {
  ClientMetrics total;
  for (const ClientMetrics& c : clients) {
    total.queries += c.queries;
    total.failed += c.failed;
    total.total_cost += c.total_cost;
  }
  total.wall_ms = wall_ms;
  return total;
}

DriverReport RunConcurrentWorkload(AutoIndexManager* manager,
                                   const std::vector<std::string>& queries,
                                   const DriverConfig& config) {
  Database* db = &manager->db();
  const size_t num_clients =
      config.client_threads < 1 ? 1 : static_cast<size_t>(config.client_threads);

  DriverReport report;
  report.clients.resize(num_clients);
  ObservationQueue observations;
  LatencySinks sinks;
  const auto start = std::chrono::steady_clock::now();

  // Tuning thread: the ONLY thread that touches the template store and
  // runs management rounds; it observes what the clients executed and
  // builds/drops indexes under the database's exclusive table latches
  // while the clients keep executing.
  std::thread tuner;
  if (config.background_tuning) {
    tuner = std::thread([&] {
      size_t since_round = 0;
      std::string sql;
      while (observations.Pop(&sql)) {
        manager->ObserveOnly(sql);
        ++report.observed;
        if (++since_round >= config.tuning_batch &&
            report.tuning_rounds < config.max_tuning_rounds) {
          since_round = 0;
          const TuningResult result = manager->RunManagementRound();
          ++report.tuning_rounds;
          report.indexes_added += result.added.size();
          report.indexes_removed += result.removed.size();
        }
      }
    });
  }

  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t tid = 0; tid < num_clients; ++tid) {
    clients.emplace_back(ClientLoop, db, std::cref(queries), tid, num_clients,
                         config.pace_us,
                         config.background_tuning ? &observations : nullptr,
                         &report.clients[tid], &sinks);
  }
  for (std::thread& t : clients) t.join();
  observations.Close();
  if (tuner.joinable()) tuner.join();

  report.wall_ms = ElapsedMs(start);
  report.service_latency = sinks.service.Snapshot();
  report.response_latency = sinks.response.Snapshot();
  return report;
}

DriverReport RunRemoteWorkload(const std::string& host, int port,
                               const std::vector<std::string>& queries,
                               const DriverConfig& config) {
  const size_t num_clients =
      config.client_threads < 1 ? 1
                                : static_cast<size_t>(config.client_threads);
  DriverReport report;
  report.clients.resize(num_clients);
  LatencySinks sinks;
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t tid = 0; tid < num_clients; ++tid) {
    clients.emplace_back(RemoteClientLoop, host, port, std::cref(queries),
                         tid, num_clients, config.pace_us,
                         &report.clients[tid], &sinks);
  }
  for (std::thread& t : clients) t.join();

  report.wall_ms = ElapsedMs(start);
  report.service_latency = sinks.service.Snapshot();
  report.response_latency = sinks.response.Snapshot();
  return report;
}

DriverReport RunSequentialWorkload(Database* db,
                                   const std::vector<std::string>& queries) {
  DriverReport report;
  report.clients.resize(1);
  LatencySinks sinks;
  const auto start = std::chrono::steady_clock::now();
  ClientLoop(db, queries, 0, 1, /*pace_us=*/0, nullptr, &report.clients[0],
             &sinks);
  report.wall_ms = ElapsedMs(start);
  report.service_latency = sinks.service.Snapshot();
  report.response_latency = sinks.response.Snapshot();
  return report;
}

}  // namespace autoindex
