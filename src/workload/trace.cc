#include "workload/trace.h"

#include "persist/file_format.h"
#include "persist/io.h"
#include "persist/serde.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

// Binary checksummed trace: the shared section format (magic | version |
// CRC-framed sections) with one section holding the statement list. The
// old plain-text v1 format had no integrity check, so a truncated trace
// silently loaded as a shorter workload; here a short read or bit flip
// fails Parse with a Status instead.
constexpr char kTraceMagic[] = "AIXTRACE";
constexpr uint32_t kTraceVersion = 2;
constexpr uint32_t kQueriesSection = 1;

}  // namespace

Status SaveWorkloadTrace(const std::string& path,
                         const std::vector<std::string>& queries) {
  persist::Writer w;
  w.PutU32(static_cast<uint32_t>(queries.size()));
  for (const std::string& sql : queries) w.PutString(sql);
  persist::FileWriter file(kTraceMagic, kTraceVersion);
  file.AddSection(kQueriesSection, w);
  return file.WriteAtomic(path);
}

StatusOr<std::vector<std::string>> LoadWorkloadTrace(
    const std::string& path) {
  std::string bytes;
  Status s = persist::ReadFileToString(path, &bytes);
  if (!s.ok()) return s;
  StatusOr<persist::FileReader> parsed =
      persist::FileReader::Parse(std::move(bytes), kTraceMagic, kTraceVersion);
  if (!parsed.ok()) return parsed.status();
  const std::string* payload = parsed->Find(kQueriesSection);
  if (payload == nullptr) {
    return Status::InvalidArgument("trace file has no query section: " + path);
  }
  persist::Reader r(*payload);
  const uint32_t count = r.GetU32();
  std::vector<std::string> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    queries.push_back(r.GetString());
  }
  if (!r.ok()) return r.status();
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "trace file has trailing bytes after query list: " + path);
  }
  return queries;
}

}  // namespace autoindex
