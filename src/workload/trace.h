#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace autoindex {

// Workload traces: the SQL statement list in the shared checksummed
// binary format (magic + format version + CRC32-framed section). This
// mirrors the paper's setup where workload queries are "logged in the
// server that runs the index management process" (Sec. III) and tuned
// offline. Round-trips are loss-free (statements are length-prefixed, so
// any bytes survive), and a truncated or bit-flipped file fails to load
// with a Status instead of silently yielding a shorter workload.
Status SaveWorkloadTrace(const std::string& path,
                         const std::vector<std::string>& queries);

StatusOr<std::vector<std::string>> LoadWorkloadTrace(
    const std::string& path);

}  // namespace autoindex
