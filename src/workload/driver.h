#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/manager.h"
#include "engine/database.h"
#include "util/metrics.h"

namespace autoindex {

// Configuration of one concurrent replay (bench_concurrent, the
// concurrency stress tests).
struct DriverConfig {
  // Client threads; queries are dealt round-robin so every thread replays
  // an interleaved slice of the trace.
  int client_threads = 4;
  // When true, a dedicated tuning thread drains every executed statement
  // into the AutoIndexManager (ObserveOnly) and runs a management round
  // every `tuning_batch` observations — index builds/drops happen WHILE
  // the clients keep executing.
  bool background_tuning = true;
  size_t tuning_batch = 200;
  // Upper bound on management rounds (a safety valve for short traces).
  size_t max_tuning_rounds = 8;
  // Global intended inter-arrival time in microseconds. 0 replays closed
  // loop (each client issues as fast as the server answers); > 0 replays
  // open loop: query i of the trace is *scheduled* at start + i*pace_us,
  // and response time is measured from that schedule, not from when the
  // client finally got around to issuing it. The difference is the
  // coordinated-omission correction: a closed-loop measurement silently
  // excuses every query that queued behind a stall.
  int pace_us = 0;
};

// What one client thread saw. Cost-unit latency/throughput definitions
// match RunMetrics (workload.h): deterministic cost units, not wall time.
struct ClientMetrics {
  size_t queries = 0;
  size_t failed = 0;
  double total_cost = 0.0;
  double wall_ms = 0.0;

  double AvgLatency() const {
    return queries == 0 ? 0.0 : total_cost / queries;
  }
  double Throughput() const {
    return total_cost <= 0.0 ? 0.0 : 1000.0 * queries / total_cost;
  }
};

// The outcome of one concurrent replay.
struct DriverReport {
  std::vector<ClientMetrics> clients;
  size_t tuning_rounds = 0;
  size_t observed = 0;  // statements the tuning thread ingested
  size_t indexes_added = 0;
  size_t indexes_removed = 0;
  double wall_ms = 0.0;  // end-to-end (slowest client + drain)
  // Wall-clock latency distributions across every query of every client.
  // service_latency measures issue→completion (what the server did);
  // response_latency measures intended-start→completion (what a client
  // arriving on the trace's schedule experienced). Closed loop
  // (pace_us == 0) has no schedule, so the two are identical; open loop
  // under a stall drives response far above service. Empty when built
  // with AUTOINDEX_METRICS=OFF.
  util::HistogramSnapshot service_latency;
  util::HistogramSnapshot response_latency;

  // Sum over clients (wall_ms = the report's end-to-end time).
  ClientMetrics Aggregate() const;
};

// Replays `queries` from `config.client_threads` threads, each driving its
// own Session, while (optionally) a tuning thread observes the stream and
// runs management rounds concurrently. Returns after every client finished
// and the tuning thread drained its queue.
DriverReport RunConcurrentWorkload(AutoIndexManager* manager,
                                   const std::vector<std::string>& queries,
                                   const DriverConfig& config = {});

// Single-threaded baseline: the same Session execution path minus the
// threads and tuning (the pre-concurrency comparison bench_concurrent
// reports against).
DriverReport RunSequentialWorkload(Database* db,
                                   const std::vector<std::string>& queries);

// Replays `queries` against a remote autoindex_server over TCP instead of
// an in-process database: `config.client_threads` threads each hold one
// net::Client connection and replay an interleaved slice of the trace,
// with the same open-loop pacing and service/response latency split as
// RunConcurrentWorkload — here the two diverge under real network + queue
// delay, not just latch stalls. Tuning fields of `config` are ignored
// (tuning, if any, runs server-side); kBusy sheds are retried briefly and
// then counted as failed. total_cost uses default CostParams, since the
// server's params are not part of the wire protocol.
DriverReport RunRemoteWorkload(const std::string& host, int port,
                               const std::vector<std::string>& queries,
                               const DriverConfig& config = {});

}  // namespace autoindex
