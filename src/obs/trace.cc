#include "obs/trace.h"

namespace autoindex {
namespace obs {

namespace {

// One reusable context per thread: beginning a trace is allocation-free
// after the first few (the span vector keeps its capacity between
// traces).
thread_local TraceContext tls_context;
thread_local TraceContext* tls_current = nullptr;

// splitmix64 finalizer — the deterministic head-sampling coin. Spreads
// consecutive trace ids uniformly over u64 so comparing against
// rate * 2^64 keeps an unbiased `rate` fraction, with no RNG state and
// full reproducibility (the banned-random rule stays happy).
uint64_t MixTraceId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t SampleThresholdFor(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return UINT64_MAX;
  return static_cast<uint64_t>(rate * 18446744073709551616.0);  // 2^64
}

}  // namespace

// --- TraceContext ------------------------------------------------------

uint32_t TraceContext::StartSpan(const char* name) {
  if (data_.spans.size() >= kMaxSpansPerTrace) {
    ++data_.spans_dropped;
    return 0;
  }
  SpanRecord span;
  span.id = static_cast<uint32_t>(data_.spans.size() + 1);
  span.parent = active_;
  span.start_us = watch_.ElapsedUs();
  span.name = name;
  data_.spans.push_back(span);
  active_ = span.id;
  return span.id;
}

void TraceContext::DetachSpan(uint32_t id) {
  if (id == 0) return;
  active_ = data_.spans[id - 1].parent;
}

void TraceContext::FinishSpan(uint32_t id) {
  if (id == 0) return;
  SpanRecord& span = data_.spans[id - 1];
  span.duration_us = watch_.ElapsedUs() - span.start_us;
}

void TraceContext::SetSpanAttr(uint32_t id, const char* attr_name,
                               int64_t value) {
  if (id == 0) return;
  SpanRecord& span = data_.spans[id - 1];
  span.attr_name = attr_name;
  span.attr_value = value;
}

void TraceContext::Begin(const char* name, Tracer* tracer, uint64_t trace_id,
                         bool sampled) {
  tracer_ = tracer;
  data_.trace_id = trace_id;
  data_.client_trace_id = 0;
  data_.start_offset_us = tracer->EpochElapsedUs();
  data_.total_us = 0;
  data_.spans_dropped = 0;
  data_.sampled = sampled;
  data_.spans.clear();
  active_ = 0;
  watch_.Restart();
  root_ = StartSpan(name);
}

void TraceContext::End() {
  EndSpan(root_);
  data_.total_us = root_ == 0 ? 0 : data_.spans[root_ - 1].duration_us;
  tracer_->Submit(data_);
  tracer_ = nullptr;
}

void TraceContext::Abandon() {
  tracer_->NoteCancelled();
  tracer_ = nullptr;
}

// --- Tracer ------------------------------------------------------------

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  Configure(kDefaultSlowUs, kDefaultSampleRate);
  util::MutexLock lock(mu_);
  ring_.reserve(capacity_);
}

Tracer& Tracer::Default() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Configure(uint64_t slow_us, double sample_rate) {
  slow_us_.store(slow_us, std::memory_order_relaxed);
  sample_threshold_.store(SampleThresholdFor(sample_rate),
                          std::memory_order_relaxed);
}

uint64_t Tracer::BeginTrace(bool* sampled) {
  const uint64_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  *sampled = MixTraceId(id) < sample_threshold_.load(std::memory_order_relaxed);
  return id;
}

void Tracer::Submit(const TraceData& data) {
  const bool slow =
      data.total_us >= slow_us_.load(std::memory_order_relaxed);
  util::MutexLock lock(mu_);
  ++stats_.finished;
  stats_.spans_dropped += data.spans_dropped;
  if (!slow && !data.sampled) {
    ++stats_.sampled_out;
    return;
  }
  ++stats_.recorded;
  if (ring_.size() < capacity_) {
    ring_.push_back(data);
  } else {
    ring_[next_slot_] = data;
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
}

void Tracer::NoteCancelled() {
  util::MutexLock lock(mu_);
  ++stats_.cancelled;
}

Tracer::Snapshot Tracer::TakeSnapshot() const {
  Snapshot snap;
  snap.capacity = capacity_;
  util::MutexLock lock(mu_);
  snap.stats = stats_;
  snap.stats.started = next_trace_id_.load(std::memory_order_relaxed);
  // Oldest first: once the ring wrapped, next_slot_ points at the oldest
  // kept trace.
  snap.traces.reserve(ring_.size());
  const size_t first = ring_.size() < capacity_ ? 0 : next_slot_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    snap.traces.push_back(ring_[(first + i) % ring_.size()]);
  }
  return snap;
}

void Tracer::ResetForTest() {
  util::MutexLock lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  stats_ = Stats{};
  next_trace_id_.store(0, std::memory_order_relaxed);
}

TraceData* Tracer::TestOnlyMutableTrace(size_t index) {
  util::MutexLock lock(mu_);
  if (index >= ring_.size()) return nullptr;
  const size_t first = ring_.size() < capacity_ ? 0 : next_slot_;
  return &ring_[(first + index) % ring_.size()];
}

void Tracer::TestOnlyCorruptStats(int64_t d_finished, int64_t d_recorded,
                                  int64_t d_sampled_out) {
  util::MutexLock lock(mu_);
  stats_.finished += static_cast<uint64_t>(d_finished);
  stats_.recorded += static_cast<uint64_t>(d_recorded);
  stats_.sampled_out += static_cast<uint64_t>(d_sampled_out);
}

// --- RAII helpers ------------------------------------------------------

uint64_t CurrentTraceId() {
  if constexpr (!util::kMetricsEnabled) return 0;
  return tls_current == nullptr ? 0 : tls_current->trace_id();
}

ScopedTrace::ScopedTrace(const char* name, Tracer* tracer) {
  if constexpr (util::kMetricsEnabled) {
    if (tls_current != nullptr) return;  // nested: outermost scope wins
    if (tracer == nullptr) tracer = &Tracer::Default();
    bool sampled = false;
    const uint64_t id = tracer->BeginTrace(&sampled);
    tls_context.Begin(name, tracer, id, sampled);
    tls_current = &tls_context;
    ctx_ = &tls_context;
  } else {
    (void)name;
    (void)tracer;
  }
}

ScopedTrace::~ScopedTrace() {
  if (ctx_ == nullptr) return;
  tls_current = nullptr;
  if (ctx_->tracer_ != nullptr) ctx_->End();
}

void ScopedTrace::Cancel() {
  if (ctx_ == nullptr || ctx_->tracer_ == nullptr) return;
  ctx_->Abandon();
}

uint64_t ScopedTrace::trace_id() const {
  return ctx_ == nullptr ? 0 : ctx_->trace_id();
}

uint32_t ScopedTrace::span_count() const {
  return ctx_ == nullptr ? 0 : ctx_->span_count();
}

void ScopedTrace::set_client_trace_id(uint64_t id) {
  if (ctx_ != nullptr) ctx_->set_client_trace_id(id);
}

void ScopedTrace::SetRootAttr(const char* name, int64_t value) {
  if (ctx_ != nullptr) ctx_->SetSpanAttr(ctx_->root_, name, value);
}

ScopedSpan::ScopedSpan(const char* name) {
  if constexpr (util::kMetricsEnabled) {
    ctx_ = tls_current;
    if (ctx_ != nullptr) id_ = ctx_->StartSpan(name);
  } else {
    (void)name;
  }
}

ScopedSpan::~ScopedSpan() {
  if (ctx_ != nullptr) ctx_->EndSpan(id_);
}

void ScopedSpan::SetAttr(const char* name, int64_t value) {
  if (ctx_ != nullptr) ctx_->SetSpanAttr(id_, name, value);
}

void OperatorSpan::Begin(const char* name) {
  if constexpr (util::kMetricsEnabled) {
    ctx_ = tls_current;
    if (ctx_ != nullptr) id_ = ctx_->StartSpan(name);
  } else {
    (void)name;
  }
}

void OperatorSpan::Leave() {
  if (ctx_ != nullptr) ctx_->DetachSpan(id_);
}

void OperatorSpan::End(const char* attr_name, int64_t attr_value) {
  if (ctx_ == nullptr) return;
  ctx_->SetSpanAttr(id_, attr_name, attr_value);
  ctx_->FinishSpan(id_);
  ctx_ = nullptr;
  id_ = 0;
}

}  // namespace obs
}  // namespace autoindex
