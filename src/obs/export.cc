#include "obs/export.h"

#include <vector>

#include "util/string_util.h"

namespace autoindex {
namespace obs {

namespace {

// Span names are static literals under our control, but the escaper
// keeps the output well-formed JSON even if one ever grows a quote.
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

void AppendTraceEvents(const TraceData& trace, bool* first,
                       std::string* out) {
  for (const SpanRecord& span : trace.spans) {
    if (!*first) *out += ",\n";
    *first = false;
    *out += StrCat("{\"name\":\"", JsonEscape(span.name),
                   "\",\"cat\":\"autoindex\",\"ph\":\"X\",\"ts\":",
                   trace.start_offset_us + span.start_us,
                   ",\"dur\":", span.duration_us, ",\"pid\":1,\"tid\":",
                   trace.trace_id, ",\"args\":{\"span_id\":", span.id,
                   ",\"parent\":", span.parent);
    if (span.attr_name != nullptr) {
      *out += StrCat(",\"", JsonEscape(span.attr_name),
                     "\":", span.attr_value);
    }
    if (span.id == 1) {
      // Trace-level metadata rides on the root span.
      *out += StrCat(",\"trace_id\":", trace.trace_id,
                     ",\"client_trace_id\":", trace.client_trace_id,
                     ",\"spans_dropped\":", trace.spans_dropped,
                     ",\"sampled\":", trace.sampled ? "true" : "false");
    }
    *out += "}}";
  }
}

void AppendSubtree(const TraceData& trace,
                   const std::vector<std::vector<uint32_t>>& children,
                   uint32_t id, int depth, std::string* out) {
  const SpanRecord& span = trace.spans[id - 1];
  *out += StrFormat("%*s%-*s %8llu us", 2 * depth + 2, "",
                    32 - 2 * depth, span.name,
                    static_cast<unsigned long long>(span.duration_us));
  if (span.attr_name != nullptr) {
    *out += StrCat("  ", span.attr_name, "=", span.attr_value);
  }
  *out += '\n';
  for (uint32_t child : children[id]) {
    AppendSubtree(trace, children, child, depth + 1, out);
  }
}

}  // namespace

std::string TracesToChromeJson(const Tracer::Snapshot& snapshot) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceData& trace : snapshot.traces) {
    AppendTraceEvents(trace, &first, &out);
  }
  out += StrCat("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"traces_recorded\":",
                snapshot.stats.recorded,
                ",\"traces_sampled_out\":", snapshot.stats.sampled_out,
                ",\"ring_capacity\":", snapshot.capacity, "}}\n");
  return out;
}

std::string RenderTraceTree(const TraceData& trace) {
  std::string out = StrCat(
      "trace ", trace.trace_id, " (total ", trace.total_us, " us",
      trace.sampled ? ", sampled" : ", slow",
      trace.client_trace_id != 0
          ? StrCat(", client trace ", trace.client_trace_id)
          : std::string(),
      trace.spans_dropped != 0
          ? StrCat(", ", trace.spans_dropped, " spans dropped")
          : std::string(),
      ")\n");
  // children[id] = ids of the spans directly under `id` (index 0 = roots),
  // in start order because ids are assigned in start order.
  std::vector<std::vector<uint32_t>> children(trace.spans.size() + 1);
  for (const SpanRecord& span : trace.spans) {
    if (span.parent <= trace.spans.size()) {
      children[span.parent].push_back(span.id);
    }
  }
  for (uint32_t root : children[0]) {
    AppendSubtree(trace, children, root, 0, &out);
  }
  return out;
}

std::string RenderRecentTraces(const Tracer::Snapshot& snapshot, size_t n) {
  if (snapshot.traces.empty()) {
    return "no traces recorded (lower trace_slow_us or raise the sample "
           "rate)\n";
  }
  std::string out;
  const size_t count = n < snapshot.traces.size() ? n : snapshot.traces.size();
  for (size_t i = 0; i < count; ++i) {
    // Newest first: snapshot order is oldest first.
    out += RenderTraceTree(
        snapshot.traces[snapshot.traces.size() - 1 - i]);
  }
  return out;
}

}  // namespace obs
}  // namespace autoindex
