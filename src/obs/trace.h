#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"

namespace autoindex {
namespace obs {

// Request-scoped tracing (DESIGN.md §13). One *trace* covers one unit of
// work (a statement, a tuning round, an online index build, a network
// request) and holds a bounded tree of *spans*, each timed through the
// sanctioned util::Stopwatch clock. Recording is lock-free: a trace is
// built in a thread-local TraceContext and only touches the Tracer's
// mutex once, at submit time, when the completed trace is offered to the
// flight recorder (a fixed-size ring buffer). Whether a trace is kept is
// decided at submit: slow traces (total >= the configured threshold)
// always land; the rest are head-sampled by a deterministic hash of the
// trace id so a fixed fraction of normal traffic stays inspectable.
//
// Instrumentation sites never call the span API below directly — the
// raw-trace-span lint rule restricts StartSpan/FinishSpan/DetachSpan to
// src/obs/ — they use the RAII helpers at the bottom of this header
// (ScopedTrace, ScopedSpan, OperatorSpan), which compile to nothing
// under AUTOINDEX_METRICS=OFF exactly like the metrics layer.

// One timed node of a span tree. Names are static string literals (the
// hot path never allocates for a span); `start_us` is the offset from
// the trace's own start, so a span's absolute position is
// trace.start_offset_us + span.start_us on the tracer's epoch clock.
struct SpanRecord {
  uint32_t id = 0;      // 1-based, dense within the trace
  uint32_t parent = 0;  // 0 = root
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  const char* name = "";
  // Optional single attribute (rows produced, bytes appended, ...).
  const char* attr_name = nullptr;
  int64_t attr_value = 0;
};

// One completed trace as stored in the flight recorder.
struct TraceData {
  uint64_t trace_id = 0;
  // The client's trace id when this trace was propagated over the wire
  // (kQuery carries it; 0 = the request was not client-traced).
  uint64_t client_trace_id = 0;
  // Trace start as an offset from the owning Tracer's epoch.
  uint64_t start_offset_us = 0;
  uint64_t total_us = 0;  // root span duration
  // Spans refused by the per-trace cap (the first kMaxSpansPerTrace are
  // kept; the count records how much of the tree is missing).
  uint32_t spans_dropped = 0;
  // True when the trace was kept by head sampling rather than by the
  // slow-query threshold.
  bool sampled = false;
  std::vector<SpanRecord> spans;
};

class Tracer;

// The per-thread recording surface. At most one trace is active on a
// thread at a time (nested ScopedTrace construction is a no-op), and all
// span operations touch only thread-local state — no locks, no
// allocation beyond the reused span vector.
//
// Spans are two-phase so non-LIFO lifetimes (a Volcano operator's
// Open..Close brackets its children's whole lifetime, but Open returns
// while the children are still open) still form a correct tree:
// StartSpan makes the span the active parent, DetachSpan pops it off the
// active chain *without* closing it, FinishSpan stamps the duration
// whenever the work really ends. Strictly nested scopes use EndSpan
// (detach + finish).
class TraceContext {
 public:
  static constexpr uint32_t kMaxSpansPerTrace = 256;

  // Starts a span under the currently active span and makes it active.
  // Returns 0 (a universally ignored id) once the per-trace cap is hit.
  uint32_t StartSpan(const char* name);
  // Pops the span off the active chain without stamping its duration.
  void DetachSpan(uint32_t id);
  // Stamps the duration (now - start). The span must have been started.
  void FinishSpan(uint32_t id);
  void SetSpanAttr(uint32_t id, const char* attr_name, int64_t value);
  // Detach + finish, for strictly nested (RAII) scopes.
  void EndSpan(uint32_t id) {
    DetachSpan(id);
    FinishSpan(id);
  }

  uint64_t trace_id() const { return data_.trace_id; }
  uint32_t span_count() const {
    return static_cast<uint32_t>(data_.spans.size());
  }
  void set_client_trace_id(uint64_t id) { data_.client_trace_id = id; }

 private:
  friend class ScopedTrace;
  friend class Tracer;

  void Begin(const char* name, Tracer* tracer, uint64_t trace_id,
             bool sampled);
  // Closes the root span and offers the trace to the tracer.
  void End();
  void Abandon();

  TraceData data_;
  uint32_t active_ = 0;  // id of the innermost open span
  uint32_t root_ = 0;
  util::Stopwatch watch_{util::Stopwatch::DeferStart{}};
  Tracer* tracer_ = nullptr;
};

// The flight recorder: a fixed-capacity ring of the most recent kept
// traces plus the bookkeeping the TraceValidator audits. Instantiable
// for tests; production code uses the process-wide Default().
class Tracer {
 public:
  struct Stats {
    uint64_t started = 0;    // traces begun (ids allocated)
    uint64_t finished = 0;   // traces submitted (kept or sampled out)
    uint64_t recorded = 0;   // traces kept in the ring
    uint64_t sampled_out = 0;  // submitted but dropped (fast + unsampled)
    uint64_t cancelled = 0;  // begun but explicitly discarded
    uint64_t spans_dropped = 0;  // spans refused by the per-trace cap
  };

  // A consistent view of the recorder: ring contents (oldest first),
  // stats, and capacity, all read under one lock so the validator's
  // bookkeeping invariants hold exactly.
  struct Snapshot {
    std::vector<TraceData> traces;
    Stats stats;
    size_t capacity = 0;
  };

  static constexpr size_t kDefaultCapacity = 256;
  static constexpr uint64_t kDefaultSlowUs = 10'000;
  static constexpr double kDefaultSampleRate = 0.01;

  explicit Tracer(size_t capacity = kDefaultCapacity);
  static Tracer& Default();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Keep policy. slow_us = 0 keeps every trace; sample_rate in [0,1] is
  // the fraction of non-slow traces kept (deterministic in the trace
  // id — no RNG on the hot path, reproducible in tests).
  void Configure(uint64_t slow_us, double sample_rate);
  uint64_t slow_threshold_us() const {
    return slow_us_.load(std::memory_order_relaxed);
  }

  Snapshot TakeSnapshot() const EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

  // Empties the ring and zeroes the stats (cached Tracer& references
  // stay valid). Test isolation only.
  void ResetForTest() EXCLUDES(mu_);

  // --- TraceValidator corruption drills (never call outside tests) ----
  // Mutable pointer into ring slot `index` (oldest first, as in
  // TakeSnapshot). Null when out of range.
  TraceData* TestOnlyMutableTrace(size_t index) EXCLUDES(mu_);
  // Skews the bookkeeping counters to break the ring invariants.
  void TestOnlyCorruptStats(int64_t d_finished, int64_t d_recorded,
                            int64_t d_sampled_out) EXCLUDES(mu_);

 private:
  friend class ScopedTrace;
  friend class TraceContext;

  // Allocates a trace id and decides head sampling. `sampled` is the
  // deterministic coin flip, made at trace start so wire propagation can
  // tell the client whether the server kept its trace.
  uint64_t BeginTrace(bool* sampled);
  uint64_t EpochElapsedUs() const { return epoch_.ElapsedUs(); }
  void Submit(const TraceData& data) EXCLUDES(mu_);
  void NoteCancelled() EXCLUDES(mu_);

  const size_t capacity_;
  const util::Stopwatch epoch_;
  std::atomic<uint64_t> next_trace_id_{0};
  std::atomic<uint64_t> slow_us_{kDefaultSlowUs};
  // Keep iff splitmix64(trace_id) < sample_threshold_.
  std::atomic<uint64_t> sample_threshold_{0};

  mutable util::Mutex mu_;
  std::vector<TraceData> ring_ GUARDED_BY(mu_);
  size_t next_slot_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);  // started mirrors next_trace_id_
};

// The trace id active on this thread, 0 when none. What the net client
// stamps into kQuery so the server can link its trace to the caller's.
uint64_t CurrentTraceId();

// --- RAII instrumentation surface (the only API outside src/obs/) ------

// Opens a trace for the lifetime of the scope. If a trace is already
// active on this thread (or metrics are compiled out) the constructor is
// a no-op and the scope merely nests inside the enclosing trace —
// layered entry points (server request → session → database) can each
// guard themselves and the outermost one wins.
class [[nodiscard]] ScopedTrace {
 public:
  explicit ScopedTrace(const char* name) : ScopedTrace(name, nullptr) {}
  // tracer = nullptr means Tracer::Default().
  ScopedTrace(const char* name, Tracer* tracer);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  // Discards the trace instead of submitting it (e.g. the request turned
  // out not to be query traffic). Only meaningful on the owning scope.
  void Cancel();

  // True when this scope opened the trace (not nested, not compiled
  // out). trace_id/span_count are live reads for wire propagation.
  bool owns() const { return ctx_ != nullptr; }
  uint64_t trace_id() const;
  uint32_t span_count() const;
  void set_client_trace_id(uint64_t id);
  // Attribute on the root span (e.g. the server's span count echoed back
  // to a client-side trace).
  void SetRootAttr(const char* name, int64_t value);

 private:
  TraceContext* ctx_ = nullptr;
};

// One span for the lifetime of the scope, under the thread's active
// trace (no-op when none is active).
class [[nodiscard]] ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void SetAttr(const char* name, int64_t value);

 private:
  TraceContext* ctx_ = nullptr;
  uint32_t id_ = 0;
};

// Two-phase span for Volcano operators, whose Open..Close lifetime is
// not a C++ scope: Begin() at Open (children opened inside nest under
// it), Leave() when Open returns (pops the active chain while the span
// stays unfinished), End() at Close (stamps duration and the rows_out
// attribute). Default-constructed inert; cheap enough to embed in every
// PhysicalOperator.
class OperatorSpan {
 public:
  void Begin(const char* name);
  void Leave();
  void End(const char* attr_name, int64_t attr_value);

 private:
  TraceContext* ctx_ = nullptr;
  uint32_t id_ = 0;
};

}  // namespace obs
}  // namespace autoindex
