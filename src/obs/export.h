#pragma once

#include <string>

#include "obs/trace.h"

namespace autoindex {
namespace obs {

// Serializes a flight-recorder snapshot as Chrome trace-event JSON
// (the `{"traceEvents": [...]}` object format chrome://tracing and
// Perfetto load directly). Every span becomes one complete ("ph":"X")
// event: ts/dur in microseconds on the tracer's epoch clock, one pid for
// the process, the trace id as tid so each trace renders as its own
// track, and parent/attribute/drop metadata under "args".
std::string TracesToChromeJson(const Tracer::Snapshot& snapshot);

// Renders one trace as an indented span tree with durations, e.g.
//   trace 17 (total 1203 us, slow)
//     net.request                      1203 us
//       net.recv                         11 us
//       ...
// for the shell's `\trace show`.
std::string RenderTraceTree(const TraceData& trace);

// The `n` most recent traces of the snapshot, each through
// RenderTraceTree, newest first.
std::string RenderRecentTraces(const Tracer::Snapshot& snapshot, size_t n);

}  // namespace obs
}  // namespace autoindex
