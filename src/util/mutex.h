#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace autoindex {
namespace util {

// Annotated synchronization primitives (DESIGN.md §9). Every lock in the
// project goes through these wrappers so clang's -Wthread-safety pass can
// prove the locking protocol on every build; the naked-mutex lint rule
// keeps raw std::mutex / std::shared_mutex out of the rest of src/.
//
// The wrappers are zero-cost: each is exactly its std counterpart plus
// attributes that compile to nothing. TSan sees the underlying std
// primitives as usual.

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII exclusive lock of a Mutex for one scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to util::Mutex. Wait() is annotated
// REQUIRES(mu): the analysis checks that callers hold the mutex, and the
// capability is (correctly) considered held again when Wait returns.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // The caller already holds mu; adopt it for the std wait protocol and
    // release the adoption afterwards so ownership stays with the caller.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive (writer) lock of a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock of a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  // Generic release: the scope held the capability shared.
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace util
}  // namespace autoindex
