#include "util/build_info.h"

#include "util/metrics.h"
#include "util/string_util.h"

// Baked in per-file by src/util/CMakeLists.txt; the fallbacks keep
// non-CMake builds (clang-tidy, IDE indexers) compiling.
#ifndef AUTOINDEX_BUILD_VERSION
#define AUTOINDEX_BUILD_VERSION "unknown"
#endif
#ifndef AUTOINDEX_BUILD_GIT_HASH
#define AUTOINDEX_BUILD_GIT_HASH "unknown"
#endif
#ifndef AUTOINDEX_BUILD_SANITIZER
#define AUTOINDEX_BUILD_SANITIZER "none"
#endif

namespace autoindex {
namespace util {

namespace {

// Armed on the first refresh (Database construction in practice), so
// uptime measures the serving process, not static-init order.
const Stopwatch& ProcessEpoch() {
  static const Stopwatch epoch;
  return epoch;
}

}  // namespace

std::string BuildVersion() { return AUTOINDEX_BUILD_VERSION; }
std::string BuildGitHash() { return AUTOINDEX_BUILD_GIT_HASH; }
std::string BuildSanitizer() { return AUTOINDEX_BUILD_SANITIZER; }

void RefreshRuntimeMetrics() {
  const uint64_t uptime_s = ProcessEpoch().ElapsedUs() / 1'000'000;
  auto& registry = MetricsRegistry::Default();
  // Function-local statics: the labeled name is assembled once and the
  // registry lookups happen once per process (the standard caching idiom).
  static Gauge* const build_info = registry.GetGauge(
      StrCat("build.info{version=\"", BuildVersion(), "\",git_hash=\"",
             BuildGitHash(), "\",sanitizer=\"", BuildSanitizer(), "\"}"));
  static Gauge* const uptime = registry.GetGauge("uptime.seconds");
  build_info->Set(1);
  uptime->Set(static_cast<int64_t>(uptime_s));
}

}  // namespace util
}  // namespace autoindex
