#include "util/metrics.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace autoindex {
namespace util {

uint64_t HistogramSnapshot::PercentileUs(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested sample, 1-based; p=0.5 over 1000 samples asks
  // for the 500th.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(p * count + 0.5));
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Never report beyond the observed maximum (the top bucket's bound
      // is a power of two that can far exceed it).
      return std::min(BucketUpperBound(b), max_us);
    }
  }
  return max_us;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum_us += other.sum_us;
  max_us = std::max(max_us, other.max_us);
  for (size_t b = 0; b < kNumBuckets; ++b) buckets[b] += other.buckets[b];
}

LatencyHistogram::Shard& LatencyHistogram::ThisThreadShard() {
  // Each thread gets a process-wide shard slot once (round-robin); every
  // histogram maps the slot onto its own shard array. Threads sharing a
  // slot still race safely — shards are atomics — they just contend.
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return shards_[slot % kNumShards];
}

void LatencyHistogram::Record(uint64_t us) {
  if constexpr (!kMetricsEnabled) {
    (void)us;
    return;
  }
  Shard& shard = ThisThreadShard();
  shard.buckets[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
  shard.sum_us.fetch_add(us, std::memory_order_relaxed);
  uint64_t prev_max = shard.max_us.load(std::memory_order_relaxed);
  while (us > prev_max &&
         !shard.max_us.compare_exchange_weak(prev_max, us,
                                             std::memory_order_relaxed)) {
  }
  // Count last, with release: a snapshot that observes this increment
  // (acquire) also observes the bucket increment above, making
  // bucket_sum >= count an invariant even mid-race (see class comment).
  shard.count.fetch_add(1, std::memory_order_release);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_acquire);
    snap.sum_us += shard.sum_us.load(std::memory_order_relaxed);
    snap.max_us = std::max(snap.max_us,
                           shard.max_us.load(std::memory_order_relaxed));
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void LatencyHistogram::Reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_us.store(0, std::memory_order_relaxed);
    shard.max_us.store(0, std::memory_order_relaxed);
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      Kind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.hist = std::make_unique<LatencyHistogram>();
        break;
    }
    it = entries_.emplace(name, std::move(entry)).first;
  }
  if (it->second.kind != kind) {
    type_collisions_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  util::MutexLock lock(mu_);
  Entry* entry = FindOrCreate(name, Kind::kCounter);
  return entry == nullptr ? &dummy_counter_ : entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  util::MutexLock lock(mu_);
  Entry* entry = FindOrCreate(name, Kind::kGauge);
  return entry == nullptr ? &dummy_gauge_ : entry->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  util::MutexLock lock(mu_);
  Entry* entry = FindOrCreate(name, Kind::kHistogram);
  return entry == nullptr ? &dummy_hist_ : entry->hist.get();
}

std::vector<MetricsRegistry::MetricValue> MetricsRegistry::Snapshot(
    const std::string& prefix) const {
  std::vector<MetricValue> out;
  util::MutexLock lock(mu_);
  for (const auto& [name, entry] : entries_) {
    if (!prefix.empty() && name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    MetricValue v;
    v.name = name;
    v.kind = entry.kind;
    switch (entry.kind) {
      case Kind::kCounter:
        v.counter = entry.counter->value();
        break;
      case Kind::kGauge:
        v.gauge = entry.gauge->value();
        break;
      case Kind::kHistogram:
        v.hist = entry.hist->Snapshot();
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

namespace {

// "wal.fsync_us" -> "autoindex_wal_fsync_us".
// Registry names may carry a Prometheus label block in braces (e.g.
// "build.info{version=\"1.0\"}"): dots convert to underscores only up to
// the brace, and the label block is appended verbatim to sample lines
// (never to # TYPE lines, which take the bare metric name).
std::string PromName(const std::string& name) {
  std::string out = "autoindex_";
  for (char c : name) {
    if (c == '{') break;
    out += (c == '.') ? '_' : c;
  }
  return out;
}

std::string PromLabels(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? std::string() : name.substr(brace);
}

}  // namespace

std::string MetricsRegistry::RenderText(const std::string& prefix) const {
  std::string out;
  for (const MetricValue& v : Snapshot(prefix)) {
    const std::string prom = PromName(v.name);
    switch (v.kind) {
      case Kind::kCounter:
        out += StrCat("# TYPE ", prom, " counter\n", prom,
                      PromLabels(v.name), " ", v.counter, "\n");
        break;
      case Kind::kGauge:
        out += StrCat("# TYPE ", prom, " gauge\n", prom, PromLabels(v.name),
                      " ", v.gauge, "\n");
        break;
      case Kind::kHistogram: {
        out += StrCat("# TYPE ", prom, " histogram\n");
        uint64_t cumulative = 0;
        for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
          if (v.hist.buckets[b] == 0) continue;  // sparse exposition
          cumulative += v.hist.buckets[b];
          const uint64_t bound = HistogramSnapshot::BucketUpperBound(b);
          out += StrCat(prom, "_bucket{le=\"",
                        bound == UINT64_MAX ? std::string("+Inf")
                                            : StrCat(bound),
                        "\"} ", cumulative, "\n");
        }
        out += StrCat(prom, "_sum ", v.hist.sum_us, "\n");
        out += StrCat(prom, "_count ", v.hist.count, "\n");
        out += StrCat(prom, "_max ", v.hist.max_us, "\n");
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  util::MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.hist->Reset();
        break;
    }
  }
  type_collisions_.store(0, std::memory_order_relaxed);
}

}  // namespace util
}  // namespace autoindex
