#pragma once

// Clang thread-safety-analysis attribute macros (DESIGN.md §9).
//
// These make the locking protocol part of the type system: fields carry
// GUARDED_BY(mu), helpers that expect the caller to hold a lock carry
// REQUIRES(mu), and the annotated primitives in util/mutex.h declare the
// capabilities themselves. Under clang with -Wthread-safety (CMake option
// AUTOINDEX_THREAD_SAFETY, wired into scripts/check.sh) every code path —
// exercised by a test or not — is checked at compile time; under other
// compilers the macros expand to nothing and the wrappers are plain
// std::mutex / std::shared_mutex RAII.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && !defined(SWIG)
#define AUTOINDEX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AUTOINDEX_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Declares a class to be a capability (a lock the analysis can track).
#define CAPABILITY(x) AUTOINDEX_THREAD_ANNOTATION(capability(x))

// Declares an RAII class whose lifetime holds a capability.
#define SCOPED_CAPABILITY AUTOINDEX_THREAD_ANNOTATION(scoped_lockable)

// Field may only be read/written while holding the given capability.
#define GUARDED_BY(x) AUTOINDEX_THREAD_ANNOTATION(guarded_by(x))

// Pointer field: the pointed-to data is protected by the capability
// (the pointer itself is not).
#define PT_GUARDED_BY(x) AUTOINDEX_THREAD_ANNOTATION(pt_guarded_by(x))

// Function requires the capability held exclusively / shared on entry.
#define REQUIRES(...) \
  AUTOINDEX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  AUTOINDEX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires/releases the capability (lock/unlock members and
// scoped-guard constructors/destructors).
#define ACQUIRE(...) \
  AUTOINDEX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  AUTOINDEX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  AUTOINDEX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  AUTOINDEX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  AUTOINDEX_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// Function tries to acquire and reports success via its return value.
#define TRY_ACQUIRE(...) \
  AUTOINDEX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  AUTOINDEX_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (non-reentrant helpers that take
// the lock themselves; documents and checks lock-ordering contracts).
#define EXCLUDES(...) AUTOINDEX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Asserts (at runtime, from the analysis' point of view) that the
// capability is held — for code reachable only under a lock the analysis
// cannot see.
#define ASSERT_CAPABILITY(x) \
  AUTOINDEX_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) AUTOINDEX_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables analysis on one function. Every use must carry a
// comment justifying why the protocol holds anyway (DESIGN.md §9).
#define NO_THREAD_SAFETY_ANALYSIS \
  AUTOINDEX_THREAD_ANNOTATION(no_thread_safety_analysis)
