#pragma once

#include <cstdint>
#include <string>

namespace autoindex {

// Deterministic pseudo-random generator (xorshift128+). Every workload
// generator and the MCTS rollout policy draw from an explicitly seeded
// instance so that experiments are reproducible bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    s0_ = seed ^ 0x2545f4914f6cdd1dULL;
    s1_ = seed * 0x9e3779b97f4a7c15ULL + 1;
    // Warm up so that small seeds diverge quickly.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Skewed integer in [0, n): item 0 is the most popular. A polynomial
  // transform of the uniform (u^k) approximating Zipf-style hot keys:
  // with the default theta the first decile draws ~45% of the mass.
  uint64_t Skewed(uint64_t n, double theta = 0.8) {
    if (n <= 1) return 0;
    const double u = NextDouble();
    const double k = 1.0 + 2.5 * theta;  // theta=0.8 -> exponent 3
    double frac = __builtin_pow(u, k);
    if (frac >= 1) frac = 0.999999;
    return static_cast<uint64_t>(frac * static_cast<double>(n));
  }

  // Raw xorshift state, exposed so durability snapshots can freeze and
  // resume the exact sequence (a reseed would diverge the replayed run).
  uint64_t state0() const { return s0_; }
  uint64_t state1() const { return s1_; }
  void SetState(uint64_t s0, uint64_t s1) {
    s0_ = s0;
    s1_ = s1;
  }

  // Random lowercase identifier of the given length.
  std::string NextName(int len) {
    std::string s;
    s.reserve(len);
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return s;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace autoindex
