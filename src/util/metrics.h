#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace autoindex {
namespace util {

// Process-wide observability substrate (DESIGN.md §11). Three metric
// kinds — Counter, Gauge, LatencyHistogram — live in a global
// MetricsRegistry keyed by dotted lowercase names
// (`<subsystem>.<thing>`, e.g. "wal.fsync_us"). Hot-path updates are
// lock-free relaxed atomics; the registry mutex is only taken on first
// lookup (call sites cache the returned pointer in a function-local
// static) and on snapshot/render.
//
// Building with -DAUTOINDEX_METRICS=OFF defines
// AUTOINDEX_METRICS_DISABLED: every update and every ScopedTimer clock
// read compiles to nothing while all call sites keep compiling — the
// baseline scripts/check.sh measures the instrumentation overhead
// against.
#if defined(AUTOINDEX_METRICS_DISABLED)
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

// Monotone event count. Add() is a single relaxed fetch_add: updates
// from any thread, no ordering guarantees beyond the final total.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if constexpr (kMetricsEnabled) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  // Test support: zeroes the count (never call on live production paths —
  // counters are contractually monotone between snapshots).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-writer-wins instantaneous level (queue depths, backlog sizes).
class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (kMetricsEnabled) {
      value_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  void Add(int64_t delta) {
    if constexpr (kMetricsEnabled) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Merged, plain-data view of one LatencyHistogram (or of fabricated
// values in validator tests). Bucket b counts samples in microseconds
// with bit_width b: bucket 0 holds the value 0, bucket b>0 holds
// [2^(b-1), 2^b). Percentile() returns the *upper bound* of the bucket
// containing the requested rank — deterministic, and never below the
// true percentile by more than one power of two.
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 40;

  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t max_us = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  // Upper bound (inclusive) in microseconds of values counted in `b`.
  static uint64_t BucketUpperBound(size_t b) {
    if (b == 0) return 0;
    if (b >= kNumBuckets - 1) return UINT64_MAX;
    return (uint64_t{1} << b) - 1;
  }

  uint64_t BucketSum() const {
    uint64_t total = 0;
    for (uint64_t b : buckets) total += b;
    return total;
  }

  // p in [0,1]; 0.5 = median. Returns 0 for an empty histogram.
  uint64_t PercentileUs(double p) const;
  uint64_t P50Us() const { return PercentileUs(0.50); }
  uint64_t P90Us() const { return PercentileUs(0.90); }
  uint64_t P99Us() const { return PercentileUs(0.99); }
  double MeanUs() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) / count;
  }

  void Merge(const HistogramSnapshot& other);
};

// Fixed-bucket exponential latency histogram with per-thread shards.
// Record() touches only the calling thread's shard (relaxed atomics, no
// locks); Snapshot() merges the shards. Microsecond domain, power-of-two
// buckets: see HistogramSnapshot for the bucket scheme.
//
// Ordering contract: Record bumps the bucket first and the shard count
// last (release), and Snapshot reads counts first (acquire); a racing
// snapshot can therefore observe bucket_sum >= count but never
// bucket_sum < count. The MetricsValidator checks exactly that one-sided
// invariant so it stays sound while writers are live; quiescent
// snapshots see strict equality.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;
  static constexpr size_t kNumShards = 8;

  void Record(uint64_t us);
  HistogramSnapshot Snapshot() const;
  void Reset();

  // Corruption drill for the MetricsValidator tests: inflates one
  // shard's count without touching its buckets, breaking the
  // bucket_sum >= count invariant. Never call outside tests.
  void TestOnlyCorruptCount(uint64_t delta) {
    shards_[0].count.fetch_add(delta, std::memory_order_relaxed);
  }

  static size_t BucketFor(uint64_t us) {
    size_t b = 0;
    while (us > 0 && b < kNumBuckets - 1) {
      us >>= 1;
      ++b;
    }
    return b;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_us{0};
    std::atomic<uint64_t> max_us{0};
  };

  Shard& ThisThreadShard();

  std::array<Shard, kNumShards> shards_;
};

// Monotonic-clock stopwatch. The ONLY sanctioned way to do latency math
// outside src/util/metrics.* / src/workload/ / bench/: the
// raw-chrono-metric lint rule forbids naked steady_clock::now() calls
// elsewhere, so instrumented subsystems time themselves through this
// wrapper (or ScopedTimer below) and stay trivially auditable.
class Stopwatch {
 public:
  // Deferred-start tag: no clock read at construction (Restart() arms
  // it). Lets conditionally-timed members avoid the read entirely when
  // instrumentation is compiled out.
  struct DeferStart {};

  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  explicit Stopwatch(DeferStart) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  uint64_t ElapsedUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// RAII latency recorder: measures construction→destruction and records
// into the given histogram (null target = disabled, zero cost beyond
// the clock read; compiled-out builds skip the clock read too). Holds
// no capability — annotated free of lock requirements so the
// thread-safety analysis verifies timed scopes the same as untimed
// ones.
class [[nodiscard]] ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist) : hist_(hist) {
    if constexpr (kMetricsEnabled) {
      if (hist_ != nullptr) watch_.Restart();
    }
  }
  ~ScopedTimer() {
    if constexpr (kMetricsEnabled) {
      if (hist_ != nullptr) hist_->Record(watch_.ElapsedUs());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Detaches without recording (e.g. the timed operation failed in a way
  // that should not pollute the distribution).
  void Cancel() { hist_ = nullptr; }

 private:
  LatencyHistogram* hist_;
  Stopwatch watch_;
};

// Name → metric directory. Get* registers on first use and returns a
// stable pointer (entries are never erased, so call sites may cache it
// for the process lifetime — the idiom is a function-local static).
// Looking a name up as the wrong kind is counted as a type collision
// and returns a process-shared dummy metric instead of crashing; the
// MetricsValidator requires the collision count to stay zero.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  // One rendered metric in a snapshot.
  struct MetricValue {
    std::string name;
    Kind kind = Kind::kCounter;
    uint64_t counter = 0;
    int64_t gauge = 0;
    HistogramSnapshot hist;
  };

  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  LatencyHistogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  // Every metric whose name starts with `prefix` (all when empty), in
  // name order.
  std::vector<MetricValue> Snapshot(const std::string& prefix = {}) const
      EXCLUDES(mu_);

  // Prometheus-style text exposition:
  //   # TYPE autoindex_wal_fsync_us histogram
  //   autoindex_wal_fsync_us_bucket{le="127"} 42
  //   ...
  // Dots become underscores; histogram buckets render cumulative with
  // `le` upper bounds, plus _sum/_count/_max series.
  std::string RenderText(const std::string& prefix = {}) const EXCLUDES(mu_);

  // Registrations under a name already taken by a different kind.
  uint64_t type_collisions() const {
    return type_collisions_.load(std::memory_order_relaxed);
  }

  // Zeroes every registered metric's value *without* invalidating any
  // cached pointer (entries stay registered), and clears the collision
  // count. Test isolation only.
  void ResetForTest() EXCLUDES(mu_);

 private:
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> hist;
  };

  Entry* FindOrCreate(const std::string& name, Kind kind) REQUIRES(mu_);

  mutable util::Mutex mu_;
  // std::map: stable addresses for Entry values and sorted iteration for
  // Snapshot/RenderText.
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
  std::atomic<uint64_t> type_collisions_{0};

  // Fallbacks handed out on a kind mismatch so callers never receive
  // null; their values are meaningless and excluded from snapshots.
  Counter dummy_counter_;
  Gauge dummy_gauge_;
  LatencyHistogram dummy_hist_;
};

}  // namespace util
}  // namespace autoindex
