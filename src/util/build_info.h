#pragma once

#include <string>

namespace autoindex {
namespace util {

// Build identity and process runtime metrics (DESIGN.md §11).
//
// RefreshRuntimeMetrics (re)registers two gauges in the default registry:
//   autoindex_build_info{version="...",git_hash="...",sanitizer="..."} 1
//   autoindex_uptime_seconds <seconds since the process epoch>
// The labels ride inside the registry name (the registry itself is
// label-free); RenderText splits them back out so the # TYPE line stays
// bare. Called at Database construction and again on every
// RenderMetricsText so both survive MetricsRegistry::ResetForTest and
// the uptime is current at scrape time. The process epoch is armed on
// the first call.
void RefreshRuntimeMetrics();

// The values baked into the binary (CMake compile definitions on
// build_info.cc): version, short git hash ("unknown" outside a git
// checkout), and the sanitizer list ("none" for plain builds).
std::string BuildVersion();
std::string BuildGitHash();
std::string BuildSanitizer();

}  // namespace util
}  // namespace autoindex
