#include "ml/regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "persist/serde.h"

namespace autoindex {

double SigmoidRegression::Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void SigmoidRegression::FitScalers(const std::vector<std::vector<double>>& x,
                                   const std::vector<double>& y) {
  const size_t dim = x[0].size();
  feat_mean_.assign(dim, 0.0);
  feat_std_.assign(dim, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < dim; ++j) feat_mean_[j] += row[j];
  }
  for (size_t j = 0; j < dim; ++j) feat_mean_[j] /= x.size();
  for (const auto& row : x) {
    for (size_t j = 0; j < dim; ++j) {
      const double d = row[j] - feat_mean_[j];
      feat_std_[j] += d * d;
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    feat_std_[j] = std::sqrt(feat_std_[j] / x.size());
    if (feat_std_[j] < 1e-12) feat_std_[j] = 1.0;
  }
  y_min_ = *std::min_element(y.begin(), y.end());
  y_max_ = *std::max_element(y.begin(), y.end());
  if (y_max_ - y_min_ < 1e-12) y_max_ = y_min_ + 1.0;
}

std::vector<double> SigmoidRegression::ScaleFeatures(
    const std::vector<double>& f) const {
  std::vector<double> out(f.size());
  for (size_t j = 0; j < f.size(); ++j) {
    const double mean = j < feat_mean_.size() ? feat_mean_[j] : 0.0;
    const double sd = j < feat_std_.size() ? feat_std_[j] : 1.0;
    out[j] = (f[j] - mean) / sd;
  }
  return out;
}

double SigmoidRegression::Train(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y,
                                const TrainConfig& config) {
  if (x.empty() || x.size() != y.size()) return 0.0;
  const size_t n = x.size();
  const size_t dim = x[0].size();
  FitScalers(x, y);

  std::vector<std::vector<double>> xs(n);
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = ScaleFeatures(x[i]);
    // Map targets into (0.02, 0.98) so the sigmoid never saturates fully.
    ys[i] = 0.02 + 0.96 * (y[i] - y_min_) / (y_max_ - y_min_);
  }

  Random rng(config.seed);
  weights_.assign(dim, 0.0);
  for (double& w : weights_) w = (rng.NextDouble() - 0.5) * 0.1;
  bias_ = 0.0;

  std::vector<double> m_w(dim, 0.0), v_w(dim, 0.0);
  double m_b = 0.0, v_b = 0.0;
  size_t step = 0;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double last_mse = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with the deterministic RNG.
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.Uniform(i)]);
    }
    double sq_err = 0.0;
    for (size_t start = 0; start < n; start += config.batch_size) {
      const size_t end = std::min(n, start + config.batch_size);
      std::vector<double> grad_w(dim, 0.0);
      double grad_b = 0.0;
      for (size_t k = start; k < end; ++k) {
        const size_t i = order[k];
        double z = bias_;
        for (size_t j = 0; j < dim; ++j) z += weights_[j] * xs[i][j];
        const double pred = Sigmoid(z);
        const double err = pred - ys[i];
        sq_err += err * err;
        const double d = err * pred * (1.0 - pred);
        for (size_t j = 0; j < dim; ++j) grad_w[j] += d * xs[i][j];
        grad_b += d;
      }
      const double inv = 1.0 / static_cast<double>(end - start);
      ++step;
      const double bc1 = 1.0 - std::pow(config.beta1, step);
      const double bc2 = 1.0 - std::pow(config.beta2, step);
      for (size_t j = 0; j < dim; ++j) {
        const double g = grad_w[j] * inv + config.l2 * weights_[j];
        m_w[j] = config.beta1 * m_w[j] + (1 - config.beta1) * g;
        v_w[j] = config.beta2 * v_w[j] + (1 - config.beta2) * g * g;
        weights_[j] -= config.learning_rate * (m_w[j] / bc1) /
                       (std::sqrt(v_w[j] / bc2) + config.epsilon);
      }
      const double gb = grad_b * inv;
      m_b = config.beta1 * m_b + (1 - config.beta1) * gb;
      v_b = config.beta2 * v_b + (1 - config.beta2) * gb * gb;
      bias_ -= config.learning_rate * (m_b / bc1) /
               (std::sqrt(v_b / bc2) + config.epsilon);
    }
    last_mse = sq_err / n;
  }
  trained_ = true;
  return last_mse;
}

double SigmoidRegression::Predict(const std::vector<double>& features) const {
  if (!trained_) {
    // Static-weight fallback: classical additive cost model.
    double sum = 0.0;
    for (double f : features) sum += f;
    return sum;
  }
  const std::vector<double> xs = ScaleFeatures(features);
  double z = bias_;
  for (size_t j = 0; j < xs.size() && j < weights_.size(); ++j) {
    z += weights_[j] * xs[j];
  }
  const double scaled = Sigmoid(z);
  return y_min_ + (scaled - 0.02) / 0.96 * (y_max_ - y_min_);
}

double SigmoidRegression::CrossValidate(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    size_t folds, const TrainConfig& config) {
  if (x.size() < folds || folds < 2) return 0.0;
  const size_t n = x.size();
  double total_sq = 0.0;
  size_t total_count = 0;
  for (size_t f = 0; f < folds; ++f) {
    std::vector<std::vector<double>> train_x, test_x;
    std::vector<double> train_y, test_y;
    for (size_t i = 0; i < n; ++i) {
      if (i % folds == f) {
        test_x.push_back(x[i]);
        test_y.push_back(y[i]);
      } else {
        train_x.push_back(x[i]);
        train_y.push_back(y[i]);
      }
    }
    SigmoidRegression model;
    model.Train(train_x, train_y, config);
    for (size_t i = 0; i < test_x.size(); ++i) {
      const double err = model.Predict(test_x[i]) - test_y[i];
      total_sq += err * err;
      ++total_count;
    }
  }
  return total_count == 0 ? 0.0 : std::sqrt(total_sq / total_count);
}

void SigmoidRegression::Save(persist::Writer* w) const {
  w->PutBool(trained_);
  w->PutU32(static_cast<uint32_t>(weights_.size()));
  for (double v : weights_) w->PutDouble(v);
  w->PutDouble(bias_);
  w->PutU32(static_cast<uint32_t>(feat_mean_.size()));
  for (double v : feat_mean_) w->PutDouble(v);
  w->PutU32(static_cast<uint32_t>(feat_std_.size()));
  for (double v : feat_std_) w->PutDouble(v);
  w->PutDouble(y_min_);
  w->PutDouble(y_max_);
}

SigmoidRegression SigmoidRegression::Load(persist::Reader* r) {
  SigmoidRegression model;
  const auto get_doubles = [r](std::vector<double>* out) {
    const uint32_t n = r->GetU32();
    out->reserve(std::min<size_t>(n, r->remaining()));
    for (uint32_t i = 0; i < n && r->ok(); ++i) {
      out->push_back(r->GetDouble());
    }
  };
  model.trained_ = r->GetBool();
  get_doubles(&model.weights_);
  model.bias_ = r->GetDouble();
  get_doubles(&model.feat_mean_);
  get_doubles(&model.feat_std_);
  model.y_min_ = r->GetDouble();
  model.y_max_ = r->GetDouble();
  return model;
}

}  // namespace autoindex
