#pragma once

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace autoindex {

namespace persist {
class Reader;
class Writer;
}  // namespace persist

// The paper's deep index-estimation model (Sec. V-B): a one-layer
// regression `cost = Sigmoid(W·C + b)` whose weights are learned from
// historical (cost-feature, measured-cost) pairs. Targets are min-max
// scaled into (0,1) so the sigmoid output covers the cost range; Predict
// de-scales back to cost units.
struct TrainConfig {
  size_t epochs = 300;
  double learning_rate = 0.05;
  size_t batch_size = 16;
  // Adam moments.
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double l2 = 1e-5;
  uint64_t seed = 42;
};

class SigmoidRegression {
 public:
  SigmoidRegression() = default;

  // Fits on a dataset of feature rows X (all the same width) and targets y.
  // Returns the final training MSE in scaled space. Empty input is a no-op
  // returning 0.
  double Train(const std::vector<std::vector<double>>& x,
               const std::vector<double>& y,
               const TrainConfig& config = TrainConfig());

  // Predicts a cost for one feature row. Before any training this returns
  // the plain weighted sum with classical static weights (all 1.0), so an
  // untrained model degrades to the traditional additive cost model.
  double Predict(const std::vector<double>& features) const;

  bool trained() const { return trained_; }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  // k-fold cross-validated RMSE (cost units). Mirrors the paper's 9-fold
  // validation protocol. Returns 0 for datasets smaller than k.
  static double CrossValidate(const std::vector<std::vector<double>>& x,
                              const std::vector<double>& y, size_t folds = 9,
                              const TrainConfig& config = TrainConfig());

  // Snapshot serialization (src/persist/): weights, bias, and the scaler
  // parameters round-trip bit-exactly, so a reloaded model predicts
  // identical costs.
  void Save(persist::Writer* w) const;
  static SigmoidRegression Load(persist::Reader* r);

 private:
  static double Sigmoid(double z);
  // Feature standardization parameters learned at Train time.
  void FitScalers(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y);
  std::vector<double> ScaleFeatures(const std::vector<double>& f) const;

  std::vector<double> weights_;
  double bias_ = 0.0;
  bool trained_ = false;

  std::vector<double> feat_mean_;
  std::vector<double> feat_std_;
  double y_min_ = 0.0;
  double y_max_ = 1.0;
};

}  // namespace autoindex
