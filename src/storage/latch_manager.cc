#include "storage/latch_manager.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

// Latch observability series (DESIGN.md §11). Resolved once; the
// registry hands out stable pointers, so the statics stay valid for the
// process lifetime.
struct LatchMetrics {
  util::Counter* acquisitions;
  util::Counter* contended;
  util::LatencyHistogram* wait_us;
  util::LatencyHistogram* hold_us;

  static const LatchMetrics& Get() {
    static const LatchMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return LatchMetrics{registry.GetCounter("latch.acquisitions"),
                          registry.GetCounter("latch.contended"),
                          registry.GetHistogram("latch.wait_us"),
                          registry.GetHistogram("latch.hold_us")};
    }();
    return metrics;
  }
};

}  // namespace

void LatchManager::Guard::Release() {
  if (manager_ == nullptr || held_.empty()) {
    manager_ = nullptr;
    held_.clear();
    return;
  }
  // One hold-time sample per acquisition batch (the statement-visible
  // critical-section length, not per-table).
  if constexpr (util::kMetricsEnabled) {
    LatchMetrics::Get().hold_us->Record(hold_watch_.ElapsedUs());
  }
  const std::thread::id tid = std::this_thread::get_id();
  bool wake = false;
  {
    util::MutexLock lock(manager_->mu_);
    wake = manager_->waiters_ > 0;
    auto thread_it = manager_->held_by_thread_.find(tid);
    // Reverse acquisition order, mirroring classic lock discipline.
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      auto latch_it = manager_->latches_.find(it->first);
      if (latch_it == manager_->latches_.end()) continue;
      LatchInfo& info = latch_it->second;
      if (it->second == LatchMode::kExclusive) {
        info.writer = false;
      } else {
        --info.readers;
      }
      if (info.readers == 0 && !info.writer && info.waiting_writers == 0) {
        manager_->latches_.erase(latch_it);
      }
      if (thread_it != manager_->held_by_thread_.end()) {
        auto& held = thread_it->second;
        for (auto h = held.begin(); h != held.end(); ++h) {
          if (h->first == it->first && h->second == it->second) {
            held.erase(h);
            break;
          }
        }
      }
    }
    if (thread_it != manager_->held_by_thread_.end() &&
        thread_it->second.empty()) {
      manager_->held_by_thread_.erase(thread_it);
    }
  }
  if (wake) manager_->cv_.NotifyAll();
  manager_ = nullptr;
  held_.clear();
}

const LatchManager::LatchMode* LatchManager::HeldModeLocked(
    std::thread::id tid, const std::string& key) const {
  auto it = held_by_thread_.find(tid);
  if (it == held_by_thread_.end()) return nullptr;
  for (const auto& [name, mode] : it->second) {
    if (name == key) return &mode;
  }
  return nullptr;
}

bool LatchManager::SharedAdmissibleLocked(const std::string& key) const {
  auto it = latches_.find(key);
  return it == latches_.end() ||
         (!it->second.writer && it->second.waiting_writers == 0);
}

LatchManager::Guard LatchManager::Acquire(
    std::vector<LatchRequest> requests) {
  // Normalize to the catalog's case-insensitive keying, then coalesce
  // duplicates to the strongest mode and sort into the global order.
  for (LatchRequest& r : requests) r.table = ToLower(r.table);
  std::sort(requests.begin(), requests.end(),
            [](const LatchRequest& a, const LatchRequest& b) {
              if (a.table != b.table) return a.table < b.table;
              return a.mode == LatchMode::kExclusive &&
                     b.mode == LatchMode::kShared;
            });
  std::vector<LatchRequest> wanted;
  for (LatchRequest& r : requests) {
    if (!wanted.empty() && wanted.back().table == r.table) continue;
    wanted.push_back(std::move(r));
  }

  const std::thread::id tid = std::this_thread::get_id();
  std::vector<std::pair<std::string, LatchMode>> acquired;
  util::MutexLock lock(mu_);
  for (const LatchRequest& r : wanted) {
    if (const LatchMode* held = HeldModeLocked(tid, r.table)) {
      if (r.mode == LatchMode::kExclusive && *held == LatchMode::kShared) {
        // Shared->exclusive upgrades deadlock against other upgraders and
        // are always a statement-scoping bug here; fail fast.
        std::fprintf(stderr,
                     "LatchManager: shared->exclusive upgrade on '%s'\n",
                     r.table.c_str());
        std::abort();
      }
      continue;  // already held at a sufficient mode: nested no-op
    }
    if (r.mode == LatchMode::kExclusive) {
      LatchInfo& info = latches_[r.table];
      if (info.readers != 0 || info.writer) {
        // The map entry stays pinned while waiting_writers > 0 (Release
        // only erases latches nobody holds or waits on), so `info` stays
        // a valid reference across the waits.
        LatchMetrics::Get().contended->Add();
        util::ScopedTimer wait_timer(LatchMetrics::Get().wait_us);
        // Contended-path span: records only thread-local trace state, so
        // it is safe under mu_ (no lock-order edge).
        obs::ScopedSpan wait_span("latch.wait");
        ++info.waiting_writers;
        ++waiters_;
        do {
          cv_.Wait(mu_);
        } while (info.readers != 0 || info.writer);
        --waiters_;
        --info.waiting_writers;
      }
      info.writer = true;
    } else {
      // Writer preference: a new reader also waits for queued writers so
      // a steady reader stream cannot starve index builds / updates.
      if (!SharedAdmissibleLocked(r.table)) {
        LatchMetrics::Get().contended->Add();
        util::ScopedTimer wait_timer(LatchMetrics::Get().wait_us);
        obs::ScopedSpan wait_span("latch.wait");
        ++waiters_;
        do {
          cv_.Wait(mu_);
        } while (!SharedAdmissibleLocked(r.table));
        --waiters_;
      }
      ++latches_[r.table].readers;
    }
    held_by_thread_[tid].emplace_back(r.table, r.mode);
    acquired.emplace_back(r.table, r.mode);
    ++total_acquisitions_;
    LatchMetrics::Get().acquisitions->Add();
  }
  return Guard(this, std::move(acquired));
}

LatchManager::Guard LatchManager::AcquireShared(
    const std::vector<std::string>& tables) {
  std::vector<LatchRequest> requests;
  requests.reserve(tables.size());
  for (const std::string& t : tables) {
    requests.push_back({t, LatchMode::kShared});
  }
  return Acquire(std::move(requests));
}

LatchManager::Guard LatchManager::AcquireExclusive(const std::string& table) {
  return Acquire({{table, LatchMode::kExclusive}});
}

LatchManager::DebugSnapshot LatchManager::Snapshot() const {
  DebugSnapshot snap;
  util::MutexLock lock(mu_);
  snap.latches.reserve(latches_.size());
  for (const auto& [table, info] : latches_) {
    snap.latches.push_back(
        {table, info.readers, info.writer, info.waiting_writers});
  }
  snap.threads.reserve(held_by_thread_.size());
  for (const auto& [tid, held] : held_by_thread_) {
    (void)tid;
    snap.threads.push_back({held});
  }
  return snap;
}

size_t LatchManager::total_acquisitions() const {
  util::MutexLock lock(mu_);
  return total_acquisitions_;
}

void LatchManager::TestOnlyAddPhantomReader(const std::string& table) {
  util::MutexLock lock(mu_);
  ++latches_[ToLower(table)].readers;
}

}  // namespace autoindex
