#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace autoindex {

// Owns all tables of one database instance. Table names are
// case-insensitive.
//
// Thread safety: the table *map* is guarded by an internal shared_mutex,
// so concurrent lookups and DDL are safe. The returned HeapTable pointers
// stay stable until DropTable; protecting the table *contents* is the
// LatchManager's job, not the catalog's.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Creates an empty table; fails if the name is taken.
  StatusOr<HeapTable*> CreateTable(const std::string& name, Schema schema);

  Status DropTable(const std::string& name);

  // nullptr when absent.
  HeapTable* GetTable(const std::string& name);
  const HeapTable* GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  size_t num_tables() const;

  // Sum of heap bytes across all tables (excludes indexes).
  size_t TotalHeapBytes() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<HeapTable>> tables_;
};

}  // namespace autoindex
