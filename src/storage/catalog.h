#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/mutex.h"
#include "util/status.h"

namespace autoindex {

// Owns all tables of one database instance. Table names are
// case-insensitive.
//
// Thread safety: the table *map* is guarded by an internal shared_mutex,
// so concurrent lookups and DDL are safe. The returned HeapTable pointers
// stay stable until DropTable; protecting the table *contents* is the
// LatchManager's job, not the catalog's.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Creates an empty table; fails if the name is taken.
  StatusOr<HeapTable*> CreateTable(const std::string& name, Schema schema)
      EXCLUDES(mu_);

  Status DropTable(const std::string& name) EXCLUDES(mu_);

  // nullptr when absent.
  HeapTable* GetTable(const std::string& name) EXCLUDES(mu_);
  const HeapTable* GetTable(const std::string& name) const EXCLUDES(mu_);

  std::vector<std::string> TableNames() const EXCLUDES(mu_);

  size_t num_tables() const EXCLUDES(mu_);

  // Sum of heap bytes across all tables (excludes indexes).
  size_t TotalHeapBytes() const EXCLUDES(mu_);

 private:
  mutable util::SharedMutex mu_;
  std::unordered_map<std::string, std::unique_ptr<HeapTable>> tables_
      GUARDED_BY(mu_);
};

}  // namespace autoindex
