#pragma once

#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"

namespace autoindex {

// Table-level reader–writer latch manager: the concurrency substrate that
// lets many client sessions execute statements against one Database while
// the AutoIndex manager tunes in the background. SELECT takes shared
// latches on every referenced table; INSERT/UPDATE/DELETE, index
// build/drop, and bulk loads take an exclusive latch on their table.
//
// Deadlock freedom: every multi-table acquisition sorts the (lowercased)
// table names and latches them in that fixed global order, so wait-for
// cycles cannot form. Waiting writers block *new* readers (writer
// preference) but never a thread that already holds the latch — nested
// re-acquisition by the same thread (e.g. lazy statistics builds running
// under a statement's latch) is a recorded no-op, which also rules out
// self-deadlock.
//
// Upgrades (shared held, exclusive requested by the same thread) are a
// programming error and abort loudly: statements acquire every latch they
// need up front at their final mode, so an upgrade can only be a bug.
//
// The manager tracks who holds what (per-latch reader/writer counts and
// each thread's held list in acquisition order). That bookkeeping is what
// the LatchValidator in src/check/ audits: counts must agree with the
// per-thread lists, no latch may be held shared and exclusive at once, and
// every thread's held list must respect the global sort order.
class LatchManager {
 public:
  enum class LatchMode { kShared, kExclusive };

  struct LatchRequest {
    std::string table;
    LatchMode mode = LatchMode::kShared;
  };

  // RAII release of one acquisition batch. Must be destroyed (or
  // Release()d) on the thread that acquired it. Movable, not copyable; a
  // default-constructed guard holds nothing.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept
        : manager_(other.manager_),
          held_(std::move(other.held_)),
          hold_watch_(other.hold_watch_) {
      other.manager_ = nullptr;
      other.held_.clear();
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        held_ = std::move(other.held_);
        hold_watch_ = other.hold_watch_;
        other.manager_ = nullptr;
        other.held_.clear();
      }
      return *this;
    }
    ~Guard() { Release(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    // Releases every latch this guard holds (reverse acquisition order);
    // idempotent.
    void Release();

    // Number of latches this guard actually acquired (nested re-entries
    // are no-ops and do not count).
    size_t num_held() const { return held_.size(); }

   private:
    friend class LatchManager;
    Guard(LatchManager* manager,
          std::vector<std::pair<std::string, LatchMode>> held)
        : manager_(manager), held_(std::move(held)) {
      // Hold-time accounting starts once the whole batch is granted;
      // compiled-out metrics skip the clock read.
      if constexpr (util::kMetricsEnabled) {
        if (!held_.empty()) hold_watch_.Restart();
      }
    }

    LatchManager* manager_ = nullptr;
    std::vector<std::pair<std::string, LatchMode>> held_;
    // Armed only for guards that actually acquired something.
    util::Stopwatch hold_watch_{util::Stopwatch::DeferStart{}};
  };

  LatchManager() = default;
  LatchManager(const LatchManager&) = delete;
  LatchManager& operator=(const LatchManager&) = delete;

  // Acquires every requested latch in the fixed global (sorted-name)
  // order, blocking as needed. Duplicate tables are coalesced to their
  // strongest requested mode. Tables the calling thread already holds (at
  // a sufficient mode) are skipped.
  Guard Acquire(std::vector<LatchRequest> requests) EXCLUDES(mu_);

  // Conveniences for the two statement shapes.
  Guard AcquireShared(const std::vector<std::string>& tables) EXCLUDES(mu_);
  Guard AcquireExclusive(const std::string& table) EXCLUDES(mu_);

  // --- Introspection (LatchValidator / diagnostics) -------------------
  struct TableLatchState {
    std::string table;
    int readers = 0;
    bool writer = false;
    int waiting_writers = 0;
  };
  struct ThreadHeldList {
    // Held latches in acquisition order (must be sorted by table name).
    std::vector<std::pair<std::string, LatchMode>> held;
  };
  struct DebugSnapshot {
    std::vector<TableLatchState> latches;
    std::vector<ThreadHeldList> threads;
  };
  // One consistent snapshot of every latch's state and every thread's
  // held list (both taken under the same internal lock).
  DebugSnapshot Snapshot() const EXCLUDES(mu_);

  // Lifetime count of granted (non-nested) acquisitions.
  size_t total_acquisitions() const EXCLUDES(mu_);

  // --- Test-only corruption hook (see src/check/) ---------------------
  // Bumps a latch's reader count without any thread recording the hold,
  // so the LatchValidator's cross-check must fire. Never call outside
  // tests.
  void TestOnlyAddPhantomReader(const std::string& table) EXCLUDES(mu_);

 private:
  struct LatchInfo {
    int readers = 0;
    bool writer = false;
    int waiting_writers = 0;
  };

  // Mode the calling thread already holds on `key` (nullptr = not held).
  const LatchMode* HeldModeLocked(std::thread::id tid,
                                  const std::string& key) const
      REQUIRES(mu_);

  // Whether a new shared acquisition of `key` may proceed (no writer holds
  // it and none is queued — writer preference).
  bool SharedAdmissibleLocked(const std::string& key) const REQUIRES(mu_);

  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::unordered_map<std::string, LatchInfo> latches_ GUARDED_BY(mu_);
  // Per-thread held latches in acquisition order; entries removed on
  // release, thread entries erased when empty.
  std::unordered_map<std::thread::id,
                     std::vector<std::pair<std::string, LatchMode>>>
      held_by_thread_ GUARDED_BY(mu_);
  size_t total_acquisitions_ GUARDED_BY(mu_) = 0;
  // Threads currently blocked in cv_.wait. Release skips the notify when
  // nobody is parked — the overwhelmingly common case on uncontended
  // single-thread paths, where the syscall would be pure overhead.
  size_t waiters_ GUARDED_BY(mu_) = 0;
};

}  // namespace autoindex
