#include "storage/catalog.h"

#include <algorithm>

#include "util/string_util.h"

namespace autoindex {

StatusOr<HeapTable*> Catalog::CreateTable(const std::string& name,
                                          Schema schema) {
  const std::string key = ToLower(name);
  util::WriterLock lock(mu_);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + key);
  }
  auto table = std::make_unique<HeapTable>(key, std::move(schema));
  HeapTable* ptr = table.get();
  tables_.emplace(key, std::move(table));
  return ptr;
}

Status Catalog::DropTable(const std::string& name) {
  util::WriterLock lock(mu_);
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::Ok();
}

HeapTable* Catalog::GetTable(const std::string& name) {
  util::ReaderLock lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const HeapTable* Catalog::GetTable(const std::string& name) const {
  util::ReaderLock lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  util::ReaderLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t Catalog::num_tables() const {
  util::ReaderLock lock(mu_);
  return tables_.size();
}

size_t Catalog::TotalHeapBytes() const {
  util::ReaderLock lock(mu_);
  size_t total = 0;
  for (const auto& [_, table] : tables_) total += table->SizeBytes();
  return total;
}

}  // namespace autoindex
