#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/btree.h"
#include "index/index_def.h"
#include "storage/catalog.h"
#include "util/mutex.h"
#include "util/status.h"

namespace autoindex {

// A materialized secondary index: definition + one B+Tree (global) or one
// tree per table partition (local), plus runtime usage counters that feed
// the index-diagnosis module.
class BuiltIndex {
 public:
  // `table` supplies the schema and (for local indexes) the partitioning.
  BuiltIndex(IndexDef def, const HeapTable& table);

  const IndexDef& def() const { return def_; }
  bool is_local() const { return trees_.size() > 1; }
  size_t num_trees() const { return trees_.size(); }

  // The single tree of a global/unpartitioned index (tests, stats).
  BTree& tree() { return *trees_[0]; }
  const BTree& tree() const { return *trees_[0]; }
  BTree& tree_at(size_t i) { return *trees_[i]; }
  const BTree& tree_at(size_t i) const { return *trees_[i]; }

  // Extracts this index's key from a full table row.
  Row KeyFromRow(const Row& row) const;

  // Entry maintenance, routed to the owning partition's tree.
  void InsertEntry(const Row& full_row, RowId rid);
  bool DeleteEntry(const Row& full_row, RowId rid);

  // Scans the index. For a local index, `partition_value` (the bound value
  // of the table's partition column, when the query pins it) restricts the
  // scan to one partition tree; null scans every tree. Bounds as in
  // BTree::Scan. Pages touched accumulate into *pages_touched.
  void Scan(const Value* partition_value, const Row* lo, bool lo_inclusive,
            const Row* hi, bool hi_inclusive,
            const std::function<bool(const Row&, RowId)>& fn,
            size_t* pages_touched = nullptr) const;

  size_t num_entries() const;
  // Height of the (tallest) tree — H in the maintenance-cost formula.
  size_t height() const;
  size_t num_splits() const;
  size_t SizeBytes() const;

  // Planner usage accounting (Sec. III "rarely-used indexes"). Atomic:
  // bumped by planner threads under a shared latch, read/reset by the
  // tuning thread.
  void RecordUse() { uses_.fetch_add(1, std::memory_order_relaxed); }
  size_t uses() const { return uses_.load(std::memory_order_relaxed); }
  void ResetUses() { uses_.store(0, std::memory_order_relaxed); }

  // Maintenance accounting: number of write operations applied.
  size_t maintenance_ops() const {
    return maintenance_ops_.load(std::memory_order_relaxed);
  }
  void RecordMaintenance() {
    maintenance_ops_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  IndexDef def_;
  const HeapTable* table_;
  std::vector<int> column_ordinals_;
  std::vector<std::unique_ptr<BTree>> trees_;
  std::atomic<size_t> uses_{0};
  std::atomic<size_t> maintenance_ops_{0};
};

// A what-if index (Sec. V C2.1): never built, its statistics are estimated
// from the table so the planner/cost model can price plans as if it
// existed. This substitutes for openGauss's hypopg extension.
struct HypotheticalIndex {
  IndexDef def;
  size_t est_entries = 0;
  size_t est_height = 1;
  size_t est_bytes = kPageSizeBytes;
};

// Uniform statistics view over built and hypothetical indexes; everything
// the cost model needs (N, H, pages — Sec. V-A). For local indexes,
// `height` is the per-partition tree height and `partitions` the number of
// trees an unpruned lookup must probe.
struct IndexStatsView {
  IndexDef def;
  size_t num_entries = 0;
  size_t height = 1;
  size_t size_bytes = kPageSizeBytes;
  size_t partitions = 1;
  bool hypothetical = false;
};

// Fills the estimated entry count / height / size of `def` over `table`
// (shared by hypothetical registration and what-if configs).
IndexStatsView EstimateStatsView(const IndexDef& def, const HeapTable& table);

// Owns every secondary index of a database and keeps them consistent with
// table writes. Also hosts the hypothetical-index registry.
//
// Thread safety: the index *map* is guarded by an internal shared_mutex
// (concurrent lookups vs index build/drop). Mutating an index's *entries*
// (OnInsert/OnDelete/OnUpdate, CreateIndex's build scan) requires the
// owning table's exclusive latch, same as the heap rows they shadow.
class IndexManager {
 public:
  explicit IndexManager(Catalog* catalog) : catalog_(catalog) {}

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  // Builds a real index by scanning the table. Fails on duplicates
  // (same column list) or unknown table/columns.
  Status CreateIndex(const IndexDef& def) EXCLUDES(mu_);
  Status DropIndex(const std::string& index_key_or_name) EXCLUDES(mu_);
  bool HasIndex(const IndexDef& def) const EXCLUDES(mu_);

  // Table owning the index named by key or display name; empty string if
  // the index is unknown. Used to pick the exclusive latch before a drop.
  std::string TableOf(const std::string& index_key_or_name) const
      EXCLUDES(mu_);

  // All built indexes on one table (borrowed pointers).
  std::vector<BuiltIndex*> IndexesOnTable(const std::string& table)
      EXCLUDES(mu_);
  std::vector<const BuiltIndex*> IndexesOnTable(const std::string& table) const
      EXCLUDES(mu_);
  std::vector<BuiltIndex*> AllIndexes() EXCLUDES(mu_);
  std::vector<const BuiltIndex*> AllIndexes() const EXCLUDES(mu_);
  size_t num_indexes() const EXCLUDES(mu_);

  // Total bytes of all built indexes.
  size_t TotalIndexBytes() const EXCLUDES(mu_);

  // Write hooks called by the executor to keep indexes in sync. Each
  // returns the number of index entries touched (for cost accounting).
  size_t OnInsert(const std::string& table, RowId rid, const Row& row);
  size_t OnDelete(const std::string& table, RowId rid, const Row& row);
  size_t OnUpdate(const std::string& table, RowId rid, const Row& old_row,
                  const Row& new_row);

  // --- Hypothetical indexes ---
  Status AddHypothetical(const IndexDef& def) EXCLUDES(mu_);
  void ClearHypothetical() EXCLUDES(mu_);
  // Snapshot by value: the registry may be swapped by a concurrent
  // what-if round.
  std::vector<HypotheticalIndex> hypothetical() const EXCLUDES(mu_);

  // Stats views of every index (built + hypothetical) on a table; this is
  // what the what-if planner enumerates.
  std::vector<IndexStatsView> StatsOnTable(const std::string& table) const
      EXCLUDES(mu_);

 private:
  Status ValidateDef(const IndexDef& def) const;

  Catalog* catalog_;
  mutable util::SharedMutex mu_;
  // Keyed by IndexDef::Key().
  std::unordered_map<std::string, std::unique_ptr<BuiltIndex>> indexes_
      GUARDED_BY(mu_);
  std::vector<HypotheticalIndex> hypothetical_ GUARDED_BY(mu_);
};

}  // namespace autoindex
