#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/btree.h"
#include "index/index_def.h"
#include "storage/catalog.h"
#include "util/mutex.h"
#include "util/status.h"

namespace autoindex {

// Lifecycle state of a built index (DESIGN.md §10).
//
//   kBuilding → kReady → kDropping
//
// kReady indexes are the only ones the planner sees and the only ones a
// checkpoint serializes. A kBuilding index is being populated online: the
// builder scans the heap under a *shared* table latch while concurrent
// writer maintenance lands in a side-delta buffer instead of the trees.
// kDropping marks an index in the instant before it is unlinked, so a
// stale borrowed pointer can be diagnosed by validators.
enum class IndexState { kBuilding, kReady, kDropping };

const char* IndexStateName(IndexState state);

// A materialized secondary index: definition + one B+Tree (global) or one
// tree per table partition (local), plus runtime usage counters that feed
// the index-diagnosis module.
class BuiltIndex {
 public:
  // `table` supplies the schema and (for local indexes) the partitioning.
  // Indexes start kReady by default (blocking build, tests); the online
  // build path constructs them kBuilding.
  BuiltIndex(IndexDef def, const HeapTable& table,
             IndexState state = IndexState::kReady);

  const IndexDef& def() const { return def_; }
  bool is_local() const { return trees_.size() > 1; }
  size_t num_trees() const { return trees_.size(); }

  // The single tree of a global/unpartitioned index (tests, stats).
  BTree& tree() { return *trees_[0]; }
  const BTree& tree() const { return *trees_[0]; }
  BTree& tree_at(size_t i) { return *trees_[i]; }
  const BTree& tree_at(size_t i) const { return *trees_[i]; }

  // Extracts this index's key from a full table row.
  Row KeyFromRow(const Row& row) const;

  // Entry maintenance, routed to the owning partition's tree. While the
  // index is kBuilding these buffer the operation into the side delta
  // instead (the caller holds the table's exclusive latch either way);
  // DeleteEntry then reports true because the delta will settle it.
  void InsertEntry(const Row& full_row, RowId rid) EXCLUDES(delta_mu_);
  bool DeleteEntry(const Row& full_row, RowId rid) EXCLUDES(delta_mu_);

  // --- Lifecycle ---
  IndexState state() const { return state_.load(std::memory_order_acquire); }
  bool ready() const { return state() == IndexState::kReady; }
  void set_state(IndexState s) {
    state_.store(s, std::memory_order_release);
  }

  // --- Online-build support (only meaningful while kBuilding) ---
  // Direct tree insert used by the build's snapshot scan; bypasses the
  // delta buffer. Only the builder thread calls this.
  void BuildInsert(const Row& full_row, RowId rid);
  // Pops up to `max_ops` buffered delta operations and applies them to
  // the trees. Inserts apply delete-then-insert: RowIds are never reused,
  // so (key,rid) pins the entry and re-application of a row the snapshot
  // scan already saw stays single-entry. Returns the ops applied.
  size_t ApplyDeltaBatch(size_t max_ops) EXCLUDES(delta_mu_);
  size_t delta_pending() const EXCLUDES(delta_mu_);
  // Drains the remaining delta and flips the state to kReady. The caller
  // must hold the table's exclusive latch so no new delta ops can arrive.
  void Publish() EXCLUDES(delta_mu_);

  // Scans the index. For a local index, `partition_value` (the bound value
  // of the table's partition column, when the query pins it) restricts the
  // scan to one partition tree; null scans every tree. Bounds as in
  // BTree::Scan. Pages touched accumulate into *pages_touched.
  void Scan(const Value* partition_value, const Row* lo, bool lo_inclusive,
            const Row* hi, bool hi_inclusive,
            const std::function<bool(const Row&, RowId)>& fn,
            size_t* pages_touched = nullptr) const;

  size_t num_entries() const;
  // Height of the (tallest) tree — H in the maintenance-cost formula.
  size_t height() const;
  size_t num_splits() const;
  size_t SizeBytes() const;

  // Planner usage accounting (Sec. III "rarely-used indexes"). Atomic:
  // bumped by planner threads under a shared latch, read/reset by the
  // tuning thread.
  void RecordUse() { uses_.fetch_add(1, std::memory_order_relaxed); }
  size_t uses() const { return uses_.load(std::memory_order_relaxed); }
  void ResetUses() { uses_.store(0, std::memory_order_relaxed); }

  // Maintenance accounting: number of write operations applied.
  size_t maintenance_ops() const {
    return maintenance_ops_.load(std::memory_order_relaxed);
  }
  void RecordMaintenance() {
    maintenance_ops_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  // One buffered writer operation against a kBuilding index. The full row
  // is kept so partition routing can be recomputed at apply time.
  struct DeltaOp {
    enum class Kind { kInsert, kDelete };
    Kind kind;
    Row row;
    RowId rid;
  };

  // Shard-routed tree mutation (the pre-lifecycle InsertEntry/DeleteEntry
  // bodies).
  void TreeInsert(const Row& full_row, RowId rid);
  bool TreeDelete(const Row& full_row, RowId rid);

  IndexDef def_;
  const HeapTable* table_;
  std::vector<int> column_ordinals_;
  std::vector<std::unique_ptr<BTree>> trees_;
  std::atomic<IndexState> state_{IndexState::kReady};
  std::atomic<size_t> uses_{0};
  std::atomic<size_t> maintenance_ops_{0};
  mutable util::Mutex delta_mu_;
  std::deque<DeltaOp> delta_ GUARDED_BY(delta_mu_);
};

// A what-if index (Sec. V C2.1): never built, its statistics are estimated
// from the table so the planner/cost model can price plans as if it
// existed. This substitutes for openGauss's hypopg extension.
struct HypotheticalIndex {
  IndexDef def;
  size_t est_entries = 0;
  size_t est_height = 1;
  size_t est_bytes = kPageSizeBytes;
};

// Uniform statistics view over built and hypothetical indexes; everything
// the cost model needs (N, H, pages — Sec. V-A). For local indexes,
// `height` is the per-partition tree height and `partitions` the number of
// trees an unpruned lookup must probe.
struct IndexStatsView {
  IndexDef def;
  size_t num_entries = 0;
  size_t height = 1;
  size_t size_bytes = kPageSizeBytes;
  size_t partitions = 1;
  bool hypothetical = false;
};

// Fills the estimated entry count / height / size of `def` over `table`
// (shared by hypothetical registration and what-if configs).
IndexStatsView EstimateStatsView(const IndexDef& def, const HeapTable& table);

// Owns every secondary index of a database and keeps them consistent with
// table writes. Also hosts the hypothetical-index registry.
//
// Thread safety: the index *map* is guarded by an internal shared_mutex
// (concurrent lookups vs index build/drop). Mutating an index's *entries*
// (OnInsert/OnDelete/OnUpdate, CreateIndex's build scan) requires the
// owning table's exclusive latch, same as the heap rows they shadow.
class IndexManager {
 public:
  explicit IndexManager(Catalog* catalog) : catalog_(catalog) {}

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  // Builds a real index by scanning the table, blocking writers for the
  // duration (the caller holds the table's exclusive latch). Fails on
  // duplicates (same column list, whether ready or in-flight) or unknown
  // table/columns — existence is checked *before* the build scan.
  // Production DDL goes through Database::CreateIndex's online phased
  // build instead (see the direct-index-build lint rule).
  Status CreateIndex(const IndexDef& def) EXCLUDES(mu_);
  Status DropIndex(const std::string& index_key_or_name) EXCLUDES(mu_);
  bool HasIndex(const IndexDef& def) const EXCLUDES(mu_);

  // --- Online build lifecycle (driven by Database::CreateIndex) ---
  // Registers an empty kBuilding index and returns a borrowed pointer.
  // From this moment writer maintenance reaches it (via
  // WriteVisibleOnTable) and buffers into its side delta; the planner
  // does not see it until PublishBuild. Caller holds the table's
  // exclusive latch for the registration instant.
  StatusOr<BuiltIndex*> BeginBuild(const IndexDef& def) EXCLUDES(mu_);
  // Drains the build's remaining delta into its trees. The caller holds
  // the table's exclusive latch, so the delta cannot grow concurrently.
  Status FinishBuildDrain(const std::string& key) EXCLUDES(mu_);
  // Flips the build to kReady and moves it into the planner-visible map.
  Status PublishBuild(const std::string& key) EXCLUDES(mu_);
  // Abandons an in-flight build, discarding its trees and delta.
  Status AbortBuild(const std::string& key) EXCLUDES(mu_);

  // Table owning the index named by key or display name; empty string if
  // the index is unknown. Used to pick the exclusive latch before a drop.
  std::string TableOf(const std::string& index_key_or_name) const
      EXCLUDES(mu_);

  // All *ready* indexes on one table (borrowed pointers). Read-path
  // accessors deliberately exclude in-flight builds: the planner, the
  // cost model, diagnosis, and checkpoints must never observe kBuilding.
  std::vector<BuiltIndex*> IndexesOnTable(const std::string& table)
      EXCLUDES(mu_);
  std::vector<const BuiltIndex*> IndexesOnTable(const std::string& table) const
      EXCLUDES(mu_);
  std::vector<BuiltIndex*> AllIndexes() EXCLUDES(mu_);
  std::vector<const BuiltIndex*> AllIndexes() const EXCLUDES(mu_);
  size_t num_indexes() const EXCLUDES(mu_);

  // Ready + building indexes on a table: everything the write path must
  // maintain so an in-flight build misses no mutation.
  std::vector<BuiltIndex*> WriteVisibleOnTable(const std::string& table)
      EXCLUDES(mu_);
  // Every index in any state (shell \indexes, validators).
  std::vector<const BuiltIndex*> AllIndexesAnyState() const EXCLUDES(mu_);

  // Total bytes of all built indexes.
  size_t TotalIndexBytes() const EXCLUDES(mu_);

  // Write hooks called by the executor to keep indexes in sync. Each
  // returns the number of index entries touched (for cost accounting).
  size_t OnInsert(const std::string& table, RowId rid, const Row& row);
  size_t OnDelete(const std::string& table, RowId rid, const Row& row);
  size_t OnUpdate(const std::string& table, RowId rid, const Row& old_row,
                  const Row& new_row);

  // --- Hypothetical indexes ---
  Status AddHypothetical(const IndexDef& def) EXCLUDES(mu_);
  void ClearHypothetical() EXCLUDES(mu_);
  // Snapshot by value: the registry may be swapped by a concurrent
  // what-if round.
  std::vector<HypotheticalIndex> hypothetical() const EXCLUDES(mu_);

  // Stats views of every index (built + hypothetical) on a table; this is
  // what the what-if planner enumerates.
  std::vector<IndexStatsView> StatsOnTable(const std::string& table) const
      EXCLUDES(mu_);

 private:
  Status ValidateDef(const IndexDef& def) const;

  Catalog* catalog_;
  mutable util::SharedMutex mu_;
  // Ready (planner-visible) indexes, keyed by IndexDef::Key().
  std::unordered_map<std::string, std::unique_ptr<BuiltIndex>> indexes_
      GUARDED_BY(mu_);
  // In-flight online builds (state kBuilding), same keying. Disjoint from
  // indexes_; PublishBuild moves an entry across.
  std::unordered_map<std::string, std::unique_ptr<BuiltIndex>> builds_
      GUARDED_BY(mu_);
  std::vector<HypotheticalIndex> hypothetical_ GUARDED_BY(mu_);
};

}  // namespace autoindex
