#include "index/index_manager.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

// Online-build delta observability (DESIGN.md §11): buffered vs applied
// ops plus the instantaneous backlog depth — the signal that a write
// storm is outrunning the catch-up drain.
struct DeltaMetrics {
  util::Counter* buffered;
  util::Counter* applied;
  util::Gauge* backlog;

  static const DeltaMetrics& Get() {
    static const DeltaMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return DeltaMetrics{registry.GetCounter("index.delta.buffered"),
                          registry.GetCounter("index.delta.applied"),
                          registry.GetGauge("index.build.delta_backlog")};
    }();
    return metrics;
  }
};

// Global indexes over partitioned tables carry a partition pointer per
// entry (the reason they cost more space than local indexes).
constexpr size_t kGlobalPartitionPointerBytes = 8;

size_t EffectiveKeyWidth(const IndexDef& def, const HeapTable& table) {
  size_t width = def.KeyWidth(table.schema());
  if (def.kind == IndexKind::kGlobal && table.partitioned()) {
    width += kGlobalPartitionPointerBytes;
  }
  return width;
}

// Deterministic iteration order for the accessors: the backing map is an
// unordered_map, but snapshots serialize whatever order AllIndexes /
// IndexesOnTable return, so they sort by display name (key as tiebreak —
// display names can collide across index kinds) to keep checkpoint bytes
// stable across runs.
template <typename IndexPtr>
void SortByDisplayName(std::vector<IndexPtr>* indexes) {
  std::sort(indexes->begin(), indexes->end(),
            [](const IndexPtr& a, const IndexPtr& b) {
              const std::string an = a->def().DisplayName();
              const std::string bn = b->def().DisplayName();
              if (an != bn) return an < bn;
              return a->def().Key() < b->def().Key();
            });
}

// Batch size for draining the side delta; bounds how long delta_mu_ is
// held per swap and how much is applied between latch re-acquisitions.
constexpr size_t kDeltaDrainBatch = 1024;

}  // namespace

const char* IndexStateName(IndexState state) {
  switch (state) {
    case IndexState::kBuilding:
      return "building";
    case IndexState::kReady:
      return "ready";
    case IndexState::kDropping:
      return "dropping";
  }
  return "unknown";
}

BuiltIndex::BuiltIndex(IndexDef def, const HeapTable& table, IndexState state)
    : def_(std::move(def)), table_(&table), state_(state) {
  column_ordinals_.reserve(def_.columns.size());
  for (const std::string& col : def_.columns) {
    column_ordinals_.push_back(table.schema().FindColumn(col));
  }
  const size_t capacity =
      LeafCapacityForWidth(EffectiveKeyWidth(def_, table));
  const size_t trees = (def_.kind == IndexKind::kLocal && table.partitioned())
                           ? table.num_partitions()
                           : 1;
  trees_.reserve(trees);
  for (size_t i = 0; i < trees; ++i) {
    trees_.push_back(std::make_unique<BTree>(capacity, capacity));
  }
}

Row BuiltIndex::KeyFromRow(const Row& row) const {
  Row key;
  key.reserve(column_ordinals_.size());
  for (int ord : column_ordinals_) {
    key.push_back(ord >= 0 ? row[static_cast<size_t>(ord)] : Value::Null());
  }
  return key;
}

void BuiltIndex::TreeInsert(const Row& full_row, RowId rid) {
  const size_t shard =
      is_local() ? table_->PartitionOfRow(full_row) % trees_.size() : 0;
  trees_[shard]->Insert(KeyFromRow(full_row), rid);
}

bool BuiltIndex::TreeDelete(const Row& full_row, RowId rid) {
  const size_t shard =
      is_local() ? table_->PartitionOfRow(full_row) % trees_.size() : 0;
  return trees_[shard]->Delete(KeyFromRow(full_row), rid);
}

void BuiltIndex::InsertEntry(const Row& full_row, RowId rid) {
  if (state() == IndexState::kBuilding) {
    util::MutexLock lock(delta_mu_);
    delta_.push_back(DeltaOp{DeltaOp::Kind::kInsert, full_row, rid});
    DeltaMetrics::Get().buffered->Add();
    DeltaMetrics::Get().backlog->Set(static_cast<int64_t>(delta_.size()));
    return;
  }
  TreeInsert(full_row, rid);
}

bool BuiltIndex::DeleteEntry(const Row& full_row, RowId rid) {
  if (state() == IndexState::kBuilding) {
    util::MutexLock lock(delta_mu_);
    delta_.push_back(DeltaOp{DeltaOp::Kind::kDelete, full_row, rid});
    DeltaMetrics::Get().buffered->Add();
    DeltaMetrics::Get().backlog->Set(static_cast<int64_t>(delta_.size()));
    return true;  // the buffered op settles it at apply time
  }
  return TreeDelete(full_row, rid);
}

void BuiltIndex::BuildInsert(const Row& full_row, RowId rid) {
  TreeInsert(full_row, rid);
}

size_t BuiltIndex::ApplyDeltaBatch(size_t max_ops) {
  std::vector<DeltaOp> batch;
  {
    util::MutexLock lock(delta_mu_);
    const size_t take = std::min(max_ops, delta_.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(delta_.front()));
      delta_.pop_front();
    }
    DeltaMetrics::Get().applied->Add(take);
    DeltaMetrics::Get().backlog->Set(static_cast<int64_t>(delta_.size()));
  }
  // Applied outside delta_mu_: while kBuilding only the builder thread
  // touches the trees (writers buffer; readers never see the index).
  for (const DeltaOp& op : batch) {
    // Delete-then-insert makes delta application idempotent against the
    // snapshot scan: a row both scanned and buffered collapses to one
    // entry because RowIds are never reused, so (key,rid) pins it.
    TreeDelete(op.row, op.rid);
    if (op.kind == DeltaOp::Kind::kInsert) TreeInsert(op.row, op.rid);
  }
  return batch.size();
}

size_t BuiltIndex::delta_pending() const {
  util::MutexLock lock(delta_mu_);
  return delta_.size();
}

void BuiltIndex::Publish() {
  while (ApplyDeltaBatch(kDeltaDrainBatch) > 0) {
  }
  set_state(IndexState::kReady);
}

void BuiltIndex::Scan(const Value* partition_value, const Row* lo,
                      bool lo_inclusive, const Row* hi, bool hi_inclusive,
                      const std::function<bool(const Row&, RowId)>& fn,
                      size_t* pages_touched) const {
  if (is_local() && partition_value != nullptr) {
    const size_t shard =
        table_->PartitionOfValue(*partition_value) % trees_.size();
    trees_[shard]->Scan(lo, lo_inclusive, hi, hi_inclusive, fn,
                        pages_touched);
    return;
  }
  // Global index, or local without partition pruning: every tree.
  bool keep_going = true;
  for (const auto& tree : trees_) {
    if (!keep_going) break;
    tree->Scan(lo, lo_inclusive, hi, hi_inclusive,
               [&](const Row& key, RowId rid) {
                 keep_going = fn(key, rid);
                 return keep_going;
               },
               pages_touched);
  }
}

size_t BuiltIndex::num_entries() const {
  size_t total = 0;
  for (const auto& tree : trees_) total += tree->num_entries();
  return total;
}

size_t BuiltIndex::height() const {
  size_t h = 1;
  for (const auto& tree : trees_) h = std::max(h, tree->height());
  return h;
}

size_t BuiltIndex::num_splits() const {
  size_t total = 0;
  for (const auto& tree : trees_) total += tree->num_splits();
  return total;
}

size_t BuiltIndex::SizeBytes() const {
  size_t nodes = 0;
  for (const auto& tree : trees_) nodes += tree->num_nodes();
  return nodes * kPageSizeBytes;
}

IndexStatsView EstimateStatsView(const IndexDef& def,
                                 const HeapTable& table) {
  IndexStatsView view;
  view.def = def;
  view.hypothetical = true;
  const size_t width = EffectiveKeyWidth(def, table);
  view.num_entries = table.num_rows();
  if (def.kind == IndexKind::kLocal && table.partitioned()) {
    view.partitions = table.num_partitions();
    const size_t per_tree =
        std::max<size_t>(1, view.num_entries / view.partitions);
    view.height = EstimateIndexHeight(per_tree, width);
    view.size_bytes =
        view.partitions * EstimateIndexBytes(per_tree, width);
  } else {
    view.partitions = 1;
    view.height = EstimateIndexHeight(view.num_entries, width);
    view.size_bytes = EstimateIndexBytes(view.num_entries, width);
  }
  return view;
}

Status IndexManager::ValidateDef(const IndexDef& def) const {
  if (def.columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  const HeapTable* table = catalog_->GetTable(def.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + def.table);
  }
  for (const std::string& col : def.columns) {
    if (!table->schema().HasColumn(col)) {
      return Status::NotFound(
          StrFormat("no column %s in table %s", col.c_str(),
                    def.table.c_str()));
    }
  }
  return Status::Ok();
}

Status IndexManager::CreateIndex(const IndexDef& def) {
  Status s = ValidateDef(def);
  if (!s.ok()) return s;
  const std::string key = def.Key();
  {
    // Cheap existence probe *before* the expensive build scan: a
    // duplicate must not pay for a full-table pass it will throw away.
    util::ReaderLock lock(mu_);
    if (indexes_.count(key) > 0 || builds_.count(key) > 0) {
      return Status::AlreadyExists("index exists: " + key);
    }
  }
  HeapTable* table = catalog_->GetTable(def.table);
  // Build outside the map lock: the table scan is long and is already
  // serialized by the caller's exclusive table latch.
  auto index = std::make_unique<BuiltIndex>(def, *table);
  BuiltIndex* raw = index.get();
  table->Scan([&](RowId rid, const Row& row) { raw->BuildInsert(row, rid); });
  util::WriterLock lock(mu_);
  // Recheck under the writer lock: another creator may have won the race
  // between the probe and here.
  if (indexes_.count(key) > 0 || builds_.count(key) > 0) {
    return Status::AlreadyExists("index exists: " + key);
  }
  indexes_.emplace(key, std::move(index));
  return Status::Ok();
}

StatusOr<BuiltIndex*> IndexManager::BeginBuild(const IndexDef& def) {
  Status s = ValidateDef(def);
  if (!s.ok()) return s;
  const std::string key = def.Key();
  HeapTable* table = catalog_->GetTable(def.table);
  auto index =
      std::make_unique<BuiltIndex>(def, *table, IndexState::kBuilding);
  BuiltIndex* raw = index.get();
  util::WriterLock lock(mu_);
  if (indexes_.count(key) > 0 || builds_.count(key) > 0) {
    return Status::AlreadyExists("index exists: " + key);
  }
  builds_.emplace(key, std::move(index));
  return raw;
}

Status IndexManager::FinishBuildDrain(const std::string& key) {
  BuiltIndex* build = nullptr;
  {
    util::ReaderLock lock(mu_);
    auto it = builds_.find(key);
    if (it == builds_.end()) {
      return Status::NotFound("no in-flight build: " + key);
    }
    build = it->second.get();
  }
  // Safe without mu_: only the build's driver thread publishes or aborts
  // it, and the caller's exclusive table latch stops new delta arrivals.
  while (build->ApplyDeltaBatch(kDeltaDrainBatch) > 0) {
  }
  return Status::Ok();
}

Status IndexManager::PublishBuild(const std::string& key) {
  util::WriterLock lock(mu_);
  auto it = builds_.find(key);
  if (it == builds_.end()) {
    return Status::NotFound("no in-flight build: " + key);
  }
  it->second->Publish();  // drains any residue, flips to kReady
  indexes_.emplace(key, std::move(it->second));
  builds_.erase(it);
  return Status::Ok();
}

Status IndexManager::AbortBuild(const std::string& key) {
  util::WriterLock lock(mu_);
  auto it = builds_.find(key);
  if (it == builds_.end()) {
    return Status::NotFound("no in-flight build: " + key);
  }
  it->second->set_state(IndexState::kDropping);
  builds_.erase(it);
  return Status::Ok();
}

Status IndexManager::DropIndex(const std::string& index_key_or_name) {
  util::WriterLock lock(mu_);
  auto it = indexes_.find(index_key_or_name);
  if (it == indexes_.end()) {
    // Fall back to display-name lookup.
    for (auto cand = indexes_.begin(); cand != indexes_.end(); ++cand) {
      if (cand->second->def().DisplayName() == index_key_or_name) {
        it = cand;
        break;
      }
    }
  }
  if (it == indexes_.end()) {
    return Status::NotFound("no such index: " + index_key_or_name);
  }
  it->second->set_state(IndexState::kDropping);
  indexes_.erase(it);
  return Status::Ok();
}

bool IndexManager::HasIndex(const IndexDef& def) const {
  util::ReaderLock lock(mu_);
  // In-flight builds count: a duplicate create must not start while the
  // same definition is mid-build.
  return indexes_.count(def.Key()) > 0 || builds_.count(def.Key()) > 0;
}

std::string IndexManager::TableOf(const std::string& index_key_or_name) const {
  util::ReaderLock lock(mu_);
  auto it = indexes_.find(index_key_or_name);
  if (it != indexes_.end()) return it->second->def().table;
  for (const auto& [_, index] : indexes_) {
    if (index->def().DisplayName() == index_key_or_name) {
      return index->def().table;
    }
  }
  return "";
}

std::vector<BuiltIndex*> IndexManager::IndexesOnTable(
    const std::string& table) {
  std::vector<BuiltIndex*> out;
  const std::string key = ToLower(table);
  util::ReaderLock lock(mu_);
  for (auto& [_, index] : indexes_) {
    if (index->def().table == key) out.push_back(index.get());
  }
  SortByDisplayName(&out);
  return out;
}

std::vector<const BuiltIndex*> IndexManager::IndexesOnTable(
    const std::string& table) const {
  std::vector<const BuiltIndex*> out;
  const std::string key = ToLower(table);
  util::ReaderLock lock(mu_);
  for (const auto& [_, index] : indexes_) {
    if (index->def().table == key) out.push_back(index.get());
  }
  SortByDisplayName(&out);
  return out;
}

std::vector<BuiltIndex*> IndexManager::AllIndexes() {
  util::ReaderLock lock(mu_);
  std::vector<BuiltIndex*> out;
  out.reserve(indexes_.size());
  for (auto& [_, index] : indexes_) out.push_back(index.get());
  SortByDisplayName(&out);
  return out;
}

std::vector<const BuiltIndex*> IndexManager::AllIndexes() const {
  util::ReaderLock lock(mu_);
  std::vector<const BuiltIndex*> out;
  out.reserve(indexes_.size());
  for (const auto& [_, index] : indexes_) out.push_back(index.get());
  SortByDisplayName(&out);
  return out;
}

std::vector<BuiltIndex*> IndexManager::WriteVisibleOnTable(
    const std::string& table) {
  std::vector<BuiltIndex*> out;
  const std::string key = ToLower(table);
  util::ReaderLock lock(mu_);
  for (auto& [_, index] : indexes_) {
    if (index->def().table == key) out.push_back(index.get());
  }
  for (auto& [_, build] : builds_) {
    if (build->def().table == key) out.push_back(build.get());
  }
  SortByDisplayName(&out);
  return out;
}

std::vector<const BuiltIndex*> IndexManager::AllIndexesAnyState() const {
  std::vector<const BuiltIndex*> out;
  util::ReaderLock lock(mu_);
  out.reserve(indexes_.size() + builds_.size());
  for (const auto& [_, index] : indexes_) out.push_back(index.get());
  for (const auto& [_, build] : builds_) out.push_back(build.get());
  SortByDisplayName(&out);
  return out;
}

size_t IndexManager::num_indexes() const {
  util::ReaderLock lock(mu_);
  return indexes_.size();
}

size_t IndexManager::TotalIndexBytes() const {
  util::ReaderLock lock(mu_);
  size_t total = 0;
  for (const auto& [_, index] : indexes_) total += index->SizeBytes();
  return total;
}

size_t IndexManager::OnInsert(const std::string& table, RowId rid,
                              const Row& row) {
  size_t touched = 0;
  for (BuiltIndex* index : WriteVisibleOnTable(table)) {
    index->InsertEntry(row, rid);
    index->RecordMaintenance();
    ++touched;
  }
  return touched;
}

size_t IndexManager::OnDelete(const std::string& table, RowId rid,
                              const Row& row) {
  size_t touched = 0;
  for (BuiltIndex* index : WriteVisibleOnTable(table)) {
    index->DeleteEntry(row, rid);
    index->RecordMaintenance();
    ++touched;
  }
  return touched;
}

size_t IndexManager::OnUpdate(const std::string& table, RowId rid,
                              const Row& old_row, const Row& new_row) {
  size_t touched = 0;
  const HeapTable* t = catalog_->GetTable(table);
  for (BuiltIndex* index : WriteVisibleOnTable(table)) {
    const Row old_key = index->KeyFromRow(old_row);
    const Row new_key = index->KeyFromRow(new_row);
    const bool partition_moved =
        index->is_local() && t != nullptr &&
        t->PartitionOfRow(old_row) != t->PartitionOfRow(new_row);
    if (CompareRows(old_key, new_key) == 0 && !partition_moved) {
      continue;  // key unchanged, same shard
    }
    index->DeleteEntry(old_row, rid);
    index->InsertEntry(new_row, rid);
    index->RecordMaintenance();
    ++touched;
  }
  return touched;
}

Status IndexManager::AddHypothetical(const IndexDef& def) {
  Status s = ValidateDef(def);
  if (!s.ok()) return s;
  const HeapTable* table = catalog_->GetTable(def.table);
  const IndexStatsView view = EstimateStatsView(def, *table);
  HypotheticalIndex hypo;
  hypo.def = def;
  hypo.est_entries = view.num_entries;
  hypo.est_height = view.height;
  hypo.est_bytes = view.size_bytes;
  util::WriterLock lock(mu_);
  hypothetical_.push_back(std::move(hypo));
  return Status::Ok();
}

void IndexManager::ClearHypothetical() {
  util::WriterLock lock(mu_);
  hypothetical_.clear();
}

std::vector<HypotheticalIndex> IndexManager::hypothetical() const {
  util::ReaderLock lock(mu_);
  return hypothetical_;
}

std::vector<IndexStatsView> IndexManager::StatsOnTable(
    const std::string& table) const {
  std::vector<IndexStatsView> out;
  const std::string key = ToLower(table);
  const HeapTable* t = catalog_->GetTable(table);
  util::ReaderLock lock(mu_);
  for (const auto& [_, index] : indexes_) {
    if (index->def().table != key) continue;
    IndexStatsView view;
    view.def = index->def();
    view.num_entries = index->num_entries();
    view.height = index->height();
    view.size_bytes = index->SizeBytes();
    view.partitions = index->num_trees();
    view.hypothetical = false;
    out.push_back(std::move(view));
  }
  for (const HypotheticalIndex& hypo : hypothetical_) {
    if (hypo.def.table != key) continue;
    IndexStatsView view;
    view.def = hypo.def;
    view.num_entries = hypo.est_entries;
    view.height = hypo.est_height;
    view.size_bytes = hypo.est_bytes;
    view.partitions =
        (hypo.def.kind == IndexKind::kLocal && t != nullptr &&
         t->partitioned())
            ? t->num_partitions()
            : 1;
    view.hypothetical = true;
    out.push_back(std::move(view));
  }
  return out;
}

}  // namespace autoindex
