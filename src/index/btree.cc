#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace autoindex {

int CompareRowPrefix(const Row& a, const Row& b, size_t prefix_len) {
  const size_t n = std::min({a.size(), b.size(), prefix_len});
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

struct BTree::Entry {
  Row key;
  RowId rid;
};

struct BTree::Node {
  bool is_leaf = true;
  std::vector<Entry> entries;                   // leaf payload or separators
  std::vector<std::unique_ptr<Node>> children;  // internal only;
                                                // children.size() ==
                                                // entries.size() + 1
  Node* next = nullptr;  // leaf chain
  Node* prev = nullptr;
};

namespace {

// Total order on (key, rid).
int CompareEntry(const Row& a_key, RowId a_rid, const Row& b_key,
                 RowId b_rid) {
  const int c = CompareRows(a_key, b_key);
  if (c != 0) return c;
  if (a_rid < b_rid) return -1;
  if (a_rid > b_rid) return 1;
  return 0;
}

}  // namespace

BTree::BTree(size_t leaf_capacity, size_t internal_capacity)
    : leaf_capacity_(std::max<size_t>(4, leaf_capacity)),
      internal_capacity_(std::max<size_t>(4, internal_capacity)) {
  root_ = std::make_unique<Node>();
  root_->is_leaf = true;
  num_nodes_ = 1;
  height_ = 1;
}

BTree::~BTree() {
  // Deep trees would overflow the stack with default recursive unique_ptr
  // destruction; flatten iteratively.
  if (!root_) return;
  std::vector<std::unique_ptr<Node>> stack;
  stack.push_back(std::move(root_));
  while (!stack.empty()) {
    std::unique_ptr<Node> node = std::move(stack.back());
    stack.pop_back();
    for (auto& child : node->children) stack.push_back(std::move(child));
  }
}

BTree::Node* BTree::FindLeaf(const Row& key, RowId rid,
                             std::vector<Node*>* path) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    if (path) path->push_back(node);
    // First child whose separator exceeds (key, rid).
    size_t i = 0;
    while (i < node->entries.size() &&
           CompareEntry(key, rid, node->entries[i].key,
                        node->entries[i].rid) >= 0) {
      ++i;
    }
    node = node->children[i].get();
  }
  if (path) path->push_back(node);
  return node;
}

void BTree::SplitChild(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  auto right = std::make_unique<Node>();
  right->is_leaf = child->is_leaf;
  const size_t mid = child->entries.size() / 2;

  if (child->is_leaf) {
    // Right leaf takes entries [mid, end); separator is right's first key.
    right->entries.assign(std::make_move_iterator(child->entries.begin() + mid),
                          std::make_move_iterator(child->entries.end()));
    child->entries.resize(mid);
    right->next = child->next;
    if (right->next) right->next->prev = right.get();
    right->prev = child;
    child->next = right.get();
    Entry sep;
    sep.key = right->entries.front().key;
    sep.rid = right->entries.front().rid;
    parent->entries.insert(parent->entries.begin() + child_idx,
                           std::move(sep));
  } else {
    // Internal split: the middle separator moves up.
    Entry sep = std::move(child->entries[mid]);
    right->entries.assign(
        std::make_move_iterator(child->entries.begin() + mid + 1),
        std::make_move_iterator(child->entries.end()));
    right->children.assign(
        std::make_move_iterator(child->children.begin() + mid + 1),
        std::make_move_iterator(child->children.end()));
    child->entries.resize(mid);
    child->children.resize(mid + 1);
    parent->entries.insert(parent->entries.begin() + child_idx,
                           std::move(sep));
  }
  parent->children.insert(parent->children.begin() + child_idx + 1,
                          std::move(right));
  ++num_nodes_;
  ++num_splits_;
}

void BTree::InsertNonFull(Node* node, const Row& key, RowId rid) {
  while (!node->is_leaf) {
    size_t i = 0;
    while (i < node->entries.size() &&
           CompareEntry(key, rid, node->entries[i].key,
                        node->entries[i].rid) >= 0) {
      ++i;
    }
    Node* child = node->children[i].get();
    const size_t cap = child->is_leaf ? leaf_capacity_ : internal_capacity_;
    if (child->entries.size() >= cap) {
      SplitChild(node, i);
      // Re-decide which side to descend.
      if (CompareEntry(key, rid, node->entries[i].key,
                       node->entries[i].rid) >= 0) {
        ++i;
      }
      child = node->children[i].get();
    }
    node = child;
  }
  auto it = std::lower_bound(
      node->entries.begin(), node->entries.end(), key,
      [&](const Entry& e, const Row& k) {
        return CompareEntry(e.key, e.rid, k, rid) < 0;
      });
  Entry entry;
  entry.key = key;
  entry.rid = rid;
  node->entries.insert(it, std::move(entry));
  ++num_entries_;
}

void BTree::Insert(const Row& key, RowId rid) {
  const size_t root_cap =
      root_->is_leaf ? leaf_capacity_ : internal_capacity_;
  if (root_->entries.size() >= root_cap) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    ++num_nodes_;
    ++height_;
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), key, rid);
}

bool BTree::Delete(const Row& key, RowId rid) {
  Node* leaf = FindLeaf(key, rid);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [&](const Entry& e, const Row& k) {
        return CompareEntry(e.key, e.rid, k, rid) < 0;
      });
  if (it == leaf->entries.end() ||
      CompareEntry(it->key, it->rid, key, rid) != 0) {
    return false;
  }
  leaf->entries.erase(it);
  --num_entries_;
  // Empty leaves stay in the chain: the parent still routes inserts to
  // them, so unlinking would orphan future entries. Scans skip them for
  // free (deferred page reclaim, as in PostgreSQL nbtree).
  return true;
}

bool BTree::Contains(const Row& key) const {
  bool found = false;
  Scan(&key, true, &key, true,
       [&](const Row& k, RowId) {
         if (k.size() == key.size()) {
           found = true;
           return false;
         }
         return true;
       });
  return found;
}

void BTree::Scan(const Row* lo, bool lo_inclusive, const Row* hi,
                 bool hi_inclusive,
                 const std::function<bool(const Row&, RowId)>& fn,
                 size_t* pages_touched) const {
  const Node* node = root_.get();
  size_t pages = 1;
  if (lo == nullptr) {
    // Descend to the leftmost leaf.
    while (!node->is_leaf) {
      node = node->children[0].get();
      ++pages;
    }
  } else {
    while (!node->is_leaf) {
      size_t i = 0;
      // Descend into the first child that can contain keys >= lo on the
      // prefix. Separator comparison uses the lo prefix length.
      while (i < node->entries.size() &&
             CompareRowPrefix(node->entries[i].key, *lo, lo->size()) < 0) {
        ++i;
      }
      node = node->children[i].get();
      ++pages;
    }
  }

  const Node* leaf = node;
  // Position within the first leaf.
  size_t idx = 0;
  if (lo != nullptr) {
    while (idx < leaf->entries.size()) {
      const int c = CompareRowPrefix(leaf->entries[idx].key, *lo, lo->size());
      if (c > 0 || (c == 0 && lo_inclusive)) break;
      ++idx;
    }
  }
  while (leaf != nullptr) {
    for (; idx < leaf->entries.size(); ++idx) {
      const Entry& e = leaf->entries[idx];
      if (lo != nullptr) {
        const int c = CompareRowPrefix(e.key, *lo, lo->size());
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi != nullptr) {
        const int c = CompareRowPrefix(e.key, *hi, hi->size());
        if (c > 0 || (c == 0 && !hi_inclusive)) {
          if (pages_touched) *pages_touched += pages;
          return;
        }
      }
      if (!fn(e.key, e.rid)) {
        if (pages_touched) *pages_touched += pages;
        return;
      }
    }
    leaf = leaf->next;
    idx = 0;
    if (leaf != nullptr) ++pages;
  }
  if (pages_touched) *pages_touched += pages;
}

std::vector<RowId> BTree::PrefixLookup(const Row& prefix,
                                       size_t* pages_touched) const {
  std::vector<RowId> rids;
  Scan(&prefix, true, &prefix, true,
       [&](const Row&, RowId rid) {
         rids.push_back(rid);
         return true;
       },
       pages_touched);
  return rids;
}

bool BTree::CheckNode(const Node* node, size_t depth,
                      size_t leaf_depth) const {
  // Keys sorted within the node.
  for (size_t i = 1; i < node->entries.size(); ++i) {
    if (CompareEntry(node->entries[i - 1].key, node->entries[i - 1].rid,
                     node->entries[i].key, node->entries[i].rid) > 0) {
      return false;
    }
  }
  if (node->is_leaf) return depth == leaf_depth;
  if (node->children.size() != node->entries.size() + 1) return false;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Node* child = node->children[i].get();
    if (!CheckNode(child, depth + 1, leaf_depth)) return false;
    // Child key ranges respect separators (checked on first/last entries).
    if (!child->entries.empty()) {
      if (i > 0) {
        const Entry& sep = node->entries[i - 1];
        if (CompareEntry(child->entries.front().key, child->entries.front().rid,
                         sep.key, sep.rid) < 0) {
          return false;
        }
      }
      if (i < node->entries.size()) {
        const Entry& sep = node->entries[i];
        if (CompareEntry(child->entries.back().key, child->entries.back().rid,
                         sep.key, sep.rid) >= 0) {
          return false;
        }
      }
    }
  }
  return true;
}

bool BTree::CheckInvariants() const {
  // All leaves at the same depth.
  size_t leaf_depth = 1;
  const Node* n = root_.get();
  while (!n->is_leaf) {
    n = n->children[0].get();
    ++leaf_depth;
  }
  if (leaf_depth != height_) return false;
  if (!CheckNode(root_.get(), 1, leaf_depth)) return false;
  // Leaf chain is globally sorted and covers exactly num_entries_ live
  // entries reachable from the leftmost leaf.
  const Node* leaf = root_.get();
  while (!leaf->is_leaf) leaf = leaf->children[0].get();
  size_t count = 0;
  const Entry* prev = nullptr;
  while (leaf != nullptr) {
    for (const Entry& e : leaf->entries) {
      if (prev != nullptr &&
          CompareEntry(prev->key, prev->rid, e.key, e.rid) > 0) {
        return false;
      }
      prev = &e;
      ++count;
    }
    leaf = leaf->next;
  }
  return count == num_entries_;
}

}  // namespace autoindex
