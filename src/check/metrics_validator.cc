#include "check/metrics_validator.h"

#include <map>
#include <string>

#include "util/string_util.h"

namespace autoindex {

namespace {

const char* KindName(util::MetricsRegistry::Kind kind) {
  switch (kind) {
    case util::MetricsRegistry::Kind::kCounter:
      return "counter";
    case util::MetricsRegistry::Kind::kGauge:
      return "gauge";
    case util::MetricsRegistry::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

void CheckHistogram(const std::string& name,
                    const util::HistogramSnapshot& hist, CheckReport* report) {
  const uint64_t bucket_sum = hist.BucketSum();
  // One-sided by design: Record publishes count with release *after* the
  // bucket bump, so a racing snapshot may see extra bucket entries but
  // never a count with no bucket behind it.
  if (bucket_sum < hist.count) {
    report->AddIssue("metrics",
                     StrCat("histogram ", name, ": count ", hist.count,
                            " exceeds bucket sum ", bucket_sum));
  }
  if (hist.count == 0 && hist.max_us != 0) {
    report->AddIssue("metrics", StrCat("histogram ", name,
                                       ": empty but max_us = ", hist.max_us));
  }
  if (hist.count == 0 && hist.sum_us != 0) {
    report->AddIssue("metrics", StrCat("histogram ", name,
                                       ": empty but sum_us = ", hist.sum_us));
  }
}

}  // namespace

void MetricsValidator::Validate(const CheckContext& ctx,
                                CheckReport* report) const {
  (void)ctx;  // registry is process-global, not part of the context
  auto& registry = util::MetricsRegistry::Default();
  if (const uint64_t collisions = registry.type_collisions();
      collisions != 0) {
    report->AddIssue(
        "metrics",
        StrCat("registry saw ", collisions,
               " kind collision(s): some call site asked for an existing "
               "name as a different metric kind"));
  }
  for (const auto& metric : registry.Snapshot()) {
    report->NoteStructureChecked();
    if (metric.kind == util::MetricsRegistry::Kind::kHistogram) {
      CheckHistogram(metric.name, metric.hist, report);
    }
  }
}

void MetricsValidator::CheckMonotonePair(
    const std::vector<util::MetricsRegistry::MetricValue>& before,
    const std::vector<util::MetricsRegistry::MetricValue>& after,
    CheckReport* report) {
  std::map<std::string, const util::MetricsRegistry::MetricValue*> earlier;
  for (const auto& metric : before) {
    earlier[metric.name] = &metric;
  }
  for (const auto& metric : after) {
    auto it = earlier.find(metric.name);
    if (it == earlier.end()) continue;  // registered between snapshots
    const auto& prev = *it->second;
    report->NoteStructureChecked();
    if (prev.kind != metric.kind) {
      report->AddIssue("metrics",
                       StrCat("metric ", metric.name, " changed kind: ",
                              KindName(prev.kind), " -> ",
                              KindName(metric.kind)));
      continue;
    }
    switch (metric.kind) {
      case util::MetricsRegistry::Kind::kCounter:
        if (metric.counter < prev.counter) {
          report->AddIssue(
              "metrics",
              StrCat("counter ", metric.name, " went backwards: ",
                     prev.counter, " -> ", metric.counter));
        }
        break;
      case util::MetricsRegistry::Kind::kGauge:
        break;  // gauges move both ways by design
      case util::MetricsRegistry::Kind::kHistogram:
        if (metric.hist.count < prev.hist.count) {
          report->AddIssue(
              "metrics",
              StrCat("histogram ", metric.name, " count went backwards: ",
                     prev.hist.count, " -> ", metric.hist.count));
        }
        if (metric.hist.sum_us < prev.hist.sum_us) {
          report->AddIssue(
              "metrics",
              StrCat("histogram ", metric.name, " sum went backwards: ",
                     prev.hist.sum_us, " -> ", metric.hist.sum_us));
        }
        if (metric.hist.max_us < prev.hist.max_us) {
          report->AddIssue(
              "metrics",
              StrCat("histogram ", metric.name, " max went backwards: ",
                     prev.hist.max_us, " -> ", metric.hist.max_us));
        }
        break;
    }
  }
}

}  // namespace autoindex
