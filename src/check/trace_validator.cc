#include "check/trace_validator.h"

#include <algorithm>
#include <cstddef>

#include "util/string_util.h"

namespace autoindex {

namespace {

void CheckTrace(const obs::TraceData& trace, CheckReport* report) {
  const auto& spans = trace.spans;
  if (spans.empty()) {
    report->AddIssue("trace", StrCat("trace ", trace.trace_id,
                                     ": recorded with no spans"));
    return;
  }
  if (spans.size() > obs::TraceContext::kMaxSpansPerTrace) {
    report->AddIssue("trace",
                     StrCat("trace ", trace.trace_id, ": ", spans.size(),
                            " spans exceed the per-trace cap ",
                            obs::TraceContext::kMaxSpansPerTrace));
  }
  if (trace.spans_dropped > 0 &&
      spans.size() != obs::TraceContext::kMaxSpansPerTrace) {
    report->AddIssue(
        "trace",
        StrCat("trace ", trace.trace_id, ": reports ", trace.spans_dropped,
               " dropped spans but holds ", spans.size(),
               " (drops only happen at the cap)"));
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    const obs::SpanRecord& span = spans[i];
    if (span.id != i + 1) {
      report->AddIssue("trace", StrCat("trace ", trace.trace_id, ": span #",
                                       i, " has id ", span.id,
                                       ", expected dense id ", i + 1));
      // Parent links are id-based; with the numbering broken the
      // remaining checks would only cascade.
      return;
    }
    if (span.id == 1) {
      if (span.parent != 0) {
        report->AddIssue("trace",
                         StrCat("trace ", trace.trace_id,
                                ": root span has parent ", span.parent));
      }
      continue;
    }
    if (span.parent == 0) {
      report->AddIssue("trace", StrCat("trace ", trace.trace_id, ": span ",
                                       span.id, " (", span.name,
                                       ") is a second root"));
      continue;
    }
    if (span.parent >= span.id) {
      report->AddIssue(
          "trace",
          StrCat("trace ", trace.trace_id, ": span ", span.id, " (",
                 span.name, ") has parent ", span.parent,
                 " >= its own id (parents must start first)"));
      continue;
    }
    const obs::SpanRecord& parent = spans[span.parent - 1];
    if (span.start_us < parent.start_us ||
        span.start_us + span.duration_us >
            parent.start_us + parent.duration_us) {
      report->AddIssue(
          "trace",
          StrCat("trace ", trace.trace_id, ": span ", span.id, " (",
                 span.name, ") [", span.start_us, ", ",
                 span.start_us + span.duration_us,
                 ") escapes its parent ", parent.id, " (", parent.name,
                 ") [", parent.start_us, ", ",
                 parent.start_us + parent.duration_us, ")"));
    }
  }
  if (trace.total_us != spans[0].duration_us) {
    report->AddIssue("trace",
                     StrCat("trace ", trace.trace_id, ": total_us ",
                            trace.total_us, " != root span duration ",
                            spans[0].duration_us));
  }
}

}  // namespace

void TraceValidator::CheckSnapshot(const obs::Tracer::Snapshot& snap,
                                   CheckReport* report) {
  const obs::Tracer::Stats& stats = snap.stats;
  const uint64_t expected_occupancy =
      std::min<uint64_t>(stats.recorded, snap.capacity);
  if (snap.traces.size() != expected_occupancy) {
    report->AddIssue("trace",
                     StrCat("ring holds ", snap.traces.size(),
                            " traces but bookkeeping expects min(recorded ",
                            stats.recorded, ", capacity ", snap.capacity,
                            ") = ", expected_occupancy));
  }
  if (stats.finished != stats.recorded + stats.sampled_out) {
    report->AddIssue(
        "trace",
        StrCat("finished ", stats.finished, " != recorded ", stats.recorded,
               " + sampled_out ", stats.sampled_out,
               " (a submitted trace is either kept or dropped)"));
  }
  // One-sided: `started` comes from the id-allocation atomic, so traces
  // still in flight keep it ahead of finished + cancelled — never behind.
  if (stats.started < stats.finished + stats.cancelled) {
    report->AddIssue(
        "trace",
        StrCat("started ", stats.started, " < finished ", stats.finished,
               " + cancelled ", stats.cancelled));
  }
  for (const obs::TraceData& trace : snap.traces) {
    report->NoteStructureChecked();
    CheckTrace(trace, report);
  }
}

void TraceValidator::Validate(const CheckContext& ctx,
                              CheckReport* report) const {
  (void)ctx;  // the flight recorder is process-global, like the registry
  CheckSnapshot(obs::Tracer::Default().TakeSnapshot(), report);
}

}  // namespace autoindex
