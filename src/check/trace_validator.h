#pragma once

#include "check/validator.h"
#include "obs/trace.h"

namespace autoindex {

// Audits the flight recorder (DESIGN.md §13). Every recorded trace must
// be a well-formed span tree:
//  - span ids are dense 1..N in start order, and span 1 is the only root
//    (parent 0);
//  - every parent id is a smaller id (parents start before children, so
//    the tree is acyclic by construction — a violation means the ring
//    slot was torn or overwritten mid-read);
//  - a child's [start, start+duration) interval lies inside its
//    parent's;
//  - total_us equals the root span's duration;
//  - the span count never exceeds the per-trace cap, and spans_dropped
//    is only nonzero when the cap was actually hit.
// And the recorder's bookkeeping must balance:
//  - ring occupancy == min(recorded, capacity);
//  - finished == recorded + sampled_out (every submitted trace was
//    either kept or deliberately dropped);
//  - started >= finished + cancelled (one-sided: started is read from an
//    atomic, so in-flight traces make it run ahead).
// Like the metrics validator it audits process-global state
// (obs::Tracer::Default()) and ignores the CheckContext.
class TraceValidator : public Validator {
 public:
  const char* name() const override { return "trace"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;

  // The whole audit as a static helper over any snapshot, so tests can
  // drill corruption into a private Tracer and watch each check fire.
  static void CheckSnapshot(const obs::Tracer::Snapshot& snap,
                            CheckReport* report);
};

}  // namespace autoindex
