#pragma once

#include <vector>

#include "check/validator.h"
#include "util/metrics.h"

namespace autoindex {

// Audits the process-wide metrics registry (DESIGN.md §11):
//  - every histogram snapshot satisfies bucket_sum >= count (Record bumps
//    buckets relaxed before publishing count with release, so a torn read
//    can only over-count buckets — bucket_sum < count means corruption);
//  - max_us is zero whenever count is zero, and sum_us is zero whenever
//    count is zero;
//  - no registration ever collided on kind (asking for "x" as a counter
//    and later as a gauge).
// Always runs — the registry exists independently of any Database, so this
// validator ignores the CheckContext.
class MetricsValidator : public Validator {
 public:
  const char* name() const override { return "metrics"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;

  // Cross-snapshot monotonicity: counters and histogram counts/sums in
  // `after` must be >= their values in `before` (same registry, later
  // point in time). Names present in only one snapshot are fine —
  // registration is lazy. Exposed as a static helper so tests and
  // monitoring scrapers can diff any two snapshots.
  static void CheckMonotonePair(
      const std::vector<util::MetricsRegistry::MetricValue>& before,
      const std::vector<util::MetricsRegistry::MetricValue>& after,
      CheckReport* report);
};

}  // namespace autoindex
