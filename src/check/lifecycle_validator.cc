#include "check/lifecycle_validator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "index/index_manager.h"
#include "storage/catalog.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

using Entry = std::pair<Row, RowId>;

bool EntryLess(const Entry& a, const Entry& b) {
  const int cmp = CompareRows(a.first, b.first);
  if (cmp != 0) return cmp < 0;
  return a.second < b.second;
}

bool EntryEqual(const Entry& a, const Entry& b) {
  return a.second == b.second && CompareRows(a.first, b.first) == 0;
}

}  // namespace

void LifecycleValidator::Validate(const CheckContext& ctx,
                                  CheckReport* report) const {
  if (ctx.catalog == nullptr || ctx.indexes == nullptr) return;
  const Catalog& catalog = *ctx.catalog;
  const IndexManager& manager = *ctx.indexes;

  // --- Ready (planner-reachable) indexes -----------------------------
  // AllIndexes IS the planner's view, so anything it returns in a
  // non-ready state has escaped the lifecycle.
  for (const BuiltIndex* index : manager.AllIndexes()) {
    report->NoteStructureChecked();
    const std::string display = index->def().DisplayName();
    if (index->state() != IndexState::kReady) {
      report->AddIssue(name(),
                       StrCat("planner-reachable index ", display,
                              " is in state ", IndexStateName(index->state()),
                              ", not ready"));
      continue;
    }
    if (index->delta_pending() != 0) {
      report->AddIssue(name(), StrCat("published index ", display, " kept ",
                                      index->delta_pending(),
                                      " undrained delta ops"));
    }

    // Entry-for-entry differential against a from-scratch rebuild: the
    // phased build (snapshot scan + delta catch-up + publish drain) must
    // land on exactly the entries a blocking scan would produce. The
    // caller (CheckAll) holds shared latches on every table, so the heap
    // and the ready trees are frozen here.
    const HeapTable* table = catalog.GetTable(index->def().table);
    if (table == nullptr) continue;  // the catalog validator reports this
    std::vector<Entry> expected;
    table->Scan([&](RowId rid, const Row& row) {
      expected.emplace_back(index->KeyFromRow(row), rid);
    });
    std::vector<Entry> actual;
    actual.reserve(expected.size());
    index->Scan(nullptr, nullptr, true, nullptr, true,
                [&](const Row& key, RowId rid) {
                  actual.emplace_back(key, rid);
                  return true;
                });
    std::sort(expected.begin(), expected.end(), EntryLess);
    std::sort(actual.begin(), actual.end(), EntryLess);
    if (actual.size() != expected.size()) {
      report->AddIssue(
          name(), StrCat("index ", display, " holds ", actual.size(),
                         " entries but a from-scratch rebuild yields ",
                         expected.size()));
      continue;
    }
    for (size_t i = 0; i < expected.size(); ++i) {
      if (!EntryEqual(actual[i], expected[i])) {
        report->AddIssue(
            name(),
            StrCat("index ", display, " diverges from a from-scratch ",
                   "rebuild at sorted entry #", i, ": index has rid ",
                   actual[i].second, ", rebuild expects rid ",
                   expected[i].second));
        break;
      }
    }
  }

  // --- In-flight builds and drop leaks -------------------------------
  // A kBuilding index's trees may be mutated concurrently by its builder
  // (the catch-up phase runs without a table latch), so only its atomic
  // counters and delta size are inspected — never the tree contents.
  for (const BuiltIndex* index : manager.AllIndexesAnyState()) {
    if (index->state() == IndexState::kReady) continue;
    report->NoteStructureChecked();
    const std::string display = index->def().DisplayName();
    if (index->state() == IndexState::kDropping) {
      report->AddIssue(name(), StrCat("index ", display,
                                      " is observable in state dropping — "
                                      "drops must unlink atomically"));
      continue;
    }
    const HeapTable* table = catalog.GetTable(index->def().table);
    if (table == nullptr) {
      report->AddIssue(name(), StrCat("in-flight build ", display,
                                      " references dropped table ",
                                      index->def().table));
      continue;
    }
    for (const std::string& col : index->def().columns) {
      if (!table->schema().HasColumn(col)) {
        report->AddIssue(name(), StrCat("in-flight build ", display,
                                        " references column ", col,
                                        " missing from table ",
                                        index->def().table));
      }
    }
    // Entries only ever come from live slots (snapshot scan) or buffered
    // rids (delta apply), and RowIds are never reused — so the tree can
    // never hold more entries than slots were ever allocated. Entries are
    // read *before* slots: both only grow, so the bound is race-tolerant.
    const size_t entries = index->num_entries();
    const size_t slots = table->num_slots();
    if (entries > slots) {
      report->AddIssue(
          name(), StrCat("in-flight build ", display, " holds ", entries,
                         " entries but table ", index->def().table,
                         " only ever allocated ", slots, " slots"));
    }
  }
}

}  // namespace autoindex
