#include "check/recovery_validator.h"

#include "engine/database.h"
#include "util/string_util.h"

namespace autoindex {

Status ValidateRecovery(const Database& db, const RecoveryInfo& info) {
  if (info.wal_epoch > info.checkpoint_data_version) {
    return Status::Internal(
        StrCat("recovery: WAL epoch ", info.wal_epoch,
               " is beyond the checkpoint's data version ",
               info.checkpoint_data_version,
               " (the log extends a checkpoint that no longer exists)"));
  }
  uint64_t prev = info.checkpoint_data_version;
  for (uint64_t version : info.replayed_data_versions) {
    if (version <= prev) {
      return Status::Internal(
          StrCat("recovery: replayed record at data version ", version,
                 " does not advance past ", prev,
                 " (replay reordered or re-applied a record)"));
    }
    prev = version;
  }
  if (info.recovered_data_version != prev) {
    return Status::Internal(
        StrCat("recovery: database data version ",
               info.recovered_data_version, " after recovery, expected ",
               prev));
  }
  if (db.data_version() != info.recovered_data_version) {
    return Status::Internal(
        StrCat("recovery: live data version ", db.data_version(),
               " disagrees with the recorded recovered version ",
               info.recovered_data_version));
  }
  const CheckReport report = CheckAll(db);
  if (!report.ok()) {
    return Status::Internal(
        StrCat("recovery: structural check failed on the recovered "
               "database: ",
               report.ToString()));
  }
  return Status::Ok();
}

}  // namespace autoindex
