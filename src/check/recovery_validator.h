#pragma once

#include <cstdint>
#include <vector>

#include "check/validator.h"

namespace autoindex {

class Database;

// What recovery (src/persist/snapshot.cc) observed while loading a
// checkpoint and replaying its WAL tail. A plain struct so the check layer
// never depends on the persist layer's file formats.
struct RecoveryInfo {
  // Data version recorded in the checkpoint's meta section.
  uint64_t checkpoint_data_version = 0;
  // Epoch of the WAL the tail was replayed from (0 when no WAL existed).
  uint64_t wal_epoch = 0;
  // Data versions of the WAL records actually applied, in replay order.
  std::vector<uint64_t> replayed_data_versions;
  // Bytes dropped from the WAL's torn tail.
  uint64_t wal_bytes_truncated = 0;
  // The database's data version after recovery finished.
  uint64_t recovered_data_version = 0;
};

// Post-recovery consistency gate: the structural CheckAll sweep over the
// reloaded database, plus the recovery protocol's own invariants —
//   - the WAL epoch never exceeds the checkpoint's data version (a newer
//     epoch means the log belongs to a checkpoint that was lost);
//   - replayed record versions are strictly increasing and all beyond the
//     checkpoint (replay must neither reorder nor re-apply);
//   - the recovered data version equals the checkpoint's or the last
//     replayed record's, whichever is later.
// Returns Ok when the recovered state is consistent; Internal naming the
// first violation otherwise.
Status ValidateRecovery(const Database& db, const RecoveryInfo& info);

}  // namespace autoindex
