#include "check/validator.h"

#include "check/btree_validator.h"
#include "check/catalog_validator.h"
#include "check/heap_validator.h"
#include "check/latch_validator.h"
#include "check/lifecycle_validator.h"
#include "check/mcts_validator.h"
#include "check/metrics_validator.h"
#include "check/plan_validator.h"
#include "check/trace_validator.h"
#include "engine/database.h"
#include "storage/latch_manager.h"
#include "util/string_util.h"

namespace autoindex {

std::string CheckReport::ToString() const {
  if (ok()) {
    return StrCat("OK (", structures_checked_, " structures checked)");
  }
  std::string out = StrCat(issues_.size(), " invariant violation",
                           issues_.size() == 1 ? "" : "s", ":");
  for (const CheckIssue& issue : issues_) {
    out += StrCat("\n  [", issue.validator, "] ", issue.detail);
  }
  return out;
}

void CheckReport::Merge(const CheckReport& other) {
  issues_.insert(issues_.end(), other.issues_.begin(), other.issues_.end());
  structures_checked_ += other.structures_checked_;
}

ValidatorRegistry& ValidatorRegistry::Default() {
  static ValidatorRegistry registry;
  static const bool populated = [] {
    registry.Register(std::make_unique<BTreeValidator>());
    registry.Register(std::make_unique<HeapTableValidator>());
    registry.Register(std::make_unique<CatalogConsistencyValidator>());
    registry.Register(std::make_unique<MctsPolicyTreeValidator>());
    registry.Register(std::make_unique<PhysicalPlanValidator>());
    registry.Register(std::make_unique<LatchValidator>());
    registry.Register(std::make_unique<LifecycleValidator>());
    registry.Register(std::make_unique<MetricsValidator>());
    registry.Register(std::make_unique<TraceValidator>());
    return true;
  }();
  (void)populated;
  return registry;
}

void ValidatorRegistry::Register(std::unique_ptr<Validator> validator) {
  validators_.push_back(std::move(validator));
}

CheckReport ValidatorRegistry::RunAll(const CheckContext& ctx) const {
  CheckReport report;
  for (const auto& validator : validators_) {
    validator->Validate(ctx, &report);
  }
  return report;
}

namespace {

void FillPlanContext(const Database& db, CheckContext* ctx) {
  const Executor& executor = db.executor();
  if (executor.last_plan().has_value()) {
    ctx->last_plan = &*executor.last_plan();
    ctx->last_plan_stats = &executor.last_plan_stats();
  }
}

}  // namespace

CheckReport CheckAll(const Database& db) {
  // Freeze the data under audit: shared latches on every table, taken as
  // ONE sorted acquisition so this composes with the global lock order.
  // Callers must not hold statement latches (ExecuteOn and the DDL paths
  // release theirs before running the invariant hook).
  LatchManager::Guard guard =
      db.latches().AcquireShared(db.catalog().TableNames());
  CheckContext ctx;
  ctx.catalog = &db.catalog();
  ctx.indexes = &db.index_manager();
  ctx.latches = &db.latches();
  FillPlanContext(db, &ctx);
  return ValidatorRegistry::Default().RunAll(ctx);
}

CheckReport CheckAll(const Database& db, const MctsIndexSelector& mcts) {
  LatchManager::Guard guard =
      db.latches().AcquireShared(db.catalog().TableNames());
  CheckContext ctx;
  ctx.catalog = &db.catalog();
  ctx.indexes = &db.index_manager();
  ctx.mcts = &mcts;
  ctx.latches = &db.latches();
  FillPlanContext(db, &ctx);
  return ValidatorRegistry::Default().RunAll(ctx);
}

CheckReport CheckAll(const Catalog& catalog, const IndexManager& indexes) {
  CheckContext ctx;
  ctx.catalog = &catalog;
  ctx.indexes = &indexes;
  return ValidatorRegistry::Default().RunAll(ctx);
}

void InstallDebugChecks(Database* db, bool install) {
  if (!install) {
    db->set_invariant_hook(nullptr);
    return;
  }
  db->set_invariant_hook([](const Database& d) -> Status {
    const CheckReport report = CheckAll(d);
    if (report.ok()) return Status::Ok();
    return Status::Internal(StrCat("invariant check failed after mutation: ",
                                   report.ToString()));
  });
}

}  // namespace autoindex
