#pragma once

#include "check/validator.h"

namespace autoindex {

// Audits the LatchManager's bookkeeping (one consistent DebugSnapshot):
//  - a latch is never held shared and exclusive at the same time;
//  - reader/writer counts agree exactly with the per-thread held lists
//    (a count with no recorded holder is a leak; a holder with no count
//    is a double-release);
//  - every thread's held list respects the global sorted-name acquisition
//    order with no duplicates — the invariant the deadlock-freedom
//    argument rests on.
// No-ops when the context carries no latch manager (bare Catalog +
// IndexManager checks).
class LatchValidator : public Validator {
 public:
  const char* name() const override { return "latches"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;
};

}  // namespace autoindex
