#pragma once

#include "check/validator.h"

namespace autoindex {

// Validates the online index lifecycle (DESIGN.md §10): every
// planner-reachable index really is kReady and matches a from-scratch
// rebuild entry-for-entry (the end-to-end guarantee of the phased build:
// snapshot scan + delta catch-up + publish drain lost nothing), while
// in-flight builds stay planner-invisible, reference live schema, and
// never hold more entries than the heap has slots. A kDropping index
// observable anywhere is a leak — drops unlink atomically.
class LifecycleValidator : public Validator {
 public:
  const char* name() const override { return "lifecycle"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;
};

}  // namespace autoindex
