#include "check/latch_validator.h"

#include <map>
#include <string>
#include <utility>

#include "storage/latch_manager.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

struct HolderCounts {
  int shared = 0;
  int exclusive = 0;
};

}  // namespace

void LatchValidator::Validate(const CheckContext& ctx,
                              CheckReport* report) const {
  if (ctx.latches == nullptr) return;
  const LatchManager::DebugSnapshot snap = ctx.latches->Snapshot();

  // Tally who claims to hold what, and audit each thread's held list for
  // global-order violations while we're at it.
  std::map<std::string, HolderCounts> holders;
  size_t thread_idx = 0;
  for (const LatchManager::ThreadHeldList& thread : snap.threads) {
    report->NoteStructureChecked();
    const std::string* prev = nullptr;
    for (const auto& [table, mode] : thread.held) {
      if (mode == LatchManager::LatchMode::kExclusive) {
        ++holders[table].exclusive;
      } else {
        ++holders[table].shared;
      }
      if (prev != nullptr && !(*prev < table)) {
        report->AddIssue(
            name(),
            StrCat("thread #", thread_idx, " holds '", *prev, "' before '",
                   table,
                   "': held list violates the sorted acquisition order"));
      }
      prev = &table;
    }
    ++thread_idx;
  }

  for (const LatchManager::TableLatchState& latch : snap.latches) {
    report->NoteStructureChecked();
    if (latch.readers < 0 || latch.waiting_writers < 0) {
      report->AddIssue(name(),
                       StrCat("latch ", latch.table, ": negative count (",
                              latch.readers, " readers, ",
                              latch.waiting_writers, " waiting writers)"));
    }
    if (latch.readers > 0 && latch.writer) {
      report->AddIssue(name(),
                       StrCat("latch ", latch.table, ": held shared by ",
                              latch.readers,
                              " reader(s) and exclusive at the same time"));
    }
    const HolderCounts counts = holders.count(latch.table) > 0
                                    ? holders.at(latch.table)
                                    : HolderCounts{};
    if (counts.shared != latch.readers) {
      report->AddIssue(
          name(),
          StrCat("latch ", latch.table, ": reader count ", latch.readers,
                 " but ", counts.shared,
                 " thread(s) record a shared hold (leak or double-release)"));
    }
    const int expected_writers = latch.writer ? 1 : 0;
    if (counts.exclusive != expected_writers) {
      report->AddIssue(
          name(),
          StrCat("latch ", latch.table, ": writer flag ",
                 latch.writer ? "set" : "clear", " but ", counts.exclusive,
                 " thread(s) record an exclusive hold"));
    }
    holders.erase(latch.table);
  }

  // Anything left was recorded by a thread but has no latch entry at all.
  for (const auto& [table, counts] : holders) {
    if (counts.shared == 0 && counts.exclusive == 0) continue;
    report->AddIssue(name(),
                     StrCat("thread(s) record holds on '", table,
                            "' but the latch table has no entry for it"));
  }
}

}  // namespace autoindex
