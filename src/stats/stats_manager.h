#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/expr.h"
#include "stats/column_stats.h"
#include "storage/catalog.h"
#include "storage/latch_manager.h"
#include "util/mutex.h"

namespace autoindex {

// Caches per-table, per-column statistics and estimates predicate
// selectivities. Stats go stale as tables mutate; callers re-ANALYZE via
// Invalidate()/Analyze() (the workload runner does this between rounds).
//
// Thread safety: the cache is mutex-guarded and hands out shared_ptr
// snapshots, so a concurrent re-ANALYZE can swap a table's stats without
// invalidating pointers a planner thread is still reading. When a latch
// manager is attached (set_latch_manager), the ANALYZE table scan runs
// under a shared table latch — a no-op if the calling statement already
// latched the table.
class StatsManager {
 public:
  explicit StatsManager(Catalog* catalog) : catalog_(catalog) {}

  StatsManager(const StatsManager&) = delete;
  StatsManager& operator=(const StatsManager&) = delete;

  // Attaches the database's latch manager; scans latch tables from then
  // on. Must be called before concurrent use (Database does this at
  // construction).
  void set_latch_manager(LatchManager* latches) { latches_ = latches; }

  // (Re)builds statistics for one table.
  void Analyze(const std::string& table) EXCLUDES(mu_);
  // (Re)builds statistics for every table in the catalog.
  void AnalyzeAll() EXCLUDES(mu_);
  void Invalidate(const std::string& table) EXCLUDES(mu_);

  // Stats for a column; builds them lazily on first access. Returns
  // nullptr when the table/column does not exist. The snapshot stays
  // valid (immutable) even if the table is re-analyzed concurrently.
  std::shared_ptr<const ColumnStats> GetColumnStats(
      const std::string& table, const std::string& column) EXCLUDES(mu_);

  // Estimated fraction of `table` rows satisfying the boolean expression.
  // ANDs multiply (independence), ORs combine via inclusion-exclusion,
  // NOT complements. Predicates naming other tables are ignored (treated
  // as selectivity 1 for this table).
  double EstimateSelectivity(const Expr& expr, const std::string& table,
                             const std::string& alias = "");

  // Selectivity of a single atomic predicate against `table`.
  double AtomSelectivity(const Expr& atom, const std::string& table,
                         const std::string& alias = "");

  // Snapshot serialization (src/persist/): saves/restores the cached stats
  // verbatim (tables and columns in sorted order, so the bytes are
  // deterministic). Load replaces the whole cache.
  void Save(persist::Writer* w) const EXCLUDES(mu_);
  void Load(persist::Reader* r) EXCLUDES(mu_);

 private:
  Catalog* catalog_;
  LatchManager* latches_ = nullptr;
  mutable util::Mutex mu_;
  // table -> column -> immutable stats snapshot
  std::unordered_map<
      std::string,
      std::unordered_map<std::string, std::shared_ptr<const ColumnStats>>>
      cache_ GUARDED_BY(mu_);
};

}  // namespace autoindex
