// Snapshot serialization for the statistics subsystem (kept out of the
// estimation translation units so the selectivity math stays free of
// persistence concerns).
#include <algorithm>
#include <map>

#include "persist/serde.h"
#include "stats/column_stats.h"
#include "stats/stats_manager.h"

namespace autoindex {

void ColumnStats::Save(persist::Writer* w) const {
  w->PutU64(num_rows_);
  w->PutU64(num_nulls_);
  w->PutU64(num_distinct_);
  w->PutDouble(correlation_);
  persist::PutValue(w, min_);
  persist::PutValue(w, max_);
  w->PutU32(static_cast<uint32_t>(bucket_bounds_.size()));
  for (const Value& v : bucket_bounds_) persist::PutValue(w, v);
}

ColumnStats ColumnStats::Load(persist::Reader* r) {
  ColumnStats stats;
  stats.num_rows_ = r->GetU64();
  stats.num_nulls_ = r->GetU64();
  stats.num_distinct_ = r->GetU64();
  stats.correlation_ = r->GetDouble();
  stats.min_ = persist::GetValue(r);
  stats.max_ = persist::GetValue(r);
  const uint32_t nbounds = r->GetU32();
  stats.bucket_bounds_.reserve(std::min<size_t>(nbounds, r->remaining()));
  for (uint32_t i = 0; i < nbounds && r->ok(); ++i) {
    stats.bucket_bounds_.push_back(persist::GetValue(r));
  }
  return stats;
}

void StatsManager::Save(persist::Writer* w) const {
  util::MutexLock lock(mu_);
  // std::map orders tables and columns, making snapshot bytes stable
  // regardless of hash-map iteration order.
  std::map<std::string, std::map<std::string, const ColumnStats*>> sorted;
  for (const auto& [table, columns] : cache_) {
    for (const auto& [column, stats] : columns) {
      sorted[table][column] = stats.get();
    }
  }
  w->PutU32(static_cast<uint32_t>(sorted.size()));
  for (const auto& [table, columns] : sorted) {
    w->PutString(table);
    w->PutU32(static_cast<uint32_t>(columns.size()));
    for (const auto& [column, stats] : columns) {
      w->PutString(column);
      stats->Save(w);
    }
  }
}

void StatsManager::Load(persist::Reader* r) {
  util::MutexLock lock(mu_);
  cache_.clear();
  const uint32_t ntables = r->GetU32();
  for (uint32_t i = 0; i < ntables && r->ok(); ++i) {
    const std::string table = r->GetString();
    const uint32_t ncolumns = r->GetU32();
    for (uint32_t j = 0; j < ncolumns && r->ok(); ++j) {
      const std::string column = r->GetString();
      cache_[table][column] =
          std::make_shared<const ColumnStats>(ColumnStats::Load(r));
    }
  }
}

}  // namespace autoindex
