#include "stats/stats_manager.h"

#include <algorithm>

#include "util/string_util.h"

namespace autoindex {

void StatsManager::Analyze(const std::string& table) {
  const HeapTable* t = catalog_->GetTable(table);
  if (t == nullptr) return;
  // Scan under a shared latch (no-op when the calling statement already
  // holds this table), then publish the snapshot under the cache mutex.
  LatchManager::Guard guard;
  if (latches_ != nullptr) guard = latches_->AcquireShared({table});
  std::unordered_map<std::string, std::shared_ptr<const ColumnStats>> built;
  for (size_t i = 0; i < t->schema().num_columns(); ++i) {
    built[t->schema().column(i).name] =
        std::make_shared<const ColumnStats>(ColumnStats::Build(*t, i));
  }
  guard.Release();
  util::MutexLock lock(mu_);
  cache_[ToLower(table)] = std::move(built);
}

void StatsManager::AnalyzeAll() {
  for (const std::string& name : catalog_->TableNames()) Analyze(name);
}

void StatsManager::Invalidate(const std::string& table) {
  util::MutexLock lock(mu_);
  cache_.erase(ToLower(table));
}

std::shared_ptr<const ColumnStats> StatsManager::GetColumnStats(
    const std::string& table, const std::string& column) {
  const std::string tkey = ToLower(table);
  {
    util::MutexLock lock(mu_);
    auto it = cache_.find(tkey);
    if (it != cache_.end()) {
      auto cit = it->second.find(ToLower(column));
      return cit == it->second.end() ? nullptr : cit->second;
    }
  }
  Analyze(table);
  util::MutexLock lock(mu_);
  auto it = cache_.find(tkey);
  if (it == cache_.end()) return nullptr;
  auto cit = it->second.find(ToLower(column));
  return cit == it->second.end() ? nullptr : cit->second;
}

namespace {

// True when the column reference plausibly targets `table` (either
// unqualified, or qualified with the table name or its alias).
bool RefTargetsTable(const ColumnRef& col, const std::string& table,
                     const std::string& alias) {
  if (col.table.empty()) return true;
  return col.table == table || (!alias.empty() && col.table == alias);
}

// Extracts the (column, literal) shape of a comparison atom, swapping
// operands when the literal is on the left. Returns false for
// column-column comparisons (join predicates).
bool NormalizeComparison(const Expr& atom, ColumnRef* col, CompareOp* op,
                         Value* lit) {
  const Expr& lhs = *atom.children[0];
  const Expr& rhs = *atom.children[1];
  if (lhs.kind == ExprKind::kColumn && rhs.kind == ExprKind::kLiteral) {
    *col = lhs.column;
    *op = atom.op;
    *lit = rhs.literal;
    return true;
  }
  if (lhs.kind == ExprKind::kLiteral && rhs.kind == ExprKind::kColumn) {
    *col = rhs.column;
    *op = SwapCompareOp(atom.op);
    *lit = lhs.literal;
    return true;
  }
  return false;
}

}  // namespace

double StatsManager::AtomSelectivity(const Expr& atom,
                                     const std::string& table,
                                     const std::string& alias) {
  switch (atom.kind) {
    case ExprKind::kCompare: {
      ColumnRef col;
      CompareOp op;
      Value lit;
      if (!NormalizeComparison(atom, &col, &op, &lit)) {
        // Join predicate or literal-literal: neutral for a single table.
        return 1.0;
      }
      if (!RefTargetsTable(col, ToLower(table), alias)) return 1.0;
      const std::shared_ptr<const ColumnStats> stats =
          GetColumnStats(table, col.column);
      if (stats == nullptr) return 1.0;
      return stats->Selectivity(op, lit);
    }
    case ExprKind::kBetween: {
      if (atom.children[0]->kind != ExprKind::kColumn) return 0.33;
      const ColumnRef& col = atom.children[0]->column;
      if (!RefTargetsTable(col, ToLower(table), alias)) return 1.0;
      const std::shared_ptr<const ColumnStats> stats =
          GetColumnStats(table, col.column);
      if (stats == nullptr) return 0.33;
      return stats->RangeSelectivity(atom.children[1]->literal,
                                     atom.children[2]->literal);
    }
    case ExprKind::kInList: {
      if (atom.children[0]->kind != ExprKind::kColumn) return 0.33;
      const ColumnRef& col = atom.children[0]->column;
      if (!RefTargetsTable(col, ToLower(table), alias)) return 1.0;
      const std::shared_ptr<const ColumnStats> stats =
          GetColumnStats(table, col.column);
      if (stats == nullptr) return 0.33;
      const double sel = stats->InListSelectivity(atom.in_list);
      return atom.negated ? std::max(0.0, 1.0 - sel) : sel;
    }
    case ExprKind::kIsNull: {
      if (atom.children[0]->kind != ExprKind::kColumn) return 0.1;
      const ColumnRef& col = atom.children[0]->column;
      if (!RefTargetsTable(col, ToLower(table), alias)) return 1.0;
      const std::shared_ptr<const ColumnStats> stats =
          GetColumnStats(table, col.column);
      if (stats == nullptr) return 0.1;
      const double null_frac =
          stats->num_rows() == 0
              ? 0.0
              : static_cast<double>(stats->num_nulls()) / stats->num_rows();
      return atom.negated ? 1.0 - null_frac : null_frac;
    }
    default:
      return 0.33;
  }
}

double StatsManager::EstimateSelectivity(const Expr& expr,
                                         const std::string& table,
                                         const std::string& alias) {
  switch (expr.kind) {
    case ExprKind::kAnd: {
      double sel = 1.0;
      for (const ExprPtr& c : expr.children) {
        sel *= EstimateSelectivity(*c, table, alias);
      }
      return sel;
    }
    case ExprKind::kOr: {
      // Inclusion-exclusion under independence, folded pairwise.
      double sel = 0.0;
      for (const ExprPtr& c : expr.children) {
        const double s = EstimateSelectivity(*c, table, alias);
        sel = sel + s - sel * s;
      }
      return sel;
    }
    case ExprKind::kNot:
      return std::clamp(
          1.0 - EstimateSelectivity(*expr.children[0], table, alias), 0.0,
          1.0);
    default:
      return AtomSelectivity(expr, table, alias);
  }
}

}  // namespace autoindex
