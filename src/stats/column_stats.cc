#include "stats/column_stats.h"

#include <algorithm>
#include <cmath>

namespace autoindex {

ColumnStats ColumnStats::Build(const HeapTable& table, size_t ordinal,
                               size_t num_buckets) {
  ColumnStats stats;
  std::vector<Value> values;
  values.reserve(table.num_rows());
  // Accumulators for physical-order correlation (numeric columns).
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
  size_t numeric_n = 0;
  table.Scan([&](RowId, const Row& row) {
    const Value& v = row[ordinal];
    ++stats.num_rows_;
    if (v.is_null()) {
      ++stats.num_nulls_;
    } else {
      if (v.type() != ValueType::kString) {
        const double x = static_cast<double>(numeric_n);
        const double y = v.AsDouble();
        sum_x += x;
        sum_y += y;
        sum_xx += x * x;
        sum_yy += y * y;
        sum_xy += x * y;
        ++numeric_n;
      }
      values.push_back(v);
    }
  });
  if (numeric_n > 2) {
    const double n = static_cast<double>(numeric_n);
    const double cov = sum_xy - sum_x * sum_y / n;
    const double var_x = sum_xx - sum_x * sum_x / n;
    const double var_y = sum_yy - sum_y * sum_y / n;
    if (var_x > 1e-12 && var_y > 1e-12) {
      stats.correlation_ =
          std::clamp(cov / std::sqrt(var_x * var_y), -1.0, 1.0);
    }
  }
  if (values.empty()) return stats;

  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  stats.min_ = values.front();
  stats.max_ = values.back();

  size_t distinct = 1;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i].Compare(values[i - 1]) != 0) ++distinct;
  }
  stats.num_distinct_ = distinct;

  const size_t buckets = std::max<size_t>(1, std::min(num_buckets,
                                                      values.size()));
  stats.bucket_bounds_.reserve(buckets);
  for (size_t b = 1; b <= buckets; ++b) {
    const size_t idx =
        std::min(values.size() - 1, b * values.size() / buckets);
    stats.bucket_bounds_.push_back(
        values[idx == 0 ? 0 : idx - (b == buckets ? 0 : 0)]);
  }
  // Ensure the last bound is the max.
  stats.bucket_bounds_.back() = stats.max_;
  return stats;
}

double ColumnStats::FractionBelow(const Value& v) const {
  const size_t non_null = num_rows_ - num_nulls_;
  if (non_null == 0 || bucket_bounds_.empty()) return 0.0;
  if (v.Compare(min_) <= 0) return 0.0;
  if (v.Compare(max_) > 0) return 1.0;
  // Count full buckets whose upper bound is below v; interpolate within
  // the straddling bucket using value distance when numeric.
  size_t full = 0;
  while (full < bucket_bounds_.size() &&
         bucket_bounds_[full].Compare(v) < 0) {
    ++full;
  }
  double frac = static_cast<double>(full) / bucket_bounds_.size();
  if (full < bucket_bounds_.size()) {
    const Value& hi = bucket_bounds_[full];
    const Value& lo = (full == 0) ? min_ : bucket_bounds_[full - 1];
    if (v.type() != ValueType::kString && lo.type() != ValueType::kString &&
        hi.type() != ValueType::kString && !lo.is_null() && !hi.is_null()) {
      const double lo_d = lo.AsDouble();
      const double hi_d = hi.AsDouble();
      if (hi_d > lo_d) {
        double t = (v.AsDouble() - lo_d) / (hi_d - lo_d);
        t = std::clamp(t, 0.0, 1.0);
        frac += t / bucket_bounds_.size();
      }
    } else {
      frac += 0.5 / bucket_bounds_.size();  // string straddle: midpoint
    }
  }
  return std::clamp(frac, 0.0, 1.0);
}

double ColumnStats::EqSelectivity() const {
  if (num_rows_ == 0) return 0.0;
  if (num_distinct_ == 0) return 0.0;
  return 1.0 / static_cast<double>(num_distinct_);
}

double ColumnStats::Selectivity(CompareOp op, const Value& v) const {
  if (num_rows_ == 0) return 0.0;
  // SQL three-valued logic: `col <op> NULL` is UNKNOWN for every row, and
  // UNKNOWN never satisfies a WHERE clause.
  if (v.is_null()) return 0.0;
  const double non_null_frac =
      static_cast<double>(num_rows_ - num_nulls_) / num_rows_;
  // Provably-out-of-range literals: the min/max from ANALYZE bound every
  // stored value, so comparisons resolve exactly instead of falling back
  // to histogram fractions (which credit EqSelectivity to values that
  // cannot exist — the planner then keeps picking an index scan that will
  // match nothing, or vice versa).
  const bool below_min = v.Compare(min_) < 0;
  const bool above_max = v.Compare(max_) > 0;
  const bool at_or_below_min = v.Compare(min_) <= 0;
  const bool at_or_above_max = v.Compare(max_) >= 0;
  switch (op) {
    case CompareOp::kEq:
      if (below_min || above_max) return 0.0;
      return EqSelectivity() * non_null_frac;
    case CompareOp::kNe:
      if (below_min || above_max) return non_null_frac;
      return (1.0 - EqSelectivity()) * non_null_frac;
    case CompareOp::kLt:
      if (at_or_below_min) return 0.0;
      if (above_max) return non_null_frac;
      return FractionBelow(v) * non_null_frac;
    case CompareOp::kLe:
      if (below_min) return 0.0;
      if (at_or_above_max) return non_null_frac;
      return std::min(1.0, FractionBelow(v) + EqSelectivity()) *
             non_null_frac;
    case CompareOp::kGt:
      if (at_or_above_max) return 0.0;
      if (below_min) return non_null_frac;
      return (1.0 - std::min(1.0, FractionBelow(v) + EqSelectivity())) *
             non_null_frac;
    case CompareOp::kGe:
      if (above_max) return 0.0;
      if (at_or_below_min) return non_null_frac;
      return (1.0 - FractionBelow(v)) * non_null_frac;
    case CompareOp::kLike:
      // Leading-wildcard-free patterns behave like a narrow range; use a
      // fixed heuristic as classical optimizers do.
      return 0.05 * non_null_frac;
  }
  return 0.33;
}

double ColumnStats::RangeSelectivity(const Value& lo, const Value& hi) const {
  if (num_rows_ == 0) return 0.0;
  if (lo.is_null() || hi.is_null()) return 0.0;
  if (hi.Compare(lo) < 0) return 0.0;
  // Disjoint ranges: entirely below min or above max matches nothing
  // (without this, EqSelectivity leaks into below_hi and a range that
  // can't match anything still estimates > 0).
  if (hi.Compare(min_) < 0 || lo.Compare(max_) > 0) return 0.0;
  const double non_null_frac =
      static_cast<double>(num_rows_ - num_nulls_) / num_rows_;
  const double below_hi = std::min(1.0, FractionBelow(hi) + EqSelectivity());
  const double below_lo = FractionBelow(lo);
  return std::clamp(below_hi - below_lo, 0.0, 1.0) * non_null_frac;
}

double ColumnStats::InListSelectivity(const std::vector<Value>& list) const {
  double sel = 0.0;
  for (const Value& v : list) sel += Selectivity(CompareOp::kEq, v);
  return std::min(1.0, sel);
}

}  // namespace autoindex
