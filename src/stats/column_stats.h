#pragma once

#include <string>
#include <vector>

#include "sql/expr.h"
#include "storage/table.h"
#include "storage/value.h"

namespace autoindex {

namespace persist {
class Reader;
class Writer;
}  // namespace persist

// Per-column statistics gathered by ANALYZE: row/NULL counts, distinct
// estimate, min/max and an equi-depth histogram. These drive selectivity
// estimation in the what-if planner.
class ColumnStats {
 public:
  ColumnStats() = default;

  // Builds stats by scanning the column `ordinal` of `table`.
  // `num_buckets` bounds the histogram resolution.
  static ColumnStats Build(const HeapTable& table, size_t ordinal,
                           size_t num_buckets = 32);

  size_t num_rows() const { return num_rows_; }
  size_t num_nulls() const { return num_nulls_; }
  size_t num_distinct() const { return num_distinct_; }
  const Value& min() const { return min_; }
  const Value& max() const { return max_; }

  // Pearson correlation in [-1, 1] between physical row order and column
  // value (pg_stats.correlation). |corr| ≈ 1 means an index range scan
  // touches contiguous heap pages; the planner blends heap-fetch costs
  // between the clustered and random extremes with corr². 0 for
  // non-numeric columns.
  double correlation() const { return correlation_; }

  // Fraction of rows satisfying `col <op> v`, in [0, 1].
  double Selectivity(CompareOp op, const Value& v) const;

  // Fraction of rows with lo <= col <= hi.
  double RangeSelectivity(const Value& lo, const Value& hi) const;

  // Fraction for `col IN (list)` (capped at 1).
  double InListSelectivity(const std::vector<Value>& list) const;

  // 1/num_distinct — the default equality selectivity.
  double EqSelectivity() const;

  // Snapshot serialization (src/persist/): the full state round-trips, so
  // a reloaded database estimates selectivities identically without
  // re-ANALYZE.
  void Save(persist::Writer* w) const;
  static ColumnStats Load(persist::Reader* r);

 private:
  // Fraction of non-null rows strictly below v (histogram interpolation).
  double FractionBelow(const Value& v) const;

  size_t num_rows_ = 0;
  size_t num_nulls_ = 0;
  size_t num_distinct_ = 0;
  double correlation_ = 0.0;
  Value min_;
  Value max_;
  // Equi-depth bucket upper bounds (ascending); each bucket holds
  // ~num_non_null/buckets rows.
  std::vector<Value> bucket_bounds_;
};

}  // namespace autoindex
