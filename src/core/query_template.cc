#include "core/query_template.h"

#include <algorithm>

#include "persist/serde.h"
#include "persist/sql_serde.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace autoindex {

TemplateStore::TemplateStore(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

QueryTemplate* TemplateStore::Observe(const std::string& sql) {
  const std::string fp = FingerprintSql(sql);
  ++total_observed_;
  ++observed_since_reset_;
  auto it = templates_.find(fp);
  if (it != templates_.end()) {
    ++matched_since_reset_;
    QueryTemplate* t = it->second.get();
    t->frequency += 1.0;
    ++t->total_matches;
    t->last_seen_round = round_;
    return t;
  }
  StatusOr<Statement> stmt = ParseSql(sql);
  if (!stmt.ok()) return nullptr;
  if (templates_.size() >= capacity_) EvictLowestFrequency();
  auto tmpl = std::make_unique<QueryTemplate>();
  tmpl->id = next_id_++;
  tmpl->fingerprint = fp;
  tmpl->representative = std::move(*stmt);
  tmpl->frequency = 1.0;
  tmpl->total_matches = 1;
  tmpl->last_seen_round = round_;
  tmpl->is_write = tmpl->representative.IsWrite();
  QueryTemplate* raw = tmpl.get();
  templates_.emplace(fp, std::move(tmpl));
  return raw;
}

QueryTemplate* TemplateStore::Observe(const Statement& stmt,
                                      const std::string& sql) {
  const std::string fp = FingerprintSql(sql);
  ++total_observed_;
  ++observed_since_reset_;
  auto it = templates_.find(fp);
  if (it != templates_.end()) {
    ++matched_since_reset_;
    QueryTemplate* t = it->second.get();
    t->frequency += 1.0;
    ++t->total_matches;
    t->last_seen_round = round_;
    return t;
  }
  if (templates_.size() >= capacity_) EvictLowestFrequency();
  auto tmpl = std::make_unique<QueryTemplate>();
  tmpl->id = next_id_++;
  tmpl->fingerprint = fp;
  tmpl->representative = stmt.Clone();
  tmpl->frequency = 1.0;
  tmpl->total_matches = 1;
  tmpl->last_seen_round = round_;
  tmpl->is_write = tmpl->representative.IsWrite();
  QueryTemplate* raw = tmpl.get();
  templates_.emplace(fp, std::move(tmpl));
  return raw;
}

void TemplateStore::EvictLowestFrequency() {
  if (templates_.empty()) return;
  auto victim = templates_.begin();
  for (auto it = templates_.begin(); it != templates_.end(); ++it) {
    if (it->second->frequency < victim->second->frequency ||
        (it->second->frequency == victim->second->frequency &&
         it->second->last_seen_round < victim->second->last_seen_round)) {
      victim = it;
    }
  }
  templates_.erase(victim);
}

void TemplateStore::Decay(double factor, double min_frequency) {
  for (auto it = templates_.begin(); it != templates_.end();) {
    it->second->frequency *= factor;
    // A template observed in the current round is live no matter how low
    // decay pushed its accumulated frequency — erasing it would drop a
    // query shape the workload is actively sending (it was typically
    // created this round with frequency 1.0, which one aggressive decay
    // immediately puts under the floor).
    if (it->second->frequency < min_frequency &&
        it->second->last_seen_round != round_) {
      it = templates_.erase(it);
    } else {
      ++it;
    }
  }
}

double TemplateStore::MatchRate() const {
  if (observed_since_reset_ == 0) return 1.0;
  return static_cast<double>(matched_since_reset_) / observed_since_reset_;
}

void TemplateStore::ResetMatchStats() {
  matched_since_reset_ = 0;
  observed_since_reset_ = 0;
}

std::vector<const QueryTemplate*> TemplateStore::TemplatesByFrequency()
    const {
  std::vector<const QueryTemplate*> out;
  out.reserve(templates_.size());
  for (const auto& [_, t] : templates_) out.push_back(t.get());
  std::sort(out.begin(), out.end(),
            [](const QueryTemplate* a, const QueryTemplate* b) {
              if (a->frequency != b->frequency) {
                return a->frequency > b->frequency;
              }
              return a->id < b->id;
            });
  return out;
}

void TemplateStore::Save(persist::Writer* w) const {
  w->PutU64(next_id_);
  w->PutU64(round_);
  w->PutU64(total_observed_);
  w->PutU64(matched_since_reset_);
  w->PutU64(observed_since_reset_);
  // Id order (not hash-map order) keeps snapshot bytes deterministic.
  std::vector<const QueryTemplate*> sorted;
  sorted.reserve(templates_.size());
  for (const auto& [_, t] : templates_) sorted.push_back(t.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const QueryTemplate* a, const QueryTemplate* b) {
              return a->id < b->id;
            });
  w->PutU32(static_cast<uint32_t>(sorted.size()));
  for (const QueryTemplate* t : sorted) {
    w->PutU64(t->id);
    w->PutString(t->fingerprint);
    persist::PutStatement(w, t->representative);
    w->PutDouble(t->frequency);
    w->PutU64(t->total_matches);
    w->PutU64(t->last_seen_round);
    w->PutBool(t->is_write);
  }
}

void TemplateStore::Load(persist::Reader* r) {
  templates_.clear();
  next_id_ = r->GetU64();
  round_ = r->GetU64();
  total_observed_ = r->GetU64();
  matched_since_reset_ = r->GetU64();
  observed_since_reset_ = r->GetU64();
  const uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    auto t = std::make_unique<QueryTemplate>();
    t->id = r->GetU64();
    t->fingerprint = r->GetString();
    t->representative = persist::GetStatement(r);
    t->frequency = r->GetDouble();
    t->total_matches = r->GetU64();
    t->last_seen_round = r->GetU64();
    t->is_write = r->GetBool();
    if (!r->ok()) break;
    templates_[t->fingerprint] = std::move(t);
  }
}

}  // namespace autoindex
