#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/statement.h"

namespace autoindex {

namespace persist {
class Reader;
class Writer;
}  // namespace persist

// One query template: the shared access pattern of all queries with the
// same fingerprint (Sec. IV-A step 1). The representative statement is the
// first instance observed; candidate generation reads its structure (which
// columns, which clauses), not its constants.
struct QueryTemplate {
  uint64_t id = 0;
  std::string fingerprint;
  Statement representative;
  // Decayed match count — the template's weight in the workload model.
  double frequency = 0.0;
  // Undecayed lifetime count.
  size_t total_matches = 0;
  uint64_t last_seen_round = 0;
  bool is_write = false;
};

// Bounded store of the most frequently matched templates. Retention is
// frequency-based ("similar to LRU": Sec. IV-C keeps templates most likely
// to recur); drift handling multiplies all frequencies by a decay factor
// and drops the low-frequency tail.
class TemplateStore {
 public:
  explicit TemplateStore(size_t capacity = 5000);

  TemplateStore(const TemplateStore&) = delete;
  TemplateStore& operator=(const TemplateStore&) = delete;

  // Records one query occurrence. Parses only when the fingerprint is new
  // (the hot path for repeated queries is a hash lookup). Returns the
  // matched/created template, or nullptr for unparseable SQL.
  QueryTemplate* Observe(const std::string& sql);

  // Same, given a pre-parsed statement (skips parsing entirely).
  QueryTemplate* Observe(const Statement& stmt, const std::string& sql);

  // Multiplies every frequency by `factor` (in [0,1]) and evicts templates
  // whose frequency drops below `min_frequency` (Sec. IV-C drift rule).
  void Decay(double factor, double min_frequency = 0.5);

  // Advances the logical round counter (one round = one management cycle).
  void AdvanceRound() { ++round_; }
  uint64_t round() const { return round_; }

  // Fraction of observations since the last ResetMatchStats() that matched
  // an already-known template. A low rate signals workload drift.
  double MatchRate() const;
  void ResetMatchStats();

  // Templates sorted by frequency, highest first.
  std::vector<const QueryTemplate*> TemplatesByFrequency() const;

  size_t size() const { return templates_.size(); }
  size_t capacity() const { return capacity_; }
  size_t total_observed() const { return total_observed_; }

  // Snapshot serialization (src/persist/): templates in id order plus the
  // counters, so a reloaded store matches, decays, and assigns new ids
  // exactly where the saved one stopped. Load replaces the store contents
  // (capacity keeps its constructed value).
  void Save(persist::Writer* w) const;
  void Load(persist::Reader* r);

 private:
  void EvictLowestFrequency();

  size_t capacity_;
  uint64_t next_id_ = 1;
  uint64_t round_ = 0;
  size_t total_observed_ = 0;
  size_t matched_since_reset_ = 0;
  size_t observed_since_reset_ = 0;
  std::unordered_map<std::string, std::unique_ptr<QueryTemplate>> templates_;
};

}  // namespace autoindex
