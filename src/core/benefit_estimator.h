#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query_template.h"
#include "engine/database.h"
#include "engine/what_if.h"
#include "ml/regression.h"
#include "util/mutex.h"

namespace autoindex {

namespace persist {
class Reader;
class Writer;
}  // namespace persist

// The workload model index benefits are computed against: the templates
// with their (decayed) frequencies. Cost of the workload under a config =
// sum over templates of frequency * estimated statement cost.
struct WorkloadModel {
  struct Entry {
    const QueryTemplate* tmpl;
    double weight;
  };
  std::vector<Entry> entries;

  static WorkloadModel FromTemplates(
      const std::vector<const QueryTemplate*>& templates);
};

// The paper's index benefit estimator (Sec. V): computes the cost features
// C_data / C_io / C_cpu per statement via the what-if model and combines
// them either with classical static weights (untrained) or with the
// learned one-layer sigmoid regression (trained on historical
// (features, measured cost) pairs).
class IndexBenefitEstimator {
 public:
  explicit IndexBenefitEstimator(Database* db) : db_(db) {}

  IndexBenefitEstimator(const IndexBenefitEstimator&) = delete;
  IndexBenefitEstimator& operator=(const IndexBenefitEstimator&) = delete;

  // Estimated cost of one statement under a config (model-combined).
  double EstimateStatementCost(const Statement& stmt,
                               const IndexConfig& config) const
      EXCLUDES(obs_mu_);

  // Estimated total workload cost. Memoized per (template, config) — MCTS
  // evaluates thousands of configs over the same templates. The memo is
  // epoch-guarded: it self-flushes whenever the database's data version
  // (bumped by writes, bulk loads, DDL, and ANALYZE) has moved since the
  // entries were computed, so costs can never be served against stale
  // table contents or statistics.
  double EstimateWorkloadCost(const WorkloadModel& workload,
                              const IndexConfig& config) const
      EXCLUDES(obs_mu_, cache_mu_);

  // Benefit of moving from `from` to `to`: positive = `to` is cheaper.
  double EstimateBenefit(const WorkloadModel& workload,
                         const IndexConfig& from, const IndexConfig& to) const;

  // --- learned model (Sec. V-B) ---
  // Records one historical observation: the cost features of a statement
  // (estimated under the then-current config) and its measured cost.
  void AddObservation(const std::vector<double>& features,
                      double measured_cost) EXCLUDES(obs_mu_);
  // Trains when enough observations exist; returns final training MSE or
  // a negative value when skipped. Training runs on a copy of the history
  // and the freshly trained model is swapped in under obs_mu_, so
  // concurrent estimates always see either the old or the new model —
  // never a half-trained one.
  double TrainModel(size_t min_observations = 64)
      EXCLUDES(obs_mu_, cache_mu_);
  bool model_trained() const EXCLUDES(obs_mu_) {
    util::MutexLock lock(obs_mu_);
    return model_.trained();
  }
  size_t num_observations() const EXCLUDES(obs_mu_);
  // 9-fold cross-validated RMSE over the collected history.
  double CrossValidateRmse() const EXCLUDES(obs_mu_);

  // Explicitly flushes the (template, config) memo. Usually unnecessary —
  // the epoch guard (see EstimateWorkloadCost) invalidates automatically
  // on data/stats change — but kept for model swaps and tests.
  void InvalidateCache() const EXCLUDES(cache_mu_);
  // Memo entries currently held (tests).
  size_t cache_size() const EXCLUDES(cache_mu_);

  // --- execution feedback (the EXPLAIN ANALYZE loop) ---
  // Records the per-access-path (estimated, observed) pairs the executor
  // collected for one statement. Aggregated per (table, index) so the
  // planner's systematic estimation error on each path is measurable.
  // Kept separate from AddObservation: feedback calibrates access paths,
  // the observation history trains the statement-level cost model.
  void RecordExecutionFeedback(const std::vector<AccessPathFeedback>& batch)
      EXCLUDES(feedback_mu_);
  // Total pairs ever recorded.
  size_t num_feedback_pairs() const EXCLUDES(feedback_mu_);
  // Whether at least one pair was recorded for the path. `index` is the
  // display name; empty means the sequential-scan path.
  bool HasFeedbackFor(const std::string& table,
                      const std::string& index) const EXCLUDES(feedback_mu_);
  // Mean observed/estimated cost ratio of the path: >1 means the planner
  // underestimates it. 1.0 when unseen or the estimate is degenerate.
  double FeedbackCostRatio(const std::string& table,
                           const std::string& index) const
      EXCLUDES(feedback_mu_);

  // Snapshot serialization (src/persist/): the learned model, the
  // observation history, and the per-path feedback aggregates round-trip;
  // the epoch-guarded cost memo is deliberately not saved (it rebuilds
  // lazily and its epoch would be stale anyway).
  void Save(persist::Writer* w) const EXCLUDES(obs_mu_, feedback_mu_);
  void Load(persist::Reader* r)
      EXCLUDES(obs_mu_, feedback_mu_, cache_mu_);

 private:
  struct PathFeedback {
    double est_cost_sum = 0.0;
    double actual_cost_sum = 0.0;
    double est_rows_sum = 0.0;
    double actual_rows_sum = 0.0;
    size_t count = 0;
  };

  double CombineFeatures(const CostBreakdown& breakdown) const
      EXCLUDES(obs_mu_);

  Database* db_;

  // Guards the learned model and the observation history it trains on
  // (client feedback hooks append while the tuning thread trains/reads;
  // estimation reads the model from whichever thread runs the tuner).
  mutable util::Mutex obs_mu_;
  SigmoidRegression model_ GUARDED_BY(obs_mu_);
  std::vector<std::vector<double>> features_ GUARDED_BY(obs_mu_);
  std::vector<double> targets_ GUARDED_BY(obs_mu_);

  // Guards the cost memo and its data-version epoch.
  mutable util::Mutex cache_mu_;
  // Memo: hash-combined (template id, config hash) -> cost.
  mutable std::unordered_map<uint64_t, double> cache_ GUARDED_BY(cache_mu_);
  // Database data version the memo entries were computed at.
  mutable uint64_t cache_epoch_ GUARDED_BY(cache_mu_) = 0;

  // Guards the per-access-path aggregates (written from client threads
  // via the execution-feedback hook, read by the tuning thread).
  mutable util::Mutex feedback_mu_;
  // Keyed "<table>\x01<index display name>".
  std::unordered_map<std::string, PathFeedback> path_feedback_
      GUARDED_BY(feedback_mu_);
  size_t num_feedback_pairs_ GUARDED_BY(feedback_mu_) = 0;
};

// Stable hash of a configuration (order-independent).
uint64_t HashConfig(const IndexConfig& config);

}  // namespace autoindex
