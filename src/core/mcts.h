#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/benefit_estimator.h"
#include "engine/database.h"
#include "engine/what_if.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"

namespace autoindex {

namespace persist {
class Reader;
class Writer;
}  // namespace persist

struct MctsConfig {
  // Search iterations per management round.
  size_t iterations = 200;
  // Exploration constant gamma in U(v) = B(v) + gamma*sqrt(ln F(v0)/F(v))
  // (benefits are normalized to fractions of the base workload cost, so
  // gamma ~ 0.3-2 is a sensible range).
  double gamma = 0.7;
  // K random rollouts when evaluating a node's benefit (Sec. IV-B step 2).
  size_t rollouts = 5;
  // Storage budget for the whole index set; 0 = unlimited.
  size_t storage_budget_bytes = 0;
  // Cap on children generated per expansion (actions beyond the cap are
  // sampled uniformly).
  size_t max_actions_per_node = 48;
  // Stop early when this many consecutive iterations fail to improve the
  // best benefit (0 disables early stop).
  size_t patience = 64;
  uint64_t seed = 7;
};

// One edge of the policy tree: add a candidate index or remove an index
// from the current node's set.
struct IndexAction {
  enum Kind { kAdd, kRemove } kind = kAdd;
  IndexDef def;
};

struct MctsResult {
  IndexConfig best_config;
  double base_cost = 0.0;    // estimated workload cost under the root set
  double best_cost = 0.0;    // estimated cost under best_config
  double best_benefit = 0.0; // base_cost - best_cost
  std::vector<IndexDef> to_add;     // best_config minus existing
  std::vector<IndexDef> to_remove;  // existing minus best_config
  size_t iterations_run = 0;
  size_t nodes_expanded = 0;
  size_t tree_size = 0;
};

// Monte Carlo Tree Search over index configurations (Sec. IV-B). The tree
// is persistent: the root represents the currently-built index set, each
// node an index combination reachable by add/remove actions. Across
// management rounds, Run() rebases the root onto the node matching the new
// existing set when possible, preserving explored statistics — this is the
// paper's incremental index update.
//
// Thread safety: tuning itself is single-threaded (one manager thread owns
// Run), but validators running on client threads may walk the persistent
// tree concurrently — an internal mutex serializes Run/Reset/ValidateTree
// and the test-only corruption hooks, and tree_size() is an atomic
// snapshot readable without it.
class MctsIndexSelector {
 public:
  MctsIndexSelector(Database* db, IndexBenefitEstimator* estimator,
                    MctsConfig config = {});
  ~MctsIndexSelector();

  MctsIndexSelector(const MctsIndexSelector&) = delete;
  MctsIndexSelector& operator=(const MctsIndexSelector&) = delete;

  // Searches for the best configuration reachable from `existing` by
  // adding candidates / removing existing indexes, under the storage
  // budget and the estimator's workload cost.
  MctsResult Run(const IndexConfig& existing,
                 const std::vector<IndexDef>& candidates,
                 const WorkloadModel& workload) EXCLUDES(tree_mu_);

  // Drops the persistent tree (tests / hard workload resets).
  void Reset() EXCLUDES(tree_mu_);
  size_t tree_size() const {
    return tree_size_.load(std::memory_order_relaxed);
  }

  // Deep structural validation of the persistent policy tree: parent/child
  // links symmetric, visit count of every node >= sum of its children's
  // (backprop touches every ancestor), benefits within [0, 1] and
  // monotone up the tree (max-backprop), and tree_size() matching a fresh
  // walk. Ok() when healthy; Internal naming the first violation
  // otherwise. An empty tree (before the first Run) is healthy.
  Status ValidateTree() const EXCLUDES(tree_mu_);

  // --- Test-only corruption hooks (see src/check/); never call outside
  // tests. Each returns false when the tree is too small to corrupt.
  bool TestOnlyCorruptVisitCount() EXCLUDES(tree_mu_);  // child visits exceed
                                                        // its parent's
  bool TestOnlyCorruptBenefit() EXCLUDES(tree_mu_);  // benefit out of [0, 1]

  // By value: the live config is guarded (set_storage_budget may move the
  // budget concurrently with a Run on the tuning thread).
  MctsConfig config() const EXCLUDES(tree_mu_) {
    util::MutexLock lock(tree_mu_);
    return config_;
  }
  void set_storage_budget(size_t bytes) EXCLUDES(tree_mu_) {
    util::MutexLock lock(tree_mu_);
    config_.storage_budget_bytes = bytes;
  }

  // Snapshot serialization (src/persist/): the whole persistent policy
  // tree (pre-order, iterative — no recursion depth limit), the rng state,
  // and the evaluation generation round-trip, so a reloaded selector's
  // next Run() explores identically to the live one's. LoadTree replaces
  // the current tree and validates the result.
  void SaveTree(persist::Writer* w) const EXCLUDES(tree_mu_);
  Status LoadTree(persist::Reader* r) EXCLUDES(tree_mu_);

 private:
  struct Node;

  // Number of nodes in the subtree rooted at `node` (0 for null).
  static size_t CountNodes(const Node* node);

  // Tries to find a depth<=2 descendant of the root whose config equals
  // `target`; promotes it to root (incremental rebase). Returns true on
  // success.
  bool RebaseRoot(const IndexConfig& target) REQUIRES(tree_mu_);

  void ExpandNode(Node* node, const std::vector<IndexDef>& candidates,
                  const IndexConfig& existing) REQUIRES(tree_mu_);
  // Evaluates a node: own config + K random rollouts; returns the best
  // normalized benefit found and records the global best config.
  double EvaluateNode(Node* node, const std::vector<IndexDef>& candidates,
                      const WorkloadModel& workload) REQUIRES(tree_mu_);
  double ConfigCost(const IndexConfig& config, const WorkloadModel& workload)
      REQUIRES(tree_mu_);
  bool WithinBudget(const IndexConfig& config) const REQUIRES(tree_mu_);
  void ConsiderBest(const IndexConfig& config, double cost)
      REQUIRES(tree_mu_);

  Database* db_;
  IndexBenefitEstimator* estimator_;

  // Serializes tree structure access (Run/Reset/ValidateTree/corruption
  // hooks); see class comment. Also guards the live config: the tuning
  // loop moves the storage budget between (and potentially during) runs.
  mutable util::Mutex tree_mu_;
  MctsConfig config_ GUARDED_BY(tree_mu_);
  Random rng_ GUARDED_BY(tree_mu_);
  std::unique_ptr<Node> root_ GUARDED_BY(tree_mu_);
  std::atomic<size_t> tree_size_{0};
  uint64_t generation_ GUARDED_BY(tree_mu_) = 0;

  // Per-Run scratch.
  double base_cost_ GUARDED_BY(tree_mu_) = 0.0;
  double best_cost_ GUARDED_BY(tree_mu_) = 0.0;
  IndexConfig best_config_ GUARDED_BY(tree_mu_);
  const WorkloadModel* workload_ GUARDED_BY(tree_mu_) = nullptr;
};

}  // namespace autoindex
