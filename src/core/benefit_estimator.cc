#include "core/benefit_estimator.h"

#include <algorithm>
#include <functional>
#include <map>

#include "persist/serde.h"
#include "util/metrics.h"

namespace autoindex {
namespace {

struct EstimatorMetrics {
  util::Counter* cache_hits;
  util::Counter* cache_misses;
  util::Counter* cache_invalidations;

  static const EstimatorMetrics& Get() {
    static const EstimatorMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return EstimatorMetrics{
          registry.GetCounter("estimator.cache.hits"),
          registry.GetCounter("estimator.cache.misses"),
          registry.GetCounter("estimator.cache.invalidations")};
    }();
    return metrics;
  }
};

}  // namespace

WorkloadModel WorkloadModel::FromTemplates(
    const std::vector<const QueryTemplate*>& templates) {
  WorkloadModel model;
  model.entries.reserve(templates.size());
  for (const QueryTemplate* t : templates) {
    if (t->frequency <= 0.0) continue;
    model.entries.push_back({t, t->frequency});
  }
  return model;
}

namespace {

// Finalizer-strength 64-bit mixer (splitmix64): every input bit affects
// every output bit, so combining mixed values resists cancellation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t HashConfig(const IndexConfig& config) {
  // Order-independent combine via *summation* of mixed per-def hashes.
  // The previous XOR combine cancelled duplicate defs (a ^ a == 0), making
  // {d1, d1, d2} collide with {d2}; addition keeps multiplicity visible.
  uint64_t h = 0x12345678;
  for (const IndexDef& def : config.defs()) {
    const std::string key = def.Key();
    uint64_t d = 14695981039346656037ULL;
    for (unsigned char c : key) {
      d ^= c;
      d *= 1099511628211ULL;
    }
    h += Mix64(d);
  }
  return Mix64(h);
}

double IndexBenefitEstimator::CombineFeatures(
    const CostBreakdown& breakdown) const {
  util::MutexLock lock(obs_mu_);
  if (model_.trained()) {
    return model_.Predict(breakdown.Features());
  }
  return breakdown.Total();
}

double IndexBenefitEstimator::EstimateStatementCost(
    const Statement& stmt, const IndexConfig& config) const {
  return CombineFeatures(db_->WhatIfCost(stmt, config));
}

double IndexBenefitEstimator::EstimateWorkloadCost(
    const WorkloadModel& workload, const IndexConfig& config) const {
  const uint64_t config_hash = HashConfig(config);
  const uint64_t epoch = db_->data_version();
  double total = 0.0;
  for (const WorkloadModel::Entry& entry : workload.entries) {
    // Full-avalanche combine of (template id, config hash). The old
    // `id * K ^ config_hash` key let (id, config) pairs collide whenever
    // id*K differences matched config-hash differences; mixing after the
    // combine removes that linear structure.
    const uint64_t key = Mix64(Mix64(entry.tmpl->id) ^ config_hash);
    double cost;
    bool hit = false;
    {
      util::MutexLock lock(cache_mu_);
      if (cache_epoch_ != epoch) {
        // Data or statistics moved since these entries were computed.
        if (!cache_.empty()) {
          EstimatorMetrics::Get().cache_invalidations->Add();
        }
        cache_.clear();
        cache_epoch_ = epoch;
      }
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        cost = it->second;
        hit = true;
      }
    }
    if (hit) {
      EstimatorMetrics::Get().cache_hits->Add();
    } else {
      EstimatorMetrics::Get().cache_misses->Add();
      // Compute outside the lock: the what-if model is the expensive part.
      cost = EstimateStatementCost(entry.tmpl->representative, config);
      util::MutexLock lock(cache_mu_);
      if (cache_epoch_ == epoch) cache_.emplace(key, cost);
    }
    total += entry.weight * cost;
  }
  return total;
}

double IndexBenefitEstimator::EstimateBenefit(const WorkloadModel& workload,
                                              const IndexConfig& from,
                                              const IndexConfig& to) const {
  return EstimateWorkloadCost(workload, from) -
         EstimateWorkloadCost(workload, to);
}

void IndexBenefitEstimator::AddObservation(const std::vector<double>& features,
                                           double measured_cost) {
  util::MutexLock lock(obs_mu_);
  features_.push_back(features);
  targets_.push_back(measured_cost);
}

size_t IndexBenefitEstimator::num_observations() const {
  util::MutexLock lock(obs_mu_);
  return features_.size();
}

void IndexBenefitEstimator::InvalidateCache() const {
  util::MutexLock lock(cache_mu_);
  if (!cache_.empty()) {
    EstimatorMetrics::Get().cache_invalidations->Add();
  }
  cache_.clear();
}

size_t IndexBenefitEstimator::cache_size() const {
  util::MutexLock lock(cache_mu_);
  return cache_.size();
}

double IndexBenefitEstimator::TrainModel(size_t min_observations) {
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  {
    util::MutexLock lock(obs_mu_);
    if (features_.size() < min_observations) return -1.0;
    features = features_;
    targets = targets_;
  }
  // Train on the copy without holding obs_mu_ (training is by far the
  // most expensive step and Train() reinitializes all state itself), then
  // publish the result atomically. Estimates running meanwhile combine
  // with the previous model — never a half-trained one.
  SigmoidRegression trained;
  TrainConfig config;
  config.epochs = 200;
  const double mse = trained.Train(features, targets, config);
  if (trained.trained()) {
    util::MutexLock lock(obs_mu_);
    model_ = std::move(trained);
  }
  InvalidateCache();  // model change invalidates memoized costs
  return mse;
}

double IndexBenefitEstimator::CrossValidateRmse() const {
  util::MutexLock lock(obs_mu_);
  return SigmoidRegression::CrossValidate(features_, targets_, 9);
}

namespace {

std::string PathKey(const std::string& table, const std::string& index) {
  return table + '\x01' + index;
}

}  // namespace

void IndexBenefitEstimator::RecordExecutionFeedback(
    const std::vector<AccessPathFeedback>& batch) {
  util::MutexLock lock(feedback_mu_);
  for (const AccessPathFeedback& fb : batch) {
    PathFeedback& agg = path_feedback_[PathKey(fb.table, fb.index)];
    agg.est_cost_sum += fb.est_cost;
    agg.actual_cost_sum += fb.actual_cost;
    agg.est_rows_sum += fb.est_rows;
    agg.actual_rows_sum += fb.actual_rows;
    ++agg.count;
    ++num_feedback_pairs_;
  }
}

size_t IndexBenefitEstimator::num_feedback_pairs() const {
  util::MutexLock lock(feedback_mu_);
  return num_feedback_pairs_;
}

bool IndexBenefitEstimator::HasFeedbackFor(const std::string& table,
                                           const std::string& index) const {
  util::MutexLock lock(feedback_mu_);
  return path_feedback_.find(PathKey(table, index)) != path_feedback_.end();
}

double IndexBenefitEstimator::FeedbackCostRatio(
    const std::string& table, const std::string& index) const {
  util::MutexLock lock(feedback_mu_);
  auto it = path_feedback_.find(PathKey(table, index));
  if (it == path_feedback_.end()) return 1.0;
  const PathFeedback& agg = it->second;
  if (agg.est_cost_sum <= 0.0) return 1.0;
  return agg.actual_cost_sum / agg.est_cost_sum;
}

void IndexBenefitEstimator::Save(persist::Writer* w) const {
  {
    util::MutexLock lock(obs_mu_);
    model_.Save(w);
    w->PutU32(static_cast<uint32_t>(features_.size()));
    for (size_t i = 0; i < features_.size(); ++i) {
      w->PutU32(static_cast<uint32_t>(features_[i].size()));
      for (double v : features_[i]) w->PutDouble(v);
      w->PutDouble(targets_[i]);
    }
  }
  {
    util::MutexLock lock(feedback_mu_);
    // std::map sorts the path keys for byte-stable snapshots.
    const std::map<std::string, PathFeedback> sorted(path_feedback_.begin(),
                                                     path_feedback_.end());
    w->PutU32(static_cast<uint32_t>(sorted.size()));
    for (const auto& [key, agg] : sorted) {
      w->PutString(key);
      w->PutDouble(agg.est_cost_sum);
      w->PutDouble(agg.actual_cost_sum);
      w->PutDouble(agg.est_rows_sum);
      w->PutDouble(agg.actual_rows_sum);
      w->PutU64(agg.count);
    }
    w->PutU64(num_feedback_pairs_);
  }
}

void IndexBenefitEstimator::Load(persist::Reader* r) {
  {
    util::MutexLock lock(obs_mu_);
    model_ = SigmoidRegression::Load(r);
    features_.clear();
    targets_.clear();
    const uint32_t nobs = r->GetU32();
    for (uint32_t i = 0; i < nobs && r->ok(); ++i) {
      std::vector<double> row;
      const uint32_t width = r->GetU32();
      row.reserve(std::min<size_t>(width, r->remaining()));
      for (uint32_t j = 0; j < width && r->ok(); ++j) {
        row.push_back(r->GetDouble());
      }
      features_.push_back(std::move(row));
      targets_.push_back(r->GetDouble());
    }
  }
  {
    util::MutexLock lock(feedback_mu_);
    path_feedback_.clear();
    const uint32_t npaths = r->GetU32();
    for (uint32_t i = 0; i < npaths && r->ok(); ++i) {
      const std::string key = r->GetString();
      PathFeedback agg;
      agg.est_cost_sum = r->GetDouble();
      agg.actual_cost_sum = r->GetDouble();
      agg.est_rows_sum = r->GetDouble();
      agg.actual_rows_sum = r->GetDouble();
      agg.count = r->GetU64();
      if (!r->ok()) break;
      path_feedback_[key] = agg;
    }
    num_feedback_pairs_ = r->GetU64();
  }
  // The memo was computed by a different process at a different epoch.
  InvalidateCache();
}

}  // namespace autoindex
