#include "core/mcts.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "persist/serde.h"
#include "persist/sql_serde.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

struct MctsMetrics {
  util::Counter* runs;
  util::Counter* iterations;
  util::Counter* rollouts;
  util::Counter* nodes_expanded;

  static const MctsMetrics& Get() {
    static const MctsMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return MctsMetrics{registry.GetCounter("mcts.runs"),
                         registry.GetCounter("mcts.iterations"),
                         registry.GetCounter("mcts.rollouts"),
                         registry.GetCounter("mcts.nodes_expanded")};
    }();
    return metrics;
  }
};

}  // namespace

struct MctsIndexSelector::Node {
  IndexConfig config;
  IndexAction incoming;     // action that created this node (root: unused)
  double benefit = 0.0;     // B(v), normalized to base cost
  size_t visits = 0;        // F(v)
  bool expanded = false;
  uint64_t eval_generation = 0;
  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;
};

size_t MctsIndexSelector::CountNodes(const Node* node) {
  if (node == nullptr) return 0;
  size_t count = 0;
  std::vector<const Node*> todo = {node};
  while (!todo.empty()) {
    const Node* n = todo.back();
    todo.pop_back();
    ++count;
    for (const auto& child : n->children) todo.push_back(child.get());
  }
  return count;
}

MctsIndexSelector::MctsIndexSelector(Database* db,
                                     IndexBenefitEstimator* estimator,
                                     MctsConfig config)
    : db_(db), estimator_(estimator), config_(config), rng_(config.seed) {}

MctsIndexSelector::~MctsIndexSelector() = default;

void MctsIndexSelector::Reset() {
  util::MutexLock lock(tree_mu_);
  root_.reset();
  tree_size_ = 0;
}

bool MctsIndexSelector::WithinBudget(const IndexConfig& config) const {
  if (config_.storage_budget_bytes == 0) return true;
  return config.TotalBytes(db_->catalog()) <= config_.storage_budget_bytes;
}

double MctsIndexSelector::ConfigCost(const IndexConfig& config,
                                     const WorkloadModel& workload) {
  return estimator_->EstimateWorkloadCost(workload, config);
}

void MctsIndexSelector::ConsiderBest(const IndexConfig& config, double cost) {
  if (!WithinBudget(config)) return;
  const double eps = 1e-9 * std::max(1.0, base_cost_);
  if (cost < best_cost_ - eps) {
    best_cost_ = cost;
    best_config_ = config;
    return;
  }
  // Cost tie: prefer the smaller configuration (drops redundant twins,
  // e.g. a global and local index over the same columns).
  if (cost < best_cost_ + eps &&
      config.TotalBytes(db_->catalog()) <
          best_config_.TotalBytes(db_->catalog())) {
    best_cost_ = std::min(best_cost_, cost);
    best_config_ = config;
  }
}

bool MctsIndexSelector::RebaseRoot(const IndexConfig& target) {
  if (root_ == nullptr) return false;
  const uint64_t want = HashConfig(target);
  if (HashConfig(root_->config) == want) return true;
  // Breadth-first search limited to depth 2 below the root.
  std::deque<std::pair<Node*, int>> queue;
  queue.emplace_back(root_.get(), 0);
  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    if (HashConfig(node->config) == want) {
      // Detach the subtree and promote it.
      Node* parent = node->parent;
      if (parent == nullptr) return true;
      for (auto& child : parent->children) {
        if (child.get() == node) {
          std::unique_ptr<Node> promoted = std::move(child);
          promoted->parent = nullptr;
          root_ = std::move(promoted);
          // The discarded siblings are freed here; recount so tree_size_
          // tracks the surviving subtree exactly (the validator checks it
          // against a fresh walk).
          tree_size_ = CountNodes(root_.get());
          return true;
        }
      }
      return false;
    }
    if (depth < 2) {
      for (auto& child : node->children) {
        queue.emplace_back(child.get(), depth + 1);
      }
    }
  }
  return false;
}

void MctsIndexSelector::ExpandNode(Node* node,
                                   const std::vector<IndexDef>& candidates,
                                   const IndexConfig& existing) {
  if (node->expanded) return;
  node->expanded = true;

  std::vector<IndexAction> actions;
  // Add actions: any candidate not already in the node's set, within
  // budget.
  for (const IndexDef& def : candidates) {
    if (node->config.Contains(def)) continue;
    if (node->parent != nullptr && node->incoming.kind == IndexAction::kRemove &&
        node->incoming.def == def) {
      continue;  // do not immediately undo the parent action
    }
    IndexConfig next = node->config;
    next.Add(def);
    if (!WithinBudget(next)) continue;
    actions.push_back({IndexAction::kAdd, def});
  }
  // Remove actions: any index currently in the set (this is how AutoIndex
  // retires redundant/negative indexes — DRL methods cannot do this,
  // Sec. I).
  for (const IndexDef& def : node->config.defs()) {
    if (node->parent != nullptr && node->incoming.kind == IndexAction::kAdd &&
        node->incoming.def == def) {
      continue;
    }
    actions.push_back({IndexAction::kRemove, def});
  }
  (void)existing;

  // Sample down to the cap.
  if (actions.size() > config_.max_actions_per_node) {
    for (size_t i = 0; i < config_.max_actions_per_node; ++i) {
      const size_t j = i + rng_.Uniform(actions.size() - i);
      std::swap(actions[i], actions[j]);
    }
    actions.resize(config_.max_actions_per_node);
  }

  for (const IndexAction& action : actions) {
    auto child = std::make_unique<Node>();
    child->config = node->config;
    if (action.kind == IndexAction::kAdd) {
      child->config.Add(action.def);
    } else {
      child->config.Remove(action.def);
    }
    child->incoming = action;
    child->parent = node;
    node->children.push_back(std::move(child));
    ++tree_size_;
  }
}

double MctsIndexSelector::EvaluateNode(
    Node* node, const std::vector<IndexDef>& candidates,
    const WorkloadModel& workload) {
  // Own config.
  double best = ConfigCost(node->config, workload);
  ConsiderBest(node->config, best);

  // K random rollouts: greedily add random candidates until the budget (or
  // the candidate pool) is exhausted, evaluating the leaf each time
  // (Sec. IV-B step 2: "randomly explore K descendants ... or descendant
  // nodes that arrive the storage constraint").
  MctsMetrics::Get().rollouts->Add(config_.rollouts);
  for (size_t r = 0; r < config_.rollouts; ++r) {
    IndexConfig rollout = node->config;
    // Random order over candidates.
    std::vector<const IndexDef*> pool;
    pool.reserve(candidates.size());
    for (const IndexDef& def : candidates) {
      if (!rollout.Contains(def)) pool.push_back(&def);
    }
    for (size_t i = pool.size(); i > 1; --i) {
      std::swap(pool[i - 1], pool[rng_.Uniform(i)]);
    }
    for (const IndexDef* def : pool) {
      IndexConfig next = rollout;
      next.Add(*def);
      if (!WithinBudget(next)) continue;
      rollout = std::move(next);
      // Occasionally stop early so shallow combinations are also sampled.
      if (rng_.Bernoulli(0.25)) break;
    }
    // With some probability, also drop one random index — rollouts should
    // sample the removal direction too.
    if (!rollout.defs().empty() && rng_.Bernoulli(0.3)) {
      IndexConfig pruned = rollout;
      pruned.Remove(rollout.defs()[rng_.Uniform(rollout.defs().size())]);
      const double cost = ConfigCost(pruned, workload);
      ConsiderBest(pruned, cost);
      best = std::min(best, cost);
    }
    const double cost = ConfigCost(rollout, workload);
    ConsiderBest(rollout, cost);
    best = std::min(best, cost);
  }
  node->eval_generation = generation_;
  // Normalized benefit: fraction of the base workload cost saved.
  if (base_cost_ <= 0.0) return 0.0;
  return (base_cost_ - best) / base_cost_;
}

MctsResult MctsIndexSelector::Run(const IndexConfig& existing,
                                  const std::vector<IndexDef>& candidates,
                                  const WorkloadModel& workload) {
  util::MutexLock lock(tree_mu_);
  ++generation_;
  workload_ = &workload;

  // Incremental rebase of the persistent policy tree (Sec. IV-B / IV-C):
  // reuse statistics when the previous round's recommendation was applied.
  if (!RebaseRoot(existing)) {
    root_ = std::make_unique<Node>();
    root_->config = existing;
    tree_size_ = 1;
  }

  base_cost_ = ConfigCost(existing, workload);
  best_cost_ = base_cost_;
  best_config_ = existing;

  MctsResult result;
  size_t since_improvement = 0;
  double best_seen = 0.0;

  for (size_t iter = 0; iter < config_.iterations; ++iter) {
    // --- Step 1: selection & expansion ---
    Node* node = root_.get();
    while (node->expanded && !node->children.empty()) {
      Node* best_child = nullptr;
      double best_ucb = -1e300;
      const double total_visits =
          static_cast<double>(std::max<size_t>(1, node->visits));
      for (auto& child : node->children) {
        double ucb;
        if (child->visits == 0) {
          // Unvisited children explored first, in insertion order with a
          // random tiebreak.
          ucb = 1e6 + rng_.NextDouble();
        } else {
          ucb = child->benefit +
                config_.gamma * std::sqrt(std::log(total_visits + 1.0) /
                                          static_cast<double>(child->visits));
        }
        if (ucb > best_ucb) {
          best_ucb = ucb;
          best_child = child.get();
        }
      }
      if (best_child == nullptr) break;
      node = best_child;
      if (node->visits == 0) break;  // expand/evaluate the fresh node
      // Re-evaluate nodes whose statistics predate this round's workload
      // (the paper's "estimated values out-of-date" problem).
      if (node->eval_generation < generation_) break;
    }
    if (!node->expanded) {
      ExpandNode(node, candidates, existing);
      ++result.nodes_expanded;
    }

    // --- Step 2: node utility computation ---
    const double value = EvaluateNode(node, candidates, workload);

    // --- Step 3: utility update (backpropagate max benefit) ---
    for (Node* n = node; n != nullptr; n = n->parent) {
      ++n->visits;
      n->benefit = std::max(n->benefit, value);
    }

    ++result.iterations_run;
    const double current_best =
        base_cost_ > 0 ? (base_cost_ - best_cost_) / base_cost_ : 0.0;
    if (current_best > best_seen + 1e-12) {
      best_seen = current_best;
      since_improvement = 0;
    } else if (config_.patience > 0 && ++since_improvement >= config_.patience) {
      break;
    }
  }

  MctsMetrics::Get().runs->Add();
  MctsMetrics::Get().iterations->Add(result.iterations_run);
  MctsMetrics::Get().nodes_expanded->Add(result.nodes_expanded);

  result.best_config = best_config_;
  result.base_cost = base_cost_;
  result.best_cost = best_cost_;
  result.best_benefit = base_cost_ - best_cost_;
  result.tree_size = tree_size_;
  for (const IndexDef& def : best_config_.defs()) {
    if (!existing.Contains(def)) result.to_add.push_back(def);
  }
  for (const IndexDef& def : existing.defs()) {
    if (!best_config_.Contains(def)) result.to_remove.push_back(def);
  }
  workload_ = nullptr;
  return result;
}

Status MctsIndexSelector::ValidateTree() const {
  util::MutexLock lock(tree_mu_);
  if (root_ == nullptr) {
    if (tree_size() != 0) {
      return Status::Internal(StrCat(
          "mcts: no tree but tree_size reports ", tree_size()));
    }
    return Status::Ok();
  }
  if (root_->parent != nullptr) {
    return Status::Internal("mcts: root has a parent pointer");
  }

  size_t walked = 0;
  std::vector<const Node*> todo = {root_.get()};
  // unique_ptr ownership rules out true cycles, but corrupted bookkeeping
  // should still terminate: bound the walk by the reported size.
  const size_t max_nodes = tree_size() + 16;
  while (!todo.empty()) {
    const Node* node = todo.back();
    todo.pop_back();
    if (++walked > max_nodes) {
      return Status::Internal(StrCat("mcts: walk exceeded ", max_nodes,
                                     " nodes (tree_size bookkeeping is off)"));
    }
    // Benefit is the max over normalized benefits (fractions of the base
    // workload cost saved), clamped at 0 by its initialization — so it
    // must stay within [0, 1].
    if (node->benefit < 0.0 || node->benefit > 1.0 + 1e-9) {
      return Status::Internal(StrCat("mcts: node benefit ", node->benefit,
                                     " outside [0, 1]"));
    }
    size_t child_visits = 0;
    for (const auto& child : node->children) {
      if (child == nullptr) {
        return Status::Internal("mcts: null child in policy tree");
      }
      if (child->parent != node) {
        return Status::Internal(
            "mcts: child's parent pointer does not point at its parent");
      }
      // Max-backprop writes every ancestor, so a child can never out-score
      // its parent.
      if (child->benefit > node->benefit + 1e-9) {
        return Status::Internal(StrCat(
            "mcts: child benefit ", child->benefit,
            " exceeds its parent's ", node->benefit));
      }
      child_visits += child->visits;
      todo.push_back(child.get());
    }
    // Every child visit passed through this node on the way down.
    if (child_visits > node->visits) {
      return Status::Internal(StrCat(
          "mcts: node with ", node->visits, " visits has children totaling ",
          child_visits));
    }
  }
  if (walked != tree_size()) {
    return Status::Internal(StrCat("mcts: tree_size reports ", tree_size(),
                                   " nodes but walk found ", walked));
  }
  return Status::Ok();
}

bool MctsIndexSelector::TestOnlyCorruptVisitCount() {
  util::MutexLock lock(tree_mu_);
  if (root_ == nullptr || root_->children.empty()) return false;
  root_->children[0]->visits = root_->visits + 1;
  return true;
}

bool MctsIndexSelector::TestOnlyCorruptBenefit() {
  util::MutexLock lock(tree_mu_);
  if (root_ == nullptr) return false;
  root_->benefit = 2.0;
  return true;
}

namespace {

void PutIndexConfig(persist::Writer* w, const IndexConfig& config) {
  w->PutU32(static_cast<uint32_t>(config.defs().size()));
  for (const IndexDef& def : config.defs()) persist::PutIndexDef(w, def);
}

IndexConfig GetIndexConfig(persist::Reader* r) {
  IndexConfig config;
  const uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    config.Add(persist::GetIndexDef(r));
  }
  return config;
}

}  // namespace

void MctsIndexSelector::SaveTree(persist::Writer* w) const {
  util::MutexLock lock(tree_mu_);
  w->PutU64(rng_.state0());
  w->PutU64(rng_.state1());
  w->PutU64(generation_);
  w->PutBool(root_ != nullptr);
  if (root_ == nullptr) return;
  // Iterative pre-order: a node's fields, then its children in order.
  // Explicit stack — the policy tree's depth is workload-dependent and
  // recursion would put it on the call stack.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    PutIndexConfig(w, n->config);
    w->PutU8(static_cast<uint8_t>(n->incoming.kind));
    persist::PutIndexDef(w, n->incoming.def);
    w->PutDouble(n->benefit);
    w->PutU64(n->visits);
    w->PutBool(n->expanded);
    w->PutU64(n->eval_generation);
    w->PutU32(static_cast<uint32_t>(n->children.size()));
    for (auto it = n->children.rbegin(); it != n->children.rend(); ++it) {
      stack.push_back(it->get());
    }
  }
}

Status MctsIndexSelector::LoadTree(persist::Reader* r) {
  {
    util::MutexLock lock(tree_mu_);
    const uint64_t s0 = r->GetU64();
    const uint64_t s1 = r->GetU64();
    rng_.SetState(s0, s1);
    generation_ = r->GetU64();
    root_.reset();
    tree_size_.store(0, std::memory_order_relaxed);
    if (r->GetBool()) {
      const auto read_node = [r](Node* parent,
                                 uint32_t* nchildren) -> std::unique_ptr<Node> {
        auto n = std::make_unique<Node>();
        n->config = GetIndexConfig(r);
        const uint8_t kind = r->GetU8();
        if (kind > static_cast<uint8_t>(IndexAction::kRemove)) {
          r->Fail(Status::InvalidArgument(
              StrCat("bad action kind tag ", static_cast<int>(kind))));
          return nullptr;
        }
        n->incoming.kind = static_cast<IndexAction::Kind>(kind);
        n->incoming.def = persist::GetIndexDef(r);
        n->benefit = r->GetDouble();
        n->visits = r->GetU64();
        n->expanded = r->GetBool();
        n->eval_generation = r->GetU64();
        *nchildren = r->GetU32();
        n->parent = parent;
        if (!r->ok()) return nullptr;
        return n;
      };
      struct Pending {
        Node* node;
        uint32_t remaining;
      };
      uint32_t nchildren = 0;
      root_ = read_node(nullptr, &nchildren);
      size_t count = root_ == nullptr ? 0 : 1;
      std::vector<Pending> stack;
      if (root_ != nullptr) stack.push_back({root_.get(), nchildren});
      while (r->ok() && !stack.empty()) {
        if (stack.back().remaining == 0) {
          stack.pop_back();
          continue;
        }
        --stack.back().remaining;
        Node* parent = stack.back().node;
        std::unique_ptr<Node> child = read_node(parent, &nchildren);
        if (child == nullptr) break;
        ++count;
        Node* raw = child.get();
        parent->children.push_back(std::move(child));
        stack.push_back({raw, nchildren});
      }
      if (!r->ok()) {
        root_.reset();
        return r->status();
      }
      if (root_ == nullptr) {
        return Status::InvalidArgument("MCTS tree payload missing root");
      }
      tree_size_.store(count, std::memory_order_relaxed);
    }
  }
  // Validation re-takes tree_mu_, so it must run outside the scope above.
  Status s = ValidateTree();
  if (!s.ok()) {
    util::MutexLock lock(tree_mu_);
    root_.reset();
    tree_size_.store(0, std::memory_order_relaxed);
    return s;
  }
  return Status::Ok();
}

}  // namespace autoindex
