#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/benefit_estimator.h"
#include "core/candidate_gen.h"
#include "core/diagnosis.h"
#include "core/greedy.h"
#include "core/mcts.h"
#include "core/query_template.h"
#include "engine/database.h"

namespace autoindex {

namespace persist {
class Reader;
class Writer;
}  // namespace persist

struct AutoIndexConfig {
  size_t template_capacity = 5000;
  size_t storage_budget_bytes = 0;  // 0 = unlimited
  CandidateGenConfig candidate_gen;
  MctsConfig mcts;
  DiagnosisConfig diagnosis;
  // Sec. IV-C drift handling: when the template match rate since the last
  // round falls below `drift_match_threshold`, frequencies are multiplied
  // by `decay_factor` and stale templates dropped.
  double drift_match_threshold = 0.5;
  double decay_factor = 0.5;
  // Retirement pass (Sec. III / Fig. 1): after index selection, drop built
  // indexes that the planner has not used since the last round AND whose
  // removal does not increase the estimated workload cost (redundant or
  // dead indexes — e.g. prefix-shadowed ones or indexes on tables the
  // workload never touches).
  bool drop_unused_indexes = true;
  size_t unused_drop_threshold = 1;  // planner uses below this = unused
  // Learn the estimator model from execution history (Sec. V-B). When
  // false the estimator keeps classical static weights.
  bool learn_cost_model = true;
  size_t min_training_observations = 64;
  // Sample rate for collecting training observations (the paper samples
  // 0.01% of a 2.2M-query workload; we default denser for small runs).
  double observation_sample_rate = 0.05;
};

// The outcome of one management round (Sec. III workflow).
struct TuningResult {
  std::vector<IndexDef> added;
  std::vector<IndexDef> removed;
  double est_base_cost = 0.0;
  double est_new_cost = 0.0;
  double est_benefit = 0.0;
  size_t candidates_generated = 0;
  size_t templates_considered = 0;
  double elapsed_ms = 0.0;        // total index-management overhead
  double candidate_gen_ms = 0.0;  // template matching + candidate extraction
  double search_ms = 0.0;         // MCTS selection
  bool applied = false;
};

// AUTOINDEX: the end-to-end incremental index management system (Fig. 3).
// Feed it the query stream via ExecuteAndObserve(); call
// RunManagementRound() periodically (or when Diagnose() says so) to update
// the index set in place.
class AutoIndexManager {
 public:
  AutoIndexManager(Database* db, AutoIndexConfig config = {});

  AutoIndexManager(const AutoIndexManager&) = delete;
  AutoIndexManager& operator=(const AutoIndexManager&) = delete;

  // Executes one query and records it in the template store; samples
  // (features, measured cost) pairs as estimator training data.
  StatusOr<ExecResult> ExecuteAndObserve(const std::string& sql);

  // Records a query without executing it (offline analysis mode).
  void ObserveOnly(const std::string& sql);

  // Index diagnosis against the current workload model (Sec. III).
  DiagnosisReport Diagnose();

  // One full management round: template snapshot -> candidate generation
  // -> MCTS search -> apply adds/drops to the database.
  // `apply` = false computes the recommendation without touching indexes.
  TuningResult RunManagementRound(bool apply = true);

  // The current workload model (templates weighted by frequency).
  WorkloadModel CurrentWorkload() const;

  TemplateStore& templates() { return *templates_; }
  IndexBenefitEstimator& estimator() { return *estimator_; }
  MctsIndexSelector& selector() { return *selector_; }
  Database& db() { return *db_; }
  const AutoIndexConfig& config() const { return config_; }
  void set_storage_budget(size_t bytes);

  // Snapshot serialization (src/persist/): the complete tuning state —
  // template store, estimator (model, history, feedback), MCTS policy
  // tree, sampling rng, and round counter — so a restarted manager resumes
  // tuning exactly where the saved one stopped.
  void SaveTuningState(persist::Writer* w) const;
  Status LoadTuningState(persist::Reader* r);

 private:
  Database* db_;
  AutoIndexConfig config_;
  std::unique_ptr<TemplateStore> templates_;
  std::unique_ptr<IndexBenefitEstimator> estimator_;
  std::unique_ptr<CandidateGenerator> generator_;
  std::unique_ptr<MctsIndexSelector> selector_;
  std::unique_ptr<IndexDiagnoser> diagnoser_;
  Random sample_rng_;
  size_t rounds_run_ = 0;
};

}  // namespace autoindex
