#pragma once

#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/benefit_estimator.h"
#include "core/candidate_gen.h"
#include "core/diagnosis.h"
#include "core/greedy.h"
#include "core/mcts.h"
#include "core/query_template.h"
#include "engine/database.h"
#include "util/mutex.h"

namespace autoindex {

namespace persist {
class Reader;
class Writer;
}  // namespace persist

struct AutoIndexConfig {
  size_t template_capacity = 5000;
  size_t storage_budget_bytes = 0;  // 0 = unlimited
  CandidateGenConfig candidate_gen;
  MctsConfig mcts;
  DiagnosisConfig diagnosis;
  // Sec. IV-C drift handling: when the template match rate since the last
  // round falls below `drift_match_threshold`, frequencies are multiplied
  // by `decay_factor` and stale templates dropped.
  double drift_match_threshold = 0.5;
  double decay_factor = 0.5;
  // Retirement pass (Sec. III / Fig. 1): after index selection, drop built
  // indexes that the planner has not used since the last round AND whose
  // removal does not increase the estimated workload cost (redundant or
  // dead indexes — e.g. prefix-shadowed ones or indexes on tables the
  // workload never touches).
  bool drop_unused_indexes = true;
  size_t unused_drop_threshold = 1;  // planner uses below this = unused
  // Learn the estimator model from execution history (Sec. V-B). When
  // false the estimator keeps classical static weights.
  bool learn_cost_model = true;
  size_t min_training_observations = 64;
  // Sample rate for collecting training observations (the paper samples
  // 0.01% of a 2.2M-query workload; we default denser for small runs).
  double observation_sample_rate = 0.05;
  // Request-scoped tracing (DESIGN.md §13): statements slower than
  // trace_slow_us always land in the flight recorder's ring buffer; a
  // trace_sample_rate fraction of the remaining traces is head-sampled.
  // Pushed into obs::Tracer::Default() at manager construction.
  uint64_t trace_slow_us = 10'000;
  double trace_sample_rate = 0.01;
  // Apply recommended DDL on a background worker thread: the round stages
  // its adds/drops onto the apply queue and returns immediately, so the
  // tuning loop never blocks behind index builds. Join with WaitForApply()
  // (which also returns any failures). Off by default: the synchronous
  // path keeps single-threaded tests and examples deterministic.
  bool async_apply = false;
};

// One failed create/drop from an apply pass (the Status the database
// returned, kept per definition so callers can report precisely).
struct ApplyError {
  IndexDef def;
  bool drop = false;  // true: DropIndex failed; false: CreateIndex failed
  std::string message;
};

// The outcome of one management round (Sec. III workflow).
struct TuningResult {
  std::vector<IndexDef> added;
  std::vector<IndexDef> removed;
  double est_base_cost = 0.0;
  double est_new_cost = 0.0;
  double est_benefit = 0.0;
  size_t candidates_generated = 0;
  size_t templates_considered = 0;
  double elapsed_ms = 0.0;        // total index-management overhead
  double candidate_gen_ms = 0.0;  // template matching + candidate extraction
  double search_ms = 0.0;         // MCTS selection
  // Synchronous apply ran: added/removed report what actually happened.
  bool applied = false;
  // Async apply: the DDL was staged onto the background queue and
  // added/removed report the *recommendation*; publication (and any
  // failures) surface from WaitForApply().
  bool staged = false;
  // Per-definition failures from the synchronous apply path.
  std::vector<ApplyError> apply_errors;
};

// AUTOINDEX: the end-to-end incremental index management system (Fig. 3).
// Feed it the query stream via ExecuteAndObserve(); call
// RunManagementRound() periodically (or when Diagnose() says so) to update
// the index set in place.
class AutoIndexManager {
 public:
  AutoIndexManager(Database* db, AutoIndexConfig config = {});
  // Drains and joins the background apply worker (staged DDL still lands).
  ~AutoIndexManager();

  AutoIndexManager(const AutoIndexManager&) = delete;
  AutoIndexManager& operator=(const AutoIndexManager&) = delete;

  // Executes one query and records it in the template store; samples
  // (features, measured cost) pairs as estimator training data.
  StatusOr<ExecResult> ExecuteAndObserve(const std::string& sql);

  // Records a query without executing it (offline analysis mode).
  void ObserveOnly(const std::string& sql);

  // Index diagnosis against the current workload model (Sec. III).
  DiagnosisReport Diagnose();

  // One full management round: template snapshot -> candidate generation
  // -> MCTS search -> apply adds/drops to the database.
  // `apply` = false computes the recommendation without touching indexes.
  // With config().async_apply the DDL is staged onto the background apply
  // queue instead of running inline (result.staged, see TuningResult).
  TuningResult RunManagementRound(bool apply = true);

  // Outcome of one immediate apply pass.
  struct DdlOutcome {
    std::vector<IndexDef> dropped;  // drops that succeeded
    std::vector<IndexDef> built;    // creates that succeeded
    std::vector<ApplyError> errors;
  };

  // Applies drops then creates on the calling thread (each through the
  // database's latched DDL path), resets per-round usage counters, and
  // invalidates the estimator cache. Shared by the synchronous round path
  // and the background worker; exposed so tests can drive it directly.
  DdlOutcome ApplyDdlNow(const std::vector<IndexDef>& drops,
                         const std::vector<IndexDef>& adds);

  // Blocks until the background apply queue is empty and nothing is in
  // flight, then returns (and clears) the failures accumulated since the
  // last call. Immediate no-op when no DDL was ever staged.
  std::vector<ApplyError> WaitForApply() EXCLUDES(apply_mu_);

  // The current workload model (templates weighted by frequency).
  WorkloadModel CurrentWorkload() const;

  TemplateStore& templates() { return *templates_; }
  IndexBenefitEstimator& estimator() { return *estimator_; }
  MctsIndexSelector& selector() { return *selector_; }
  Database& db() { return *db_; }
  const AutoIndexConfig& config() const { return config_; }
  void set_storage_budget(size_t bytes);

  // Snapshot serialization (src/persist/): the complete tuning state —
  // template store, estimator (model, history, feedback), MCTS policy
  // tree, sampling rng, and round counter — so a restarted manager resumes
  // tuning exactly where the saved one stopped.
  void SaveTuningState(persist::Writer* w) const;
  Status LoadTuningState(persist::Reader* r);

 private:
  // One staged apply: drops run before adds, mirroring the sync path.
  struct ApplyTask {
    std::vector<IndexDef> drops;
    std::vector<IndexDef> adds;
  };

  void EnqueueApply(ApplyTask task) EXCLUDES(apply_mu_);
  // Background worker: pops tasks until shutdown, then drains the queue
  // before exiting so staged DDL is never silently dropped.
  void ApplyWorkerLoop() EXCLUDES(apply_mu_);
  void ShutdownApplyWorker() EXCLUDES(apply_mu_);

  Database* db_;
  AutoIndexConfig config_;
  std::unique_ptr<TemplateStore> templates_;
  std::unique_ptr<IndexBenefitEstimator> estimator_;
  std::unique_ptr<CandidateGenerator> generator_;
  std::unique_ptr<MctsIndexSelector> selector_;
  std::unique_ptr<IndexDiagnoser> diagnoser_;
  Random sample_rng_;
  size_t rounds_run_ = 0;

  // Async apply state. The worker thread is started lazily on the first
  // staged task and joined (never detached) by ShutdownApplyWorker.
  mutable util::Mutex apply_mu_;
  util::CondVar apply_cv_;
  std::deque<ApplyTask> apply_queue_ GUARDED_BY(apply_mu_);
  std::vector<ApplyError> apply_errors_ GUARDED_BY(apply_mu_);
  bool apply_inflight_ GUARDED_BY(apply_mu_) = false;
  bool apply_shutdown_ GUARDED_BY(apply_mu_) = false;
  bool apply_worker_started_ GUARDED_BY(apply_mu_) = false;
  // Owned by the constructor/destructor thread; started under apply_mu_
  // (apply_worker_started_ is the guarded truth about its liveness).
  std::thread apply_worker_;
};

}  // namespace autoindex
