#include "core/manager.h"

#include "obs/trace.h"
#include "persist/serde.h"
#include "util/metrics.h"

namespace autoindex {
namespace {

// Tuning-loop observability (DESIGN.md §11): round cadence and the
// split between candidate generation and MCTS search.
struct TuningMetrics {
  util::Counter* rounds;
  util::Counter* observations;
  util::Counter* decays;
  util::LatencyHistogram* round_us;
  util::LatencyHistogram* candidate_gen_us;
  util::LatencyHistogram* search_us;

  static const TuningMetrics& Get() {
    static const TuningMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return TuningMetrics{registry.GetCounter("tuning.rounds"),
                           registry.GetCounter("tuning.observations"),
                           registry.GetCounter("tuning.decays"),
                           registry.GetHistogram("tuning.round_us"),
                           registry.GetHistogram("tuning.candidate_gen_us"),
                           registry.GetHistogram("tuning.search_us")};
    }();
    return metrics;
  }
};

}  // namespace

AutoIndexManager::AutoIndexManager(Database* db, AutoIndexConfig config)
    : db_(db), config_(config), sample_rng_(0xA11CE) {
  obs::Tracer::Default().Configure(config_.trace_slow_us,
                                   config_.trace_sample_rate);
  templates_ = std::make_unique<TemplateStore>(config_.template_capacity);
  estimator_ = std::make_unique<IndexBenefitEstimator>(db_);
  generator_ =
      std::make_unique<CandidateGenerator>(db_, config_.candidate_gen);
  MctsConfig mcts = config_.mcts;
  if (config_.storage_budget_bytes != 0) {
    mcts.storage_budget_bytes = config_.storage_budget_bytes;
  }
  selector_ = std::make_unique<MctsIndexSelector>(db_, estimator_.get(), mcts);
  diagnoser_ = std::make_unique<IndexDiagnoser>(db_, estimator_.get(),
                                                config_.diagnosis);
  if (config_.learn_cost_model) {
    // EXPLAIN ANALYZE feedback loop: every executed statement streams its
    // per-access-path (estimated, observed) pairs into the estimator.
    db_->set_execution_feedback_hook(
        [est = estimator_.get()](const std::vector<AccessPathFeedback>& fb) {
          est->RecordExecutionFeedback(fb);
        });
  }
}

AutoIndexManager::~AutoIndexManager() { ShutdownApplyWorker(); }

AutoIndexManager::DdlOutcome AutoIndexManager::ApplyDdlNow(
    const std::vector<IndexDef>& drops, const std::vector<IndexDef>& adds) {
  DdlOutcome outcome;
  // Keep the reported deltas honest: if the estate drifted under us (say,
  // a manual DROP between search and apply), the failed DDL must not show
  // up in dropped/built as if it happened — it lands in errors instead.
  for (const IndexDef& def : drops) {
    const Status s = db_->DropIndex(def.Key());
    if (s.ok()) {
      outcome.dropped.push_back(def);
    } else {
      outcome.errors.push_back(ApplyError{def, true, s.message()});
    }
  }
  for (const IndexDef& def : adds) {
    const Status s = db_->CreateIndex(def);
    if (s.ok()) {
      outcome.built.push_back(def);
    } else {
      outcome.errors.push_back(ApplyError{def, false, s.message()});
    }
  }
  // Usage counters are per-round signals; reset after inspection.
  for (BuiltIndex* index : db_->index_manager().AllIndexes()) {
    index->ResetUses();
  }
  estimator_->InvalidateCache();
  return outcome;
}

void AutoIndexManager::EnqueueApply(ApplyTask task) {
  {
    util::MutexLock lock(apply_mu_);
    apply_queue_.push_back(std::move(task));
    if (!apply_worker_started_) {
      apply_worker_ = std::thread([this] { ApplyWorkerLoop(); });
      apply_worker_started_ = true;
    }
  }
  apply_cv_.NotifyAll();
}

void AutoIndexManager::ApplyWorkerLoop() {
  for (;;) {
    ApplyTask task;
    {
      util::MutexLock lock(apply_mu_);
      while (apply_queue_.empty() && !apply_shutdown_) {
        apply_cv_.Wait(apply_mu_);
      }
      if (apply_queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(apply_queue_.front());
      apply_queue_.pop_front();
      apply_inflight_ = true;
    }
    DdlOutcome outcome = ApplyDdlNow(task.drops, task.adds);
    {
      util::MutexLock lock(apply_mu_);
      for (ApplyError& error : outcome.errors) {
        apply_errors_.push_back(std::move(error));
      }
      apply_inflight_ = false;
    }
    apply_cv_.NotifyAll();
  }
}

std::vector<ApplyError> AutoIndexManager::WaitForApply() {
  util::MutexLock lock(apply_mu_);
  while (!apply_queue_.empty() || apply_inflight_) {
    apply_cv_.Wait(apply_mu_);
  }
  std::vector<ApplyError> errors = std::move(apply_errors_);
  apply_errors_.clear();
  return errors;
}

void AutoIndexManager::ShutdownApplyWorker() {
  {
    util::MutexLock lock(apply_mu_);
    if (!apply_worker_started_) return;
    apply_shutdown_ = true;
  }
  apply_cv_.NotifyAll();
  apply_worker_.join();
  util::MutexLock lock(apply_mu_);
  apply_worker_started_ = false;
  apply_shutdown_ = false;
}

void AutoIndexManager::set_storage_budget(size_t bytes) {
  config_.storage_budget_bytes = bytes;
  selector_->set_storage_budget(bytes);
}

StatusOr<ExecResult> AutoIndexManager::ExecuteAndObserve(
    const std::string& sql) {
  templates_->Observe(sql);
  TuningMetrics::Get().observations->Add();
  StatusOr<ExecResult> result = db_->Execute(sql);
  if (result.ok() && config_.learn_cost_model &&
      sample_rng_.Bernoulli(config_.observation_sample_rate)) {
    // Historical training pair: estimated cost features under the current
    // built configuration vs. the measured execution cost.
    StatusOr<Statement> stmt = ParseSql(sql);
    if (stmt.ok()) {
      const CostBreakdown est = db_->WhatIfCost(*stmt, db_->CurrentConfig());
      const CostBreakdown measured = result->stats.ToCost(db_->params());
      estimator_->AddObservation(est.Features(), measured.Total());
    }
  }
  return result;
}

void AutoIndexManager::ObserveOnly(const std::string& sql) {
  templates_->Observe(sql);
  TuningMetrics::Get().observations->Add();
}

WorkloadModel AutoIndexManager::CurrentWorkload() const {
  return WorkloadModel::FromTemplates(templates_->TemplatesByFrequency());
}

DiagnosisReport AutoIndexManager::Diagnose() {
  const WorkloadModel workload = CurrentWorkload();
  const std::vector<IndexDef> candidates = generator_->Generate(
      templates_->TemplatesByFrequency(), db_->CurrentConfig());
  return diagnoser_->Diagnose(workload, candidates);
}

TuningResult AutoIndexManager::RunManagementRound(bool apply) {
  const TuningMetrics& metrics = TuningMetrics::Get();
  // Tuning rounds get their own traces: candidate generation, MCTS
  // search, and apply each appear as a span.
  obs::ScopedTrace trace("tuning.round");
  const util::Stopwatch round_watch;
  TuningResult result;

  // Drift handling (Sec. IV-C): decay template frequencies when the match
  // rate collapsed since the last round.
  if (templates_->MatchRate() < config_.drift_match_threshold &&
      rounds_run_ > 0) {
    templates_->Decay(config_.decay_factor);
    metrics.decays->Add();
  }
  templates_->ResetMatchStats();
  templates_->AdvanceRound();

  // Refresh statistics & train the learned estimator when enough history
  // has accumulated.
  db_->Analyze();
  estimator_->InvalidateCache();
  if (config_.learn_cost_model && !estimator_->model_trained()) {
    estimator_->TrainModel(config_.min_training_observations);
  }

  const std::vector<const QueryTemplate*> templates =
      templates_->TemplatesByFrequency();
  result.templates_considered = templates.size();
  const WorkloadModel workload = WorkloadModel::FromTemplates(templates);
  const IndexConfig existing = db_->CurrentConfig();

  util::Stopwatch phase_watch;
  const std::vector<IndexDef> candidates = [&] {
    obs::ScopedSpan gen_span("tuning.candidate_gen");
    return generator_->Generate(templates, existing);
  }();
  result.candidate_gen_ms = phase_watch.ElapsedMs();
  metrics.candidate_gen_us->Record(phase_watch.ElapsedUs());
  result.candidates_generated = candidates.size();

  phase_watch.Restart();
  MctsResult mcts = [&] {
    obs::ScopedSpan search_span("tuning.search");
    return selector_->Run(existing, candidates, workload);
  }();
  result.search_ms = phase_watch.ElapsedMs();
  metrics.search_us->Record(phase_watch.ElapsedUs());
  result.est_base_cost = mcts.base_cost;
  result.est_new_cost = mcts.best_cost;
  result.est_benefit = mcts.best_benefit;
  result.added = mcts.to_add;
  result.removed = mcts.to_remove;

  // Retirement pass: redundant/dead indexes are cost-neutral to the MCTS
  // objective, so they are cleaned up by diagnosis instead (Fig. 1): an
  // index the planner never used whose removal does not raise the
  // estimated workload cost is dropped.
  if (config_.drop_unused_indexes) {
    IndexConfig probe = mcts.best_config;
    double current_cost =
        estimator_->EstimateWorkloadCost(workload, probe);
    for (const BuiltIndex* index : db_->index_manager().AllIndexes()) {
      if (index->uses() >= config_.unused_drop_threshold) continue;
      if (!probe.Contains(index->def())) continue;  // already removed
      bool planned_add = false;
      for (const IndexDef& def : mcts.to_add) {
        if (def == index->def()) planned_add = true;
      }
      if (planned_add) continue;
      IndexConfig without = probe;
      without.Remove(index->def());
      const double cost_without =
          estimator_->EstimateWorkloadCost(workload, without);
      if (cost_without <= current_cost * (1.0 + 1e-9)) {
        probe = std::move(without);
        current_cost = cost_without;
        result.removed.push_back(index->def());
      }
    }
    mcts.best_config = std::move(probe);
  }

  if (apply) {
    obs::ScopedSpan apply_span("tuning.apply");
    if (config_.async_apply) {
      // Stage and return: the background worker publishes the DDL while
      // the workload keeps running. added/removed keep reporting the
      // recommendation; failures surface from WaitForApply().
      EnqueueApply(ApplyTask{result.removed, result.added});
      result.staged = true;
    } else {
      DdlOutcome outcome = ApplyDdlNow(result.removed, result.added);
      result.removed = std::move(outcome.dropped);
      result.added = std::move(outcome.built);
      result.apply_errors = std::move(outcome.errors);
      result.applied = true;
    }
  }

  ++rounds_run_;
  metrics.rounds->Add();
  metrics.round_us->Record(round_watch.ElapsedUs());
  result.elapsed_ms = round_watch.ElapsedMs();
  return result;
}

void AutoIndexManager::SaveTuningState(persist::Writer* w) const {
  w->PutU64(rounds_run_);
  w->PutU64(sample_rng_.state0());
  w->PutU64(sample_rng_.state1());
  templates_->Save(w);
  estimator_->Save(w);
  selector_->SaveTree(w);
}

Status AutoIndexManager::LoadTuningState(persist::Reader* r) {
  rounds_run_ = r->GetU64();
  const uint64_t s0 = r->GetU64();
  const uint64_t s1 = r->GetU64();
  sample_rng_.SetState(s0, s1);
  templates_->Load(r);
  estimator_->Load(r);
  Status s = selector_->LoadTree(r);
  if (!s.ok()) return s;
  return r->status();
}

}  // namespace autoindex
