#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace autoindex {
namespace net {

// POSIX socket primitives for the service layer (DESIGN.md §12). Every
// raw socket/pipe syscall in the project lives in src/net/ — the
// raw-socket lint rule bans socket()/bind()/connect()/send()/recv()
// elsewhere — and every failure surfaces as a Status, never errno
// leaking through a -1 return.
//
// Error code conventions (shared with protocol.h / client.h):
//   kNotFound    peer closed the connection (clean EOF)
//   kOutOfRange  a timeout expired before the operation completed
//   kInternal    a syscall failed (message carries errno text)

// Splits "host:port" (e.g. "127.0.0.1:5433"). InvalidArgument on a
// missing colon or a port outside [1, 65535].
Status ParseHostPort(const std::string& spec, std::string* host, int* port);

// Move-only RAII wrapper over one connected TCP file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Blocking connect to host:port with a bounded wait (non-blocking
  // connect + poll). The returned socket is in blocking mode with
  // TCP_NODELAY set (request/response framing suffers badly from Nagle).
  static StatusOr<Socket> ConnectTcp(const std::string& host, int port,
                                     int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes exactly `len` bytes; `timeout_ms` bounds each individual
  // write's readiness wait (<= 0 waits forever).
  Status SendAll(const void* data, size_t len, int timeout_ms);

  // Reads exactly `len` bytes. EOF before the first byte is kNotFound
  // ("connection closed by peer"); EOF mid-buffer is kInternal (a torn
  // frame — the peer vanished mid-message).
  Status RecvAll(void* data, size_t len, int timeout_ms);

  // Waits until the socket is readable, `wake_fd` (when >= 0) is
  // readable, or the timeout expires. Returns:
  //   kReadable  data (or EOF) is pending on this socket
  //   kWake      wake_fd became readable first (shutdown self-pipe)
  //   kTimeout   the timeout expired
  enum class WaitResult { kReadable, kWake, kTimeout };
  StatusOr<WaitResult> WaitReadable(int timeout_ms, int wake_fd = -1);

  void Close();

 private:
  int fd_ = -1;
};

// Move-only RAII listening socket.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }

  ListenSocket(ListenSocket&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
    other.port_ = 0;
  }
  ListenSocket& operator=(ListenSocket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
      other.port_ = 0;
    }
    return *this;
  }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  // Binds host:port and listens. port 0 binds an ephemeral port; the
  // actual port is reported by port(). (Named Listen, not Bind: the
  // status-ignored lint harvests Status-returning method names
  // project-wide, and the executor already has an unrelated Bind.)
  static StatusOr<ListenSocket> Listen(const std::string& host, int port,
                                       int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int port() const { return port_; }

  // Waits for a pending connection (or wake_fd / timeout, as
  // Socket::WaitReadable) and accepts it.
  StatusOr<Socket::WaitResult> WaitAcceptable(int timeout_ms, int wake_fd = -1);
  StatusOr<Socket> Accept();

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

// Level-triggered shutdown latch built on a pipe: Signal() writes one
// byte that is never drained, so every poll() on read_fd() — the accept
// loop and all connection loops — reports readable from then on. Safe to
// Signal() from a signal handler (write(2) is async-signal-safe).
class SelfPipe {
 public:
  SelfPipe() = default;
  ~SelfPipe();

  SelfPipe(const SelfPipe&) = delete;
  SelfPipe& operator=(const SelfPipe&) = delete;

  Status OpenPipe();
  void Signal();
  bool signaled() const;
  int read_fd() const { return read_fd_; }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

}  // namespace net
}  // namespace autoindex
