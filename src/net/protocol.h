#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "storage/value.h"
#include "util/status.h"

namespace autoindex {
namespace net {

// Wire protocol of the AutoIndex service layer (DESIGN.md §12).
//
// Every message travels in one frame:
//
//   u32 magic        kFrameMagic ("AIN1", little-endian on the wire)
//   u32 payload_len  bytes following the header, <= kMaxFrameBytes
//   u32 crc          persist::Crc32 over the payload bytes
//   payload          persist::Writer encoding: u8 type + per-type body
//
// Framing reuses the durability layer's Writer/Reader (persist/serde.h),
// so payload decoding inherits the sticky-error discipline: a torn or
// malicious payload poisons the Reader and surfaces as one Status, never
// UB. A frame that fails the magic, length, or CRC check is
// connection-fatal — the byte stream can no longer be trusted, so both
// sides close rather than resynchronize.
//
// The conversation is strict request/response: after the version
// handshake (Hello -> HelloOk | Error), the client sends one request
// frame and reads exactly one response frame. That makes the
// per-connection in-flight statement count 1 by construction; the
// server's admission control bounds connections and *global* concurrent
// statements (server.h).

inline constexpr uint32_t kFrameMagic = 0x314E4941;  // "AIN1"
// Major version: incompatible framing/semantics. Peers must match
// exactly (the server refuses a mismatched Hello).
inline constexpr uint32_t kProtocolVersion = 1;
// Minor version: backward-compatible message extensions (optional
// trailing fields, new message types). Peers may differ — each side
// simply ignores extensions it predates. Minor 1 added kMetricsRequest/
// kMetricsResponse and the trace-propagation fields on kQuery/kResult.
inline constexpr uint32_t kProtocolMinorVersion = 1;
// Upper bound on one payload. Chosen so a malicious length field cannot
// make the peer allocate unbounded memory before the CRC check.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;
inline constexpr size_t kFrameHeaderBytes = 12;

enum class MessageType : uint8_t {
  kHello = 1,     // client -> server: protocol_version
  kHelloOk = 2,   // server -> client: protocol_version, session_id
  kQuery = 3,     // client -> server: sql
  kResult = 4,    // server -> client: status, rows, stats, indexes_used
  kPing = 5,      // client -> server
  kPong = 6,      // server -> client
  kQuit = 7,      // client -> server: close this connection
  kBye = 8,       // server -> client: ack for kQuit / kShutdown
  kShutdown = 9,  // client -> server: begin graceful drain of the server
  kBusy = 10,     // server -> client: admission shed (text = reason)
  kError = 11,    // server -> client: connection-fatal error (text)
  // Minor version 1:
  kMetricsRequest = 12,   // client -> server: text = name prefix filter
  kMetricsResponse = 13,  // server -> client: text = rendered exposition
};

const char* MessageTypeName(MessageType type);

// One decoded message. A tagged union flattened into a struct: only the
// fields of the active `type` are meaningful, everything else stays
// default-initialized (and round-trips as such through Encode/Decode).
struct Message {
  MessageType type = MessageType::kPing;

  // kHello / kHelloOk
  uint32_t protocol_version = 0;
  // kHello / kHelloOk, optional trailing field: absent (0) from minor-0
  // peers, who stay compatible.
  uint32_t protocol_minor = 0;
  // kHelloOk
  uint64_t session_id = 0;
  // kQuery
  std::string sql;
  // kBusy / kError; kMetricsRequest (prefix filter) / kMetricsResponse
  // (rendered exposition)
  std::string text;
  // kQuery, optional trailing field: the client's active trace id so the
  // server trace links back to it (0 = the request is not client-traced).
  uint64_t client_trace_id = 0;
  // kResult, optional trailing fields: the server-side trace id of this
  // request and how many spans it had recorded by response-encode time
  // (the final net.send span closes after the response is written, so it
  // is not included).
  uint64_t trace_id = 0;
  uint32_t trace_span_count = 0;
  // kResult
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  std::vector<Row> rows;
  ExecStats stats;
  std::vector<std::string> indexes_used;

  static Message Hello() {
    Message m;
    m.type = MessageType::kHello;
    m.protocol_version = kProtocolVersion;
    m.protocol_minor = kProtocolMinorVersion;
    return m;
  }
  static Message HelloOk(uint64_t session_id);
  static Message Query(std::string sql);
  static Message Simple(MessageType type);  // kPing/kPong/kQuit/kBye/kShutdown
  static Message Busy(std::string reason);
  static Message Error(std::string reason);
  static Message MetricsRequest(std::string prefix);
  static Message MetricsResponse(std::string rendered);
  // A kResult carrying a failed statement status (no rows).
  static Message FailedResult(const Status& status);
};

// Encodes the message into one complete frame (header + payload).
std::string EncodeFrame(const Message& m);

// Validates a frame header (exactly kFrameHeaderBytes bytes): magic and
// payload length bound. On success *payload_len/*crc carry the framing
// fields for the payload that follows.
Status ParseFrameHeader(const char* header, uint32_t* payload_len,
                        uint32_t* crc);

// Decodes a payload previously announced by ParseFrameHeader: CRC check,
// then type + body via a sticky-error Reader. Trailing bytes after the
// body are a protocol error (frames are exact, not padded).
Status DecodePayload(const char* payload, size_t len, uint32_t crc,
                     Message* out);

// Decodes one whole frame from an in-memory buffer (tests, fuzzing).
// `*consumed` reports the frame's total size on success.
Status DecodeFrame(const std::string& frame, Message* out,
                   size_t* consumed = nullptr);

}  // namespace net
}  // namespace autoindex
