#pragma once

#include "net/protocol.h"
#include "net/socket.h"
#include "util/metrics.h"
#include "util/status.h"

namespace autoindex {
namespace net {

// Framed message IO over a socket: the glue between protocol.h (pure
// byte-buffer encode/decode) and socket.h (raw fd transport). Both the
// server and the client speak through these two calls, so framing
// behavior — header-first reads, the payload length bound enforced
// *before* the payload allocation, CRC verification — cannot drift
// between the two sides.

// Encodes and writes one frame. `bytes` (optional) accumulates the bytes
// put on the wire (the server's net.bytes_written counter).
Status SendFrame(Socket* sock, const Message& m, int timeout_ms,
                 util::Counter* bytes = nullptr);

// Reads and decodes one frame. A clean EOF before the first header byte
// is kNotFound ("connection closed by peer"); every other failure —
// timeout, torn header/payload, bad magic, oversized length, CRC
// mismatch, malformed body — is connection-fatal for the caller.
Status ReadFrame(Socket* sock, Message* out, int timeout_ms,
                 util::Counter* bytes = nullptr);

}  // namespace net
}  // namespace autoindex
