#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "util/string_util.h"

namespace autoindex {
namespace net {
namespace {

Status ErrnoStatus(const char* op) {
  return Status::Internal(StrCat(op, " failed: ", strerror(errno)));
}

// poll() one or two fds for readability. Returns the WaitResult; retries
// EINTR with the remaining budget unadjusted (timeouts are advisory
// bounds, not deadlines — the caller's loop re-arms them).
StatusOr<Socket::WaitResult> PollReadable(int fd, int timeout_ms,
                                          int wake_fd) {
  struct pollfd fds[2];
  fds[0].fd = fd;
  fds[0].events = POLLIN;
  fds[0].revents = 0;
  nfds_t nfds = 1;
  if (wake_fd >= 0) {
    fds[1].fd = wake_fd;
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    nfds = 2;
  }
  for (;;) {
    const int rc = poll(fds, nfds, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (rc == 0) return Socket::WaitResult::kTimeout;
    // The wake pipe outranks pending data: a draining server must stop
    // picking up new requests even when the socket has bytes queued.
    if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      return Socket::WaitResult::kWake;
    }
    return Socket::WaitResult::kReadable;
  }
}

Status SetNonBlocking(int fd, bool enable) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, want) < 0) return ErrnoStatus("fcntl(F_SETFL)");
  return Status::Ok();
}

Status ParseAddr(const std::string& host, int port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("bad IPv4 address '", host, "' (hostnames not supported)"));
  }
  return Status::Ok();
}

}  // namespace

Status ParseHostPort(const std::string& spec, std::string* host, int* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument(
        StrCat("expected host:port, got '", spec, "'"));
  }
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  const long p = strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p < 1 || p > 65535) {
    return Status::InvalidArgument(StrCat("bad port '", port_str, "'"));
  }
  *host = spec.substr(0, colon);
  *port = static_cast<int>(p);
  return Status::Ok();
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Socket> Socket::ConnectTcp(const std::string& host, int port,
                                    int timeout_ms) {
  sockaddr_in addr;
  Status parsed = ParseAddr(host, port, &addr);
  if (!parsed.ok()) return parsed;

  Socket sock(socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket");

  // Non-blocking connect so the wait is bounded by poll, then back to
  // blocking mode for the framed request/response traffic.
  Status s = SetNonBlocking(sock.fd(), true);
  if (!s.ok()) return s;
  if (connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect");
    struct pollfd pfd;
    pfd.fd = sock.fd();
    pfd.events = POLLOUT;
    pfd.revents = 0;
    int rc;
    do {
      rc = poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return ErrnoStatus("poll(connect)");
    if (rc == 0) {
      return Status::OutOfRange(
          StrCat("connect to ", host, ":", port, " timed out"));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Internal(
          StrCat("connect to ", host, ":", port, " failed: ", strerror(err)));
    }
  }
  s = SetNonBlocking(sock.fd(), false);
  if (!s.ok()) return s;
  const int one = 1;
  // Best-effort: Nagle only costs latency, it never breaks correctness.
  (void)setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status Socket::SendAll(const void* data, size_t len, int timeout_ms) {
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int rc;
      do {
        rc = poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) return ErrnoStatus("poll(send)");
      if (rc == 0) return Status::OutOfRange("send timed out");
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::NotFound("connection closed by peer");
    }
    return ErrnoStatus("send");
  }
  return Status::Ok();
}

Status Socket::RecvAll(void* data, size_t len, int timeout_ms) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    StatusOr<WaitResult> wait = WaitReadable(timeout_ms);
    if (!wait.ok()) return wait.status();
    if (*wait == WaitResult::kTimeout) {
      return Status::OutOfRange("recv timed out");
    }
    const ssize_t n = recv(fd_, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return Status::NotFound("connection closed by peer");
      return Status::Internal("connection closed mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus("recv");
  }
  return Status::Ok();
}

StatusOr<Socket::WaitResult> Socket::WaitReadable(int timeout_ms,
                                                  int wake_fd) {
  return PollReadable(fd_, timeout_ms, wake_fd);
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

StatusOr<ListenSocket> ListenSocket::Listen(const std::string& host, int port,
                                          int backlog) {
  sockaddr_in addr;
  Status parsed = ParseAddr(host, port, &addr);
  if (!parsed.ok()) return parsed;

  ListenSocket sock;
  sock.fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd_ < 0) return ErrnoStatus("socket");
  const int one = 1;
  (void)setsockopt(sock.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(sock.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoStatus("bind");
  }
  if (listen(sock.fd_, backlog) < 0) return ErrnoStatus("listen");

  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(sock.fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  sock.port_ = ntohs(bound.sin_port);
  return sock;
}

StatusOr<Socket::WaitResult> ListenSocket::WaitAcceptable(int timeout_ms,
                                                          int wake_fd) {
  return PollReadable(fd_, timeout_ms, wake_fd);
}

StatusOr<Socket> ListenSocket::Accept() {
  for (;;) {
    const int fd = accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      const int one = 1;
      (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept");
  }
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

SelfPipe::~SelfPipe() {
  if (read_fd_ >= 0) close(read_fd_);
  if (write_fd_ >= 0) close(write_fd_);
}

Status SelfPipe::OpenPipe() {
  int fds[2];
  if (pipe(fds) < 0) return ErrnoStatus("pipe");
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  // Non-blocking write end: Signal() from a signal handler must never
  // block, and a full pipe means the latch is already set anyway.
  return SetNonBlocking(write_fd_, true);
}

void SelfPipe::Signal() {
  if (write_fd_ < 0) return;
  const char byte = 1;
  // The byte is intentionally never drained (level-triggered latch);
  // EAGAIN just means a previous Signal already latched it.
  ssize_t rc;
  do {
    rc = write(write_fd_, &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

bool SelfPipe::signaled() const {
  if (read_fd_ < 0) return false;
  struct pollfd pfd;
  pfd.fd = read_fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc;
  do {
    rc = poll(&pfd, 1, 0);
  } while (rc < 0 && errno == EINTR);
  return rc > 0 && (pfd.revents & POLLIN) != 0;
}

}  // namespace net
}  // namespace autoindex
