#include "net/server.h"

#include <signal.h>
#include <string.h>

#include <memory>
#include <utility>

#include "engine/database.h"
#include "engine/session.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace autoindex {
namespace net {
namespace {

// Process-wide net.* series (DESIGN.md §11 idiom: one registry lookup,
// cached pointers for the process lifetime).
struct NetMetrics {
  util::Gauge* connections_open;
  util::Counter* connections_total;
  util::Counter* connections_rejected;
  util::Counter* requests_total;
  util::Counter* responses_total;
  util::Counter* busy_rejections;
  util::Counter* idle_disconnects;
  util::Counter* statement_timeouts;
  util::Counter* bytes_read;
  util::Counter* bytes_written;
  util::Gauge* inflight_statements;
  util::LatencyHistogram* statement_us;

  static const NetMetrics& Get() {
    static const NetMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return NetMetrics{
          registry.GetGauge("net.connections_open"),
          registry.GetCounter("net.connections_total"),
          registry.GetCounter("net.connections_rejected"),
          registry.GetCounter("net.requests_total"),
          registry.GetCounter("net.responses_total"),
          registry.GetCounter("net.busy_rejections"),
          registry.GetCounter("net.idle_disconnects"),
          registry.GetCounter("net.statement_timeouts"),
          registry.GetCounter("net.bytes_read"),
          registry.GetCounter("net.bytes_written"),
          registry.GetGauge("net.inflight_statements"),
          registry.GetHistogram("net.statement_us"),
      };
    }();
    return metrics;
  }
};

// Signal integration: the handler may only touch async-signal-safe
// state, so it goes through one global pipe pointer. Only one server
// installs handlers at a time (the server binary).
std::atomic<SelfPipe*> g_signal_pipe{nullptr};

void HandleShutdownSignal(int /*signo*/) {
  SelfPipe* pipe = g_signal_pipe.load(std::memory_order_acquire);
  if (pipe != nullptr) pipe->Signal();
}

}  // namespace

Server::Server(Database* db, ServerConfig config)
    : db_(db), config_(std::move(config)) {}

Server::~Server() {
  Stop();
  // Release the signal handlers if this server owned them; the handlers
  // stay installed but become no-ops against a null pipe.
  SelfPipe* expected = &shutdown_pipe_;
  g_signal_pipe.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel);
}

Status Server::Start() {
  {
    util::MutexLock lock(mu_);
    if (started_) return Status::AlreadyExists("server already started");
  }
  Status piped = shutdown_pipe_.OpenPipe();
  if (!piped.ok()) return piped;
  StatusOr<ListenSocket> bound =
      ListenSocket::Listen(config_.host, config_.port, config_.max_connections);
  if (!bound.ok()) return bound.status();
  listener_ = std::move(*bound);
  port_ = listener_.port();

  util::MutexLock lock(mu_);
  started_ = true;
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  return Status::Ok();
}

void Server::RequestShutdown() {
  draining_.store(true, std::memory_order_release);
  shutdown_pipe_.Signal();
}

void Server::Stop() {
  {
    util::MutexLock lock(mu_);
    if (!started_) return;
  }
  RequestShutdown();
  std::thread accept_thread;
  {
    util::MutexLock lock(mu_);
    accept_thread = std::move(accept_thread_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  WaitUntilStopped();
}

void Server::WaitUntilStopped() {
  util::MutexLock lock(mu_);
  if (!started_) return;
  while (!stopped_) stopped_cv_.Wait(mu_);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_total = connections_total_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.requests_started = requests_started_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  s.idle_disconnects = idle_disconnects_.load(std::memory_order_relaxed);
  s.statement_timeouts =
      statement_timeouts_.load(std::memory_order_relaxed);
  return s;
}

Status Server::InstallSignalHandlers() {
  SelfPipe* expected = nullptr;
  if (!g_signal_pipe.compare_exchange_strong(expected, &shutdown_pipe_,
                                             std::memory_order_acq_rel)) {
    return Status::AlreadyExists(
        "another server already owns the signal handlers");
  }
  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGINT, &action, nullptr) != 0 ||
      sigaction(SIGTERM, &action, nullptr) != 0) {
    g_signal_pipe.store(nullptr, std::memory_order_release);
    return Status::Internal("sigaction failed");
  }
  return Status::Ok();
}

void Server::ReapFinished() {
  std::vector<std::thread> done;
  {
    util::MutexLock lock(mu_);
    for (uint64_t id : finished_) {
      auto it = workers_.find(id);
      if (it != workers_.end()) {
        done.push_back(std::move(it->second));
        workers_.erase(it);
      }
    }
    finished_.clear();
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  const NetMetrics& metrics = NetMetrics::Get();
  // Modest poll period so finished workers are reaped promptly even on a
  // quiet listener; shutdown wakes the loop immediately via the pipe.
  constexpr int kAcceptPollMs = 200;

  while (!draining()) {
    ReapFinished();
    StatusOr<Socket::WaitResult> wait =
        listener_.WaitAcceptable(kAcceptPollMs, shutdown_pipe_.read_fd());
    if (!wait.ok()) break;  // listener torn down underneath us
    if (*wait == Socket::WaitResult::kWake) break;
    if (*wait == Socket::WaitResult::kTimeout) continue;

    StatusOr<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) continue;  // transient (ECONNABORTED etc.)

    connections_total_.fetch_add(1, std::memory_order_relaxed);
    metrics.connections_total->Add(1);

    if (open_connections() >= static_cast<size_t>(config_.max_connections)) {
      // Admission: shed the connection with an explicit busy response
      // instead of letting it queue. Best-effort write — a peer that
      // already vanished changes nothing.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      busy_rejections_.fetch_add(1, std::memory_order_relaxed);
      metrics.connections_rejected->Add(1);
      metrics.busy_rejections->Add(1);
      (void)SendFrame(&*accepted,
                      Message::Busy(StrCat("server busy: ",
                                           config_.max_connections,
                                           " connections open")),
                      config_.io_timeout_ms, metrics.bytes_written);
      continue;
    }

    open_connections_.fetch_add(1, std::memory_order_acq_rel);
    metrics.connections_open->Add(1);
    util::MutexLock lock(mu_);
    const uint64_t conn_id = next_conn_id_++;
    workers_.emplace(conn_id, std::thread(&Server::ServeConnection, this,
                                          conn_id, std::move(*accepted)));
  }

  // Drain: stop accepting, wake every worker (the pipe is latched), join
  // them all, and only then report the server stopped.
  listener_.Close();
  RequestShutdown();
  for (;;) {
    std::vector<std::thread> workers;
    {
      util::MutexLock lock(mu_);
      for (auto& [id, t] : workers_) workers.push_back(std::move(t));
      workers_.clear();
      finished_.clear();
    }
    if (workers.empty()) break;
    for (std::thread& t : workers) {
      if (t.joinable()) t.join();
    }
  }
  util::MutexLock lock(mu_);
  stopped_ = true;
  stopped_cv_.NotifyAll();
}

void Server::FinishConnection(uint64_t conn_id) {
  open_connections_.fetch_sub(1, std::memory_order_acq_rel);
  NetMetrics::Get().connections_open->Add(-1);
  util::MutexLock lock(mu_);
  finished_.push_back(conn_id);
}

void Server::ServeConnection(uint64_t conn_id, Socket sock) {
  const NetMetrics& metrics = NetMetrics::Get();

  // Handshake: Hello -> HelloOk | Error. Everything else is fatal.
  Message hello;
  Status got = ReadFrame(&sock, &hello, config_.handshake_timeout_ms,
                         metrics.bytes_read);
  if (!got.ok() || hello.type != MessageType::kHello) {
    if (got.ok()) {
      (void)SendFrame(&sock,
                      Message::Error(StrCat("expected Hello, got ",
                                            MessageTypeName(hello.type))),
                      config_.io_timeout_ms, metrics.bytes_written);
    }
    FinishConnection(conn_id);
    return;
  }
  if (hello.protocol_version != kProtocolVersion) {
    (void)SendFrame(
        &sock,
        Message::Error(StrCat("protocol version mismatch: client ",
                              hello.protocol_version, ", server ",
                              kProtocolVersion)),
        config_.io_timeout_ms, metrics.bytes_written);
    FinishConnection(conn_id);
    return;
  }

  std::unique_ptr<Session> session = db_->CreateSession();
  if (!SendFrame(&sock, Message::HelloOk(session->id()),
                 config_.io_timeout_ms, metrics.bytes_written)
           .ok()) {
    FinishConnection(conn_id);
    return;
  }

  const int idle_ms = config_.idle_timeout_ms > 0 ? config_.idle_timeout_ms : -1;
  while (!draining()) {
    StatusOr<Socket::WaitResult> wait =
        sock.WaitReadable(idle_ms, shutdown_pipe_.read_fd());
    if (!wait.ok() || *wait == Socket::WaitResult::kWake) break;
    if (*wait == Socket::WaitResult::kTimeout) {
      idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
      metrics.idle_disconnects->Add(1);
      (void)SendFrame(&sock,
                      Message::Error(StrCat("idle timeout after ",
                                            config_.idle_timeout_ms, " ms")),
                      config_.io_timeout_ms, metrics.bytes_written);
      break;
    }

    // The request trace opens once the socket is readable, so net.recv
    // measures frame parsing, not idle time between statements. Control
    // frames (ping/quit/...) cancel the trace below — only queries and
    // metrics scrapes are worth a flight-recorder slot.
    obs::ScopedTrace trace("net.request");
    Message request;
    {
      obs::ScopedSpan recv_span("net.recv");
      got = ReadFrame(&sock, &request, config_.io_timeout_ms,
                      metrics.bytes_read);
    }
    if (!got.ok()) {
      trace.Cancel();
      // A torn or corrupt frame poisons the stream: report once (the
      // peer may already be gone) and close. A clean EOF just closes.
      if (got.code() != StatusCode::kNotFound) {
        (void)SendFrame(&sock, Message::Error(got.ToString()),
                        config_.io_timeout_ms, metrics.bytes_written);
      }
      break;
    }

    if (request.type == MessageType::kPing) {
      trace.Cancel();
      if (!SendFrame(&sock, Message::Simple(MessageType::kPong),
                     config_.io_timeout_ms, metrics.bytes_written)
               .ok()) {
        break;
      }
      continue;
    }
    if (request.type == MessageType::kQuit) {
      trace.Cancel();
      (void)SendFrame(&sock, Message::Simple(MessageType::kBye),
                      config_.io_timeout_ms, metrics.bytes_written);
      break;
    }
    if (request.type == MessageType::kShutdown) {
      trace.Cancel();
      (void)SendFrame(&sock, Message::Simple(MessageType::kBye),
                      config_.io_timeout_ms, metrics.bytes_written);
      RequestShutdown();
      break;
    }
    if (request.type == MessageType::kMetricsRequest) {
      trace.Cancel();
      if (!SendFrame(&sock,
                     Message::MetricsResponse(
                         db_->RenderMetricsText(request.text)),
                     config_.io_timeout_ms, metrics.bytes_written)
               .ok()) {
        break;
      }
      continue;
    }
    if (request.type != MessageType::kQuery) {
      trace.Cancel();
      (void)SendFrame(&sock,
                      Message::Error(StrCat("unexpected ",
                                            MessageTypeName(request.type),
                                            " from client")),
                      config_.io_timeout_ms, metrics.bytes_written);
      break;
    }
    trace.set_client_trace_id(request.client_trace_id);

    // Admission: bound the statements executing concurrently across the
    // whole server; over the bound we shed with kBusy instead of
    // queueing, so a load spike degrades into explicit rejections the
    // client can back off from.
    bool shed = false;
    {
      obs::ScopedSpan admit_span("net.admit");
      const int inflight =
          inflight_statements_.fetch_add(1, std::memory_order_acq_rel) + 1;
      shed = inflight > config_.max_inflight_statements;
      if (shed) {
        inflight_statements_.fetch_sub(1, std::memory_order_acq_rel);
        busy_rejections_.fetch_add(1, std::memory_order_relaxed);
        metrics.busy_rejections->Add(1);
      }
    }
    if (shed) {
      trace.Cancel();
      if (!SendFrame(&sock,
                     Message::Busy(StrCat(
                         "server busy: ", config_.max_inflight_statements,
                         " statements in flight")),
                     config_.io_timeout_ms, metrics.bytes_written)
               .ok()) {
        break;
      }
      continue;
    }
    metrics.inflight_statements->Add(1);
    requests_started_.fetch_add(1, std::memory_order_relaxed);
    metrics.requests_total->Add(1);
    if (statement_hook_) statement_hook_();

    const util::Stopwatch watch;
    StatusOr<ExecResult> result = [&] {
      obs::ScopedSpan exec_span("net.execute");
      return session->Execute(request.sql);
    }();
    const uint64_t elapsed_us = watch.ElapsedUs();
    metrics.statement_us->Record(elapsed_us);
    metrics.inflight_statements->Add(-1);
    inflight_statements_.fetch_sub(1, std::memory_order_acq_rel);

    Message response;
    if (config_.statement_timeout_us > 0 &&
        elapsed_us > static_cast<uint64_t>(config_.statement_timeout_us)) {
      statement_timeouts_.fetch_add(1, std::memory_order_relaxed);
      metrics.statement_timeouts->Add(1);
      response = Message::FailedResult(Status::OutOfRange(
          StrCat("statement deadline exceeded: ", elapsed_us, " us > ",
                 config_.statement_timeout_us, " us")));
    } else if (!result.ok()) {
      response = Message::FailedResult(result.status());
    } else {
      response.type = MessageType::kResult;
      response.rows = std::move(result->rows);
      response.stats = result->stats;
      response.indexes_used = std::move(result->indexes_used);
    }
    // Stamp the server trace identity into the result so a traced client
    // can correlate its client.query trace with the server-side record.
    // The span count is as-of-encode: net.send closes after the write.
    response.trace_id = trace.trace_id();
    response.trace_span_count = static_cast<uint32_t>(trace.span_count());

    std::string frame = EncodeFrame(response);
    if (frame.size() - kFrameHeaderBytes > kMaxFrameBytes) {
      // The result is too wide for one frame; replace it with an error
      // rather than sending a header the client must reject.
      response = Message::FailedResult(Status::OutOfRange(
          StrCat("result exceeds frame limit (", frame.size(), " bytes)")));
      frame = EncodeFrame(response);
    }
    obs::ScopedSpan send_span("net.send");
    Status sent = sock.SendAll(frame.data(), frame.size(),
                               config_.io_timeout_ms);
    if (sent.ok()) metrics.bytes_written->Add(frame.size());
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    metrics.responses_total->Add(1);
    if (!sent.ok()) break;
  }

  FinishConnection(conn_id);
}

}  // namespace net
}  // namespace autoindex
