#include "net/client.h"

#include <utility>

#include "net/wire.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace autoindex {
namespace net {

namespace {
constexpr const char* kBusyPrefix = "server busy";
}  // namespace

bool IsServerBusy(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         StartsWith(status.message(), kBusyPrefix);
}

Status Client::Connect(const std::string& host, int port,
                       const ClientConfig& config) {
  Close();
  config_ = config;
  StatusOr<Socket> sock =
      Socket::ConnectTcp(host, port, config.connect_timeout_ms);
  if (!sock.ok()) return sock.status();
  sock_ = std::move(*sock);

  Status sent =
      SendFrame(&sock_, Message::Hello(), config_.connect_timeout_ms);
  if (!sent.ok()) {
    sock_.Close();
    return sent;
  }
  Message reply;
  Status got = ReadFrame(&sock_, &reply, config_.connect_timeout_ms);
  if (!got.ok()) {
    sock_.Close();
    return got;
  }
  if (reply.type == MessageType::kBusy) {
    sock_.Close();
    return Status::Internal(reply.text);  // IsServerBusy matches
  }
  if (reply.type == MessageType::kError) {
    sock_.Close();
    return Status::InvalidArgument(reply.text);
  }
  if (reply.type != MessageType::kHelloOk) {
    sock_.Close();
    return Status::Internal(StrCat("handshake: expected HelloOk, got ",
                                   MessageTypeName(reply.type)));
  }
  // Major version must match exactly; the minor (reply.protocol_minor)
  // may differ — unknown extensions are optional trailing fields each
  // side simply ignores.
  if (reply.protocol_version != kProtocolVersion) {
    sock_.Close();
    return Status::InvalidArgument(
        StrCat("protocol version mismatch: server ", reply.protocol_version,
               ", client ", kProtocolVersion));
  }
  session_id_ = reply.session_id;
  return Status::Ok();
}

StatusOr<Message> Client::RoundTrip(const Message& request,
                                    MessageType want) {
  if (!connected()) return Status::NotFound("not connected");
  Status sent = SendFrame(&sock_, request, config_.io_timeout_ms);
  if (!sent.ok()) {
    sock_.Close();
    return sent;
  }
  Message reply;
  Status got = ReadFrame(&sock_, &reply, config_.io_timeout_ms);
  if (!got.ok()) {
    sock_.Close();
    return got;
  }
  if (reply.type == MessageType::kBusy) {
    // Shed, not executed; the connection stays usable for a retry.
    return Status::Internal(reply.text);  // IsServerBusy matches
  }
  if (reply.type == MessageType::kError) {
    // Connection-fatal by protocol contract: the server closes after an
    // Error frame, so mirror it.
    sock_.Close();
    return Status::Internal(StrCat("server error: ", reply.text));
  }
  if (reply.type != want) {
    sock_.Close();
    return Status::Internal(StrCat("expected ", MessageTypeName(want),
                                   ", got ", MessageTypeName(reply.type)));
  }
  return reply;
}

StatusOr<QueryResult> Client::Query(const std::string& sql) {
  Message request = Message::Query(sql);
  // Propagate the caller's active trace (if any) so the server-side
  // record links back to it; 0 means "not client-traced".
  request.client_trace_id = obs::CurrentTraceId();
  StatusOr<Message> reply = RoundTrip(request, MessageType::kResult);
  if (!reply.ok()) return reply.status();
  if (reply->status_code != StatusCode::kOk) {
    // The statement itself failed server-side; surface its Status as if
    // Session::Execute had returned it locally.
    return Status(reply->status_code, reply->status_message);
  }
  QueryResult result;
  result.rows = std::move(reply->rows);
  result.stats = reply->stats;
  result.indexes_used = std::move(reply->indexes_used);
  result.server_trace_id = reply->trace_id;
  result.server_span_count = reply->trace_span_count;
  return result;
}

StatusOr<std::string> Client::Metrics(const std::string& prefix) {
  StatusOr<Message> reply = RoundTrip(Message::MetricsRequest(prefix),
                                      MessageType::kMetricsResponse);
  if (!reply.ok()) return reply.status();
  return std::move(reply->text);
}

Status Client::Ping() {
  return RoundTrip(Message::Simple(MessageType::kPing), MessageType::kPong)
      .status();
}

Status Client::Shutdown() {
  StatusOr<Message> reply =
      RoundTrip(Message::Simple(MessageType::kShutdown), MessageType::kBye);
  sock_.Close();
  return reply.status();
}

void Client::Close() {
  if (!connected()) return;
  // Best-effort courtesy Quit so the server logs a clean close; skip the
  // Bye wait (the peer may already be gone).
  (void)SendFrame(&sock_, Message::Simple(MessageType::kQuit),
                  /*timeout_ms=*/100);
  sock_.Close();
  session_id_ = 0;
}

}  // namespace net
}  // namespace autoindex
