#include "net/protocol.h"

#include <cstring>
#include <utility>

#include "persist/serde.h"
#include "util/string_util.h"

namespace autoindex {
namespace net {
namespace {

void PutExecStats(persist::Writer* w, const ExecStats& s) {
  w->PutU64(s.heap_pages_read);
  w->PutU64(s.index_pages_read);
  w->PutU64(s.tuples_examined);
  w->PutU64(s.index_tuples_read);
  w->PutU64(s.rows_returned);
  w->PutU64(s.sort_rows);
  w->PutU64(s.pages_written);
  w->PutU64(s.index_entries_written);
  w->PutU64(s.index_pages_written);
  w->PutDouble(s.maint_cpu_cost);
  w->PutBool(s.used_index);
}

ExecStats GetExecStats(persist::Reader* r) {
  ExecStats s;
  s.heap_pages_read = r->GetU64();
  s.index_pages_read = r->GetU64();
  s.tuples_examined = r->GetU64();
  s.index_tuples_read = r->GetU64();
  s.rows_returned = r->GetU64();
  s.sort_rows = r->GetU64();
  s.pages_written = r->GetU64();
  s.index_entries_written = r->GetU64();
  s.index_pages_written = r->GetU64();
  s.maint_cpu_cost = r->GetDouble();
  s.used_index = r->GetBool();
  return s;
}

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kInternal);
}

void PutU32At(std::string* buf, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*buf)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t GetU32At(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "Hello";
    case MessageType::kHelloOk: return "HelloOk";
    case MessageType::kQuery: return "Query";
    case MessageType::kResult: return "Result";
    case MessageType::kPing: return "Ping";
    case MessageType::kPong: return "Pong";
    case MessageType::kQuit: return "Quit";
    case MessageType::kBye: return "Bye";
    case MessageType::kShutdown: return "Shutdown";
    case MessageType::kBusy: return "Busy";
    case MessageType::kError: return "Error";
    case MessageType::kMetricsRequest: return "MetricsRequest";
    case MessageType::kMetricsResponse: return "MetricsResponse";
  }
  return "Unknown";
}

Message Message::HelloOk(uint64_t session_id) {
  Message m;
  m.type = MessageType::kHelloOk;
  m.protocol_version = kProtocolVersion;
  m.protocol_minor = kProtocolMinorVersion;
  m.session_id = session_id;
  return m;
}

Message Message::Query(std::string sql) {
  Message m;
  m.type = MessageType::kQuery;
  m.sql = std::move(sql);
  return m;
}

Message Message::Simple(MessageType type) {
  Message m;
  m.type = type;
  return m;
}

Message Message::Busy(std::string reason) {
  Message m;
  m.type = MessageType::kBusy;
  m.text = std::move(reason);
  return m;
}

Message Message::Error(std::string reason) {
  Message m;
  m.type = MessageType::kError;
  m.text = std::move(reason);
  return m;
}

Message Message::MetricsRequest(std::string prefix) {
  Message m;
  m.type = MessageType::kMetricsRequest;
  m.text = std::move(prefix);
  return m;
}

Message Message::MetricsResponse(std::string rendered) {
  Message m;
  m.type = MessageType::kMetricsResponse;
  m.text = std::move(rendered);
  return m;
}

Message Message::FailedResult(const Status& status) {
  Message m;
  m.type = MessageType::kResult;
  m.status_code = status.code();
  m.status_message = status.message();
  return m;
}

std::string EncodeFrame(const Message& m) {
  persist::Writer payload;
  payload.PutU8(static_cast<uint8_t>(m.type));
  switch (m.type) {
    case MessageType::kHello:
      payload.PutU32(m.protocol_version);
      payload.PutU32(m.protocol_minor);
      break;
    case MessageType::kHelloOk:
      payload.PutU32(m.protocol_version);
      payload.PutU64(m.session_id);
      payload.PutU32(m.protocol_minor);
      break;
    case MessageType::kQuery:
      payload.PutString(m.sql);
      payload.PutU64(m.client_trace_id);
      break;
    case MessageType::kBusy:
    case MessageType::kError:
    case MessageType::kMetricsRequest:
    case MessageType::kMetricsResponse:
      payload.PutString(m.text);
      break;
    case MessageType::kResult: {
      payload.PutU8(static_cast<uint8_t>(m.status_code));
      payload.PutString(m.status_message);
      payload.PutU32(static_cast<uint32_t>(m.rows.size()));
      for (const Row& row : m.rows) persist::PutRow(&payload, row);
      PutExecStats(&payload, m.stats);
      payload.PutU32(static_cast<uint32_t>(m.indexes_used.size()));
      for (const std::string& name : m.indexes_used) payload.PutString(name);
      payload.PutU64(m.trace_id);
      payload.PutU32(m.trace_span_count);
      break;
    }
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kQuit:
    case MessageType::kBye:
    case MessageType::kShutdown:
      break;  // no body
  }

  std::string frame(kFrameHeaderBytes, '\0');
  PutU32At(&frame, 0, kFrameMagic);
  PutU32At(&frame, 4, static_cast<uint32_t>(payload.size()));
  PutU32At(&frame, 8, persist::Crc32(payload.buffer().data(), payload.size()));
  frame += payload.buffer();
  return frame;
}

Status ParseFrameHeader(const char* header, uint32_t* payload_len,
                        uint32_t* crc) {
  const uint32_t magic = GetU32At(header);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument(
        StrFormat("bad frame magic 0x%08x (want 0x%08x)", magic, kFrameMagic));
  }
  *payload_len = GetU32At(header + 4);
  *crc = GetU32At(header + 8);
  if (*payload_len == 0) {
    return Status::InvalidArgument("empty frame payload");
  }
  if (*payload_len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("frame payload %u bytes exceeds limit %u", *payload_len,
                  kMaxFrameBytes));
  }
  return Status::Ok();
}

Status DecodePayload(const char* payload, size_t len, uint32_t crc,
                     Message* out) {
  const uint32_t actual = persist::Crc32(payload, len);
  if (actual != crc) {
    return Status::InvalidArgument(
        StrFormat("frame CRC mismatch: header 0x%08x, payload 0x%08x", crc,
                  actual));
  }
  persist::Reader r(payload, len);
  const uint8_t raw_type = r.GetU8();
  if (raw_type < static_cast<uint8_t>(MessageType::kHello) ||
      raw_type > static_cast<uint8_t>(MessageType::kMetricsResponse)) {
    return Status::InvalidArgument(
        StrFormat("unknown message type %u", raw_type));
  }
  Message m;
  m.type = static_cast<MessageType>(raw_type);
  switch (m.type) {
    case MessageType::kHello:
      m.protocol_version = r.GetU32();
      // Optional minor-version tail: a minor-0 peer's Hello ends here.
      if (r.ok() && !r.AtEnd()) m.protocol_minor = r.GetU32();
      break;
    case MessageType::kHelloOk:
      m.protocol_version = r.GetU32();
      m.session_id = r.GetU64();
      if (r.ok() && !r.AtEnd()) m.protocol_minor = r.GetU32();
      break;
    case MessageType::kQuery:
      m.sql = r.GetString();
      // Optional trace-propagation tail (minor 1).
      if (r.ok() && !r.AtEnd()) m.client_trace_id = r.GetU64();
      break;
    case MessageType::kBusy:
    case MessageType::kError:
    case MessageType::kMetricsRequest:
    case MessageType::kMetricsResponse:
      m.text = r.GetString();
      break;
    case MessageType::kResult: {
      const uint8_t code = r.GetU8();
      if (r.ok() && !ValidStatusCode(code)) {
        r.Fail(Status::InvalidArgument(
            StrFormat("invalid status code %u", code)));
      }
      m.status_code = static_cast<StatusCode>(code);
      m.status_message = r.GetString();
      const uint32_t num_rows = r.GetU32();
      // Every encoded row costs at least its own u32 length, so a count
      // larger than the remaining bytes is provably corrupt — poison the
      // stream before the loop allocates anything.
      if (r.ok() && num_rows > r.remaining()) {
        r.Fail(Status::InvalidArgument(
            StrFormat("implausible row count %u", num_rows)));
      }
      for (uint32_t i = 0; i < num_rows && r.ok(); ++i) {
        m.rows.push_back(persist::GetRow(&r));
      }
      m.stats = GetExecStats(&r);
      const uint32_t num_indexes = r.GetU32();
      if (r.ok() && num_indexes > r.remaining()) {
        r.Fail(Status::InvalidArgument(
            StrFormat("implausible index count %u", num_indexes)));
      }
      for (uint32_t i = 0; i < num_indexes && r.ok(); ++i) {
        m.indexes_used.push_back(r.GetString());
      }
      // Optional trace-propagation tail (minor 1).
      if (r.ok() && !r.AtEnd()) {
        m.trace_id = r.GetU64();
        m.trace_span_count = r.GetU32();
      }
      break;
    }
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kQuit:
    case MessageType::kBye:
    case MessageType::kShutdown:
      break;
  }
  if (!r.ok()) return r.status();
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("frame has %zu trailing bytes after %s body", r.remaining(),
                  MessageTypeName(m.type)));
  }
  *out = std::move(m);
  return Status::Ok();
}

Status DecodeFrame(const std::string& frame, Message* out, size_t* consumed) {
  if (frame.size() < kFrameHeaderBytes) {
    return Status::OutOfRange(
        StrFormat("truncated frame header: %zu of %zu bytes", frame.size(),
                  kFrameHeaderBytes));
  }
  uint32_t payload_len = 0;
  uint32_t crc = 0;
  Status header = ParseFrameHeader(frame.data(), &payload_len, &crc);
  if (!header.ok()) return header;
  if (frame.size() < kFrameHeaderBytes + payload_len) {
    return Status::OutOfRange(
        StrFormat("truncated frame payload: %zu of %u bytes",
                  frame.size() - kFrameHeaderBytes, payload_len));
  }
  Status decoded =
      DecodePayload(frame.data() + kFrameHeaderBytes, payload_len, crc, out);
  if (!decoded.ok()) return decoded;
  if (consumed != nullptr) *consumed = kFrameHeaderBytes + payload_len;
  return Status::Ok();
}

}  // namespace net
}  // namespace autoindex
