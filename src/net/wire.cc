#include "net/wire.h"

namespace autoindex {
namespace net {

Status SendFrame(Socket* sock, const Message& m, int timeout_ms,
                 util::Counter* bytes) {
  const std::string frame = EncodeFrame(m);
  Status sent = sock->SendAll(frame.data(), frame.size(), timeout_ms);
  if (!sent.ok()) return sent;
  if (bytes != nullptr) bytes->Add(frame.size());
  return Status::Ok();
}

Status ReadFrame(Socket* sock, Message* out, int timeout_ms,
                 util::Counter* bytes) {
  char header[kFrameHeaderBytes];
  Status got = sock->RecvAll(header, sizeof(header), timeout_ms);
  if (!got.ok()) return got;

  uint32_t payload_len = 0;
  uint32_t crc = 0;
  Status parsed = ParseFrameHeader(header, &payload_len, &crc);
  if (!parsed.ok()) return parsed;

  std::string payload(payload_len, '\0');
  got = sock->RecvAll(payload.data(), payload.size(), timeout_ms);
  if (!got.ok()) {
    // EOF between header and payload is a torn frame, not a clean close.
    if (got.code() == StatusCode::kNotFound) {
      return Status::Internal("connection closed mid-frame");
    }
    return got;
  }
  if (bytes != nullptr) bytes->Add(kFrameHeaderBytes + payload.size());
  return DecodePayload(payload.data(), payload.size(), crc, out);
}

}  // namespace net
}  // namespace autoindex
