#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/status.h"

namespace autoindex {
namespace net {

struct ClientConfig {
  // Bound on the TCP connect + handshake round trip.
  int connect_timeout_ms = 5000;
  // Bound on each request/response exchange (the response wait dominates;
  // size it above the slowest statement you expect to run).
  int io_timeout_ms = 30000;
};

// One remote statement's outcome — the client-side mirror of ExecResult,
// minus the plan snapshot and feedback (which stay server-side).
struct QueryResult {
  std::vector<Row> rows;
  ExecStats stats;
  std::vector<std::string> indexes_used;
  // Server-side trace identity for this statement (0 from a minor-0
  // server): the id of the server's net.request trace and how many spans
  // it had recorded when the response was encoded.
  uint64_t server_trace_id = 0;
  uint32_t server_span_count = 0;
};

// True for the Status a client call returns when the server shed the
// request (connection cap or statement admission): the request was NOT
// executed and may be retried after backoff.
bool IsServerBusy(const Status& status);

// Blocking TCP client for the AutoIndex service (DESIGN.md §12). One
// connection, strict request/response, not thread-safe: one client per
// thread, exactly like engine/Session. Any connection-fatal error
// (timeout, torn frame, protocol error) closes the socket; the next call
// reports NotFound("not connected") and the caller reconnects.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and runs the version handshake. A kBusy reply (connection
  // cap) surfaces as IsServerBusy; a version mismatch as InvalidArgument.
  Status Connect(const std::string& host, int port,
                 const ClientConfig& config = {});

  // Executes one statement remotely. A non-ok statement status from the
  // server is returned as that Status (the connection stays usable); a
  // kBusy shed as IsServerBusy (also usable); transport/protocol errors
  // close the connection.
  StatusOr<QueryResult> Query(const std::string& sql);

  // Fetches the server's metrics exposition (RenderMetricsText), filtered
  // to series whose Prometheus name starts with `prefix` (empty = all).
  StatusOr<std::string> Metrics(const std::string& prefix = {});

  // Round-trip liveness probe.
  Status Ping();

  // Asks the server to drain and stop. Ok when the server acknowledged;
  // the connection is closed either way.
  Status Shutdown();

  // Best-effort Quit + close. Safe when already closed.
  void Close();

  bool connected() const { return sock_.valid(); }
  // Server-assigned session id (valid after Connect).
  uint64_t session_id() const { return session_id_; }

 private:
  // Sends `request` and reads one response frame, closing on transport
  // failure. The response type is validated against `want` (kBusy and
  // kError are handled uniformly here).
  StatusOr<Message> RoundTrip(const Message& request, MessageType want);

  Socket sock_;
  ClientConfig config_;
  uint64_t session_id_ = 0;
};

}  // namespace net
}  // namespace autoindex
