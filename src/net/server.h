#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "util/mutex.h"

namespace autoindex {

class Database;

namespace net {

// Service-layer configuration (DESIGN.md §12).
struct ServerConfig {
  // Bind address. Port 0 asks the kernel for an ephemeral port; the
  // actual port is reported by Server::port() after Start().
  std::string host = "127.0.0.1";
  int port = 0;

  // Admission control. Both limits shed load with an explicit kBusy
  // response instead of queueing unboundedly: a connection over
  // max_connections is told "busy" and closed right after accept; a
  // Query over max_inflight_statements is refused without executing.
  // The per-connection in-flight count is 1 by protocol construction
  // (strict request/response), so max_inflight_statements bounds the
  // number of *concurrently executing* statements across the server.
  int max_connections = 64;
  int max_inflight_statements = 32;

  // Per-connection idle timeout: a connection that sends nothing for
  // this long between requests is closed. 0 disables.
  int idle_timeout_ms = 0;

  // Per-statement deadline, enforced post-hoc: the engine has no
  // cancellation points yet, so a statement that overruns still finishes
  // but its rows are discarded and the client receives kOutOfRange
  // ("statement deadline exceeded"). 0 disables.
  int statement_timeout_us = 0;

  // Bound on each read/write once a frame has started, and on the
  // handshake. Protects the worker from a peer that stops mid-frame.
  int io_timeout_ms = 10000;
  int handshake_timeout_ms = 5000;
};

// Counters the drain invariant is checked against (tests, the server
// binary's exit report). All monotone over the server's lifetime.
struct ServerStats {
  uint64_t connections_total = 0;
  uint64_t connections_rejected = 0;
  uint64_t requests_started = 0;   // Query frames admitted for execution
  uint64_t responses_sent = 0;     // kResult frames fully written
  uint64_t busy_rejections = 0;    // kBusy responses (either limit)
  uint64_t idle_disconnects = 0;
  uint64_t statement_timeouts = 0;
};

// TCP front end over one Database: an accept loop plus one worker thread
// per connection (the pool is bounded by max_connections), each worker
// bound to its own engine/Session so per-connection executor state never
// crosses threads. Statements execute under the database's table
// latches exactly as in-process sessions do — the server adds transport,
// admission, and timeouts, never a second concurrency model.
//
// Shutdown: RequestShutdown() (also triggered by a kShutdown message,
// SIGINT/SIGTERM via InstallSignalHandlers, or Stop()) latches a
// process-visible self-pipe. The accept loop stops accepting and closes
// the listen socket; every worker finishes the statement it is
// executing, writes the response, and closes; the accept thread joins
// the workers and marks the server stopped. No statement whose request
// frame was admitted is ever dropped without a response — the drain
// invariant requests_started == responses_sent, which stats() exposes
// and tests assert.
class Server {
 public:
  explicit Server(Database* db, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the accept thread. Fails (without
  // spawning) when the address cannot be bound.
  Status Start() EXCLUDES(mu_);

  // The bound port (valid after a successful Start).
  int port() const { return port_; }

  // Begins the graceful drain described above. Idempotent, safe from any
  // thread (including worker threads handling kShutdown).
  void RequestShutdown();

  // RequestShutdown + wait for the drain to finish. Idempotent; also run
  // by the destructor.
  void Stop() EXCLUDES(mu_);

  // Blocks until the drain has completed (the server binary's main).
  void WaitUntilStopped() EXCLUDES(mu_);

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  size_t open_connections() const {
    return open_connections_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;

  // Routes SIGINT/SIGTERM to RequestShutdown via the self-pipe (the
  // handler only write(2)s, which is async-signal-safe). Process-global:
  // at most one server may install handlers at a time.
  Status InstallSignalHandlers();

  // Test-only: runs inside the worker after a statement is admitted
  // (holding its in-flight slot) and before it executes. Lets tests hold
  // a statement in the admitted state to make shedding deterministic.
  void set_statement_hook(std::function<void()> hook) {
    statement_hook_ = std::move(hook);
  }

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t conn_id, Socket sock);
  void FinishConnection(uint64_t conn_id) EXCLUDES(mu_);
  void ReapFinished() EXCLUDES(mu_);

  Database* db_;
  const ServerConfig config_;
  int port_ = 0;

  ListenSocket listener_;
  SelfPipe shutdown_pipe_;
  std::atomic<bool> draining_{false};
  std::atomic<size_t> open_connections_{0};
  std::atomic<int> inflight_statements_{0};
  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_started_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> busy_rejections_{0};
  std::atomic<uint64_t> idle_disconnects_{0};
  std::atomic<uint64_t> statement_timeouts_{0};

  std::function<void()> statement_hook_;

  mutable util::Mutex mu_;
  util::CondVar stopped_cv_;
  std::thread accept_thread_ GUARDED_BY(mu_);
  // Live worker threads by connection id; finished workers park their id
  // in finished_ for the accept loop (or final drain) to join.
  std::unordered_map<uint64_t, std::thread> workers_ GUARDED_BY(mu_);
  std::vector<uint64_t> finished_ GUARDED_BY(mu_);
  uint64_t next_conn_id_ GUARDED_BY(mu_) = 1;
  bool started_ GUARDED_BY(mu_) = false;
  bool stopped_ GUARDED_BY(mu_) = false;
};

}  // namespace net
}  // namespace autoindex
