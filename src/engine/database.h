#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/what_if.h"
#include "index/index_manager.h"
#include "sql/parser.h"
#include "stats/stats_manager.h"
#include "storage/catalog.h"
#include "storage/latch_manager.h"
#include "util/metrics.h"
#include "util/mutex.h"

namespace autoindex {

class DurabilityLog;
class Session;

// The top-level database façade: catalog + indexes + statistics + executor
// + what-if cost model. This is the substrate AutoIndex manages — the role
// openGauss plays in the paper.
//
// Concurrency model (DESIGN.md §6): statements run under table-level
// reader–writer latches managed by the LatchManager; multiple client
// threads each drive their own Session (CreateSession) while the tuning
// thread builds/drops indexes under exclusive latches. The monotone data
// version counts every data-changing operation (writes, bulk loads, index
// DDL, ANALYZE) so caches keyed on table contents/statistics — notably the
// benefit estimator's cost memo — can detect staleness without callbacks.
class Database {
 public:
  explicit Database(CostParams params = CostParams());
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Sessions ---
  // A new client connection with its own executor and stats accounting.
  // Sessions may outlive neither the database nor (safely) be shared
  // between threads; create one per client thread.
  std::unique_ptr<Session> CreateSession();

  // --- DDL ---
  StatusOr<HeapTable*> CreateTable(const std::string& name, Schema schema);
  // Online three-phase index build (DESIGN.md §10): registers a kBuilding
  // index under a brief exclusive latch (from which point writer
  // maintenance lands in the build's side-delta buffer), scans the heap
  // in chunks under *shared* latches so writers interleave, catches the
  // delta up, then drains the final delta, appends the WAL create record,
  // and publishes — all inside one short exclusive window. Concurrent
  // writer stalls are O(final delta drain), not O(heap scan).
  Status CreateIndex(const IndexDef& def);
  // Legacy blocking build: exclusive latch across the whole heap scan.
  // Used by recovery (the database is quiesced, so online phases would
  // only add overhead) and as the baseline in bench_online_build.
  Status CreateIndexBlocking(const IndexDef& def);
  Status DropIndex(const std::string& key_or_name);
  bool HasIndex(const IndexDef& def) const {
    return index_manager_->HasIndex(def);
  }

  // Test-only observation points between the online build's phases, fired
  // with no latch held so the observer may run statements/snapshots.
  enum class IndexBuildPhase { kRegistered, kScanned, kCaughtUp, kPublished };
  using IndexBuildHook = std::function<void(IndexBuildPhase)>;
  void set_index_build_hook(IndexBuildHook hook) {
    index_build_hook_ = std::move(hook);
  }

  // --- DML ---
  // Parses and executes one SQL string.
  StatusOr<ExecResult> Execute(const std::string& sql);
  // Executes a pre-parsed statement (avoids re-parsing in tight loops).
  StatusOr<ExecResult> Execute(const Statement& stmt);

  // Executes on a specific executor under statement latches (shared for
  // SELECT on every referenced table, exclusive for writes). Used by
  // Execute and by Session; most callers want those instead.
  StatusOr<ExecResult> ExecuteOn(Executor* executor, const Statement& stmt);

  // Bulk load rows without per-statement accounting (population fast path).
  Status BulkInsert(const std::string& table, std::vector<Row> rows);

  // Refreshes optimizer statistics (call after bulk loads).
  void Analyze();
  void Analyze(const std::string& table);

  // --- What-if ---
  // Estimated cost of a statement under an arbitrary index configuration.
  CostBreakdown WhatIfCost(const Statement& stmt,
                           const IndexConfig& config) const {
    return what_if_->EstimateStatement(stmt, config);
  }

  // The configuration matching the currently built indexes.
  IndexConfig CurrentConfig() const;

  // --- Concurrency substrate ---
  // Const: latching freezes tables without changing logical database
  // state, and CheckAll must be able to do so through a const reference.
  LatchManager& latches() const { return latches_; }
  // Monotone counter bumped by every data-changing operation (successful
  // write statements, BulkInsert, index DDL, ANALYZE). Epoch-guarded
  // caches compare against it to detect staleness.
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_acquire);
  }
  // Returns the new (post-bump) version, which the durability layer stamps
  // on the corresponding WAL record.
  uint64_t BumpDataVersion() {
    return data_version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  // Recovery only: forces the counter to the version recorded by the
  // checkpoint/WAL, so epochs survive a restart.
  void RestoreDataVersion(uint64_t version) {
    data_version_.store(version, std::memory_order_release);
  }

  // --- Durability (src/persist/) ---
  // Attaches a write-ahead log. Every committed mutation is appended to it
  // under wal_mu_, paired atomically with its data-version bump, so record
  // order in the log always matches version order. Null detaches. The
  // pointer itself is guarded by wal_mu_, but attach/detach should still
  // happen while quiesced (startup, recovery, checkpoint): statements
  // already past their append see the previous log.
  void set_durability_log(DurabilityLog* log) EXCLUDES(wal_mu_) {
    util::MutexLock lock(wal_mu_);
    durability_log_ = log;
  }
  DurabilityLog* durability_log() const EXCLUDES(wal_mu_) {
    util::MutexLock lock(wal_mu_);
    return durability_log_;
  }

  // --- Correctness tooling (src/check/) ---
  // Debug-mode invariant hook: when installed, it runs after every
  // successful mutating statement, after BulkInsert, and after index DDL;
  // a failure is surfaced as that operation's status. Installed by
  // InstallDebugChecks() in src/check/ (the hook is a callback so the
  // engine never depends on the check module); null disables.
  using InvariantHook = std::function<Status(const Database&)>;
  void set_invariant_hook(InvariantHook hook) {
    invariant_hook_ = std::move(hook);
  }
  bool debug_checks_enabled() const { return invariant_hook_ != nullptr; }
  // Runs the hook now; Ok when none is installed.
  Status RunInvariantHook() const {
    return invariant_hook_ ? invariant_hook_(*this) : Status::Ok();
  }

  // --- Execution feedback ---
  // Forwards per-access-path (estimated, observed) pairs of every executed
  // statement to the given hook; installed by AutoIndexManager when
  // cost-model learning is enabled. The hook is shared by the legacy
  // executor and every session executor, and may be (re)installed while
  // sessions are executing.
  void set_execution_feedback_hook(Executor::FeedbackHook hook)
      EXCLUDES(feedback_mu_);

  // Internal: executors forward their per-statement feedback here.
  void DeliverFeedback(const std::vector<AccessPathFeedback>& batch)
      EXCLUDES(feedback_mu_);

  // Internal: a fresh executor wired to this database's feedback fan-in
  // (Session construction).
  std::unique_ptr<Executor> MakeSessionExecutor();

  // Internal: the next session id (Session construction). Monotone per
  // database; id 0 is never handed out, so the net handshake can treat 0
  // as "no session".
  uint64_t NextSessionId() {
    return next_session_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Observability (DESIGN.md §11) ---
  // Point-in-time view of the process-wide metrics registry, filtered to
  // names starting with `prefix` (all when empty). Counters/histograms
  // are process-global: two Database instances in one process share them.
  std::vector<util::MetricsRegistry::MetricValue> MetricsSnapshot(
      const std::string& prefix = {}) const;
  // Prometheus-style text exposition of the same view.
  std::string RenderMetricsText(const std::string& prefix = {}) const;

  // --- Tracing (DESIGN.md §13) ---
  // The flight recorder's current contents as Chrome trace-event JSON
  // (load via chrome://tracing or Perfetto). The shell's `\trace dump`
  // writes exactly this string.
  std::string DumpTraces() const;
  // The `n` most recent traces as indented span trees (`\trace show`).
  std::string RenderTraceTrees(size_t n) const;

  // --- Introspection ---
  Executor& executor() { return *executor_; }
  const Executor& executor() const { return *executor_; }
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  IndexManager& index_manager() { return *index_manager_; }
  const IndexManager& index_manager() const { return *index_manager_; }
  StatsManager& stats_manager() { return *stats_manager_; }
  const StatsManager& stats_manager() const { return *stats_manager_; }
  const WhatIfCostModel& what_if() const { return *what_if_; }
  const CostParams& params() const { return params_; }

 private:
  // Bumps the data version and, when a durability log is attached, appends
  // the record via `append(log, new_version)` — both under wal_mu_ so
  // concurrent writers cannot interleave their (bump, append) pairs. The
  // callback receives the attached log (never null when invoked) so it can
  // append without touching the guarded pointer itself.
  Status CommitDurable(
      const std::function<Status(DurabilityLog*, uint64_t)>& append)
      EXCLUDES(wal_mu_);

  // Whether a durability log is currently attached (BulkInsert's copy
  // decision; the append itself re-reads the pointer under wal_mu_).
  bool HasDurabilityLog() const EXCLUDES(wal_mu_) {
    util::MutexLock lock(wal_mu_);
    return durability_log_ != nullptr;
  }

  void FireIndexBuildHook(IndexBuildPhase phase) const {
    if (index_build_hook_) index_build_hook_(phase);
  }

  CostParams params_;
  InvariantHook invariant_hook_;
  IndexBuildHook index_build_hook_;
  mutable LatchManager latches_;
  std::atomic<uint64_t> data_version_{1};
  std::atomic<uint64_t> next_session_id_{1};
  // Serializes (data-version bump, WAL append) pairs across writers and
  // guards the attached log pointer.
  mutable util::Mutex wal_mu_;
  DurabilityLog* durability_log_ GUARDED_BY(wal_mu_) = nullptr;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<IndexManager> index_manager_;
  std::unique_ptr<StatsManager> stats_manager_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<WhatIfCostModel> what_if_;
  // Guards the central feedback hook (installed by the manager, invoked
  // from every client thread's executor).
  mutable util::Mutex feedback_mu_;
  Executor::FeedbackHook feedback_hook_ GUARDED_BY(feedback_mu_);
};

}  // namespace autoindex
