#include "engine/operators/join_ops.h"

#include "util/string_util.h"

namespace autoindex {

// --- IndexNestedLoopJoinOp -----------------------------------------------

bool IndexNestedLoopJoinOp::DoNext(ExecTuple* out) {
  while (true) {
    if (!inner_active_) {
      if (!outer_->Next(&outer_tuple_)) return false;
      ++stats_.rows_in;
      // Lowering only picks this operator when every key column binds
      // statically; an unbindable probe degrades to zero inner matches.
      (void)inner_->Rebind(&outer_tuple_);
      inner_active_ = true;
    }
    ExecTuple inner_row;
    if (!inner_->Next(&inner_row)) {
      inner_active_ = false;
      continue;
    }
    Extend(inner_row, out);
    return true;
  }
}

// --- HashJoinOp ----------------------------------------------------------

HashJoinOp::HashJoinOp(ExecContext* ctx,
                       const std::vector<TablePlan>& tables, size_t level,
                       std::unique_ptr<PhysicalOperator> outer,
                       std::unique_ptr<SeqScanOp> build,
                       std::vector<std::string> join_cols,
                       std::vector<ColumnRef> join_sources)
    : JoinOpBase(ctx, tables, level, std::move(outer)),
      build_(std::move(build)),
      join_cols_(std::move(join_cols)),
      join_sources_(std::move(join_sources)),
      table_(ctx->catalog->GetTable(tables[level].ref.table)) {
  for (const std::string& c : join_cols_) {
    key_ords_.push_back(table_->schema().FindColumn(c));
  }
}

void HashJoinOp::BuildHashTable() {
  // Drain the build-side scan: it filters by the local conditions and
  // pays the scan counters (tuples examined, heap pages) exactly once.
  ExecTuple t;
  while (build_->Next(&t)) {
    Row key;
    for (int ord : key_ords_) {
      key.push_back(ord >= 0 ? t.slots[0][static_cast<size_t>(ord)]
                             : Value::Null());
    }
    hash_[HashRow(key)].push_back(t.rids[0]);
  }
  built_ = true;
}

bool HashJoinOp::DoNext(ExecTuple* out) {
  const TablePlan& tp = tables_[level_];
  while (true) {
    if (!inner_active_) {
      if (!outer_->Next(&outer_tuple_)) return false;
      ++stats_.rows_in;
      if (!built_) BuildHashTable();
      // Resolve the probe key from the outer tuple. Resolution failure is
      // structural (shadowed unqualified name), uniform across tuples, and
      // matches the previous executor: no inner rows are produced.
      resolver_.Bind(&outer_tuple_, nullptr);
      matches_ = nullptr;
      Row probe;
      bool bound = true;
      for (const ColumnRef& src : join_sources_) {
        Value v;
        if (!resolver_.Resolve(src, &v)) {
          bound = false;
          break;
        }
        probe.push_back(v);
      }
      if (bound) {
        auto it = hash_.find(HashRow(probe));
        if (it != hash_.end()) matches_ = &it->second;
      }
      match_cursor_ = 0;
      inner_active_ = true;
    }
    while (matches_ != nullptr && match_cursor_ < matches_->size()) {
      const RowId rid = (*matches_)[match_cursor_++];
      if (!table_->IsLive(rid)) continue;
      const Row& row = table_->Get(rid);
      resolver_.Bind(&outer_tuple_, &row);
      // Exact recheck: hash collisions / partial-key matches.
      if (!JoinConditionsOk(tp, resolver_, &stats_.comparisons)) continue;
      ExecTuple inner_row;
      inner_row.slots.assign(1, row);
      inner_row.rids.assign(1, rid);
      Extend(inner_row, out);
      return true;
    }
    inner_active_ = false;
  }
}

std::string HashJoinOp::detail() const {
  std::vector<std::string> keys;
  for (size_t i = 0; i < join_cols_.size(); ++i) {
    keys.push_back(join_cols_[i] + " = " + join_sources_[i].ToString());
  }
  return JoinOpBase::detail() + " on " + Join(keys, ", ");
}

// --- NestedLoopJoinOp ----------------------------------------------------

bool NestedLoopJoinOp::DoNext(ExecTuple* out) {
  const TablePlan& tp = tables_[level_];
  while (true) {
    if (!inner_active_) {
      if (!outer_->Next(&outer_tuple_)) return false;
      ++stats_.rows_in;
      inner_->Rewind();
      inner_active_ = true;
    }
    ExecTuple inner_row;
    if (!inner_->Next(&inner_row)) {
      inner_active_ = false;
      continue;
    }
    resolver_.Bind(&outer_tuple_, &inner_row.slots[0]);
    if (!JoinConditionsOk(tp, resolver_, &stats_.comparisons)) continue;
    Extend(inner_row, out);
    return true;
  }
}

}  // namespace autoindex
