#include "engine/operators/scan_ops.h"

#include <functional>

namespace autoindex {
namespace {

// For a local index: the bound value of the table's partition column, when
// an equality condition pins it (literal, or join-resolved from the outer
// tuple). Returns false when unbound (the scan must probe every shard).
bool ResolvePartitionValue(const BuiltIndex& index, const HeapTable& table,
                           const std::vector<ColumnCondition>& conditions,
                           const ColumnResolver& resolver, Value* out) {
  if (!index.is_local() || !table.partitioned()) return false;
  const std::string& pcol =
      table.schema().column(static_cast<size_t>(table.partition_column()))
          .name;
  for (const ColumnCondition& c : conditions) {
    if (c.column != pcol || c.kind != ColumnCondition::kEq) continue;
    if (c.join_source.has_value()) {
      if (resolver.Resolve(*c.join_source, out)) return true;
      continue;
    }
    *out = c.literal;
    return true;
  }
  return false;
}

size_t HeapPageKey(const HeapTable& table, RowId rid) {
  return table.PageOfRow(rid) ^
         (std::hash<std::string>()(table.name()) << 1);
}

}  // namespace

// --- SeqScanOp -----------------------------------------------------------

SeqScanOp::SeqScanOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
                     size_t level)
    : ctx_(ctx),
      tables_(tables),
      level_(level),
      table_(ctx->catalog->GetTable(tables[level].ref.table)),
      resolver_(*ctx->catalog, tables, level) {}

void SeqScanOp::EnsureMaterialized() {
  if (materialized_done_) return;
  const TablePlan& tp = tables_[level_];
  table_->Scan([&](RowId rid, const Row& row) {
    ++stats_.tuples_examined;
    resolver_.Bind(nullptr, &row);
    if (LocalConditionsOk(tp, resolver_, &stats_.comparisons)) {
      materialized_.push_back(rid);
    }
  });
  stats_.heap_pages_read += static_cast<int64_t>(table_->NumPages());
  materialized_done_ = true;
}

bool SeqScanOp::DoNext(ExecTuple* out) {
  EnsureMaterialized();
  while (cursor_ < materialized_.size()) {
    const RowId rid = materialized_[cursor_++];
    if (!table_->IsLive(rid)) continue;
    out->slots.assign(1, table_->Get(rid));
    out->rids.assign(1, rid);
    ++stats_.rows_out;
    return true;
  }
  return false;
}

std::string SeqScanOp::detail() const {
  return "on " + tables_[level_].ref.alias;
}

void SeqScanOp::AppendFeedback(const CostParams& params,
                               std::vector<AccessPathFeedback>* out) const {
  if (!materialized_done_) return;  // never executed
  AccessPathFeedback fb;
  fb.table = tables_[level_].ref.table;
  fb.est_rows = tables_[level_].access.est_rows;
  fb.actual_rows = static_cast<double>(materialized_.size());
  fb.est_cost = tables_[level_].access.est_cost;
  fb.actual_cost =
      static_cast<double>(stats_.heap_pages_read) * params.seq_page_cost +
      static_cast<double>(stats_.tuples_examined) * params.cpu_tuple_cost;
  out->push_back(std::move(fb));
}

// --- IndexScanOp ---------------------------------------------------------

IndexScanOp::IndexScanOp(ExecContext* ctx,
                         const std::vector<TablePlan>& tables, size_t level,
                         const BuiltIndex* index)
    : ctx_(ctx),
      tables_(tables),
      level_(level),
      table_(ctx->catalog->GetTable(tables[level].ref.table)),
      index_(index),
      resolver_(*ctx->catalog, tables, level) {}

void IndexScanOp::DoOpen() {
  // Standalone use (leftmost table / write lookup): one probe, all key
  // columns bound from literals. As a join inner, the parent Rebind()s
  // per outer tuple instead and this initial probe is never issued.
  if (level_ == 0) {
    (void)Rebind(nullptr);
  }
}

bool IndexScanOp::Rebind(const ExecTuple* outer) {
  const TablePlan& tp = tables_[level_];
  outer_ = outer;
  rids_.clear();
  cursor_ = 0;
  resolver_.Bind(outer, nullptr);

  // Runtime key prefix: equality columns may be literals or join
  // references resolved from the outer tuple.
  Row lo, hi;
  bool lo_inc = true, hi_inc = true;
  for (size_t k = 0; k < tp.access.eq_prefix_len; ++k) {
    const std::string& icol = tp.access.index.columns[k];
    bool bound = false;
    for (const ColumnCondition& c : tp.conditions) {
      if (c.column != icol || c.kind != ColumnCondition::kEq) continue;
      Value v;
      if (c.join_source.has_value()) {
        if (!resolver_.Resolve(*c.join_source, &v)) continue;
      } else {
        v = c.literal;
      }
      lo.push_back(v);
      hi.push_back(v);
      bound = true;
      break;
    }
    if (!bound) return false;
  }
  if (tp.access.has_range &&
      tp.access.eq_prefix_len < tp.access.index.columns.size()) {
    const std::string& rcol = tp.access.index.columns[tp.access.eq_prefix_len];
    for (const ColumnCondition& c : tp.conditions) {
      if (c.column != rcol) continue;
      if (c.kind == ColumnCondition::kRangeLo) {
        if (lo.size() == tp.access.eq_prefix_len) {
          lo.push_back(c.literal);
          lo_inc = c.inclusive;
        }
      } else if (c.kind == ColumnCondition::kRangeHi) {
        if (hi.size() == tp.access.eq_prefix_len) {
          hi.push_back(c.literal);
          hi_inc = c.inclusive;
        }
      }
    }
  }

  size_t index_pages = 0;
  const Row* lo_ptr = lo.empty() ? nullptr : &lo;
  const Row* hi_ptr = hi.empty() ? nullptr : &hi;
  Value partition_value;
  const bool pruned = ResolvePartitionValue(
      *index_, *table_, tp.conditions, resolver_, &partition_value);
  index_->Scan(pruned ? &partition_value : nullptr, lo_ptr, lo_inc, hi_ptr,
               hi_inc,
               [&](const Row&, RowId rid) {
                 rids_.push_back(rid);
                 return true;
               },
               &index_pages);
  stats_.index_pages_read += static_cast<int64_t>(index_pages);
  stats_.index_tuples_read += static_cast<int64_t>(rids_.size());
  ++probes_;
  return true;
}

bool IndexScanOp::DoNext(ExecTuple* out) {
  const TablePlan& tp = tables_[level_];
  while (cursor_ < rids_.size()) {
    const RowId rid = rids_[cursor_++];
    if (!table_->IsLive(rid)) continue;
    if (ctx_->probed_heap_pages.insert(HeapPageKey(*table_, rid)).second) {
      ++stats_.heap_pages_read;
    }
    const Row& row = table_->Get(rid);
    ++stats_.tuples_examined;
    resolver_.Bind(outer_, &row);
    if (!LocalConditionsOk(tp, resolver_, &stats_.comparisons) ||
        !JoinConditionsOk(tp, resolver_, &stats_.comparisons)) {
      continue;
    }
    out->slots.assign(1, row);
    out->rids.assign(1, rid);
    ++stats_.rows_out;
    return true;
  }
  return false;
}

std::string IndexScanOp::detail() const {
  const TablePlan& tp = tables_[level_];
  std::string out = "on " + tp.ref.alias + " via " +
                    tp.access.index.DisplayName();
  if (tp.access.eq_prefix_len > 0 || tp.access.has_range) {
    out += " (eq prefix " + std::to_string(tp.access.eq_prefix_len);
    if (tp.access.has_range) out += ", range";
    out += ")";
  }
  return out;
}

void IndexScanOp::AppendFeedback(const CostParams& params,
                                 std::vector<AccessPathFeedback>* out) const {
  if (probes_ == 0) return;  // never executed
  const double probes = static_cast<double>(probes_);
  AccessPathFeedback fb;
  fb.table = tables_[level_].ref.table;
  fb.index = tables_[level_].access.index.DisplayName();
  fb.est_rows = tables_[level_].access.est_match_rows;
  fb.actual_rows = static_cast<double>(stats_.index_tuples_read) / probes;
  fb.est_cost = tables_[level_].access.est_cost;
  fb.actual_cost =
      (static_cast<double>(stats_.index_pages_read) * params.random_page_cost +
       static_cast<double>(stats_.heap_pages_read) * params.random_page_cost +
       static_cast<double>(stats_.index_tuples_read) *
           params.cpu_index_tuple_cost +
       static_cast<double>(stats_.tuples_examined) * params.cpu_tuple_cost) /
      probes;
  out->push_back(std::move(fb));
}

}  // namespace autoindex
