#pragma once

#include <string>
#include <vector>

#include "engine/operators/operator.h"
#include "index/index_manager.h"

namespace autoindex {

// Sequential scan over one table, filtered by the level's local (literal)
// conditions. The filtered RowIds are materialized once on first pull;
// Rewind() replays them without rescanning, which is how NestedLoopJoin
// re-reads its inner side per outer tuple (liveness is rechecked per
// emission, materialization counters are paid once).
class SeqScanOp : public PhysicalOperator {
 public:
  SeqScanOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
            size_t level);

  void DoOpen() override {}
  bool DoNext(ExecTuple* out) override;
  void DoClose() override {}

  const char* name() const override { return "SeqScan"; }
  std::string detail() const override;
  size_t out_width() const override { return 1; }

  void Rewind() { cursor_ = 0; }

  void AppendFeedback(const CostParams& params,
                      std::vector<AccessPathFeedback>* out) const override;

 private:
  void EnsureMaterialized();

  ExecContext* ctx_;
  const std::vector<TablePlan>& tables_;
  size_t level_;
  const HeapTable* table_;
  PrefixResolver resolver_;
  std::vector<RowId> materialized_;
  bool materialized_done_ = false;
  size_t cursor_ = 0;
};

// Index scan over one table. Standalone (leftmost table / write lookup) it
// probes once in Open(); as the inner side of IndexNestedLoopJoin it is
// re-probed per outer tuple via Rebind(). Emitted rows already passed the
// level's local and join conditions, evaluated against the bound outer
// tuple. Heap pages are deduplicated query-wide through the ExecContext.
class IndexScanOp : public PhysicalOperator {
 public:
  IndexScanOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
              size_t level, const BuiltIndex* index);

  void DoOpen() override;
  bool DoNext(ExecTuple* out) override;
  void DoClose() override {}

  const char* name() const override { return "IndexScan"; }
  std::string detail() const override;
  size_t out_width() const override { return 1; }

  // Probes the index with the key prefix bound against `outer` (null for
  // the leftmost table: literal bindings only). Returns false when a
  // join-bound key column cannot be resolved — lowering statically avoids
  // that case, and an unbindable probe simply yields no rows.
  bool Rebind(const ExecTuple* outer);

  void AppendFeedback(const CostParams& params,
                      std::vector<AccessPathFeedback>* out) const override;

 private:
  ExecContext* ctx_;
  const std::vector<TablePlan>& tables_;
  size_t level_;
  const HeapTable* table_;
  const BuiltIndex* index_;
  PrefixResolver resolver_;
  const ExecTuple* outer_ = nullptr;
  std::vector<RowId> rids_;
  size_t cursor_ = 0;
  int64_t probes_ = 0;
};

}  // namespace autoindex
