#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/operators/operator.h"

namespace autoindex {

// Single-child operator boilerplate.
class UnaryOpBase : public PhysicalOperator {
 public:
  UnaryOpBase(std::unique_ptr<PhysicalOperator> child)
      : child_(std::move(child)) {}

  void DoOpen() override { child_->Open(); }
  void DoClose() override { child_->Close(); }
  size_t num_children() const override { return 1; }
  const PhysicalOperator* child(size_t) const override {
    return child_.get();
  }

 protected:
  std::unique_ptr<PhysicalOperator> child_;
};

// Evaluates the complete WHERE over fully-joined tuples — covers ORs and
// cross-table predicates the per-level pruning could not evaluate.
class FilterOp : public UnaryOpBase {
 public:
  FilterOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
           const Expr* predicate, std::unique_ptr<PhysicalOperator> child)
      : UnaryOpBase(std::move(child)),
        predicate_(predicate),
        resolver_(*ctx->catalog, tables, tables.size() - 1) {}

  bool DoNext(ExecTuple* out) override;

  const char* name() const override { return "Filter"; }
  std::string detail() const override;
  size_t out_width() const override { return child_->out_width(); }

 private:
  const Expr* predicate_;
  PrefixResolver resolver_;
};

// Projects joined tuples to output rows (star expansion in join order,
// columns resolved newest-table-first — the engine's historical
// semantics). Emits single-slot derived rows.
class ProjectOp : public UnaryOpBase {
 public:
  ProjectOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
            const std::vector<SelectItem>* items,
            std::unique_ptr<PhysicalOperator> child)
      : UnaryOpBase(std::move(child)),
        items_(items),
        resolver_(*ctx->catalog, tables, tables.size() - 1) {}

  bool DoNext(ExecTuple* out) override;

  const char* name() const override { return "Project"; }
  std::string detail() const override;
  size_t out_width() const override { return 1; }

 private:
  const std::vector<SelectItem>* items_;
  PrefixResolver resolver_;
};

// Blocking sort. Two key modes:
//  - kTupleKeys: ORDER BY columns resolved over joined tuples (pre-
//    projection); counts its input into sort_rows.
//  - kSlotKeys: ORDER BY matched to select-item slots of aggregate output
//    rows; contributes nothing to sort_rows because HashAggregate already
//    counted its groups — the sort-like work the cost model prices.
class SortOp : public UnaryOpBase {
 public:
  enum class Mode { kTupleKeys, kSlotKeys };

  SortOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
         const std::vector<OrderByItem>* order_by,
         std::vector<std::pair<int, bool>> slot_keys, Mode mode,
         std::unique_ptr<PhysicalOperator> child)
      : UnaryOpBase(std::move(child)),
        order_by_(order_by),
        slot_keys_(std::move(slot_keys)),
        mode_(mode),
        resolver_(*ctx->catalog, tables, tables.size() - 1) {}

  bool DoNext(ExecTuple* out) override;

  const char* name() const override { return "Sort"; }
  std::string detail() const override;
  size_t out_width() const override { return child_->out_width(); }

 private:
  void EnsureSorted();

  const std::vector<OrderByItem>* order_by_;
  std::vector<std::pair<int, bool>> slot_keys_;  // (slot, desc)
  Mode mode_;
  PrefixResolver resolver_;
  std::vector<ExecTuple> buffer_;
  bool sorted_ = false;
  size_t cursor_ = 0;
};

// LIMIT n with genuine early termination: once the cap is reached the
// child is never pulled again, so upstream scans/joins stop doing work.
// Statement ExecStats is derived by summing the operator counters of what
// actually ran (AccumulateOperatorCounters), so the accounting and the
// PhysicalPlanValidator stay exact under the short-circuit; the what-if
// estimates stay LIMIT-blind and the est-vs-actual gap surfaces in
// EXPLAIN ANALYZE and the feedback loop.
class LimitOp : public UnaryOpBase {
 public:
  LimitOp(size_t limit, std::unique_ptr<PhysicalOperator> child)
      : UnaryOpBase(std::move(child)), limit_(limit) {}

  bool DoNext(ExecTuple* out) override;

  const char* name() const override { return "Limit"; }
  std::string detail() const override {
    return std::to_string(limit_) + " rows";
  }
  size_t out_width() const override { return child_->out_width(); }

 private:
  size_t limit_;
  size_t emitted_ = 0;
};

// Blocking hash aggregation on the GROUP BY key (empty key = one group;
// empty input with no GROUP BY still yields a single zero row). Emits
// single-slot output rows; counts its group build into sort_rows.
class HashAggregateOp : public UnaryOpBase {
 public:
  HashAggregateOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
                  const std::vector<SelectItem>* items,
                  const std::vector<ColumnRef>* group_by,
                  std::unique_ptr<PhysicalOperator> child)
      : UnaryOpBase(std::move(child)),
        items_(items),
        group_by_(group_by),
        resolver_(*ctx->catalog, tables, tables.size() - 1) {}

  bool DoNext(ExecTuple* out) override;

  const char* name() const override { return "HashAggregate"; }
  std::string detail() const override;
  size_t out_width() const override { return 1; }

 private:
  void EnsureAggregated();

  const std::vector<SelectItem>* items_;
  const std::vector<ColumnRef>* group_by_;
  PrefixResolver resolver_;
  std::vector<Row> out_rows_;
  bool aggregated_ = false;
  size_t cursor_ = 0;
};

}  // namespace autoindex
