#include "engine/operators/pipeline_ops.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace autoindex {
namespace {

Value ProjectColumn(const ColumnResolver& resolver, const ColumnRef& col) {
  Value v;
  return resolver.Resolve(col, &v) ? v : Value::Null();
}

// Aggregate accumulator for one group.
struct AggState {
  size_t count = 0;
  std::vector<double> sums;
  std::vector<Value> mins;
  std::vector<Value> maxs;
  std::vector<size_t> non_null;  // per aggregate item
  // Item saw a non-numeric (string) input: SUM/AVG over it yield NULL
  // instead of silently treating the strings as 0.
  std::vector<bool> non_numeric;
};

struct GroupKeyHash {
  size_t operator()(const Row& r) const { return HashRow(r); }
};
struct GroupKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) == 0;
  }
};

}  // namespace

// --- FilterOp ------------------------------------------------------------

bool FilterOp::DoNext(ExecTuple* out) {
  ExecTuple t;
  while (child_->Next(&t)) {
    ++stats_.rows_in;
    resolver_.Bind(&t, nullptr);
    ++stats_.comparisons;
    if (!EvaluatePredicate(*predicate_, resolver_)) continue;
    *out = std::move(t);
    ++stats_.rows_out;
    return true;
  }
  return false;
}

std::string FilterOp::detail() const {
  std::string s = predicate_->ToString();
  if (s.size() > 60) s = s.substr(0, 57) + "...";
  return s;
}

// --- ProjectOp -----------------------------------------------------------

bool ProjectOp::DoNext(ExecTuple* out) {
  ExecTuple t;
  if (!child_->Next(&t)) return false;
  ++stats_.rows_in;
  resolver_.Bind(&t, nullptr);
  Row row;
  for (const SelectItem& item : *items_) {
    if (item.star) {
      for (const Row& slot : t.slots) {
        for (const Value& v : slot) row.push_back(v);
      }
    } else {
      row.push_back(ProjectColumn(resolver_, item.column));
    }
  }
  out->slots.assign(1, std::move(row));
  out->rids.assign(1, kInvalidRowId);
  ++stats_.rows_out;
  return true;
}

std::string ProjectOp::detail() const {
  std::vector<std::string> parts;
  for (const SelectItem& item : *items_) parts.push_back(item.ToString());
  return Join(parts, ", ");
}

// --- SortOp --------------------------------------------------------------

void SortOp::EnsureSorted() {
  if (sorted_) return;
  ExecTuple t;
  while (child_->Next(&t)) {
    ++stats_.rows_in;
    buffer_.push_back(std::move(t));
  }
  if (mode_ == Mode::kTupleKeys) {
    stats_.sort_rows += static_cast<int64_t>(buffer_.size());
    // Precompute each tuple's sort key once (one Bind + one column
    // resolution per key column), then sort an index permutation. The
    // comparator used to re-Bind and re-resolve both sides on every
    // comparison — O(n log n) resolver work instead of O(n).
    std::vector<Row> keys(buffer_.size());
    for (size_t i = 0; i < buffer_.size(); ++i) {
      resolver_.Bind(&buffer_[i], nullptr);
      keys[i].reserve(order_by_->size());
      for (const OrderByItem& o : *order_by_) {
        keys[i].push_back(ProjectColumn(resolver_, o.column));
      }
    }
    std::vector<size_t> order(buffer_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t j = 0; j < order_by_->size(); ++j) {
                         ++stats_.comparisons;
                         const int c = keys[a][j].Compare(keys[b][j]);
                         if (c != 0) {
                           return (*order_by_)[j].desc ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
    std::vector<ExecTuple> sorted;
    sorted.reserve(buffer_.size());
    for (size_t idx : order) sorted.push_back(std::move(buffer_[idx]));
    buffer_ = std::move(sorted);
  } else {
    std::stable_sort(buffer_.begin(), buffer_.end(),
                     [&](const ExecTuple& a, const ExecTuple& b) {
                       for (const auto& [slot, desc] : slot_keys_) {
                         ++stats_.comparisons;
                         const int c = a.slots[0][static_cast<size_t>(slot)]
                                           .Compare(
                                               b.slots[0][static_cast<size_t>(
                                                   slot)]);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  sorted_ = true;
}

bool SortOp::DoNext(ExecTuple* out) {
  EnsureSorted();
  if (cursor_ >= buffer_.size()) return false;
  *out = buffer_[cursor_++];
  ++stats_.rows_out;
  return true;
}

std::string SortOp::detail() const {
  std::vector<std::string> keys;
  if (mode_ == Mode::kTupleKeys) {
    for (const OrderByItem& o : *order_by_) {
      keys.push_back(o.column.ToString() + (o.desc ? " desc" : ""));
    }
  } else {
    for (const auto& [slot, desc] : slot_keys_) {
      keys.push_back("slot " + std::to_string(slot) + (desc ? " desc" : ""));
    }
  }
  return "by " + Join(keys, ", ");
}

// --- LimitOp -------------------------------------------------------------

bool LimitOp::DoNext(ExecTuple* out) {
  // Short-circuit: once satisfied, never pull the child again (the whole
  // point of LIMIT). Draining here used to force full upstream scans.
  if (emitted_ >= limit_) return false;
  ExecTuple t;
  if (!child_->Next(&t)) return false;
  ++stats_.rows_in;
  *out = std::move(t);
  ++emitted_;
  ++stats_.rows_out;
  return true;
}

// --- HashAggregateOp -----------------------------------------------------

void HashAggregateOp::EnsureAggregated() {
  if (aggregated_) return;
  std::unordered_map<Row, AggState, GroupKeyHash, GroupKeyEq> groups;
  ExecTuple t;
  while (child_->Next(&t)) {
    ++stats_.rows_in;
    resolver_.Bind(&t, nullptr);
    Row key;
    for (const ColumnRef& g : *group_by_) {
      key.push_back(ProjectColumn(resolver_, g));
    }
    AggState& st = groups[key];
    if (st.count == 0) {
      st.sums.assign(items_->size(), 0.0);
      st.mins.assign(items_->size(), Value());
      st.maxs.assign(items_->size(), Value());
      st.non_null.assign(items_->size(), 0);
      st.non_numeric.assign(items_->size(), false);
    }
    ++st.count;
    for (size_t k = 0; k < items_->size(); ++k) {
      const SelectItem& item = (*items_)[k];
      if (item.agg == AggFunc::kNone || item.star) continue;
      const Value v = ProjectColumn(resolver_, item.column);
      if (v.is_null()) continue;
      ++st.non_null[k];
      if (v.type() == ValueType::kString) {
        st.non_numeric[k] = true;
      } else {
        st.sums[k] += v.AsDouble();
      }
      if (st.mins[k].is_null() || v.Compare(st.mins[k]) < 0) st.mins[k] = v;
      if (st.maxs[k].is_null() || v.Compare(st.maxs[k]) > 0) st.maxs[k] = v;
    }
  }
  if (groups.empty() && group_by_->empty()) {
    // COUNT over empty input yields one zero row.
    AggState& st = groups[Row()];
    st.sums.assign(items_->size(), 0.0);
    st.mins.assign(items_->size(), Value());
    st.maxs.assign(items_->size(), Value());
    st.non_null.assign(items_->size(), 0);
    st.non_numeric.assign(items_->size(), false);
  }
  stats_.sort_rows += static_cast<int64_t>(groups.size());
  for (const auto& [key, st] : groups) {
    Row out;
    for (size_t k = 0; k < items_->size(); ++k) {
      const SelectItem& item = (*items_)[k];
      switch (item.agg) {
        case AggFunc::kNone: {
          // A grouped plain column: take it from the key when possible.
          bool from_key = false;
          for (size_t g = 0; g < group_by_->size(); ++g) {
            if ((*group_by_)[g].column == item.column.column) {
              out.push_back(key[g]);
              from_key = true;
              break;
            }
          }
          if (!from_key) out.push_back(Value::Null());
          break;
        }
        case AggFunc::kCount: {
          const size_t n = item.star ? st.count : st.non_null[k];
          out.emplace_back(static_cast<int64_t>(n));
          break;
        }
        case AggFunc::kSum:
          // SUM/AVG over non-numeric input is NULL — a string column used
          // to contribute 0.0 silently.
          out.push_back(st.non_null[k] == 0 || st.non_numeric[k]
                            ? Value::Null()
                            : Value(st.sums[k]));
          break;
        case AggFunc::kAvg:
          out.push_back(st.non_null[k] == 0 || st.non_numeric[k]
                            ? Value::Null()
                            : Value(st.sums[k] / st.non_null[k]));
          break;
        case AggFunc::kMin:
          out.push_back(st.mins[k]);
          break;
        case AggFunc::kMax:
          out.push_back(st.maxs[k]);
          break;
      }
    }
    out_rows_.push_back(std::move(out));
  }
  aggregated_ = true;
}

bool HashAggregateOp::DoNext(ExecTuple* out) {
  EnsureAggregated();
  if (cursor_ >= out_rows_.size()) return false;
  out->slots.assign(1, out_rows_[cursor_++]);
  out->rids.assign(1, kInvalidRowId);
  ++stats_.rows_out;
  return true;
}

std::string HashAggregateOp::detail() const {
  if (group_by_->empty()) return "single group";
  std::vector<std::string> keys;
  for (const ColumnRef& g : *group_by_) keys.push_back(g.ToString());
  return "group by " + Join(keys, ", ");
}

}  // namespace autoindex
