#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "engine/cost_model.h"
#include "engine/planner.h"
#include "obs/trace.h"
#include "sql/statement.h"
#include "storage/catalog.h"

namespace autoindex {

// Runtime counters every physical operator maintains while pulling tuples.
// The statement-level ExecStats is derived by summing these over the tree
// (AccumulateOperatorCounters), so per-operator and whole-statement
// accounting cannot drift apart. Fields are signed so the plan validator
// can flag corrupted (negative) counters.
struct OperatorStats {
  int64_t rows_in = 0;            // tuples pulled from the outer/child side
  int64_t rows_out = 0;           // tuples emitted to the parent
  int64_t heap_pages_read = 0;
  int64_t index_pages_read = 0;
  int64_t tuples_examined = 0;    // heap tuples materialized/filtered
  int64_t index_tuples_read = 0;  // index entries touched by scans
  int64_t sort_rows = 0;          // rows passed through sort/group work
  int64_t comparisons = 0;        // predicate/key evaluations performed
};

// A tuple flowing through the pipeline: one materialized row per placed
// base table (in join order), with the originating RowIds alongside so
// write lookups can address the heap. Row-shaped operators
// (Project/HashAggregate) emit one derived slot with kInvalidRowId.
struct ExecTuple {
  std::vector<Row> slots;
  std::vector<RowId> rids;
};

// Per-statement state shared by every operator in one tree.
struct ExecContext {
  const Catalog* catalog = nullptr;
  // Heap pages fetched via index probes, deduplicated query-wide: repeated
  // probes hitting the same (hot or clustered) pages cost one read — the
  // buffer-cache behaviour the cost model's correlation blend mirrors.
  // Keys are namespaced by table name so two tables' page 0 stay distinct.
  std::unordered_set<size_t> probed_heap_pages;
};

// One access path's estimated-vs-observed execution pair. The executor
// collects these from scan operators after each statement and forwards
// them to core/benefit_estimator (the EXPLAIN ANALYZE feedback loop).
struct AccessPathFeedback {
  std::string table;         // real table name
  std::string index;         // index display name; empty = sequential scan
  double est_rows = 0.0;     // planner's expected rows from the path
  double actual_rows = 0.0;  // observed rows (mean per probe for indexes)
  double est_cost = 0.0;     // planner's access-path cost (read side)
  double actual_cost = 0.0;  // priced from the operator's own counters
};

// Copyable, pointer-free image of an executed operator tree: what EXPLAIN
// ANALYZE renders and what the PhysicalPlanValidator checks against the
// statement-level ExecStats.
struct PlanNodeSnapshot {
  std::string op;         // operator name ("IndexScan", "HashJoin", ...)
  std::string detail;     // target table / keys, human-readable
  double est_rows = 0.0;  // planner estimate of this operator's output
  double est_cost = 0.0;  // planner estimate of this operator's own cost
  size_t out_width = 0;   // slots per emitted tuple
  OperatorStats actual;
  std::vector<PlanNodeSnapshot> children;
};

// Sums the read-side counters of a snapshot tree into *stats. Write-side
// fields are untouched (operators only ever read).
void AccumulateOperatorCounters(const PlanNodeSnapshot& node,
                                ExecStats* stats);

// Resolves columns over the join prefix tables[0..level]: rows come from a
// partially-built outer tuple plus an optional candidate row for the table
// being placed (null while binding index key prefixes). Resolution walks
// newest table first — the same order the monolithic executor used — so
// unqualified names shadow identically.
class PrefixResolver : public ColumnResolver {
 public:
  PrefixResolver(const Catalog& catalog, const std::vector<TablePlan>& tables,
                 size_t level)
      : catalog_(catalog), tables_(tables), level_(level) {}

  // `outer` supplies rows for tables [0, outer->slots.size()); `top` (may
  // be null) stands in for tables_[level]. When `outer` already carries a
  // row for every level (a complete tuple), `top` is ignored.
  void Bind(const ExecTuple* outer, const Row* top) {
    outer_ = outer;
    top_ = top;
  }
  void set_top(const Row* top) { top_ = top; }

  bool Resolve(const ColumnRef& col, Value* out) const override;

 private:
  const Row* RowAt(size_t i) const {
    if (outer_ != nullptr && i < outer_->slots.size()) {
      return &outer_->slots[i];
    }
    return i == level_ ? top_ : nullptr;
  }

  const Catalog& catalog_;
  const std::vector<TablePlan>& tables_;
  size_t level_;
  const ExecTuple* outer_ = nullptr;
  const Row* top_ = nullptr;
};

// Evaluates the level's non-join (literal) conditions / join-equality
// conditions over the resolver. Each predicate evaluation bumps
// *comparisons.
bool LocalConditionsOk(const TablePlan& tp, const ColumnResolver& resolver,
                       int64_t* comparisons);
bool JoinConditionsOk(const TablePlan& tp, const ColumnResolver& resolver,
                      int64_t* comparisons);

// A Volcano-style physical operator: Open() prepares per-execution state,
// Next() produces the next tuple (false = exhausted), Close() tears down.
// Heavy work (materialization, hash build) happens lazily on first Next()
// so untouched subtrees cost nothing — matching the previous executor.
//
// The lifecycle entry points are non-virtual template methods so every
// operator gets a trace span for free: Open() starts a span (children
// opened inside DoOpen() nest under it), Close() stamps its duration and
// the rows_out attribute — one span per operator covering its whole
// Open..Close lifetime, with no per-Next clock reads on the tuple path.
// Implementations override DoOpen/DoNext/DoClose.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  void Open() {
    span_.Begin(name());
    DoOpen();
    span_.Leave();
  }
  bool Next(ExecTuple* out) { return DoNext(out); }
  void Close() {
    DoClose();
    span_.End("rows_out", stats_.rows_out);
  }

  virtual const char* name() const = 0;
  // Human-readable target ("on orders via idx_orders_customer_id").
  virtual std::string detail() const = 0;
  // Slots per emitted tuple (1 for scans and row-shaped operators).
  virtual size_t out_width() const = 0;
  virtual size_t num_children() const { return 0; }
  virtual const PhysicalOperator* child(size_t) const { return nullptr; }

  // Per-access-path (estimated, observed) pairs; scan operators override.
  virtual void AppendFeedback(const CostParams&,
                              std::vector<AccessPathFeedback>*) const {}

  const OperatorStats& stats() const { return stats_; }
  double est_rows() const { return est_rows_; }
  double est_cost() const { return est_cost_; }
  void set_estimates(double rows, double cost) {
    est_rows_ = rows;
    est_cost_ = cost;
  }

  // Deep, pointer-free copy of the tree with its counters.
  PlanNodeSnapshot Snapshot() const;

 protected:
  virtual void DoOpen() = 0;
  virtual bool DoNext(ExecTuple* out) = 0;
  virtual void DoClose() = 0;

  OperatorStats stats_;
  double est_rows_ = 0.0;
  double est_cost_ = 0.0;

 private:
  obs::OperatorSpan span_;
};

// Collects AppendFeedback over the whole tree (pre-order).
void CollectAccessPathFeedback(const PhysicalOperator& root,
                               const CostParams& params,
                               std::vector<AccessPathFeedback>* out);

}  // namespace autoindex
