#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/operators/scan_ops.h"

namespace autoindex {

// Shared shape of the three left-deep join operators: child 0 is the outer
// pipeline (tuples of `level` slots), child 1 the inner access operator
// for tables_[level]. Emitted tuples extend the outer tuple by one slot.
class JoinOpBase : public PhysicalOperator {
 public:
  JoinOpBase(ExecContext* ctx, const std::vector<TablePlan>& tables,
             size_t level, std::unique_ptr<PhysicalOperator> outer)
      : ctx_(ctx),
        tables_(tables),
        level_(level),
        outer_(std::move(outer)),
        resolver_(*ctx->catalog, tables, level) {}

  size_t out_width() const override { return level_ + 1; }
  size_t num_children() const override { return 2; }
  std::string detail() const override {
    return "to " + tables_[level_].ref.alias;
  }

 protected:
  void Extend(const ExecTuple& inner_row, ExecTuple* out) {
    *out = outer_tuple_;
    out->slots.push_back(inner_row.slots[0]);
    out->rids.push_back(inner_row.rids[0]);
    ++stats_.rows_out;
  }

  ExecContext* ctx_;
  const std::vector<TablePlan>& tables_;
  size_t level_;
  std::unique_ptr<PhysicalOperator> outer_;
  PrefixResolver resolver_;
  ExecTuple outer_tuple_;
  bool inner_active_ = false;
};

// Index nested-loop join: re-probes the inner IndexScan per outer tuple
// (runtime-bound key prefix). The inner scan already applies the level's
// local and join conditions against the bound outer tuple.
class IndexNestedLoopJoinOp : public JoinOpBase {
 public:
  IndexNestedLoopJoinOp(ExecContext* ctx,
                        const std::vector<TablePlan>& tables, size_t level,
                        std::unique_ptr<PhysicalOperator> outer,
                        std::unique_ptr<IndexScanOp> inner)
      : JoinOpBase(ctx, tables, level, std::move(outer)),
        inner_(std::move(inner)) {}

  void DoOpen() override { outer_->Open(); }
  bool DoNext(ExecTuple* out) override;
  void DoClose() override {
    outer_->Close();
    inner_->Close();
  }

  const char* name() const override { return "IndexNestedLoopJoin"; }
  const PhysicalOperator* child(size_t i) const override {
    return i == 0 ? outer_.get() : static_cast<PhysicalOperator*>(inner_.get());
  }

 private:
  std::unique_ptr<IndexScanOp> inner_;
};

// Hash join: lazily builds a hash table over the filtered inner table (the
// build side is a SeqScan so scan accounting lives there), then probes it
// with join-key values resolved from each outer tuple. Matches are
// re-checked exactly (hash collisions) via the join conditions.
class HashJoinOp : public JoinOpBase {
 public:
  HashJoinOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
             size_t level, std::unique_ptr<PhysicalOperator> outer,
             std::unique_ptr<SeqScanOp> build,
             std::vector<std::string> join_cols,
             std::vector<ColumnRef> join_sources);

  void DoOpen() override { outer_->Open(); }
  bool DoNext(ExecTuple* out) override;
  void DoClose() override {
    outer_->Close();
    build_->Close();
  }

  const char* name() const override { return "HashJoin"; }
  std::string detail() const override;
  const PhysicalOperator* child(size_t i) const override {
    return i == 0 ? outer_.get() : static_cast<PhysicalOperator*>(build_.get());
  }

 private:
  void BuildHashTable();

  std::unique_ptr<SeqScanOp> build_;
  std::vector<std::string> join_cols_;
  std::vector<ColumnRef> join_sources_;
  std::vector<int> key_ords_;
  const HeapTable* table_;
  std::unordered_map<size_t, std::vector<RowId>> hash_;
  bool built_ = false;
  const std::vector<RowId>* matches_ = nullptr;
  size_t match_cursor_ = 0;
};

// Cartesian nested-loop join (no equality key): replays the materialized
// filtered inner SeqScan per outer tuple.
class NestedLoopJoinOp : public JoinOpBase {
 public:
  NestedLoopJoinOp(ExecContext* ctx, const std::vector<TablePlan>& tables,
                   size_t level, std::unique_ptr<PhysicalOperator> outer,
                   std::unique_ptr<SeqScanOp> inner)
      : JoinOpBase(ctx, tables, level, std::move(outer)),
        inner_(std::move(inner)) {}

  void DoOpen() override { outer_->Open(); }
  bool DoNext(ExecTuple* out) override;
  void DoClose() override {
    outer_->Close();
    inner_->Close();
  }

  const char* name() const override { return "NestedLoopJoin"; }
  std::string detail() const override {
    return JoinOpBase::detail() + " (cartesian)";
  }
  const PhysicalOperator* child(size_t i) const override {
    return i == 0 ? outer_.get() : static_cast<PhysicalOperator*>(inner_.get());
  }

 private:
  std::unique_ptr<SeqScanOp> inner_;
};

}  // namespace autoindex
