#pragma once

#include <vector>

#include "engine/cost_model.h"
#include "engine/planner.h"
#include "index/index_manager.h"
#include "sql/statement.h"
#include "stats/stats_manager.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace autoindex {

// The outcome of executing one statement: result rows (SELECT only) plus
// the raw execution counters the cost model prices.
struct ExecResult {
  std::vector<Row> rows;
  ExecStats stats;
  // The plan's chosen indexes (display names), for diagnostics.
  std::vector<std::string> indexes_used;
};

// Executes statements against real tables and indexes, with deterministic
// page/tuple accounting. Left-deep join execution: index nested-loop when
// the planner picked an index on the inner table, hash join otherwise.
class Executor {
 public:
  Executor(Catalog* catalog, IndexManager* indexes, StatsManager* stats,
           const CostParams& params)
      : catalog_(catalog),
        indexes_(indexes),
        stats_(stats),
        planner_(catalog, stats, params),
        params_(params) {}

  StatusOr<ExecResult> Execute(const Statement& stmt);

  const Planner& planner() const { return planner_; }

 private:
  StatusOr<ExecResult> ExecuteSelect(const SelectStatement& stmt);
  StatusOr<ExecResult> ExecuteInsert(const InsertStatement& stmt);
  StatusOr<ExecResult> ExecuteUpdate(const UpdateStatement& stmt);
  StatusOr<ExecResult> ExecuteDelete(const DeleteStatement& stmt);

  // Finds the RowIds matched by a write statement's WHERE using the chosen
  // access path; accounts read-side costs into *stats.
  StatusOr<std::vector<RowId>> LookupRows(const std::string& table,
                                          const Expr* where,
                                          ExecStats* stats,
                                          std::vector<std::string>* used);

  // Current built-index stats for a table (the real execution config).
  std::vector<IndexStatsView> BuiltConfig(const std::string& table) const;

  Catalog* catalog_;
  IndexManager* indexes_;
  StatsManager* stats_;
  Planner planner_;
  CostParams params_;
};

}  // namespace autoindex
