#include "engine/executor.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace autoindex {
namespace {

// Resolves columns over a partially-joined tuple: one row per placed table,
// addressed by alias first, then by probing schemas for unqualified names.
class TupleResolver : public ColumnResolver {
 public:
  TupleResolver(const Catalog& catalog) : catalog_(catalog) {}

  void Push(const TableRef& ref, const Row* row) {
    refs_.push_back(&ref);
    rows_.push_back(row);
  }
  void Pop() {
    refs_.pop_back();
    rows_.pop_back();
  }
  void SetTop(const Row* row) { rows_.back() = row; }
  size_t depth() const { return refs_.size(); }

  bool Resolve(const ColumnRef& col, Value* out) const override {
    for (size_t i = refs_.size(); i > 0; --i) {
      const TableRef& ref = *refs_[i - 1];
      if (!col.table.empty() && col.table != ref.alias &&
          col.table != ref.table) {
        continue;
      }
      const HeapTable* t = catalog_.GetTable(ref.table);
      if (t == nullptr) continue;
      const int ord = t->schema().FindColumn(col.column);
      if (ord < 0) continue;
      if (rows_[i - 1] == nullptr) return false;
      *out = (*rows_[i - 1])[static_cast<size_t>(ord)];
      return true;
    }
    return false;
  }

 private:
  const Catalog& catalog_;
  std::vector<const TableRef*> refs_;
  std::vector<const Row*> rows_;
};

// Aggregate accumulator for one group.
struct AggState {
  size_t count = 0;
  std::vector<double> sums;
  std::vector<Value> mins;
  std::vector<Value> maxs;
  std::vector<size_t> non_null;  // per aggregate item
  Row group_key;
};

struct GroupKeyHash {
  size_t operator()(const Row& r) const { return HashRow(r); }
};
struct GroupKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) == 0;
  }
};

}  // namespace

std::vector<IndexStatsView> Executor::BuiltConfig(
    const std::string& table) const {
  std::vector<IndexStatsView> out;
  for (const BuiltIndex* index : indexes_->IndexesOnTable(table)) {
    IndexStatsView view;
    view.def = index->def();
    view.num_entries = index->num_entries();
    view.height = index->height();
    view.size_bytes = index->SizeBytes();
    view.partitions = index->num_trees();
    out.push_back(std::move(view));
  }
  return out;
}

namespace {

// For a local index: the bound value of the table's partition column, when
// an equality condition pins it (literal, or join-resolved from the outer
// tuple). Returns false when unbound (the scan must probe every shard).
bool ResolvePartitionValue(const BuiltIndex& index, const HeapTable& table,
                           const std::vector<ColumnCondition>& conditions,
                           const ColumnResolver& resolver, Value* out) {
  if (!index.is_local() || !table.partitioned()) return false;
  const std::string& pcol =
      table.schema().column(static_cast<size_t>(table.partition_column()))
          .name;
  for (const ColumnCondition& c : conditions) {
    if (c.column != pcol || c.kind != ColumnCondition::kEq) continue;
    if (c.join_source.has_value()) {
      if (resolver.Resolve(*c.join_source, out)) return true;
      continue;
    }
    *out = c.literal;
    return true;
  }
  return false;
}

}  // namespace

StatusOr<ExecResult> Executor::Execute(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select);
    case StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update);
    case StatementKind::kDelete:
      return ExecuteDelete(*stmt.del);
  }
  return Status::Internal("unknown statement kind");
}

StatusOr<ExecResult> Executor::ExecuteSelect(const SelectStatement& stmt) {
  // Plan against the real (built) indexes of every referenced table.
  std::vector<IndexStatsView> config;
  for (const TableRef& ref : stmt.from) {
    std::vector<IndexStatsView> per = BuiltConfig(ref.table);
    config.insert(config.end(), per.begin(), per.end());
  }
  StatusOr<SelectPlan> plan_or = planner_.PlanSelect(stmt, config);
  if (!plan_or.ok()) return plan_or.status();
  const SelectPlan& plan = *plan_or;

  ExecResult result;
  TupleResolver resolver(*catalog_);

  // Per-level cached structures.
  struct LevelState {
    HeapTable* table = nullptr;
    BuiltIndex* index = nullptr;  // when access.use_index
    // Hash-join build side: join-key -> rows (only for seq+join levels).
    std::unordered_map<size_t, std::vector<RowId>> hash;
    std::vector<std::string> hash_cols;  // this table's join columns
    std::vector<ColumnRef> hash_sources; // outer columns, parallel
    bool hash_built = false;
    // Materialized filtered rows for cartesian levels.
    std::vector<RowId> materialized;
    bool materialized_done = false;
  };
  std::vector<LevelState> levels(plan.tables.size());
  for (size_t i = 0; i < plan.tables.size(); ++i) {
    levels[i].table = catalog_->GetTable(plan.tables[i].ref.table);
    if (plan.tables[i].access.use_index) {
      for (BuiltIndex* bi :
           indexes_->IndexesOnTable(plan.tables[i].ref.table)) {
        if (bi->def() == plan.tables[i].access.index) {
          levels[i].index = bi;
          break;
        }
      }
      if (levels[i].index != nullptr) {
        levels[i].index->RecordUse();
        result.indexes_used.push_back(levels[i].index->def().DisplayName());
        result.stats.used_index = true;
      }
    }
  }

  // Joined tuples that survive all levels land here (one Row per table).
  std::vector<std::vector<Row>> joined;

  // Heap pages fetched via index probes, deduplicated query-wide: repeated
  // probes hitting the same (hot or clustered) pages cost one read — the
  // buffer-cache behaviour the cost model's correlation blend mirrors.
  std::unordered_set<size_t> probed_heap_pages;

  // Recursive descent across join levels.
  std::vector<Row> current(plan.tables.size());
  std::function<void(size_t)> descend = [&](size_t level) {
    if (level == plan.tables.size()) {
      // Final filter with the complete WHERE (covers ORs and cross-table
      // predicates the per-level pruning could not evaluate).
      if (stmt.where != nullptr &&
          !EvaluatePredicate(*stmt.where, resolver)) {
        return;
      }
      joined.push_back(current);
      return;
    }
    const TablePlan& tp = plan.tables[level];
    LevelState& ls = levels[level];
    HeapTable* table = ls.table;

    // Local literal predicate check for pruning (subset of full WHERE).
    auto local_ok = [&](const Row& row) {
      resolver.SetTop(&row);
      for (const ColumnCondition& c : tp.conditions) {
        if (c.atom == nullptr || c.join_source.has_value()) continue;
        if (!EvaluatePredicate(*c.atom, resolver)) return false;
      }
      return true;
    };
    // Join-equality check over bound outer values.
    auto join_ok = [&](const Row& row) {
      resolver.SetTop(&row);
      for (const ColumnCondition& c : tp.conditions) {
        if (!c.join_source.has_value() || c.atom == nullptr) continue;
        if (!EvaluatePredicate(*c.atom, resolver)) return false;
      }
      return true;
    };

    resolver.Push(tp.ref, nullptr);

    if (ls.index != nullptr) {
      // Index scan: build the runtime key prefix. Equality columns may be
      // literals or join references resolved from the outer tuple.
      Row lo, hi;
      bool ok = true;
      bool lo_inc = true, hi_inc = true;
      for (size_t k = 0; k < tp.access.eq_prefix_len && ok; ++k) {
        const std::string& icol = tp.access.index.columns[k];
        bool bound = false;
        for (const ColumnCondition& c : tp.conditions) {
          if (c.column != icol || c.kind != ColumnCondition::kEq) continue;
          Value v;
          if (c.join_source.has_value()) {
            if (!resolver.Resolve(*c.join_source, &v)) continue;
          } else {
            v = c.literal;
          }
          lo.push_back(v);
          hi.push_back(v);
          bound = true;
          break;
        }
        if (!bound) ok = false;
      }
      if (ok && tp.access.has_range &&
          tp.access.eq_prefix_len < tp.access.index.columns.size()) {
        const std::string& rcol =
            tp.access.index.columns[tp.access.eq_prefix_len];
        for (const ColumnCondition& c : tp.conditions) {
          if (c.column != rcol) continue;
          if (c.kind == ColumnCondition::kRangeLo) {
            if (lo.size() == tp.access.eq_prefix_len) {
              lo.push_back(c.literal);
              lo_inc = c.inclusive;
            }
          } else if (c.kind == ColumnCondition::kRangeHi) {
            if (hi.size() == tp.access.eq_prefix_len) {
              hi.push_back(c.literal);
              hi_inc = c.inclusive;
            }
          }
        }
      }
      if (ok) {
        size_t index_pages = 0;
        std::vector<RowId> rids;
        const Row* lo_ptr = lo.empty() ? nullptr : &lo;
        const Row* hi_ptr = hi.empty() ? nullptr : &hi;
        Value partition_value;
        const bool pruned = ResolvePartitionValue(
            *ls.index, *table, tp.conditions, resolver, &partition_value);
        ls.index->Scan(pruned ? &partition_value : nullptr, lo_ptr, lo_inc,
                       hi_ptr, hi_inc,
                       [&](const Row&, RowId rid) {
                         rids.push_back(rid);
                         return true;
                       },
                       &index_pages);
        result.stats.index_pages_read += index_pages;
        result.stats.index_tuples_read += rids.size();
        for (RowId rid : rids) {
          if (!table->IsLive(rid)) continue;
          probed_heap_pages.insert(table->PageOfRow(rid) ^
                                   (std::hash<std::string>()(table->name())
                                    << 1));
          const Row& row = table->Get(rid);
          ++result.stats.tuples_examined;
          if (!local_ok(row) || !join_ok(row)) continue;
          current[level] = row;
          resolver.SetTop(&current[level]);
          descend(level + 1);
        }
        resolver.Pop();
        return;
      }
      // Fall through to a scan when the runtime prefix could not be bound.
    }

    // Does this level join to the outer tuple by equality?
    std::vector<std::string> join_cols;
    std::vector<ColumnRef> join_sources;
    for (const ColumnCondition& c : tp.conditions) {
      if (c.join_source.has_value() && c.kind == ColumnCondition::kEq) {
        join_cols.push_back(c.column);
        join_sources.push_back(*c.join_source);
      }
    }

    if (!join_cols.empty() && level > 0) {
      // Hash join: build once over the filtered table, probe per tuple.
      if (!ls.hash_built) {
        ls.hash_cols = join_cols;
        ls.hash_sources = join_sources;
        std::vector<int> ords;
        for (const std::string& c : join_cols) {
          ords.push_back(table->schema().FindColumn(c));
        }
        table->Scan([&](RowId rid, const Row& row) {
          ++result.stats.tuples_examined;
          if (!local_ok(row)) return;
          Row key;
          for (int ord : ords) {
            key.push_back(ord >= 0 ? row[static_cast<size_t>(ord)]
                                   : Value::Null());
          }
          ls.hash[HashRow(key)].push_back(rid);
        });
        result.stats.heap_pages_read += table->NumPages();
        ls.hash_built = true;
      }
      // Probe with the outer values.
      Row probe;
      bool bound = true;
      for (const ColumnRef& src : ls.hash_sources) {
        Value v;
        if (!resolver.Resolve(src, &v)) {
          bound = false;
          break;
        }
        probe.push_back(v);
      }
      if (bound) {
        auto it = ls.hash.find(HashRow(probe));
        if (it != ls.hash.end()) {
          for (RowId rid : it->second) {
            if (!table->IsLive(rid)) continue;
            const Row& row = table->Get(rid);
            current[level] = row;
            resolver.SetTop(&current[level]);
            if (!join_ok(row)) continue;  // hash collision / exact check
            descend(level + 1);
          }
        }
      }
      resolver.Pop();
      return;
    }

    // Sequential scan (first level, or cartesian level). Materialize the
    // filtered rows once so repeated outer tuples do not rescan.
    if (!ls.materialized_done) {
      table->Scan([&](RowId rid, const Row& row) {
        ++result.stats.tuples_examined;
        if (local_ok(row)) ls.materialized.push_back(rid);
      });
      result.stats.heap_pages_read += table->NumPages();
      ls.materialized_done = true;
    }
    for (RowId rid : ls.materialized) {
      if (!table->IsLive(rid)) continue;
      const Row& row = table->Get(rid);
      current[level] = row;
      resolver.SetTop(&current[level]);
      if (!join_ok(row)) continue;
      descend(level + 1);
    }
    resolver.Pop();
  };
  descend(0);
  result.stats.heap_pages_read += probed_heap_pages.size();

  // --- Projection / aggregation ---
  const bool has_agg = std::any_of(
      stmt.items.begin(), stmt.items.end(),
      [](const SelectItem& it) { return it.agg != AggFunc::kNone; });

  // Rebuild a resolver over a complete joined tuple.
  auto make_resolver = [&](const std::vector<Row>& tuple,
                           TupleResolver* r) {
    for (size_t i = 0; i < plan.tables.size(); ++i) {
      r->Push(plan.tables[i].ref, &tuple[i]);
    }
  };

  auto project_col = [&](const std::vector<Row>& tuple,
                         const ColumnRef& col) -> Value {
    TupleResolver r(*catalog_);
    make_resolver(tuple, &r);
    Value v;
    if (r.Resolve(col, &v)) return v;
    return Value::Null();
  };

  if (!has_agg && stmt.group_by.empty()) {
    // Optional ORDER BY over the joined tuples.
    if (!stmt.order_by.empty()) {
      std::stable_sort(
          joined.begin(), joined.end(),
          [&](const std::vector<Row>& a, const std::vector<Row>& b) {
            for (const OrderByItem& o : stmt.order_by) {
              const Value va = project_col(a, o.column);
              const Value vb = project_col(b, o.column);
              const int c = va.Compare(vb);
              if (c != 0) return o.desc ? c > 0 : c < 0;
            }
            return false;
          });
      result.stats.sort_rows += joined.size();
    }
    size_t emitted = 0;
    for (const std::vector<Row>& tuple : joined) {
      if (stmt.limit >= 0 && emitted >= static_cast<size_t>(stmt.limit)) {
        break;
      }
      Row out;
      for (const SelectItem& item : stmt.items) {
        if (item.star) {
          for (size_t i = 0; i < tuple.size(); ++i) {
            for (const Value& v : tuple[i]) out.push_back(v);
          }
        } else {
          out.push_back(project_col(tuple, item.column));
        }
      }
      result.rows.push_back(std::move(out));
      ++emitted;
    }
  } else {
    // Hash aggregation on the GROUP BY key (empty key = single group).
    std::unordered_map<Row, AggState, GroupKeyHash, GroupKeyEq> groups;
    for (const std::vector<Row>& tuple : joined) {
      Row key;
      for (const ColumnRef& g : stmt.group_by) {
        key.push_back(project_col(tuple, g));
      }
      AggState& st = groups[key];
      if (st.count == 0) {
        st.group_key = key;
        st.sums.assign(stmt.items.size(), 0.0);
        st.mins.assign(stmt.items.size(), Value());
        st.maxs.assign(stmt.items.size(), Value());
        st.non_null.assign(stmt.items.size(), 0);
      }
      ++st.count;
      for (size_t k = 0; k < stmt.items.size(); ++k) {
        const SelectItem& item = stmt.items[k];
        if (item.agg == AggFunc::kNone || item.star) continue;
        const Value v = project_col(tuple, item.column);
        if (v.is_null()) continue;
        ++st.non_null[k];
        if (v.type() != ValueType::kString) {
          st.sums[k] += v.AsDouble();
        }
        if (st.mins[k].is_null() || v.Compare(st.mins[k]) < 0) {
          st.mins[k] = v;
        }
        if (st.maxs[k].is_null() || v.Compare(st.maxs[k]) > 0) {
          st.maxs[k] = v;
        }
      }
    }
    if (groups.empty() && stmt.group_by.empty()) {
      groups[Row()];  // COUNT over empty input yields one zero row
      AggState& st = groups[Row()];
      st.sums.assign(stmt.items.size(), 0.0);
      st.mins.assign(stmt.items.size(), Value());
      st.maxs.assign(stmt.items.size(), Value());
      st.non_null.assign(stmt.items.size(), 0);
    }
    result.stats.sort_rows += groups.size();
    std::vector<Row> out_rows;
    for (const auto& [key, st] : groups) {
      Row out;
      for (size_t k = 0; k < stmt.items.size(); ++k) {
        const SelectItem& item = stmt.items[k];
        switch (item.agg) {
          case AggFunc::kNone: {
            // A grouped plain column: take it from the key when possible.
            bool from_key = false;
            for (size_t g = 0; g < stmt.group_by.size(); ++g) {
              if (stmt.group_by[g].column == item.column.column) {
                out.push_back(key[g]);
                from_key = true;
                break;
              }
            }
            if (!from_key) out.push_back(Value::Null());
            break;
          }
          case AggFunc::kCount:
            out.push_back(Value(static_cast<int64_t>(
                item.star ? st.count : st.non_null[k])));
            break;
          case AggFunc::kSum:
            out.push_back(st.non_null[k] == 0 ? Value::Null()
                                              : Value(st.sums[k]));
            break;
          case AggFunc::kAvg:
            out.push_back(st.non_null[k] == 0
                              ? Value::Null()
                              : Value(st.sums[k] / st.non_null[k]));
            break;
          case AggFunc::kMin:
            out.push_back(st.mins[k]);
            break;
          case AggFunc::kMax:
            out.push_back(st.maxs[k]);
            break;
        }
      }
      out_rows.push_back(std::move(out));
    }
    // ORDER BY on grouped output: match order columns to select items.
    if (!stmt.order_by.empty()) {
      std::vector<int> order_slots;
      std::vector<bool> order_desc;
      for (const OrderByItem& o : stmt.order_by) {
        for (size_t k = 0; k < stmt.items.size(); ++k) {
          if (!stmt.items[k].star &&
              stmt.items[k].column.column == o.column.column) {
            order_slots.push_back(static_cast<int>(k));
            order_desc.push_back(o.desc);
            break;
          }
        }
      }
      std::stable_sort(out_rows.begin(), out_rows.end(),
                       [&](const Row& a, const Row& b) {
                         for (size_t j = 0; j < order_slots.size(); ++j) {
                           const int k = order_slots[j];
                           const int c = a[k].Compare(b[k]);
                           if (c != 0) return order_desc[j] ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    if (stmt.limit >= 0 &&
        out_rows.size() > static_cast<size_t>(stmt.limit)) {
      out_rows.resize(static_cast<size_t>(stmt.limit));
    }
    result.rows = std::move(out_rows);
  }

  result.stats.rows_returned = result.rows.size();
  return result;
}

StatusOr<std::vector<RowId>> Executor::LookupRows(
    const std::string& table, const Expr* where, ExecStats* stats,
    std::vector<std::string>* used) {
  HeapTable* t = catalog_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  StatusOr<TablePlan> tp_or =
      planner_.PlanWriteLookup(table, where, BuiltConfig(table));
  if (!tp_or.ok()) return tp_or.status();
  const TablePlan& tp = *tp_or;

  std::vector<RowId> out;
  TupleResolver resolver(*catalog_);
  resolver.Push(tp.ref, nullptr);
  auto matches = [&](const Row& row) {
    resolver.SetTop(&row);
    return where == nullptr || EvaluatePredicate(*where, resolver);
  };

  BuiltIndex* index = nullptr;
  if (tp.access.use_index) {
    for (BuiltIndex* bi : indexes_->IndexesOnTable(table)) {
      if (bi->def() == tp.access.index) {
        index = bi;
        break;
      }
    }
  }
  if (index != nullptr && tp.access.eq_prefix_len > 0) {
    index->RecordUse();
    if (used != nullptr) used->push_back(index->def().DisplayName());
    stats->used_index = true;
    Row lo, hi;
    bool lo_inc = true, hi_inc = true;
    bool ok = true;
    for (size_t k = 0; k < tp.access.eq_prefix_len && ok; ++k) {
      const std::string& icol = tp.access.index.columns[k];
      bool bound = false;
      for (const ColumnCondition& c : tp.conditions) {
        if (c.column == icol && c.kind == ColumnCondition::kEq &&
            !c.join_source.has_value()) {
          lo.push_back(c.literal);
          hi.push_back(c.literal);
          bound = true;
          break;
        }
      }
      if (!bound) ok = false;
    }
    if (ok && tp.access.has_range &&
        tp.access.eq_prefix_len < tp.access.index.columns.size()) {
      const std::string& rcol =
          tp.access.index.columns[tp.access.eq_prefix_len];
      for (const ColumnCondition& c : tp.conditions) {
        if (c.column != rcol) continue;
        if (c.kind == ColumnCondition::kRangeLo &&
            lo.size() == tp.access.eq_prefix_len) {
          lo.push_back(c.literal);
          lo_inc = c.inclusive;
        } else if (c.kind == ColumnCondition::kRangeHi &&
                   hi.size() == tp.access.eq_prefix_len) {
          hi.push_back(c.literal);
          hi_inc = c.inclusive;
        }
      }
    }
    if (ok) {
      size_t index_pages = 0;
      std::unordered_set<size_t> heap_pages;
      std::vector<RowId> rids;
      Value partition_value;
      // No outer tuple in a write lookup: resolver-free pruning on
      // literal conditions only.
      bool pruned = false;
      if (index->is_local() && t->partitioned()) {
        const std::string& pcol =
            t->schema()
                .column(static_cast<size_t>(t->partition_column()))
                .name;
        for (const ColumnCondition& c : tp.conditions) {
          if (c.column == pcol && c.kind == ColumnCondition::kEq &&
              !c.join_source.has_value()) {
            partition_value = c.literal;
            pruned = true;
            break;
          }
        }
      }
      index->Scan(pruned ? &partition_value : nullptr, &lo, lo_inc, &hi,
                  hi_inc,
                  [&](const Row&, RowId rid) {
                    rids.push_back(rid);
                    return true;
                  },
                  &index_pages);
      stats->index_pages_read += index_pages;
      stats->index_tuples_read += rids.size();
      for (RowId rid : rids) {
        if (!t->IsLive(rid)) continue;
        heap_pages.insert(t->PageOfRow(rid));
        ++stats->tuples_examined;
        if (matches(t->Get(rid))) out.push_back(rid);
      }
      stats->heap_pages_read += heap_pages.size();
      return out;
    }
  }
  // Sequential scan fallback.
  t->Scan([&](RowId rid, const Row& row) {
    ++stats->tuples_examined;
    if (matches(row)) out.push_back(rid);
  });
  stats->heap_pages_read += t->NumPages();
  return out;
}

StatusOr<ExecResult> Executor::ExecuteInsert(const InsertStatement& stmt) {
  HeapTable* t = catalog_->GetTable(stmt.table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt.table);
  ExecResult result;
  const Schema& schema = t->schema();

  // Pre-capture per-index stats for the maintenance formulas.
  struct IndexSnapshot {
    BuiltIndex* index;
    size_t splits_before;
  };
  std::vector<IndexSnapshot> snaps;
  for (BuiltIndex* bi : indexes_->IndexesOnTable(stmt.table)) {
    snaps.push_back({bi, bi->num_splits()});
  }

  size_t inserted = 0;
  for (const Row& src : stmt.rows) {
    Row row;
    if (stmt.columns.empty()) {
      row = src;
    } else {
      if (src.size() != stmt.columns.size()) {
        return Status::InvalidArgument("VALUES arity mismatch");
      }
      row.assign(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < stmt.columns.size(); ++i) {
        const int ord = schema.FindColumn(stmt.columns[i]);
        if (ord < 0) {
          return Status::NotFound("no column " + stmt.columns[i] + " in " +
                                  stmt.table);
        }
        row[static_cast<size_t>(ord)] = src[i];
      }
    }
    StatusOr<RowId> rid = t->Insert(std::move(row));
    if (!rid.ok()) return rid.status();
    // Index maintenance: inserts update indexes immediately (Sec. V).
    for (IndexSnapshot& snap : snaps) {
      snap.index->InsertEntry(t->Get(*rid), *rid);
      snap.index->RecordMaintenance();
      ++result.stats.index_entries_written;
      result.stats.maint_cpu_cost += IndexUpdateCpuCost(
          snap.index->num_entries(), snap.index->height(), 1, params_);
    }
    ++inserted;
  }
  // Heap pages dirtied (append-only): number of pages the new rows span.
  result.stats.pages_written +=
      std::max<size_t>(1, (inserted + t->RowsPerPage() - 1) /
                              std::max<size_t>(1, t->RowsPerPage()));
  // Index page writes: one leaf write per entry plus structural splits.
  for (IndexSnapshot& snap : snaps) {
    const size_t splits = snap.index->num_splits() - snap.splits_before;
    result.stats.index_pages_written += inserted + splits;
  }
  result.stats.rows_returned = inserted;
  return result;
}

StatusOr<ExecResult> Executor::ExecuteUpdate(const UpdateStatement& stmt) {
  HeapTable* t = catalog_->GetTable(stmt.table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt.table);
  ExecResult result;
  StatusOr<std::vector<RowId>> rids = LookupRows(
      stmt.table, stmt.where.get(), &result.stats, &result.indexes_used);
  if (!rids.ok()) return rids.status();

  const Schema& schema = t->schema();
  std::vector<std::pair<int, Value>> sets;
  for (const auto& [col, val] : stmt.assignments) {
    const int ord = schema.FindColumn(col);
    if (ord < 0) {
      return Status::NotFound("no column " + col + " in " + stmt.table);
    }
    sets.emplace_back(ord, val);
  }

  for (RowId rid : *rids) {
    const Row old_row = t->Get(rid);
    Row new_row = old_row;
    for (const auto& [ord, val] : sets) {
      new_row[static_cast<size_t>(ord)] = val;
    }
    Status s = t->Update(rid, new_row);
    if (!s.ok()) return s;
    // Updates refresh affected indexes immediately (Sec. V): only indexes
    // whose key (or, for local indexes, shard) actually changed pay the
    // maintenance cost.
    for (BuiltIndex* bi : indexes_->IndexesOnTable(stmt.table)) {
      const Row old_key = bi->KeyFromRow(old_row);
      const Row new_key = bi->KeyFromRow(new_row);
      const bool shard_moved =
          bi->is_local() &&
          t->PartitionOfRow(old_row) != t->PartitionOfRow(new_row);
      if (CompareRows(old_key, new_key) == 0 && !shard_moved) continue;
      const size_t splits_before = bi->num_splits();
      bi->DeleteEntry(old_row, rid);
      bi->InsertEntry(new_row, rid);
      bi->RecordMaintenance();
      ++result.stats.index_entries_written;
      result.stats.index_pages_written +=
          2 + (bi->num_splits() - splits_before);
      result.stats.maint_cpu_cost += IndexUpdateCpuCost(
          bi->num_entries(), bi->height(), 1, params_);
    }
  }
  result.stats.pages_written += std::min<size_t>(
      rids->size(), std::max<size_t>(1, t->NumPages()));
  if (rids->empty()) result.stats.pages_written = 0;
  result.stats.rows_returned = rids->size();
  return result;
}

StatusOr<ExecResult> Executor::ExecuteDelete(const DeleteStatement& stmt) {
  HeapTable* t = catalog_->GetTable(stmt.table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt.table);
  ExecResult result;
  StatusOr<std::vector<RowId>> rids = LookupRows(
      stmt.table, stmt.where.get(), &result.stats, &result.indexes_used);
  if (!rids.ok()) return rids.status();

  for (RowId rid : *rids) {
    const Row old_row = t->Get(rid);
    Status s = t->Delete(rid);
    if (!s.ok()) return s;
    // Deletes defer index maintenance (Sec. V: "deletes update the index
    // after finishing the query, whose index update cost is 0"). We still
    // remove the entries to keep indexes consistent, but charge no
    // maintenance CPU/IO to the query.
    for (BuiltIndex* bi : indexes_->IndexesOnTable(stmt.table)) {
      bi->DeleteEntry(old_row, rid);
    }
  }
  result.stats.pages_written +=
      rids->empty() ? 0
                    : std::min<size_t>(rids->size(),
                                       std::max<size_t>(1, t->NumPages()));
  result.stats.rows_returned = rids->size();
  return result;
}

}  // namespace autoindex
