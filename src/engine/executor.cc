#include "engine/executor.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

// Executor observability (DESIGN.md §11): statement totals plus a
// per-operator-type breakdown walked off the plan snapshot each
// statement leaves behind.
struct ExecutorMetrics {
  util::Counter* statements;
  util::Counter* rows_returned;
  util::Counter* heap_pages_read;
  util::Counter* index_pages_read;
  util::Counter* tuples_examined;
  util::Counter* index_tuples_read;

  static const ExecutorMetrics& Get() {
    static const ExecutorMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return ExecutorMetrics{
          registry.GetCounter("executor.statements"),
          registry.GetCounter("executor.rows_returned"),
          registry.GetCounter("executor.heap_pages_read"),
          registry.GetCounter("executor.index_pages_read"),
          registry.GetCounter("executor.tuples_examined"),
          registry.GetCounter("executor.index_tuples_read")};
    }();
    return metrics;
  }
};

uint64_t NonNegative(int64_t v) {
  return v > 0 ? static_cast<uint64_t>(v) : 0;
}

// Per-operator-type series: executor.op.<name>.{invocations,rows_out,
// pages_read}. Operator names are a small closed set, so the registry
// lookups hit existing entries after the first statement of each shape.
void RecordOperatorMetrics(const PlanNodeSnapshot& node) {
  auto& registry = util::MetricsRegistry::Default();
  const std::string base = StrCat("executor.op.", ToLower(node.op), ".");
  registry.GetCounter(base + "invocations")->Add();
  registry.GetCounter(base + "rows_out")->Add(NonNegative(node.actual.rows_out));
  registry.GetCounter(base + "pages_read")
      ->Add(NonNegative(node.actual.heap_pages_read) +
            NonNegative(node.actual.index_pages_read));
  for (const PlanNodeSnapshot& child : node.children) {
    RecordOperatorMetrics(child);
  }
}

}  // namespace

std::vector<IndexStatsView> Executor::BuiltConfig(
    const std::string& table) const {
  std::vector<IndexStatsView> out;
  for (const BuiltIndex* index : indexes_->IndexesOnTable(table)) {
    IndexStatsView view;
    view.def = index->def();
    view.num_entries = index->num_entries();
    view.height = index->height();
    view.size_bytes = index->SizeBytes();
    view.partitions = index->num_trees();
    out.push_back(std::move(view));
  }
  return out;
}

StatusOr<ExecResult> Executor::Execute(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select);
    case StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update);
    case StatementKind::kDelete:
      return ExecuteDelete(*stmt.del);
  }
  return Status::Internal("unknown statement kind");
}

// Retains the statement's pipeline snapshot and final stats for the plan
// validator, then forwards the collected feedback to the installed hook.
void Executor::FinishStatement(const ExecResult& result) {
  last_plan_ = result.plan;
  last_plan_stats_ = result.stats;
  if constexpr (util::kMetricsEnabled) {
    const ExecutorMetrics& metrics = ExecutorMetrics::Get();
    metrics.statements->Add();
    metrics.rows_returned->Add(result.stats.rows_returned);
    metrics.heap_pages_read->Add(result.stats.heap_pages_read);
    metrics.index_pages_read->Add(result.stats.index_pages_read);
    metrics.tuples_examined->Add(result.stats.tuples_examined);
    metrics.index_tuples_read->Add(result.stats.index_tuples_read);
    if (result.plan.has_value()) RecordOperatorMetrics(*result.plan);
  }
  if (feedback_hook_ && !result.feedback.empty()) {
    feedback_hook_(result.feedback);
  }
}

StatusOr<ExecResult> Executor::ExecuteSelect(const SelectStatement& stmt) {
  // Plan against the real (built) indexes of every referenced table.
  std::vector<IndexStatsView> config;
  for (const TableRef& ref : stmt.from) {
    std::vector<IndexStatsView> per = BuiltConfig(ref.table);
    config.insert(config.end(), per.begin(), per.end());
  }
  std::unique_ptr<PhysicalPlan> pplan;
  {
    obs::ScopedSpan plan_span("plan");
    StatusOr<SelectPlan> plan_or = planner_.PlanSelect(stmt, config);
    if (!plan_or.ok()) return plan_or.status();
    pplan = LowerSelect(stmt, std::move(*plan_or), catalog_, indexes_,
                        params_);
  }

  ExecResult result;
  result.indexes_used = pplan->indexes_used;
  result.stats.used_index = pplan->used_index;

  pplan->root->Open();
  ExecTuple t;
  while (pplan->root->Next(&t)) {
    result.rows.push_back(std::move(t.slots[0]));
  }
  pplan->root->Close();

  result.plan = pplan->root->Snapshot();
  AccumulateOperatorCounters(*result.plan, &result.stats);
  result.stats.rows_returned = result.rows.size();
  CollectAccessPathFeedback(*pplan->root, params_, &result.feedback);
  FinishStatement(result);
  return result;
}

StatusOr<std::vector<RowId>> Executor::LookupRows(const std::string& table,
                                                  const Expr* where,
                                                  ExecResult* result) {
  HeapTable* t = catalog_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  std::unique_ptr<PhysicalPlan> pplan;
  {
    obs::ScopedSpan plan_span("plan");
    StatusOr<TablePlan> tp_or =
        planner_.PlanWriteLookup(table, where, BuiltConfig(table));
    if (!tp_or.ok()) return tp_or.status();
    pplan = LowerWriteLookup(std::move(*tp_or), where, catalog_, indexes_,
                             params_);
  }
  result->indexes_used = pplan->indexes_used;
  result->stats.used_index = pplan->used_index;

  std::vector<RowId> out;
  pplan->root->Open();
  ExecTuple tup;
  while (pplan->root->Next(&tup)) {
    out.push_back(tup.rids[0]);
  }
  pplan->root->Close();

  result->plan = pplan->root->Snapshot();
  AccumulateOperatorCounters(*result->plan, &result->stats);
  CollectAccessPathFeedback(*pplan->root, params_, &result->feedback);
  return out;
}

StatusOr<ExecResult> Executor::ExecuteInsert(const InsertStatement& stmt) {
  HeapTable* t = catalog_->GetTable(stmt.table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt.table);
  ExecResult result;
  const Schema& schema = t->schema();

  // Pre-capture per-index stats for the maintenance formulas.
  struct IndexSnapshot {
    BuiltIndex* index;
    size_t splits_before;
  };
  // Write-visible = ready + in-flight builds: an online build must see
  // every mutation (buffered into its side delta) or the published index
  // would miss rows.
  std::vector<IndexSnapshot> snaps;
  for (BuiltIndex* bi : indexes_->WriteVisibleOnTable(stmt.table)) {
    snaps.push_back({bi, bi->num_splits()});
  }

  size_t inserted = 0;
  for (const Row& src : stmt.rows) {
    Row row;
    if (stmt.columns.empty()) {
      row = src;
    } else {
      if (src.size() != stmt.columns.size()) {
        return Status::InvalidArgument("VALUES arity mismatch");
      }
      row.assign(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < stmt.columns.size(); ++i) {
        const int ord = schema.FindColumn(stmt.columns[i]);
        if (ord < 0) {
          return Status::NotFound("no column " + stmt.columns[i] + " in " +
                                  stmt.table);
        }
        row[static_cast<size_t>(ord)] = src[i];
      }
    }
    StatusOr<RowId> rid = t->Insert(std::move(row));
    if (!rid.ok()) return rid.status();
    // Index maintenance: inserts update indexes immediately (Sec. V).
    for (IndexSnapshot& snap : snaps) {
      snap.index->InsertEntry(t->Get(*rid), *rid);
      snap.index->RecordMaintenance();
      ++result.stats.index_entries_written;
      result.stats.maint_cpu_cost += IndexUpdateCpuCost(
          snap.index->num_entries(), snap.index->height(), 1, params_);
    }
    ++inserted;
  }
  // Heap pages dirtied (append-only): number of pages the new rows span.
  result.stats.pages_written +=
      std::max<size_t>(1, (inserted + t->RowsPerPage() - 1) /
                              std::max<size_t>(1, t->RowsPerPage()));
  // Index page writes: one leaf write per entry plus structural splits.
  for (IndexSnapshot& snap : snaps) {
    const size_t splits = snap.index->num_splits() - snap.splits_before;
    result.stats.index_pages_written += inserted + splits;
  }
  result.stats.rows_returned = inserted;
  // No read pipeline ran; clear the retained snapshot so the validator
  // does not check a stale plan against this statement's stats.
  last_plan_.reset();
  last_plan_stats_ = result.stats;
  return result;
}

StatusOr<ExecResult> Executor::ExecuteUpdate(const UpdateStatement& stmt) {
  HeapTable* t = catalog_->GetTable(stmt.table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt.table);
  ExecResult result;
  StatusOr<std::vector<RowId>> rids =
      LookupRows(stmt.table, stmt.where.get(), &result);
  if (!rids.ok()) return rids.status();

  const Schema& schema = t->schema();
  std::vector<std::pair<int, Value>> sets;
  for (const auto& [col, val] : stmt.assignments) {
    const int ord = schema.FindColumn(col);
    if (ord < 0) {
      return Status::NotFound("no column " + col + " in " + stmt.table);
    }
    sets.emplace_back(ord, val);
  }

  for (RowId rid : *rids) {
    const Row old_row = t->Get(rid);
    Row new_row = old_row;
    for (const auto& [ord, val] : sets) {
      new_row[static_cast<size_t>(ord)] = val;
    }
    Status s = t->Update(rid, new_row);
    if (!s.ok()) return s;
    // Updates refresh affected indexes immediately (Sec. V): only indexes
    // whose key (or, for local indexes, shard) actually changed pay the
    // maintenance cost. Write-visible so in-flight builds see the change.
    for (BuiltIndex* bi : indexes_->WriteVisibleOnTable(stmt.table)) {
      const Row old_key = bi->KeyFromRow(old_row);
      const Row new_key = bi->KeyFromRow(new_row);
      const bool shard_moved =
          bi->is_local() &&
          t->PartitionOfRow(old_row) != t->PartitionOfRow(new_row);
      if (CompareRows(old_key, new_key) == 0 && !shard_moved) continue;
      const size_t splits_before = bi->num_splits();
      bi->DeleteEntry(old_row, rid);
      bi->InsertEntry(new_row, rid);
      bi->RecordMaintenance();
      ++result.stats.index_entries_written;
      result.stats.index_pages_written +=
          2 + (bi->num_splits() - splits_before);
      result.stats.maint_cpu_cost += IndexUpdateCpuCost(
          bi->num_entries(), bi->height(), 1, params_);
    }
  }
  result.stats.pages_written += std::min<size_t>(
      rids->size(), std::max<size_t>(1, t->NumPages()));
  if (rids->empty()) result.stats.pages_written = 0;
  result.stats.rows_returned = rids->size();
  FinishStatement(result);
  return result;
}

StatusOr<ExecResult> Executor::ExecuteDelete(const DeleteStatement& stmt) {
  HeapTable* t = catalog_->GetTable(stmt.table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt.table);
  ExecResult result;
  StatusOr<std::vector<RowId>> rids =
      LookupRows(stmt.table, stmt.where.get(), &result);
  if (!rids.ok()) return rids.status();

  for (RowId rid : *rids) {
    const Row old_row = t->Get(rid);
    Status s = t->Delete(rid);
    if (!s.ok()) return s;
    // Deletes defer index maintenance (Sec. V: "deletes update the index
    // after finishing the query, whose index update cost is 0"). We still
    // remove the entries to keep indexes consistent, but charge no
    // maintenance CPU/IO to the query. Write-visible so in-flight builds
    // see the delete.
    for (BuiltIndex* bi : indexes_->WriteVisibleOnTable(stmt.table)) {
      bi->DeleteEntry(old_row, rid);
    }
  }
  result.stats.pages_written +=
      rids->empty() ? 0
                    : std::min<size_t>(rids->size(),
                                       std::max<size_t>(1, t->NumPages()));
  result.stats.rows_returned = rids->size();
  FinishStatement(result);
  return result;
}

}  // namespace autoindex
