#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/index_def.h"
#include "sql/statement.h"
#include "storage/schema.h"
#include "util/status.h"

namespace autoindex {

// The engine's view of a write-ahead log. Database calls one Append per
// committed mutation — while still holding the statement's exclusive table
// latch, with the data version the mutation was assigned — and the
// implementation (src/persist/wal.h) makes it durable. An abstract
// interface keeps the dependency arrow pointing the right way: the engine
// knows nothing about file formats, and src/persist layers on top of it.
//
// Append failures are surfaced as the mutating operation's status: the
// change is applied in memory but not durable, and the caller must treat
// the database as failed (a crash now would lose the statement).
class DurabilityLog {
 public:
  virtual ~DurabilityLog() = default;

  // A committed INSERT/UPDATE/DELETE statement.
  virtual Status AppendStatement(const Statement& stmt,
                                 uint64_t data_version) = 0;
  virtual Status AppendCreateTable(const std::string& name,
                                   const Schema& schema,
                                   uint64_t data_version) = 0;
  virtual Status AppendCreateIndex(const IndexDef& def,
                                   uint64_t data_version) = 0;
  virtual Status AppendDropIndex(const std::string& key_or_name,
                                 uint64_t data_version) = 0;
  virtual Status AppendBulkInsert(const std::string& table,
                                  const std::vector<Row>& rows,
                                  uint64_t data_version) = 0;
  // `table` empty = ANALYZE of every table.
  virtual Status AppendAnalyze(const std::string& table,
                               uint64_t data_version) = 0;

  // A checkpoint at `checkpoint_data_version` has been made durable; the
  // log may discard everything at or below it.
  virtual Status OnCheckpoint(uint64_t checkpoint_data_version) = 0;
};

}  // namespace autoindex
