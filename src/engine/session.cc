#include "engine/session.h"

#include "engine/database.h"
#include "obs/trace.h"

namespace autoindex {

Session::Session(Database* db)
    : db_(db),
      id_(db->NextSessionId()),
      executor_(db->MakeSessionExecutor()) {}

Session::~Session() = default;

StatusOr<ExecResult> Session::Execute(const std::string& sql) {
  // Statement trace root for text entry points (a no-op when the network
  // layer already opened one for the request).
  obs::ScopedTrace trace("statement");
  StatusOr<Statement> stmt = [&] {
    obs::ScopedSpan parse_span("parse");
    return ParseSql(sql);
  }();
  if (!stmt.ok()) return stmt.status();
  return Execute(*stmt);
}

StatusOr<ExecResult> Session::Execute(const Statement& stmt) {
  StatusOr<ExecResult> result = db_->ExecuteOn(executor_.get(), stmt);
  if (result.ok()) {
    cumulative_stats_ += result->stats;
    ++statements_executed_;
  }
  return result;
}

}  // namespace autoindex
