#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "engine/executor.h"
#include "sql/parser.h"
#include "util/status.h"

namespace autoindex {

class Database;

// One client connection. Each session owns a private Executor — the
// executor keeps mutable per-statement state (the retained plan snapshot,
// feedback buffers) that must not be shared between threads — and
// accumulates per-connection ExecStats across statements.
//
// Statements execute under the database's table latches (shared for
// SELECT on every referenced table, exclusive for writes on the target
// table), so any number of sessions may run against one Database
// concurrently, including while the AutoIndex manager tunes in the
// background. A Session itself is NOT thread-safe: one thread per
// session, many sessions per database.
class Session {
 public:
  explicit Session(Database* db);
  ~Session();

  // Database-unique monotone id, assigned at construction. The service
  // layer (src/net/) hands it to remote clients in the HelloOk handshake
  // so a connection can be correlated with server-side logs/metrics.
  uint64_t id() const { return id_; }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Parses and executes one SQL string under statement latches.
  StatusOr<ExecResult> Execute(const std::string& sql);
  // Executes a pre-parsed statement (avoids re-parsing in replay loops).
  StatusOr<ExecResult> Execute(const Statement& stmt);

  // Sum of ExecStats over every successful statement on this session —
  // the per-connection cost accounting the driver reports.
  const ExecStats& cumulative_stats() const { return cumulative_stats_; }
  size_t statements_executed() const { return statements_executed_; }

  // This session's private executor (retained plan snapshot etc.).
  Executor& executor() { return *executor_; }
  const Executor& executor() const { return *executor_; }

  Database& db() { return *db_; }

 private:
  Database* db_;
  uint64_t id_;
  std::unique_ptr<Executor> executor_;
  ExecStats cumulative_stats_;
  size_t statements_executed_ = 0;
};

}  // namespace autoindex
