#include "engine/database.h"

#include <algorithm>
#include <utility>

#include "engine/durability.h"
#include "engine/session.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/build_info.h"
#include "util/metrics.h"

namespace autoindex {
namespace {

// Engine-level observability (DESIGN.md §11): statement throughput and
// end-to-end latency (latch wait + execution + WAL append), plus the
// online index build's per-phase durations.
struct EngineMetrics {
  util::Counter* statements;
  util::Counter* statement_failures;
  util::LatencyHistogram* statement_us;
  util::Counter* index_builds;
  util::LatencyHistogram* build_scan_us;
  util::LatencyHistogram* build_catchup_us;
  util::LatencyHistogram* build_publish_us;
  util::LatencyHistogram* build_total_us;

  static const EngineMetrics& Get() {
    static const EngineMetrics metrics = [] {
      auto& registry = util::MetricsRegistry::Default();
      return EngineMetrics{
          registry.GetCounter("engine.statements"),
          registry.GetCounter("engine.statement_failures"),
          registry.GetHistogram("engine.statement_us"),
          registry.GetCounter("index.builds"),
          registry.GetHistogram("index.build.scan_us"),
          registry.GetHistogram("index.build.catchup_us"),
          registry.GetHistogram("index.build.publish_us"),
          registry.GetHistogram("index.build.total_us")};
    }();
    return metrics;
  }
};

// The latch set of one statement: shared on every FROM table for SELECT,
// exclusive on the target table for writes. Derived up front so the whole
// set is acquired in the LatchManager's global order.
std::vector<LatchManager::LatchRequest> StatementLatches(
    const Statement& stmt) {
  std::vector<LatchManager::LatchRequest> requests;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      for (const TableRef& ref : stmt.select->from) {
        requests.push_back({ref.table, LatchManager::LatchMode::kShared});
      }
      break;
    case StatementKind::kInsert:
      requests.push_back(
          {stmt.insert->table, LatchManager::LatchMode::kExclusive});
      break;
    case StatementKind::kUpdate:
      requests.push_back(
          {stmt.update->table, LatchManager::LatchMode::kExclusive});
      break;
    case StatementKind::kDelete:
      requests.push_back(
          {stmt.del->table, LatchManager::LatchMode::kExclusive});
      break;
  }
  return requests;
}

// Online build pacing (Database::CreateIndex). Chunk size bounds how long
// one shared-latch hold keeps writers queued; the catch-up loop shrinks
// the delta until the exclusive publish window only drains a short tail.
constexpr size_t kBuildScanChunkSlots = 4096;
constexpr size_t kBuildCatchupBatch = 1024;
constexpr size_t kBuildPublishThreshold = 256;
constexpr size_t kBuildFreeCatchupRounds = 64;

}  // namespace

Database::Database(CostParams params) : params_(params) {
  // Registers build.info and arms the uptime epoch on the first database
  // of the process.
  util::RefreshRuntimeMetrics();
  catalog_ = std::make_unique<Catalog>();
  index_manager_ = std::make_unique<IndexManager>(catalog_.get());
  stats_manager_ = std::make_unique<StatsManager>(catalog_.get());
  stats_manager_->set_latch_manager(&latches_);
  executor_ = std::make_unique<Executor>(catalog_.get(), index_manager_.get(),
                                         stats_manager_.get(), params_);
  executor_->set_feedback_hook(
      [this](const std::vector<AccessPathFeedback>& batch) {
        DeliverFeedback(batch);
      });
  what_if_ = std::make_unique<WhatIfCostModel>(catalog_.get(),
                                               stats_manager_.get(), params_);
}

Database::~Database() = default;

std::unique_ptr<Session> Database::CreateSession() {
  return std::make_unique<Session>(this);
}

std::unique_ptr<Executor> Database::MakeSessionExecutor() {
  auto executor = std::make_unique<Executor>(
      catalog_.get(), index_manager_.get(), stats_manager_.get(), params_);
  executor->set_feedback_hook(
      [this](const std::vector<AccessPathFeedback>& batch) {
        DeliverFeedback(batch);
      });
  return executor;
}

void Database::set_execution_feedback_hook(Executor::FeedbackHook hook) {
  util::MutexLock lock(feedback_mu_);
  feedback_hook_ = std::move(hook);
}

void Database::DeliverFeedback(const std::vector<AccessPathFeedback>& batch) {
  util::MutexLock lock(feedback_mu_);
  if (feedback_hook_) feedback_hook_(batch);
}

Status Database::CommitDurable(
    const std::function<Status(DurabilityLog*, uint64_t)>& append) {
  util::MutexLock lock(wal_mu_);
  const uint64_t version = BumpDataVersion();
  if (durability_log_ == nullptr) return Status::Ok();
  return append(durability_log_, version);
}

StatusOr<HeapTable*> Database::CreateTable(const std::string& name,
                                           Schema schema) {
  // The WAL record needs the schema after the catalog takes ownership.
  StatusOr<HeapTable*> table = catalog_->CreateTable(name, std::move(schema));
  if (!table.ok()) return table;
  Status logged = CommitDurable([&](DurabilityLog* log, uint64_t version) {
    return log->AppendCreateTable(name, (*table)->schema(), version);
  });
  if (!logged.ok()) return logged;
  return table;
}

Status Database::CreateIndex(const IndexDef& def) {
  const std::string key = def.Key();
  BuiltIndex* build = nullptr;
  HeapTable* table = nullptr;
  size_t snapshot_slots = 0;
  const EngineMetrics& metrics = EngineMetrics::Get();
  // Build trace: one root with a span per phase (register → scan →
  // catch-up → publish), so a writer stall can be attributed to the
  // publish window rather than the whole build.
  obs::ScopedTrace trace("index.build");
  util::ScopedTimer total_timer(metrics.build_total_us);
  util::Stopwatch phase_watch{util::Stopwatch::DeferStart{}};
  {
    // Phase 0 — registration, brief exclusive window: the slot horizon
    // and the delta routing switch on atomically. Every writer that runs
    // after this latch drops feeds the build's side delta.
    obs::ScopedSpan phase_span("build.register");
    LatchManager::Guard guard = latches_.AcquireExclusive(def.table);
    StatusOr<BuiltIndex*> begun = index_manager_->BeginBuild(def);
    if (!begun.ok()) {
      total_timer.Cancel();
      trace.Cancel();
      return begun.status();
    }
    build = *begun;
    table = catalog_->GetTable(def.table);
    snapshot_slots = table->num_slots();
  }
  FireIndexBuildHook(IndexBuildPhase::kRegistered);
  phase_watch.Restart();
  // Phase 1 — snapshot scan in chunks under *shared* latches, so writers
  // interleave between chunks. Only slots below the registration horizon
  // are scanned: RowIds are never reused, so every later insert has a
  // higher slot and reached the delta instead. Slots mutated mid-scan are
  // reconciled by the idempotent (delete-then-insert) delta apply.
  {
    obs::ScopedSpan phase_span("build.scan");
    phase_span.SetAttr("snapshot_slots",
                       static_cast<int64_t>(snapshot_slots));
    for (size_t lo = 0; lo < snapshot_slots; lo += kBuildScanChunkSlots) {
      const size_t hi = std::min(snapshot_slots, lo + kBuildScanChunkSlots);
      LatchManager::Guard guard = latches_.AcquireShared({def.table});
      for (RowId rid = lo; rid < hi; ++rid) {
        if (table->IsLive(rid)) build->BuildInsert(table->Get(rid), rid);
      }
    }
  }
  metrics.build_scan_us->Record(phase_watch.ElapsedUs());
  FireIndexBuildHook(IndexBuildPhase::kScanned);
  phase_watch.Restart();
  // Phase 2 — delta catch-up. Free-running rounds first (no latch: the
  // buffered ops carry their row images, writers keep appending under the
  // build's own delta mutex, and the trees are builder-private until
  // publish). If the delta stops shrinking — writers are producing at
  // least as fast as the drain — fall through to paced rounds below
  // rather than letting the backlog grow unboundedly.
  {
    obs::ScopedSpan phase_span("build.catchup");
    int64_t drain_rounds = 0;
    for (size_t round = 0; round < kBuildFreeCatchupRounds; ++round) {
      const size_t before = build->delta_pending();
      if (before <= kBuildPublishThreshold) break;
      build->ApplyDeltaBatch(kBuildCatchupBatch);
      ++drain_rounds;
      // Net shrink under half a batch: a write storm is winning. Pace it.
      if (build->delta_pending() + kBuildCatchupBatch / 2 > before) break;
    }
    // Paced catch-up: each round drains one batch while holding a *shared*
    // table latch. Writers take the exclusive latch per statement, so they
    // queue for at most one batch's worth of apply time and only a handful
    // of statements slip in between rounds — every round nets nearly a full
    // batch of progress, which bounds both this loop and the final
    // exclusive drain at publish.
    while (build->delta_pending() > kBuildPublishThreshold) {
      LatchManager::Guard guard = latches_.AcquireShared({def.table});
      build->ApplyDeltaBatch(kBuildCatchupBatch);
      ++drain_rounds;
    }
    phase_span.SetAttr("drain_rounds", drain_rounds);
  }
  metrics.build_catchup_us->Record(phase_watch.ElapsedUs());
  FireIndexBuildHook(IndexBuildPhase::kCaughtUp);
  phase_watch.Restart();
  // Phase 3 — publish, brief exclusive window: drain the final delta,
  // append the WAL create record (only now — a crash mid-build must
  // recover to "index absent"), and flip the index to kReady. Any failure
  // aborts the build so no half-built state leaks.
  Status s;
  {
    obs::ScopedSpan phase_span("build.publish");
    LatchManager::Guard guard = latches_.AcquireExclusive(def.table);
    s = index_manager_->FinishBuildDrain(key);
    if (s.ok()) {
      s = CommitDurable([&](DurabilityLog* log, uint64_t version) {
        return log->AppendCreateIndex(def, version);
      });
    }
    if (s.ok()) {
      s = index_manager_->PublishBuild(key);
    } else {
      (void)index_manager_->AbortBuild(key);
    }
  }
  if (!s.ok()) {
    total_timer.Cancel();  // aborted builds stay out of the phase series
    return s;
  }
  metrics.build_publish_us->Record(phase_watch.ElapsedUs());
  metrics.index_builds->Add();
  FireIndexBuildHook(IndexBuildPhase::kPublished);
  return RunInvariantHook();
}

Status Database::CreateIndexBlocking(const IndexDef& def) {
  // Exclusive: the build scans the heap and a half-built index must never
  // be visible to statement lowering.
  LatchManager::Guard guard = latches_.AcquireExclusive(def.table);
  Status s = index_manager_->CreateIndex(def);
  if (s.ok()) {
    // Logged under the latch so no later mutation of this table can slip
    // into the log ahead of the index build that observed it.
    s = CommitDurable([&](DurabilityLog* log, uint64_t version) {
      return log->AppendCreateIndex(def, version);
    });
  }
  guard.Release();
  if (!s.ok()) return s;
  return RunInvariantHook();
}

Status Database::DropIndex(const std::string& key_or_name) {
  const std::string table = index_manager_->TableOf(key_or_name);
  LatchManager::Guard guard;
  if (!table.empty()) guard = latches_.AcquireExclusive(table);
  Status s = index_manager_->DropIndex(key_or_name);
  if (s.ok()) {
    s = CommitDurable([&](DurabilityLog* log, uint64_t version) {
      return log->AppendDropIndex(key_or_name, version);
    });
  }
  guard.Release();
  if (!s.ok()) return s;
  return RunInvariantHook();
}

StatusOr<ExecResult> Database::Execute(const std::string& sql) {
  // Root the trace here so parsing is part of the statement's span tree
  // (a no-op under a Session or network-request trace, which opened one
  // already and traced its own parse).
  obs::ScopedTrace trace("statement");
  StatusOr<Statement> stmt = [&] {
    obs::ScopedSpan parse_span("parse");
    return ParseSql(sql);
  }();
  if (!stmt.ok()) {
    trace.Cancel();
    return stmt.status();
  }
  return Execute(*stmt);
}

StatusOr<ExecResult> Database::Execute(const Statement& stmt) {
  return ExecuteOn(executor_.get(), stmt);
}

StatusOr<ExecResult> Database::ExecuteOn(Executor* executor,
                                         const Statement& stmt) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.statements->Add();
  // Statement trace root for direct ExecuteOn callers; a no-op nested
  // under a Session or network-request trace.
  obs::ScopedTrace trace("statement");
  // End-to-end statement latency: latch wait + execution + WAL append.
  util::ScopedTimer statement_timer(metrics.statement_us);
  LatchManager::Guard guard = [&] {
    obs::ScopedSpan latch_span("latch.acquire");
    return latches_.Acquire(StatementLatches(stmt));
  }();
  StatusOr<ExecResult> result = [&] {
    obs::ScopedSpan exec_span("engine.execute");
    return executor->Execute(stmt);
  }();
  if (result.ok() && stmt.IsWrite()) {
    // Logged while the exclusive table latch is still held, so WAL order
    // equals execution order for every table.
    obs::ScopedSpan commit_span("wal.commit");
    Status logged = CommitDurable([&](DurabilityLog* log, uint64_t version) {
      return log->AppendStatement(stmt, version);
    });
    if (!logged.ok()) {
      guard.Release();
      return logged;
    }
  }
  // Release before the invariant hook: CheckAll re-latches every table in
  // one sorted acquisition, and acquiring more tables while still holding
  // this statement's set could break the global lock order.
  guard.Release();
  if (!result.ok()) metrics.statement_failures->Add();
  if (result.ok() && stmt.IsWrite() && debug_checks_enabled()) {
    Status s = RunInvariantHook();
    if (!s.ok()) return s;
  }
  return result;
}

Status Database::BulkInsert(const std::string& table, std::vector<Row> rows) {
  HeapTable* t = catalog_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  // Insert moves the rows away, so the WAL copy is taken up front (only
  // when a log is attached — the population fast path stays copy-free).
  std::vector<Row> logged_rows;
  if (HasDurabilityLog()) logged_rows = rows;
  LatchManager::Guard guard = latches_.AcquireExclusive(table);
  for (Row& row : rows) {
    StatusOr<RowId> rid = t->Insert(std::move(row));
    if (!rid.ok()) return rid.status();
    index_manager_->OnInsert(table, *rid, t->Get(*rid));
  }
  Status logged = CommitDurable([&](DurabilityLog* log, uint64_t version) {
    return log->AppendBulkInsert(table, logged_rows, version);
  });
  guard.Release();
  if (!logged.ok()) return logged;
  // One check for the whole batch — per-row validation would make bulk
  // loads quadratic under debug checks.
  return RunInvariantHook();
}

void Database::Analyze() {
  stats_manager_->AnalyzeAll();
  // Fresh statistics change every what-if estimate; logged so replay
  // rebuilds the same statistics (and thus the same cost estimates).
  (void)CommitDurable([&](DurabilityLog* log, uint64_t version) {
    return log->AppendAnalyze(std::string(), version);
  });
}

void Database::Analyze(const std::string& table) {
  stats_manager_->Analyze(table);
  (void)CommitDurable([&](DurabilityLog* log, uint64_t version) {
    return log->AppendAnalyze(table, version);
  });
}

std::vector<util::MetricsRegistry::MetricValue> Database::MetricsSnapshot(
    const std::string& prefix) const {
  return util::MetricsRegistry::Default().Snapshot(prefix);
}

std::string Database::RenderMetricsText(const std::string& prefix) const {
  // Render-time refresh so build.info/uptime survive ResetForTest and the
  // uptime gauge is current at every scrape.
  util::RefreshRuntimeMetrics();
  return util::MetricsRegistry::Default().RenderText(prefix);
}

std::string Database::DumpTraces() const {
  return obs::TracesToChromeJson(obs::Tracer::Default().TakeSnapshot());
}

std::string Database::RenderTraceTrees(size_t n) const {
  return obs::RenderRecentTraces(obs::Tracer::Default().TakeSnapshot(), n);
}

IndexConfig Database::CurrentConfig() const {
  IndexConfig config;
  for (const BuiltIndex* index : index_manager_->AllIndexes()) {
    config.Add(index->def());
  }
  return config;
}

}  // namespace autoindex
