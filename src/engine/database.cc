#include "engine/database.h"

#include <utility>

#include "engine/session.h"

namespace autoindex {
namespace {

// The latch set of one statement: shared on every FROM table for SELECT,
// exclusive on the target table for writes. Derived up front so the whole
// set is acquired in the LatchManager's global order.
std::vector<LatchManager::LatchRequest> StatementLatches(
    const Statement& stmt) {
  std::vector<LatchManager::LatchRequest> requests;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      for (const TableRef& ref : stmt.select->from) {
        requests.push_back({ref.table, LatchManager::LatchMode::kShared});
      }
      break;
    case StatementKind::kInsert:
      requests.push_back(
          {stmt.insert->table, LatchManager::LatchMode::kExclusive});
      break;
    case StatementKind::kUpdate:
      requests.push_back(
          {stmt.update->table, LatchManager::LatchMode::kExclusive});
      break;
    case StatementKind::kDelete:
      requests.push_back(
          {stmt.del->table, LatchManager::LatchMode::kExclusive});
      break;
  }
  return requests;
}

}  // namespace

Database::Database(CostParams params) : params_(params) {
  catalog_ = std::make_unique<Catalog>();
  index_manager_ = std::make_unique<IndexManager>(catalog_.get());
  stats_manager_ = std::make_unique<StatsManager>(catalog_.get());
  stats_manager_->set_latch_manager(&latches_);
  executor_ = std::make_unique<Executor>(catalog_.get(), index_manager_.get(),
                                         stats_manager_.get(), params_);
  executor_->set_feedback_hook(
      [this](const std::vector<AccessPathFeedback>& batch) {
        DeliverFeedback(batch);
      });
  what_if_ = std::make_unique<WhatIfCostModel>(catalog_.get(),
                                               stats_manager_.get(), params_);
}

Database::~Database() = default;

std::unique_ptr<Session> Database::CreateSession() {
  return std::make_unique<Session>(this);
}

std::unique_ptr<Executor> Database::MakeSessionExecutor() {
  auto executor = std::make_unique<Executor>(
      catalog_.get(), index_manager_.get(), stats_manager_.get(), params_);
  executor->set_feedback_hook(
      [this](const std::vector<AccessPathFeedback>& batch) {
        DeliverFeedback(batch);
      });
  return executor;
}

void Database::set_execution_feedback_hook(Executor::FeedbackHook hook) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  feedback_hook_ = std::move(hook);
}

void Database::DeliverFeedback(const std::vector<AccessPathFeedback>& batch) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  if (feedback_hook_) feedback_hook_(batch);
}

StatusOr<HeapTable*> Database::CreateTable(const std::string& name,
                                           Schema schema) {
  return catalog_->CreateTable(name, std::move(schema));
}

Status Database::CreateIndex(const IndexDef& def) {
  // Exclusive: the build scans the heap and a half-built index must never
  // be visible to statement lowering.
  LatchManager::Guard guard = latches_.AcquireExclusive(def.table);
  Status s = index_manager_->CreateIndex(def);
  guard.Release();
  if (!s.ok()) return s;
  BumpDataVersion();
  return RunInvariantHook();
}

Status Database::DropIndex(const std::string& key_or_name) {
  const std::string table = index_manager_->TableOf(key_or_name);
  LatchManager::Guard guard;
  if (!table.empty()) guard = latches_.AcquireExclusive(table);
  Status s = index_manager_->DropIndex(key_or_name);
  guard.Release();
  if (!s.ok()) return s;
  BumpDataVersion();
  return RunInvariantHook();
}

StatusOr<ExecResult> Database::Execute(const std::string& sql) {
  StatusOr<Statement> stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  return Execute(*stmt);
}

StatusOr<ExecResult> Database::Execute(const Statement& stmt) {
  return ExecuteOn(executor_.get(), stmt);
}

StatusOr<ExecResult> Database::ExecuteOn(Executor* executor,
                                         const Statement& stmt) {
  LatchManager::Guard guard = latches_.Acquire(StatementLatches(stmt));
  StatusOr<ExecResult> result = executor->Execute(stmt);
  // Release before the invariant hook: CheckAll re-latches every table in
  // one sorted acquisition, and acquiring more tables while still holding
  // this statement's set could break the global lock order.
  guard.Release();
  if (result.ok() && stmt.IsWrite()) {
    BumpDataVersion();
    if (debug_checks_enabled()) {
      Status s = RunInvariantHook();
      if (!s.ok()) return s;
    }
  }
  return result;
}

Status Database::BulkInsert(const std::string& table, std::vector<Row> rows) {
  HeapTable* t = catalog_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  LatchManager::Guard guard = latches_.AcquireExclusive(table);
  for (Row& row : rows) {
    StatusOr<RowId> rid = t->Insert(std::move(row));
    if (!rid.ok()) return rid.status();
    index_manager_->OnInsert(table, *rid, t->Get(*rid));
  }
  guard.Release();
  BumpDataVersion();
  // One check for the whole batch — per-row validation would make bulk
  // loads quadratic under debug checks.
  return RunInvariantHook();
}

void Database::Analyze() {
  stats_manager_->AnalyzeAll();
  // Fresh statistics change every what-if estimate.
  BumpDataVersion();
}

void Database::Analyze(const std::string& table) {
  stats_manager_->Analyze(table);
  BumpDataVersion();
}

IndexConfig Database::CurrentConfig() const {
  IndexConfig config;
  for (const BuiltIndex* index : index_manager_->AllIndexes()) {
    config.Add(index->def());
  }
  return config;
}

}  // namespace autoindex
