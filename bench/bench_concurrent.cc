// Concurrent execution bench: N client threads replay a TPC-C (and
// banking) trace through per-thread Sessions while the AutoIndex manager
// runs tuning epochs on a background thread. Reports per-thread
// throughput/latency plus a single-threaded baseline so the latching
// overhead on the sequential path is visible.
//
// Usage: bench_concurrent [--short] [--connect host:port] [client_threads]
//        [queries]
// This is the binary the TSan acceptance gate runs (scripts/check.sh);
// `--short` is the reduced trace the metrics-overhead gate times (it
// compares TOTAL_WALL_MS between AUTOINDEX_METRICS=ON and OFF builds).
// `--connect` replays the TPC-C trace against a running autoindex_server
// (started with --workload tpcc) over loopback TCP instead of in-process,
// with open-loop pacing so the service vs response latency split shows
// real queueing delay; the net e2e stage in check.sh runs this mode.

#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "check/validator.h"
#include "net/socket.h"
#include "util/metrics.h"
#include "workload/banking.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

namespace autoindex {
namespace {

void PrintClientRows(const DriverReport& report) {
  for (size_t i = 0; i < report.clients.size(); ++i) {
    const ClientMetrics& c = report.clients[i];
    std::printf("  client %zu | queries %6zu (failed %zu) | "
                "avg latency %8.2f | throughput %8.3f | wall %8.1f ms\n",
                i, c.queries, c.failed, c.AvgLatency(), c.Throughput(),
                c.wall_ms);
  }
  const ClientMetrics total = report.Aggregate();
  std::printf("  TOTAL    | queries %6zu (failed %zu) | "
              "avg latency %8.2f | throughput %8.3f | wall %8.1f ms\n",
              total.queries, total.failed, total.AvgLatency(),
              total.Throughput(), total.wall_ms);
  if (report.tuning_rounds > 0 || report.observed > 0) {
    std::printf("  tuning   | rounds %zu | observed %zu | +%zu / -%zu "
                "indexes\n",
                report.tuning_rounds, report.observed, report.indexes_added,
                report.indexes_removed);
  }
  // Wall-clock percentiles (DESIGN.md §11). service = issue->done;
  // response = scheduled->done. This replay is closed-loop (pace_us == 0)
  // so the two distributions coincide; open-loop runs split them.
  if (report.service_latency.count > 0) {
    std::printf("  service  | p50 %6llu us | p90 %6llu us | p99 %6llu us | "
                "max %6llu us\n",
                (unsigned long long)report.service_latency.P50Us(),
                (unsigned long long)report.service_latency.P90Us(),
                (unsigned long long)report.service_latency.P99Us(),
                (unsigned long long)report.service_latency.max_us);
    std::printf("  response | p50 %6llu us | p90 %6llu us | p99 %6llu us | "
                "max %6llu us\n",
                (unsigned long long)report.response_latency.P50Us(),
                (unsigned long long)report.response_latency.P90Us(),
                (unsigned long long)report.response_latency.P99Us(),
                (unsigned long long)report.response_latency.max_us);
  }
}

void RequireClean(const Database& db) {
  const CheckReport check = CheckAll(db);
  if (!check.ok()) {
    std::printf("INVARIANT FAILURE:\n%s\n", check.ToString().c_str());
    std::exit(1);
  }
  std::printf("  invariants: %s\n", check.ToString().c_str());
}

void RunTpcc(int threads, size_t num_queries) {
  bench::PrintHeader("Concurrent TPC-C replay (sessions + table latches)");
  const TpccConfig config;
  const std::vector<std::string> trace =
      TpccWorkload::Generate(config, num_queries, /*seed=*/7);

  {
    Database db;
    TpccWorkload::Populate(&db, config);
    db.Analyze();
    std::printf("single-thread baseline (1 session, no tuning):\n");
    PrintClientRows(RunSequentialWorkload(&db, trace));
  }

  Database db;
  TpccWorkload::Populate(&db, config);
  db.Analyze();
  AutoIndexManager manager(&db);
  DriverConfig driver;
  driver.client_threads = threads;
  driver.background_tuning = true;
  driver.tuning_batch = num_queries / 4 + 1;
  std::printf("%d client threads + background tuning:\n", threads);
  PrintClientRows(RunConcurrentWorkload(&manager, trace, driver));
  RequireClean(db);
}

// Remote replay: the server owns the database (populate it with
// `autoindex_server --workload tpcc`); we only generate the same trace and
// drive it over TCP. Open-loop pacing (pace_us) makes the coordinated-
// omission split visible: response latency charges queueing behind slow
// statements to every statement that waited, service latency does not.
int RunRemote(const std::string& spec, int threads, size_t num_queries) {
  std::string host;
  int port = 0;
  const Status parsed = net::ParseHostPort(spec, &host, &port);
  if (!parsed.ok()) {
    std::printf("bad --connect argument: %s\n", parsed.ToString().c_str());
    return 2;
  }
  bench::PrintHeader("Remote TPC-C replay (TCP loopback, open loop)");
  const TpccConfig config;
  const std::vector<std::string> trace =
      TpccWorkload::Generate(config, num_queries, /*seed=*/7);

  DriverConfig driver;
  driver.client_threads = threads;
  driver.background_tuning = false;  // tuning (if any) is server-side
  driver.pace_us = 300;              // open loop: ~3.3k statements/s offered
  std::printf("%d remote clients -> %s:%d, pace %d us:\n", threads,
              host.c_str(), port, driver.pace_us);
  const DriverReport report = RunRemoteWorkload(host, port, trace, driver);
  PrintClientRows(report);

  const ClientMetrics total = report.Aggregate();
  if (total.queries == 0 || total.failed == total.queries) {
    std::printf("REMOTE REPLAY FAILED (%zu/%zu failed)\n", total.failed,
                total.queries);
    return 1;
  }
  return 0;
}

void RunBanking(int threads, size_t num_queries) {
  bench::PrintHeader("Concurrent banking replay (hybrid OLTP + OLAP)");
  BankingConfig config;
  config.num_tables = 24;
  config.manual_indexes = 40;
  const std::vector<std::string> trace =
      BankingWorkload::HybridService(config, num_queries, /*seed=*/11);

  Database db;
  BankingWorkload::Populate(&db, config);
  BankingWorkload::CreateManualIndexes(&db, config);
  db.Analyze();
  AutoIndexManager manager(&db);
  DriverConfig driver;
  driver.client_threads = threads;
  driver.background_tuning = true;
  driver.tuning_batch = num_queries / 4 + 1;
  std::printf("%d client threads + background tuning:\n", threads);
  PrintClientRows(RunConcurrentWorkload(&manager, trace, driver));
  RequireClean(db);
}

}  // namespace
}  // namespace autoindex

int main(int argc, char** argv) {
  int threads = 4;
  size_t queries = 1200;
  std::string connect;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      // Reduced trace for the metrics-overhead gate: enough statements to
      // exercise every instrumented path, short enough to run min-of-N.
      threads = 2;
      queries = 300;
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else if (positional == 0) {
      threads = std::atoi(argv[i]);
      ++positional;
    } else {
      queries = static_cast<size_t>(std::atoll(argv[i]));
      ++positional;
    }
  }
  const autoindex::util::Stopwatch total_watch;
  if (!connect.empty()) {
    const int rc = autoindex::RunRemote(connect, threads, queries);
    if (rc != 0) return rc;
    std::printf("\nTOTAL_WALL_MS %.1f\n", total_watch.ElapsedMs());
    std::printf("OK\n");
    return 0;
  }
  autoindex::RunTpcc(threads, queries);
  autoindex::RunBanking(threads, queries / 2);
  // Machine-readable total for scripts/check.sh's overhead comparison.
  std::printf("\nTOTAL_WALL_MS %.1f\n", total_watch.ElapsedMs());
  std::printf("OK\n");
  return 0;
}
