// Online build bench: measures per-statement write latency while an index
// is being created, comparing the blocking build (exclusive table latch
// for the whole scan) against the phased online build (DESIGN.md §10).
// The headline number is the p99 write stall during the build window —
// the online build should keep it within a small multiple of steady-state
// latency, while the blocking build makes every concurrent writer wait
// out the full scan.
//
// Usage: bench_online_build [--short]
// `--short` shrinks the table and writer count for CI smoke runs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "check/validator.h"
#include "engine/database.h"
#include "engine/session.h"

namespace autoindex {
namespace {

using Clock = std::chrono::steady_clock;

struct BenchParams {
  size_t rows = 200000;
  int writers = 4;
  // Open-loop arrival: each writer *intends* to issue one INSERT every
  // `pace_us`. Latency is measured from the intended start, not the
  // actual send, so statements queued behind a latch stall report the
  // full wait (no coordinated omission).
  std::chrono::microseconds pace_us{200};
};

// One measured statement: its scheduled start, completion, and the
// stall-corrected latency between them.
struct Sample {
  Clock::time_point start;
  Clock::time_point end;
  double ms = 0.0;
};

struct WindowStats {
  size_t samples = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

// Latency distribution of the statements that overlap [begin, end): these
// are the writes the build could have stalled.
WindowStats StatsInWindow(const std::vector<std::vector<Sample>>& per_writer,
                          Clock::time_point begin, Clock::time_point end) {
  std::vector<double> ms;
  for (const std::vector<Sample>& samples : per_writer) {
    for (const Sample& s : samples) {
      if (s.end >= begin && s.start < end) ms.push_back(s.ms);
    }
  }
  std::sort(ms.begin(), ms.end());
  WindowStats out;
  out.samples = ms.size();
  out.p50 = Percentile(&ms, 0.50);
  out.p99 = Percentile(&ms, 0.99);
  out.max = ms.empty() ? 0.0 : ms.back();
  return out;
}

void PopulateTable(Database* db, size_t rows) {
  CheckOk(db->CreateTable("t", Schema({{"a", ValueType::kInt},
                                       {"b", ValueType::kInt},
                                       {"c", ValueType::kInt}})));
  std::vector<Row> bulk;
  bulk.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    bulk.push_back({Value(int64_t(i)), Value(int64_t(i % 997)),
                    Value(int64_t(i % 7))});
  }
  CheckOk(db->BulkInsert("t", std::move(bulk)));
  db->Analyze();
}

struct BuildRun {
  WindowStats stalls;   // write latency during the build window
  double build_ms = 0.0;
  size_t writes = 0;    // total statements the writers got through
};

// Runs `writers` insert sessions flat-out, then builds an index on "t"
// through `build` while they hammer, and reports the write-latency
// distribution inside the build window.
template <typename BuildFn>
BuildRun MeasureBuild(const BenchParams& params, BuildFn build) {
  Database db;
  PopulateTable(&db, params.rows);

  std::atomic<bool> done{false};
  std::atomic<size_t> completed{0};
  std::vector<std::vector<Sample>> samples(params.writers);
  std::vector<std::thread> threads;
  threads.reserve(params.writers);
  for (int w = 0; w < params.writers; ++w) {
    threads.emplace_back([&db, &done, &completed, &samples, &params, w] {
      std::unique_ptr<Session> session = db.CreateSession();
      int64_t next = int64_t(params.rows) + 1000000 + w;
      std::vector<Sample>& mine = samples[w];
      mine.reserve(1 << 16);
      Clock::time_point scheduled = Clock::now();
      while (!done.load(std::memory_order_acquire)) {
        // Open loop: wait for the slot if ahead of schedule; if a stall
        // put us behind, issue back-to-back — the fixed schedule charges
        // every delayed statement its full queueing time.
        while (Clock::now() < scheduled) {
          std::this_thread::yield();
        }
        const std::string sql = "INSERT INTO t VALUES (" +
                                std::to_string(next) + ", " +
                                std::to_string(next % 997) + ", " +
                                std::to_string(next % 7) + ")";
        next += params.writers;
        Sample s;
        s.start = scheduled;
        CheckOk(session->Execute(sql).status());
        s.end = Clock::now();
        s.ms = std::chrono::duration<double, std::milli>(s.end - s.start)
                   .count();
        mine.push_back(s);
        completed.fetch_add(1, std::memory_order_release);
        scheduled += params.pace_us;
      }
    });
  }

  // Warm up so steady-state samples exist on both sides of the window.
  while (completed.load(std::memory_order_acquire) <
         static_cast<size_t>(params.writers) * 50) {
    std::this_thread::yield();
  }

  const Clock::time_point build_begin = Clock::now();
  CheckOk(build(&db));
  const Clock::time_point build_end = Clock::now();

  // Let the tail drain so stalled statements finish inside the capture.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  const CheckReport check = CheckAll(db);
  if (!check.ok()) {
    std::printf("INVARIANT FAILURE:\n%s\n", check.ToString().c_str());
    std::exit(1);
  }

  BuildRun run;
  run.stalls = StatsInWindow(samples, build_begin, build_end);
  run.build_ms = std::chrono::duration<double, std::milli>(build_end -
                                                           build_begin)
                     .count();
  run.writes = completed.load(std::memory_order_acquire);
  return run;
}

void PrintRun(const char* label, const BuildRun& run) {
  std::printf("%-8s | build %8.1f ms | writes %7zu | in-window %6zu | "
              "stall p50 %8.3f ms | p99 %8.3f ms | max %8.3f ms\n",
              label, run.build_ms, run.writes, run.stalls.samples,
              run.stalls.p50, run.stalls.p99, run.stalls.max);
}

int Run(const BenchParams& params) {
  bench::PrintHeader("Online index build: write stalls vs blocking build");
  std::printf("table rows %zu | writer threads %d | index on t(b)\n\n",
              params.rows, params.writers);

  const BuildRun blocking = MeasureBuild(params, [](Database* db) {
    return db->CreateIndexBlocking(IndexDef("t", {"b"}));
  });
  const BuildRun online = MeasureBuild(params, [](Database* db) {
    return db->CreateIndex(IndexDef("t", {"b"}));
  });

  PrintRun("blocking", blocking);
  PrintRun("online", online);
  bench::PrintRule();
  if (online.stalls.p99 > 0.0) {
    std::printf("p99 write stall: blocking/online = %.1fx\n",
                blocking.stalls.p99 / online.stalls.p99);
  }
  if (online.stalls.max > 0.0) {
    std::printf("max write stall: blocking/online = %.1fx\n",
                blocking.stalls.max / online.stalls.max);
  }
  std::printf("\nOK\n");
  return 0;
}

}  // namespace
}  // namespace autoindex

int main(int argc, char** argv) {
  autoindex::BenchParams params;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      params.rows = 40000;
      params.writers = 2;
    }
  }
  return autoindex::Run(params);
}
