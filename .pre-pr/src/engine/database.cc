#include "engine/database.h"

namespace autoindex {

Database::Database(CostParams params) : params_(params) {
  catalog_ = std::make_unique<Catalog>();
  index_manager_ = std::make_unique<IndexManager>(catalog_.get());
  stats_manager_ = std::make_unique<StatsManager>(catalog_.get());
  executor_ = std::make_unique<Executor>(catalog_.get(), index_manager_.get(),
                                         stats_manager_.get(), params_);
  what_if_ = std::make_unique<WhatIfCostModel>(catalog_.get(),
                                               stats_manager_.get(), params_);
}

StatusOr<HeapTable*> Database::CreateTable(const std::string& name,
                                           Schema schema) {
  return catalog_->CreateTable(name, std::move(schema));
}

Status Database::CreateIndex(const IndexDef& def) {
  Status s = index_manager_->CreateIndex(def);
  if (!s.ok()) return s;
  return RunInvariantHook();
}

Status Database::DropIndex(const std::string& key_or_name) {
  Status s = index_manager_->DropIndex(key_or_name);
  if (!s.ok()) return s;
  return RunInvariantHook();
}

StatusOr<ExecResult> Database::Execute(const std::string& sql) {
  StatusOr<Statement> stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  return Execute(*stmt);
}

StatusOr<ExecResult> Database::Execute(const Statement& stmt) {
  StatusOr<ExecResult> result = executor_->Execute(stmt);
  // Debug-mode structural validation after every successful mutation.
  if (result.ok() && stmt.IsWrite() && debug_checks_enabled()) {
    Status s = RunInvariantHook();
    if (!s.ok()) return s;
  }
  return result;
}

Status Database::BulkInsert(const std::string& table, std::vector<Row> rows) {
  HeapTable* t = catalog_->GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  for (Row& row : rows) {
    StatusOr<RowId> rid = t->Insert(std::move(row));
    if (!rid.ok()) return rid.status();
    index_manager_->OnInsert(table, *rid, t->Get(*rid));
  }
  // One check for the whole batch — per-row validation would make bulk
  // loads quadratic under debug checks.
  return RunInvariantHook();
}

IndexConfig Database::CurrentConfig() const {
  IndexConfig config;
  for (const BuiltIndex* index : index_manager_->AllIndexes()) {
    config.Add(index->def());
  }
  return config;
}

}  // namespace autoindex
