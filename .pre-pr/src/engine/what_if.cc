#include "engine/what_if.h"

#include <algorithm>
#include <cmath>

namespace autoindex {

IndexConfig::IndexConfig(std::vector<IndexDef> defs) : defs_(std::move(defs)) {}

bool IndexConfig::Contains(const IndexDef& def) const {
  for (const IndexDef& d : defs_) {
    if (d == def) return true;
  }
  return false;
}

void IndexConfig::Add(IndexDef def) {
  if (!Contains(def)) defs_.push_back(std::move(def));
}

void IndexConfig::Remove(const IndexDef& def) {
  defs_.erase(std::remove(defs_.begin(), defs_.end(), def), defs_.end());
}

std::vector<IndexStatsView> IndexConfig::ToStatsViews(
    const Catalog& catalog) const {
  std::vector<IndexStatsView> views;
  views.reserve(defs_.size());
  for (const IndexDef& def : defs_) {
    const HeapTable* t = catalog.GetTable(def.table);
    if (t == nullptr) {
      IndexStatsView view;
      view.def = def;
      view.hypothetical = true;
      views.push_back(std::move(view));
      continue;
    }
    views.push_back(EstimateStatsView(def, *t));
  }
  return views;
}

size_t IndexConfig::TotalBytes(const Catalog& catalog) const {
  size_t total = 0;
  for (const IndexStatsView& v : ToStatsViews(catalog)) {
    total += v.size_bytes;
  }
  return total;
}

CostBreakdown WhatIfCostModel::EstimateSelect(
    const SelectStatement& stmt,
    const std::vector<IndexStatsView>& views) const {
  CostBreakdown cost;
  StatusOr<SelectPlan> plan = planner_.PlanSelect(stmt, views);
  if (!plan.ok()) return cost;
  // Split the planner's scalar estimate into io/cpu heuristically: access
  // paths are IO-dominated, per-tuple work is CPU.
  double outer_rows = 1.0;
  for (const TablePlan& tp : plan->tables) {
    const HeapTable* t = catalog_->GetTable(tp.ref.table);
    if (t == nullptr) continue;
    bool has_join = false;
    for (const ColumnCondition& c : tp.conditions) {
      if (c.join_source.has_value()) has_join = true;
    }
    if (tp.access.use_index) {
      // One index probe per outer tuple.
      const double probes = outer_rows;
      double io = 0.0, cpu = 0.0;
      for (const IndexStatsView& v : views) {
        if (v.def == tp.access.index) {
          double h = static_cast<double>(v.height);
          // Local indexes without a bound partition column descend every
          // shard.
          if (v.partitions > 1 && t->partitioned()) {
            const std::string& pcol =
                t->schema()
                    .column(static_cast<size_t>(t->partition_column()))
                    .name;
            bool pruned = false;
            for (const ColumnCondition& c : tp.conditions) {
              if (c.column == pcol && c.kind == ColumnCondition::kEq) {
                pruned = true;
                break;
              }
            }
            if (!pruned) h *= static_cast<double>(v.partitions);
          }
          const double leaf_pages = std::max(
              1.0, tp.access.est_match_rows /
                       static_cast<double>(LeafCapacityForWidth(
                           v.def.KeyWidth(t->schema()))));
          // Heap fetches are correlation-blended and capped at one pass
          // over the table per query (buffer-cache behaviour).
          const double heap_pages = std::min(
              static_cast<double>(t->NumPages()),
              probes * planner_.EstimateHeapFetchPages(
                           tp.ref.table, v.def.columns[0],
                           tp.access.est_match_rows));
          io = (probes * (h + leaf_pages) + heap_pages) *
               params_.random_page_cost;
          cpu = probes * tp.access.est_match_rows *
                (params_.cpu_index_tuple_cost + params_.cpu_tuple_cost);
          break;
        }
      }
      cost.data_io += io;
      cost.data_cpu += cpu;
    } else if (has_join && outer_rows > 1.0) {
      // Hash join: build scan once + probe CPU.
      cost.data_io += t->NumPages() * params_.seq_page_cost;
      cost.data_cpu += t->num_rows() * params_.cpu_tuple_cost +
                       outer_rows * params_.cpu_operator_cost;
    } else {
      cost.data_io += t->NumPages() * params_.seq_page_cost;
      cost.data_cpu += t->num_rows() * params_.cpu_tuple_cost;
    }
    outer_rows = std::max(1.0, outer_rows * tp.access.est_rows);
  }
  // Sort / aggregation CPU.
  if (!stmt.order_by.empty() || !stmt.group_by.empty()) {
    if (outer_rows > 1.0) {
      cost.data_cpu += outer_rows * std::log2(outer_rows) *
                       params_.cpu_operator_cost;
    }
  }
  return cost;
}

CostBreakdown WhatIfCostModel::EstimateWrite(
    const Statement& stmt, const std::vector<IndexStatsView>& views) const {
  CostBreakdown cost;
  std::string table;
  const Expr* where = nullptr;
  size_t rows_written = 1;
  enum { kIns, kUpd, kDel } op = kIns;
  if (stmt.kind == StatementKind::kInsert) {
    table = stmt.insert->table;
    rows_written = std::max<size_t>(1, stmt.insert->rows.size());
    op = kIns;
  } else if (stmt.kind == StatementKind::kUpdate) {
    table = stmt.update->table;
    where = stmt.update->where.get();
    op = kUpd;
  } else {
    table = stmt.del->table;
    where = stmt.del->where.get();
    op = kDel;
  }
  const HeapTable* t = catalog_->GetTable(table);
  if (t == nullptr) return cost;

  // Read side: locate the rows (UPDATE/DELETE).
  double matched_rows = static_cast<double>(rows_written);
  if (op != kIns) {
    StatusOr<TablePlan> tp_or = planner_.PlanWriteLookup(table, where, views);
    if (tp_or.ok()) {
      const TablePlan& tp = *tp_or;
      cost.data_io += tp.access.use_index
                          ? tp.access.est_cost * 0.8
                          : t->NumPages() * params_.seq_page_cost;
      cost.data_cpu += tp.access.use_index
                           ? tp.access.est_cost * 0.2
                           : t->num_rows() * params_.cpu_tuple_cost;
      matched_rows = std::max(1.0, tp.access.est_rows);
    }
  }

  // Write side: heap page dirtying.
  cost.maint_io += std::max(1.0, matched_rows / t->RowsPerPage()) *
                   params_.seq_page_cost;

  if (op == kDel) return cost;  // deletes defer index maintenance (Sec. V)

  // Index maintenance per affected index. Updates only touch indexes that
  // cover an assigned column.
  for (const IndexStatsView& v : views) {
    if (v.def.table != t->name()) continue;
    if (op == kUpd) {
      bool touched = false;
      for (const auto& [col, _] : stmt.update->assignments) {
        for (const std::string& icol : v.def.columns) {
          if (icol == col) {
            touched = true;
            break;
          }
        }
        if (touched) break;
      }
      if (!touched) continue;
    }
    // C^io: one leaf write per updated entry (updates pay delete+insert).
    const double writes_per_row = (op == kUpd) ? 2.0 : 1.0;
    cost.maint_io +=
        matched_rows * writes_per_row * params_.seq_page_cost;
    // C^cpu per the paper's t_start + t_running.
    cost.maint_cpu += matched_rows *
                      IndexUpdateCpuCost(v.num_entries, v.height, 1, params_);
  }
  return cost;
}

CostBreakdown WhatIfCostModel::EstimateStatement(
    const Statement& stmt, const IndexConfig& config) const {
  const std::vector<IndexStatsView> views = config.ToStatsViews(*catalog_);
  if (stmt.kind == StatementKind::kSelect) {
    return EstimateSelect(*stmt.select, views);
  }
  return EstimateWrite(stmt, views);
}

}  // namespace autoindex
