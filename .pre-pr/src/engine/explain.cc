#include "engine/explain.h"

#include "engine/planner.h"
#include "sql/parser.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

std::string DescribeAccess(const TablePlan& tp, bool first_level) {
  std::string out;
  if (tp.access.use_index) {
    out += StrFormat("-> index scan on %s via %s\n", tp.ref.alias.c_str(),
                     tp.access.index.DisplayName().c_str());
    std::vector<std::string> bound;
    for (size_t k = 0; k < tp.access.eq_prefix_len; ++k) {
      bound.push_back(tp.access.index.columns[k] + " = ?");
    }
    if (tp.access.has_range &&
        tp.access.eq_prefix_len < tp.access.index.columns.size()) {
      bound.push_back(tp.access.index.columns[tp.access.eq_prefix_len] +
                      " range");
    }
    out += StrFormat("     prefix: %s  (est. %.1f rows, cost %.1f)\n",
                     Join(bound, ", ").c_str(), tp.access.est_rows,
                     tp.access.est_cost);
  } else {
    bool has_join = false;
    for (const ColumnCondition& c : tp.conditions) {
      if (c.join_source.has_value()) has_join = true;
    }
    if (has_join && !first_level) {
      std::vector<std::string> keys;
      for (const ColumnCondition& c : tp.conditions) {
        if (c.join_source.has_value()) {
          keys.push_back(c.column + " = " + c.join_source->ToString());
        }
      }
      out += StrFormat("-> hash join to %s on %s  (est. %.1f rows)\n",
                       tp.ref.alias.c_str(), Join(keys, ", ").c_str(),
                       tp.access.est_rows);
    } else {
      out += StrFormat("-> seq scan on %s  (est. %.1f rows, cost %.1f)\n",
                       tp.ref.alias.c_str(), tp.access.est_rows,
                       tp.access.est_cost);
    }
  }
  return out;
}

}  // namespace

std::string ExplainStatement(const Database& db, const Statement& stmt,
                             const IndexConfig& config) {
  Planner planner(const_cast<Catalog*>(&db.catalog()),
                  const_cast<StatsManager*>(
                      &const_cast<Database&>(db).stats_manager()),
                  db.params());
  const std::vector<IndexStatsView> views =
      config.ToStatsViews(db.catalog());
  std::string out;
  switch (stmt.kind) {
    case StatementKind::kSelect: {
      StatusOr<SelectPlan> plan = planner.PlanSelect(*stmt.select, views);
      if (!plan.ok()) return "error: " + plan.status().ToString();
      for (size_t i = 0; i < plan->tables.size(); ++i) {
        out += DescribeAccess(plan->tables[i], i == 0);
      }
      if (!stmt.select->group_by.empty()) out += "-> hash aggregate\n";
      if (!stmt.select->order_by.empty()) out += "-> sort\n";
      out += StrFormat("estimated total cost: %.1f (est. %.1f result rows)\n",
                       plan->est_total_cost, plan->est_result_rows);
      return out;
    }
    case StatementKind::kUpdate:
    case StatementKind::kDelete: {
      const std::string table = stmt.kind == StatementKind::kUpdate
                                    ? stmt.update->table
                                    : stmt.del->table;
      StatusOr<TablePlan> tp =
          planner.PlanWriteLookup(table, stmt.where(), views);
      if (!tp.ok()) return "error: " + tp.status().ToString();
      out += DescribeAccess(*tp, true);
      out += stmt.kind == StatementKind::kUpdate ? "-> update rows\n"
                                                 : "-> delete rows\n";
      return out;
    }
    case StatementKind::kInsert:
      out += StrFormat("-> insert into %s (%zu rows)\n",
                       stmt.insert->table.c_str(), stmt.insert->rows.size());
      return out;
  }
  return out;
}

std::string ExplainStatement(const Database& db, const Statement& stmt) {
  return ExplainStatement(db, stmt, db.CurrentConfig());
}

StatusOr<std::string> ExplainSql(const Database& db,
                                 const std::string& sql) {
  StatusOr<Statement> stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  return ExplainStatement(db, *stmt);
}

namespace {

void RenderSnapshotNode(const PlanNodeSnapshot& n, size_t depth,
                        std::string* out) {
  out->append(2 * depth, ' ');
  *out += StrFormat("-> %s %s  (est. %.1f rows, cost %.1f)", n.op.c_str(),
                    n.detail.c_str(), n.est_rows, n.est_cost);
  *out += StrFormat("  (actual: rows=%lld",
                    static_cast<long long>(n.actual.rows_out));
  const struct {
    const char* label;
    int64_t value;
  } counters[] = {
      {"heap_pages", n.actual.heap_pages_read},
      {"index_pages", n.actual.index_pages_read},
      {"tuples", n.actual.tuples_examined},
      {"index_tuples", n.actual.index_tuples_read},
      {"sort_rows", n.actual.sort_rows},
      {"comparisons", n.actual.comparisons},
  };
  for (const auto& c : counters) {
    if (c.value != 0) {
      *out += StrFormat(", %s=%lld", c.label,
                        static_cast<long long>(c.value));
    }
  }
  *out += ")\n";
  for (const PlanNodeSnapshot& child : n.children) {
    RenderSnapshotNode(child, depth + 1, out);
  }
}

}  // namespace

std::string RenderPlanSnapshot(const PlanNodeSnapshot& node) {
  std::string out;
  RenderSnapshotNode(node, 0, &out);
  return out;
}

StatusOr<std::string> ExplainAnalyzeStatement(Database& db,
                                              const Statement& stmt) {
  StatusOr<ExecResult> result = db.Execute(stmt);
  if (!result.ok()) return result.status();
  std::string out;
  if (result->plan.has_value()) {
    out += RenderPlanSnapshot(*result->plan);
  } else {
    // INSERT has no read pipeline; show the logical shape instead.
    out += ExplainStatement(db, stmt);
  }
  const CostBreakdown cost = result->stats.ToCost(db.params());
  out += StrFormat("measured cost: %.1f (%zu rows)\n", cost.Total(),
                   result->stats.rows_returned);
  if (!result->feedback.empty()) {
    out += "feedback:\n";
    for (const AccessPathFeedback& fb : result->feedback) {
      out += StrFormat(
          "  %s via %s: est %.1f rows / %.1f cost, actual %.1f rows / %.1f "
          "cost\n",
          fb.table.c_str(),
          fb.index.empty() ? "seq scan" : fb.index.c_str(), fb.est_rows,
          fb.est_cost, fb.actual_rows, fb.actual_cost);
    }
  }
  return out;
}

StatusOr<std::string> ExplainAnalyzeSql(Database& db,
                                        const std::string& sql) {
  StatusOr<Statement> stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  return ExplainAnalyzeStatement(db, *stmt);
}

}  // namespace autoindex
