#include "engine/cost_model.h"

#include <cmath>

namespace autoindex {

double IndexUpdateCpuCost(size_t num_entries, size_t height,
                          size_t num_insert, const CostParams& params) {
  const double log_n =
      num_entries <= 1 ? 0.0
                       : std::ceil(std::log2(static_cast<double>(num_entries)));
  const double t_start =
      (log_n + (static_cast<double>(height) + 1.0) * 50.0) *
      params.cpu_operator_cost;
  const double t_running =
      static_cast<double>(num_insert) * params.cpu_index_tuple_cost;
  return t_start + t_running;
}

double SeqIoCost(size_t pages, const CostParams& params) {
  return static_cast<double>(pages) * params.seq_page_cost;
}

double RandomIoCost(size_t pages, const CostParams& params) {
  return static_cast<double>(pages) * params.random_page_cost;
}

CostBreakdown ExecStats::ToCost(const CostParams& params) const {
  CostBreakdown cost;
  cost.data_io = SeqIoCost(heap_pages_read, params) +
                 RandomIoCost(index_pages_read, params);
  cost.data_cpu =
      static_cast<double>(tuples_examined) * params.cpu_tuple_cost +
      static_cast<double>(index_tuples_read) * params.cpu_index_tuple_cost;
  if (sort_rows > 1) {
    cost.data_cpu += static_cast<double>(sort_rows) *
                     std::log2(static_cast<double>(sort_rows)) *
                     params.cpu_operator_cost;
  }
  cost.maint_io = SeqIoCost(pages_written + index_pages_written, params);
  cost.maint_cpu = maint_cpu_cost;
  return cost;
}

ExecStats& ExecStats::operator+=(const ExecStats& o) {
  heap_pages_read += o.heap_pages_read;
  index_pages_read += o.index_pages_read;
  tuples_examined += o.tuples_examined;
  index_tuples_read += o.index_tuples_read;
  rows_returned += o.rows_returned;
  sort_rows += o.sort_rows;
  pages_written += o.pages_written;
  index_entries_written += o.index_entries_written;
  index_pages_written += o.index_pages_written;
  maint_cpu_cost += o.maint_cpu_cost;
  used_index = used_index || o.used_index;
  return *this;
}

}  // namespace autoindex
