#include "engine/operators/operator.h"

namespace autoindex {

bool PrefixResolver::Resolve(const ColumnRef& col, Value* out) const {
  for (size_t i = level_ + 1; i > 0; --i) {
    const TableRef& ref = tables_[i - 1].ref;
    if (!col.table.empty() && col.table != ref.alias &&
        col.table != ref.table) {
      continue;
    }
    const HeapTable* t = catalog_.GetTable(ref.table);
    if (t == nullptr) continue;
    const int ord = t->schema().FindColumn(col.column);
    if (ord < 0) continue;
    const Row* row = RowAt(i - 1);
    if (row == nullptr) return false;
    *out = (*row)[static_cast<size_t>(ord)];
    return true;
  }
  return false;
}

bool LocalConditionsOk(const TablePlan& tp, const ColumnResolver& resolver,
                       int64_t* comparisons) {
  for (const ColumnCondition& c : tp.conditions) {
    if (c.atom == nullptr || c.join_source.has_value()) continue;
    ++*comparisons;
    if (!EvaluatePredicate(*c.atom, resolver)) return false;
  }
  return true;
}

bool JoinConditionsOk(const TablePlan& tp, const ColumnResolver& resolver,
                      int64_t* comparisons) {
  for (const ColumnCondition& c : tp.conditions) {
    if (!c.join_source.has_value() || c.atom == nullptr) continue;
    ++*comparisons;
    if (!EvaluatePredicate(*c.atom, resolver)) return false;
  }
  return true;
}

void AccumulateOperatorCounters(const PlanNodeSnapshot& node,
                                ExecStats* stats) {
  stats->heap_pages_read += static_cast<size_t>(node.actual.heap_pages_read);
  stats->index_pages_read +=
      static_cast<size_t>(node.actual.index_pages_read);
  stats->tuples_examined += static_cast<size_t>(node.actual.tuples_examined);
  stats->index_tuples_read +=
      static_cast<size_t>(node.actual.index_tuples_read);
  stats->sort_rows += static_cast<size_t>(node.actual.sort_rows);
  for (const PlanNodeSnapshot& c : node.children) {
    AccumulateOperatorCounters(c, stats);
  }
}

PlanNodeSnapshot PhysicalOperator::Snapshot() const {
  PlanNodeSnapshot snap;
  snap.op = name();
  snap.detail = detail();
  snap.est_rows = est_rows_;
  snap.est_cost = est_cost_;
  snap.out_width = out_width();
  snap.actual = stats_;
  for (size_t i = 0; i < num_children(); ++i) {
    snap.children.push_back(child(i)->Snapshot());
  }
  return snap;
}

void CollectAccessPathFeedback(const PhysicalOperator& root,
                               const CostParams& params,
                               std::vector<AccessPathFeedback>* out) {
  root.AppendFeedback(params, out);
  for (size_t i = 0; i < root.num_children(); ++i) {
    CollectAccessPathFeedback(*root.child(i), params, out);
  }
}

}  // namespace autoindex
