#include "engine/operators/lowering.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "engine/operators/join_ops.h"
#include "engine/operators/pipeline_ops.h"
#include "engine/operators/scan_ops.h"

namespace autoindex {
namespace {

// Mirrors PrefixResolver::Resolve with a null top row: true when `col`
// resolves to a table strictly before `level` (its row will be available
// from the outer tuple at probe time). The walk is newest-table-first and
// stops at the first schema match, exactly like the runtime resolver, so a
// reference shadowed by the table being placed is unbindable.
bool StaticallyBindable(const Catalog& catalog,
                        const std::vector<TablePlan>& tables, size_t level,
                        const ColumnRef& col) {
  for (size_t i = level + 1; i > 0; --i) {
    const TableRef& ref = tables[i - 1].ref;
    if (!col.table.empty() && col.table != ref.alias &&
        col.table != ref.table) {
      continue;
    }
    const HeapTable* t = catalog.GetTable(ref.table);
    if (t == nullptr) continue;
    if (t->schema().FindColumn(col.column) < 0) continue;
    return (i - 1) != level;
  }
  return false;
}

// Whether every equality column of the chosen index prefix can be bound at
// probe time — from a literal, or from a statically-resolvable join source.
// Conditions are tried in extraction order, like IndexScanOp::Rebind.
bool PrefixBindable(const Catalog& catalog,
                    const std::vector<TablePlan>& tables, size_t level) {
  const TablePlan& tp = tables[level];
  for (size_t k = 0; k < tp.access.eq_prefix_len; ++k) {
    const std::string& icol = tp.access.index.columns[k];
    bool bound = false;
    for (const ColumnCondition& c : tp.conditions) {
      if (c.column != icol || c.kind != ColumnCondition::kEq) continue;
      if (c.join_source.has_value() &&
          !StaticallyBindable(catalog, tables, level, *c.join_source)) {
        continue;
      }
      bound = true;
      break;
    }
    if (!bound) return false;
  }
  return true;
}

BuiltIndex* FindBuiltIndex(IndexManager* indexes, const TablePlan& tp) {
  if (!tp.access.use_index) return nullptr;
  for (BuiltIndex* bi : indexes->IndexesOnTable(tp.ref.table)) {
    if (bi->def() == tp.access.index) return bi;
  }
  return nullptr;
}

void NoteIndexUse(BuiltIndex* bi, PhysicalPlan* pp,
                  std::unordered_set<std::string>* seen) {
  bi->RecordUse();
  pp->used_index = true;
  const std::string name = bi->def().DisplayName();
  if (seen->insert(name).second) pp->indexes_used.push_back(name);
}

}  // namespace

std::unique_ptr<PhysicalPlan> LowerSelect(const SelectStatement& stmt,
                                          SelectPlan plan,
                                          const Catalog* catalog,
                                          IndexManager* indexes,
                                          const CostParams& params) {
  (void)params;
  auto pp = std::make_unique<PhysicalPlan>();
  pp->logical = std::move(plan);
  pp->ctx = std::make_unique<ExecContext>();
  pp->ctx->catalog = catalog;
  ExecContext* ctx = pp->ctx.get();
  const std::vector<TablePlan>& tables = pp->logical.tables;

  std::unordered_set<std::string> seen_indexes;
  std::unique_ptr<PhysicalOperator> root;
  double outer_est_rows = 1.0;

  for (size_t level = 0; level < tables.size(); ++level) {
    const TablePlan& tp = tables[level];
    BuiltIndex* bi = FindBuiltIndex(indexes, tp);
    if (bi != nullptr) NoteIndexUse(bi, pp.get(), &seen_indexes);
    const bool index_bindable =
        bi != nullptr && PrefixBindable(*catalog, tables, level);

    if (level == 0) {
      if (index_bindable) {
        auto scan = std::make_unique<IndexScanOp>(ctx, tables, 0, bi);
        scan->set_estimates(tp.access.est_rows, tp.access.est_cost);
        root = std::move(scan);
      } else {
        auto scan = std::make_unique<SeqScanOp>(ctx, tables, 0);
        scan->set_estimates(tp.access.est_rows, tp.access.est_cost);
        root = std::move(scan);
      }
      outer_est_rows = tp.access.est_rows;
      continue;
    }

    const double join_est_rows =
        outer_est_rows * std::max(tp.access.est_match_rows, 0.0);
    const double join_est_cost = root->est_cost() + tp.access.est_cost;
    if (index_bindable) {
      auto inner = std::make_unique<IndexScanOp>(ctx, tables, level, bi);
      inner->set_estimates(tp.access.est_match_rows, tp.access.est_cost);
      auto join = std::make_unique<IndexNestedLoopJoinOp>(
          ctx, tables, level, std::move(root), std::move(inner));
      join->set_estimates(join_est_rows, join_est_cost);
      root = std::move(join);
    } else {
      // The planner's index pick may be unbindable at runtime (shadowed
      // join source); degrade to the hash/cartesian paths like the old
      // executor's fall-through did.
      std::vector<std::string> join_cols;
      std::vector<ColumnRef> join_sources;
      for (const ColumnCondition& c : tp.conditions) {
        if (c.join_source.has_value() && c.kind == ColumnCondition::kEq) {
          join_cols.push_back(c.column);
          join_sources.push_back(*c.join_source);
        }
      }
      auto inner = std::make_unique<SeqScanOp>(ctx, tables, level);
      inner->set_estimates(tp.access.est_rows, tp.access.est_cost);
      if (!join_cols.empty()) {
        auto join = std::make_unique<HashJoinOp>(
            ctx, tables, level, std::move(root), std::move(inner),
            std::move(join_cols), std::move(join_sources));
        join->set_estimates(join_est_rows, join_est_cost);
        root = std::move(join);
      } else {
        auto join = std::make_unique<NestedLoopJoinOp>(
            ctx, tables, level, std::move(root), std::move(inner));
        join->set_estimates(outer_est_rows * tp.access.est_rows,
                            join_est_cost);
        root = std::move(join);
      }
    }
    outer_est_rows = root->est_rows();
  }

  if (stmt.where != nullptr) {
    auto filter = std::make_unique<FilterOp>(ctx, tables, stmt.where.get(),
                                             std::move(root));
    filter->set_estimates(pp->logical.est_result_rows,
                          pp->logical.est_total_cost);
    root = std::move(filter);
  }

  const bool has_agg =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& it) { return it.agg != AggFunc::kNone; });

  if (has_agg) {
    auto agg = std::make_unique<HashAggregateOp>(
        ctx, tables, &stmt.items, &stmt.group_by, std::move(root));
    agg->set_estimates(pp->logical.est_result_rows,
                       pp->logical.est_total_cost);
    root = std::move(agg);
    if (!stmt.order_by.empty()) {
      // ORDER BY over grouped output: match order columns to select items
      // by name; unmatched columns are ignored (historical semantics).
      std::vector<std::pair<int, bool>> slot_keys;
      for (const OrderByItem& o : stmt.order_by) {
        for (size_t k = 0; k < stmt.items.size(); ++k) {
          if (!stmt.items[k].star &&
              stmt.items[k].column.column == o.column.column) {
            slot_keys.emplace_back(static_cast<int>(k), o.desc);
            break;
          }
        }
      }
      auto sort = std::make_unique<SortOp>(
          ctx, tables, &stmt.order_by, std::move(slot_keys),
          SortOp::Mode::kSlotKeys, std::move(root));
      sort->set_estimates(pp->logical.est_result_rows,
                          pp->logical.est_total_cost);
      root = std::move(sort);
    }
    if (stmt.limit >= 0) {
      const double capped =
          std::min(static_cast<double>(stmt.limit), root->est_rows());
      auto limit = std::make_unique<LimitOp>(
          static_cast<size_t>(stmt.limit), std::move(root));
      limit->set_estimates(capped, pp->logical.est_total_cost);
      root = std::move(limit);
    }
  } else {
    if (!stmt.order_by.empty()) {
      auto sort = std::make_unique<SortOp>(ctx, tables, &stmt.order_by,
                                           std::vector<std::pair<int, bool>>{},
                                           SortOp::Mode::kTupleKeys,
                                           std::move(root));
      sort->set_estimates(pp->logical.est_result_rows,
                          pp->logical.est_total_cost);
      root = std::move(sort);
    }
    if (stmt.limit >= 0) {
      const double capped =
          std::min(static_cast<double>(stmt.limit), root->est_rows());
      auto limit = std::make_unique<LimitOp>(
          static_cast<size_t>(stmt.limit), std::move(root));
      limit->set_estimates(capped, pp->logical.est_total_cost);
      root = std::move(limit);
    }
    auto project = std::make_unique<ProjectOp>(ctx, tables, &stmt.items,
                                               std::move(root));
    project->set_estimates(pp->logical.est_result_rows,
                           pp->logical.est_total_cost);
    root = std::move(project);
  }

  pp->root = std::move(root);
  return pp;
}

std::unique_ptr<PhysicalPlan> LowerWriteLookup(TablePlan tp,
                                               const Expr* where,
                                               const Catalog* catalog,
                                               IndexManager* indexes,
                                               const CostParams& params) {
  (void)params;
  auto pp = std::make_unique<PhysicalPlan>();
  pp->logical.tables.push_back(std::move(tp));
  pp->logical.est_result_rows = pp->logical.tables[0].access.est_rows;
  pp->logical.est_total_cost = pp->logical.tables[0].access.est_cost;
  pp->ctx = std::make_unique<ExecContext>();
  pp->ctx->catalog = catalog;
  ExecContext* ctx = pp->ctx.get();
  const std::vector<TablePlan>& tables = pp->logical.tables;
  const TablePlan& t0 = tables[0];

  BuiltIndex* bi = FindBuiltIndex(indexes, t0);
  std::unique_ptr<PhysicalOperator> root;
  // Write lookups bind key columns from literals only; an index without an
  // equality prefix cannot seed a probe, so fall back to a scan.
  if (bi != nullptr && t0.access.eq_prefix_len > 0) {
    std::unordered_set<std::string> seen;
    NoteIndexUse(bi, pp.get(), &seen);
    auto scan = std::make_unique<IndexScanOp>(ctx, tables, 0, bi);
    scan->set_estimates(t0.access.est_rows, t0.access.est_cost);
    root = std::move(scan);
  } else {
    auto scan = std::make_unique<SeqScanOp>(ctx, tables, 0);
    scan->set_estimates(t0.access.est_rows, t0.access.est_cost);
    root = std::move(scan);
  }
  if (where != nullptr) {
    auto filter =
        std::make_unique<FilterOp>(ctx, tables, where, std::move(root));
    filter->set_estimates(t0.access.est_rows, t0.access.est_cost);
    root = std::move(filter);
  }
  pp->root = std::move(root);
  return pp;
}

}  // namespace autoindex
