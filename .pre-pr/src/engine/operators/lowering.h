#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/operators/operator.h"
#include "index/index_manager.h"

namespace autoindex {

// An executable physical plan: the operator tree plus the state it borrows.
// The logical plan is owned here because operators keep references into
// `logical.tables` (conditions, access decisions) for their lifetime.
struct PhysicalPlan {
  SelectPlan logical;
  std::unique_ptr<ExecContext> ctx;
  std::unique_ptr<PhysicalOperator> root;
  // Display names of the real indexes this plan probes, deduplicated, in
  // plan (join) order — a self-join probing one index twice lists it once.
  std::vector<std::string> indexes_used;
  bool used_index = false;
};

// Lowers a planned SELECT into a physical operator tree:
//
//   Project / HashAggregate [+ Sort] [+ Limit]
//     Filter                       (full WHERE, when present)
//       join chain                 (left-deep, one operator per level)
//         SeqScan | IndexScan      (leftmost table)
//
// Join levels become IndexNestedLoopJoin when the planner chose an index
// whose key prefix is statically bindable from the outer tuple, HashJoin
// when equality join conditions exist, and a cartesian NestedLoopJoin
// otherwise. Side effects mirror execution: each probed index gets
// RecordUse() here, once per level.
std::unique_ptr<PhysicalPlan> LowerSelect(const SelectStatement& stmt,
                                          SelectPlan plan,
                                          const Catalog* catalog,
                                          IndexManager* indexes,
                                          const CostParams& params);

// Lowers the row-location part of UPDATE/DELETE: a single scan (index when
// the planner found a usable equality prefix) under an optional Filter with
// the full WHERE. Matched RowIds surface through ExecTuple::rids.
std::unique_ptr<PhysicalPlan> LowerWriteLookup(TablePlan tp,
                                               const Expr* where,
                                               const Catalog* catalog,
                                               IndexManager* indexes,
                                               const CostParams& params);

}  // namespace autoindex
