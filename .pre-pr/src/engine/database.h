#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/what_if.h"
#include "index/index_manager.h"
#include "sql/parser.h"
#include "stats/stats_manager.h"
#include "storage/catalog.h"

namespace autoindex {

// The top-level database façade: catalog + indexes + statistics + executor
// + what-if cost model. This is the substrate AutoIndex manages — the role
// openGauss plays in the paper.
class Database {
 public:
  explicit Database(CostParams params = CostParams());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL ---
  StatusOr<HeapTable*> CreateTable(const std::string& name, Schema schema);
  Status CreateIndex(const IndexDef& def);
  Status DropIndex(const std::string& key_or_name);
  bool HasIndex(const IndexDef& def) const {
    return index_manager_->HasIndex(def);
  }

  // --- DML ---
  // Parses and executes one SQL string.
  StatusOr<ExecResult> Execute(const std::string& sql);
  // Executes a pre-parsed statement (avoids re-parsing in tight loops).
  StatusOr<ExecResult> Execute(const Statement& stmt);

  // Bulk load rows without per-statement accounting (population fast path).
  Status BulkInsert(const std::string& table, std::vector<Row> rows);

  // Refreshes optimizer statistics (call after bulk loads).
  void Analyze() { stats_manager_->AnalyzeAll(); }
  void Analyze(const std::string& table) { stats_manager_->Analyze(table); }

  // --- What-if ---
  // Estimated cost of a statement under an arbitrary index configuration.
  CostBreakdown WhatIfCost(const Statement& stmt,
                           const IndexConfig& config) const {
    return what_if_->EstimateStatement(stmt, config);
  }

  // The configuration matching the currently built indexes.
  IndexConfig CurrentConfig() const;

  // --- Correctness tooling (src/check/) ---
  // Debug-mode invariant hook: when installed, it runs after every
  // successful mutating statement, after BulkInsert, and after index DDL;
  // a failure is surfaced as that operation's status. Installed by
  // InstallDebugChecks() in src/check/ (the hook is a callback so the
  // engine never depends on the check module); null disables.
  using InvariantHook = std::function<Status(const Database&)>;
  void set_invariant_hook(InvariantHook hook) {
    invariant_hook_ = std::move(hook);
  }
  bool debug_checks_enabled() const { return invariant_hook_ != nullptr; }
  // Runs the hook now; Ok when none is installed.
  Status RunInvariantHook() const {
    return invariant_hook_ ? invariant_hook_(*this) : Status::Ok();
  }

  // --- Execution feedback ---
  // Forwards per-access-path (estimated, observed) pairs of every executed
  // statement to the given hook; installed by AutoIndexManager when
  // cost-model learning is enabled.
  void set_execution_feedback_hook(Executor::FeedbackHook hook) {
    executor_->set_feedback_hook(std::move(hook));
  }

  // --- Introspection ---
  Executor& executor() { return *executor_; }
  const Executor& executor() const { return *executor_; }
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  IndexManager& index_manager() { return *index_manager_; }
  const IndexManager& index_manager() const { return *index_manager_; }
  StatsManager& stats_manager() { return *stats_manager_; }
  const WhatIfCostModel& what_if() const { return *what_if_; }
  const CostParams& params() const { return params_; }

 private:
  CostParams params_;
  InvariantHook invariant_hook_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<IndexManager> index_manager_;
  std::unique_ptr<StatsManager> stats_manager_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<WhatIfCostModel> what_if_;
};

}  // namespace autoindex
