#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sql/dnf.h"
#include "util/string_util.h"

namespace autoindex {

int ResolveColumnTable(const ColumnRef& col,
                       const std::vector<TableRef>& from,
                       const Catalog& catalog) {
  if (!col.table.empty()) {
    for (size_t i = 0; i < from.size(); ++i) {
      if (from[i].alias == col.table || from[i].table == col.table) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  int found = -1;
  for (size_t i = 0; i < from.size(); ++i) {
    const HeapTable* t = catalog.GetTable(from[i].table);
    if (t != nullptr && t->schema().HasColumn(col.column)) {
      if (found >= 0) return found;  // ambiguous: first match wins
      found = static_cast<int>(i);
    }
  }
  return found;
}

namespace {

// True when `col` belongs to (table, alias) in the current FROM scope.
bool ColTargets(const ColumnRef& col, const std::string& table,
                const std::string& alias, const Catalog& catalog) {
  if (!col.table.empty()) return col.table == alias || col.table == table;
  const HeapTable* t = catalog.GetTable(table);
  return t != nullptr && t->schema().HasColumn(col.column);
}

}  // namespace

std::vector<ColumnCondition> Planner::ExtractConditions(
    const Expr* where, const std::string& table, const std::string& alias,
    const std::vector<TableRef>& earlier) const {
  std::vector<ColumnCondition> conditions;
  if (where == nullptr) return conditions;
  std::vector<const Expr*> atoms;
  if (!ExtractConjunctionAtoms(*where, &atoms)) {
    // OR at the top level: no sargable conjuncts; the executor filters with
    // the full predicate. (DNF-based candidate generation still sees the
    // ORs — this only affects access-path choice.)
    return conditions;
  }
  // Does this column belong to one of the already-placed tables? Qualified
  // names match on alias/table; unqualified names are resolved by probing
  // the earlier tables' schemas.
  auto is_earlier = [&](const ColumnRef& col) {
    for (const TableRef& ref : earlier) {
      if (!col.table.empty()) {
        if (col.table == ref.alias || col.table == ref.table) return true;
        continue;
      }
      const HeapTable* t = catalog_->GetTable(ref.table);
      if (t != nullptr && t->schema().HasColumn(col.column)) return true;
    }
    return false;
  };
  for (const Expr* atom : atoms) {
    if (atom->kind == ExprKind::kCompare) {
      const Expr& lhs = *atom->children[0];
      const Expr& rhs = *atom->children[1];
      // column-column equality spanning tables -> join condition.
      if (lhs.kind == ExprKind::kColumn && rhs.kind == ExprKind::kColumn &&
          atom->op == CompareOp::kEq) {
        const bool lhs_here = ColTargets(lhs.column, table, alias, *catalog_);
        const bool rhs_here = ColTargets(rhs.column, table, alias, *catalog_);
        if (lhs_here && is_earlier(rhs.column)) {
          ColumnCondition c;
          c.column = lhs.column.column;
          c.kind = ColumnCondition::kEq;
          c.join_source = rhs.column;
          c.atom = atom;
          conditions.push_back(std::move(c));
        } else if (rhs_here && is_earlier(lhs.column)) {
          ColumnCondition c;
          c.column = rhs.column.column;
          c.kind = ColumnCondition::kEq;
          c.join_source = lhs.column;
          c.atom = atom;
          conditions.push_back(std::move(c));
        }
        continue;
      }
      // column <op> literal (either side).
      const Expr* col_side = nullptr;
      const Expr* lit_side = nullptr;
      CompareOp op = atom->op;
      if (lhs.kind == ExprKind::kColumn && rhs.kind == ExprKind::kLiteral) {
        col_side = &lhs;
        lit_side = &rhs;
      } else if (lhs.kind == ExprKind::kLiteral &&
                 rhs.kind == ExprKind::kColumn) {
        col_side = &rhs;
        lit_side = &lhs;
        op = SwapCompareOp(op);
      } else {
        continue;
      }
      if (!ColTargets(col_side->column, table, alias, *catalog_)) continue;
      if (!col_side->column.table.empty() &&
          col_side->column.table != alias &&
          col_side->column.table != table) {
        continue;
      }
      ColumnCondition c;
      c.column = col_side->column.column;
      c.literal = lit_side->literal;
      c.atom = atom;
      switch (op) {
        case CompareOp::kEq:
          c.kind = ColumnCondition::kEq;
          break;
        case CompareOp::kGt:
          c.kind = ColumnCondition::kRangeLo;
          c.inclusive = false;
          break;
        case CompareOp::kGe:
          c.kind = ColumnCondition::kRangeLo;
          c.inclusive = true;
          break;
        case CompareOp::kLt:
          c.kind = ColumnCondition::kRangeHi;
          c.inclusive = false;
          break;
        case CompareOp::kLe:
          c.kind = ColumnCondition::kRangeHi;
          c.inclusive = true;
          break;
        default:
          c.kind = ColumnCondition::kOther;
          break;
      }
      conditions.push_back(std::move(c));
    } else if (atom->kind == ExprKind::kBetween &&
               atom->children[0]->kind == ExprKind::kColumn) {
      const ColumnRef& col = atom->children[0]->column;
      if (!ColTargets(col, table, alias, *catalog_)) continue;
      ColumnCondition lo;
      lo.column = col.column;
      lo.kind = ColumnCondition::kRangeLo;
      lo.literal = atom->children[1]->literal;
      lo.atom = atom;
      conditions.push_back(std::move(lo));
      ColumnCondition hi;
      hi.column = col.column;
      hi.kind = ColumnCondition::kRangeHi;
      hi.literal = atom->children[2]->literal;
      hi.atom = atom;
      conditions.push_back(std::move(hi));
    } else if (atom->kind == ExprKind::kInList && !atom->negated &&
               atom->children[0]->kind == ExprKind::kColumn) {
      const ColumnRef& col = atom->children[0]->column;
      if (!ColTargets(col, table, alias, *catalog_)) continue;
      ColumnCondition c;
      c.column = col.column;
      c.kind = ColumnCondition::kIn;
      c.in_values = atom->in_list;
      c.atom = atom;
      conditions.push_back(std::move(c));
    }
  }
  return conditions;
}

double Planner::EstimateConditionSelectivity(
    const std::string& table, const ColumnCondition& cond) const {
  const ColumnStats* stats = stats_->GetColumnStats(table, cond.column);
  switch (cond.kind) {
    case ColumnCondition::kEq:
      if (cond.join_source.has_value()) {
        // Join equality: one match per distinct key on average.
        return stats != nullptr && stats->num_distinct() > 0
                   ? 1.0 / static_cast<double>(stats->num_distinct())
                   : 0.01;
      }
      return stats != nullptr ? stats->Selectivity(CompareOp::kEq, cond.literal)
                              : 0.01;
    case ColumnCondition::kRangeLo:
      return stats != nullptr
                 ? stats->Selectivity(
                       cond.inclusive ? CompareOp::kGe : CompareOp::kGt,
                       cond.literal)
                 : 0.33;
    case ColumnCondition::kRangeHi:
      return stats != nullptr
                 ? stats->Selectivity(
                       cond.inclusive ? CompareOp::kLe : CompareOp::kLt,
                       cond.literal)
                 : 0.33;
    case ColumnCondition::kIn:
      return stats != nullptr ? stats->InListSelectivity(cond.in_values) : 0.1;
    case ColumnCondition::kOther:
      return 0.5;
  }
  return 0.5;
}

double Planner::EstimateHeapFetchPages(const std::string& table,
                                       const std::string& column,
                                       double match_rows) const {
  const HeapTable* t = catalog_->GetTable(table);
  if (t == nullptr) return match_rows;
  const double table_pages = static_cast<double>(t->NumPages());
  const double random_pages = std::min(table_pages, match_rows);
  const double clustered_pages = std::max(
      1.0, match_rows / static_cast<double>(t->RowsPerPage()));
  const ColumnStats* stats = stats_->GetColumnStats(table, column);
  const double corr = stats == nullptr ? 0.0 : stats->correlation();
  const double corr2 = corr * corr;
  return corr2 * clustered_pages + (1.0 - corr2) * random_pages;
}

AccessDecision Planner::ChooseAccessPath(
    const std::string& table, const std::string& alias,
    const std::vector<ColumnCondition>& conditions,
    const std::vector<IndexStatsView>& table_indexes) const {
  (void)alias;
  const HeapTable* t = catalog_->GetTable(table);
  AccessDecision best;
  const double table_rows =
      t == nullptr ? 0.0 : static_cast<double>(t->num_rows());
  const double table_pages =
      t == nullptr ? 0.0 : static_cast<double>(t->NumPages());

  // Selectivity of ALL table-local conditions (applies to any path).
  double full_sel = 1.0;
  for (const ColumnCondition& c : conditions) {
    full_sel *= EstimateConditionSelectivity(table, c);
  }
  const double result_rows = std::max(0.0, table_rows * full_sel);

  // Sequential scan baseline.
  best.use_index = false;
  best.est_rows = result_rows;
  best.est_match_rows = table_rows;
  best.est_cost = table_pages * params_.seq_page_cost +
                  table_rows * params_.cpu_tuple_cost;

  // Index paths: match the longest leading equality prefix, optionally one
  // range on the next column (classic B+Tree sargability).
  for (const IndexStatsView& view : table_indexes) {
    size_t eq_len = 0;
    double prefix_sel = 1.0;
    bool has_range = false;
    for (const std::string& icol : view.def.columns) {
      const ColumnCondition* eq = nullptr;
      const ColumnCondition* range = nullptr;
      for (const ColumnCondition& c : conditions) {
        if (c.column != icol) continue;
        if (c.kind == ColumnCondition::kEq) eq = &c;
        if (c.kind == ColumnCondition::kRangeLo ||
            c.kind == ColumnCondition::kRangeHi) {
          range = &c;
        }
      }
      if (eq != nullptr) {
        prefix_sel *= EstimateConditionSelectivity(table, *eq);
        ++eq_len;
        continue;
      }
      if (range != nullptr) {
        // Combine every range condition on this column.
        double range_sel = 1.0;
        for (const ColumnCondition& c : conditions) {
          if (c.column == icol && (c.kind == ColumnCondition::kRangeLo ||
                                   c.kind == ColumnCondition::kRangeHi)) {
            range_sel *= EstimateConditionSelectivity(table, c);
          }
        }
        prefix_sel *= range_sel;
        has_range = true;
      }
      break;  // prefix broken
    }
    if (eq_len == 0 && !has_range) continue;  // unusable index

    const double match_rows = std::max(1.0, table_rows * prefix_sel);
    const double height = static_cast<double>(view.height);
    // Local indexes pay one descent per partition unless an equality on
    // the partition column pins the shard (Sec. III index type selection).
    double descents = 1.0;
    if (view.partitions > 1 && t != nullptr && t->partitioned()) {
      const std::string& pcol =
          t->schema()
              .column(static_cast<size_t>(t->partition_column()))
              .name;
      bool pruned = false;
      for (const ColumnCondition& c : conditions) {
        if (c.column == pcol && c.kind == ColumnCondition::kEq) {
          pruned = true;
          break;
        }
      }
      if (!pruned) descents = static_cast<double>(view.partitions);
    }
    // Index descent + leaf traversal + heap fetches blended by physical
    // correlation; classic what-if costing.
    const double leaf_pages =
        std::max(1.0, match_rows / static_cast<double>(LeafCapacityForWidth(
                          t == nullptr ? 8 : view.def.KeyWidth(t->schema()))));
    const double heap_pages =
        EstimateHeapFetchPages(table, view.def.columns[0], match_rows);
    double cost = (descents * height + leaf_pages) * params_.random_page_cost +
                  heap_pages * params_.random_page_cost +
                  match_rows * (params_.cpu_index_tuple_cost +
                                params_.cpu_tuple_cost);
    if (cost < best.est_cost) {
      best.use_index = true;
      best.index = view.def;
      best.eq_prefix_len = eq_len;
      best.has_range = has_range;
      best.est_rows = result_rows;
      best.est_match_rows = match_rows;
      best.est_cost = cost;
    }
  }
  return best;
}

StatusOr<SelectPlan> Planner::PlanSelect(
    const SelectStatement& stmt,
    const std::vector<IndexStatsView>& config) const {
  SelectPlan plan;
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT without FROM");
  }
  for (const TableRef& ref : stmt.from) {
    if (catalog_->GetTable(ref.table) == nullptr) {
      return Status::NotFound("no such table: " + ref.table);
    }
  }

  // Greedy join ordering: repeatedly pick the unplaced table with the
  // smallest estimated cardinality among those connected to the placed set
  // (or any table when none is connected yet / first pick).
  const size_t n = stmt.from.size();
  std::vector<bool> placed(n, false);
  std::vector<TableRef> earlier;
  for (size_t step = 0; step < n; ++step) {
    int best_idx = -1;
    double best_card = 0.0;
    bool best_connected = false;
    std::vector<ColumnCondition> best_conditions;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      const TableRef& ref = stmt.from[i];
      std::vector<ColumnCondition> conds = ExtractConditions(
          stmt.where.get(), ref.table, ref.alias, earlier);
      bool connected = false;
      double sel = 1.0;
      for (const ColumnCondition& c : conds) {
        if (c.join_source.has_value()) connected = true;
        sel *= EstimateConditionSelectivity(ref.table, c);
      }
      const HeapTable* t = catalog_->GetTable(ref.table);
      const double card = std::max(1.0, t->num_rows() * sel);
      // Prefer connected tables after the first placement to avoid
      // cartesian products; among candidates pick the smallest output.
      const bool better =
          best_idx < 0 ||
          (connected && !best_connected) ||
          (connected == best_connected && card < best_card);
      if ((step == 0 || connected || best_idx < 0) && better) {
        best_idx = static_cast<int>(i);
        best_card = card;
        best_connected = connected;
        best_conditions = std::move(conds);
      }
    }
    if (best_idx < 0) {
      // Disconnected remainder: pick the smallest-cardinality table.
      for (size_t i = 0; i < n; ++i) {
        if (!placed[i]) {
          best_idx = static_cast<int>(i);
          best_conditions = ExtractConditions(stmt.where.get(),
                                              stmt.from[i].table,
                                              stmt.from[i].alias, earlier);
          break;
        }
      }
    }
    placed[best_idx] = true;
    TablePlan tp;
    tp.ref = stmt.from[best_idx];
    tp.conditions = std::move(best_conditions);
    // Index config entries for this table.
    std::vector<IndexStatsView> table_indexes;
    for (const IndexStatsView& v : config) {
      if (v.def.table == tp.ref.table) table_indexes.push_back(v);
    }
    tp.access = ChooseAccessPath(tp.ref.table, tp.ref.alias, tp.conditions,
                                 table_indexes);
    earlier.push_back(tp.ref);
    plan.tables.push_back(std::move(tp));
  }

  // Estimated cost: outer cardinality times inner access cost per level.
  // ChooseAccessPath prices a single probe; here, with the outer
  // cardinality known, a join level's index choice is revisited against
  // the hash-join alternative (build once + cheap probes) — otherwise
  // per-tuple random index descents get chosen even when thousands of
  // probes would dwarf one build scan.
  double outer_rows = 1.0;
  double total = 0.0;
  for (TablePlan& tp : plan.tables) {
    bool has_join = false;
    for (const ColumnCondition& c : tp.conditions) {
      if (c.join_source.has_value() &&
          c.kind == ColumnCondition::kEq) {
        has_join = true;
      }
    }
    if (tp.access.use_index && has_join && outer_rows > 1.0) {
      const HeapTable* t = catalog_->GetTable(tp.ref.table);
      const double index_total = outer_rows * tp.access.est_cost;
      const double hash_total =
          t->NumPages() * params_.seq_page_cost +
          t->num_rows() * params_.cpu_tuple_cost +
          outer_rows * params_.cpu_operator_cost;
      if (hash_total < index_total) tp.access.use_index = false;
    }
    if (tp.access.use_index || !has_join) {
      total += outer_rows * tp.access.est_cost;
    } else {
      // Hash join: build once, probe per outer row.
      const HeapTable* t = catalog_->GetTable(tp.ref.table);
      total += t->NumPages() * params_.seq_page_cost +
               t->num_rows() * params_.cpu_tuple_cost +
               outer_rows * params_.cpu_operator_cost;
    }
    // est_rows already folds the join-equality selectivity (1/distinct),
    // so expected matches per outer row times outer cardinality is simply
    // the product.
    outer_rows = std::max(1.0, outer_rows * tp.access.est_rows);
  }
  plan.est_result_rows = outer_rows;
  plan.est_total_cost = total;
  return plan;
}

StatusOr<TablePlan> Planner::PlanWriteLookup(
    const std::string& table, const Expr* where,
    const std::vector<IndexStatsView>& config) const {
  if (catalog_->GetTable(table) == nullptr) {
    return Status::NotFound("no such table: " + table);
  }
  TablePlan tp;
  tp.ref = TableRef(table);
  tp.conditions = ExtractConditions(where, table, table, {});
  std::vector<IndexStatsView> table_indexes;
  for (const IndexStatsView& v : config) {
    if (v.def.table == ToLower(table)) table_indexes.push_back(v);
  }
  tp.access = ChooseAccessPath(table, table, tp.conditions, table_indexes);
  return tp;
}

}  // namespace autoindex
