#pragma once

#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "engine/planner.h"
#include "index/index_manager.h"
#include "sql/statement.h"
#include "stats/stats_manager.h"

namespace autoindex {

// An index configuration a what-if call prices against: an arbitrary set
// of index definitions, independent of what is physically built. This is
// how AutoIndex prices both additions (hypothetical indexes, C2.1) and
// removals (configs that omit existing indexes).
class IndexConfig {
 public:
  IndexConfig() = default;
  explicit IndexConfig(std::vector<IndexDef> defs);

  // Materializes stats views for the defs using table statistics (entry
  // counts, estimated heights/sizes).
  std::vector<IndexStatsView> ToStatsViews(const Catalog& catalog) const;

  const std::vector<IndexDef>& defs() const { return defs_; }
  bool Contains(const IndexDef& def) const;
  void Add(IndexDef def);
  void Remove(const IndexDef& def);

  // Total estimated bytes of all indexes in the config.
  size_t TotalBytes(const Catalog& catalog) const;

 private:
  std::vector<IndexDef> defs_;
};

// Prices statements under arbitrary index configurations without executing
// them — the substrate equivalent of hypopg + EXPLAIN. Read costs come from
// the planner's access-path estimates; write costs apply the paper's
// maintenance formulas (Sec. V-A) per affected index.
class WhatIfCostModel {
 public:
  WhatIfCostModel(Catalog* catalog, StatsManager* stats,
                  const CostParams& params)
      : catalog_(catalog), stats_(stats), params_(params),
        planner_(catalog, stats, params) {}

  // Estimated cost breakdown of one statement under `config`.
  CostBreakdown EstimateStatement(const Statement& stmt,
                                  const IndexConfig& config) const;

  // Convenience: total scalar cost.
  double EstimateStatementCost(const Statement& stmt,
                               const IndexConfig& config) const {
    return EstimateStatement(stmt, config).Total();
  }

  const CostParams& params() const { return params_; }

 private:
  CostBreakdown EstimateSelect(const SelectStatement& stmt,
                               const std::vector<IndexStatsView>& views) const;
  CostBreakdown EstimateWrite(const Statement& stmt,
                              const std::vector<IndexStatsView>& views) const;

  Catalog* catalog_;
  StatsManager* stats_;
  CostParams params_;
  Planner planner_;
};

}  // namespace autoindex
