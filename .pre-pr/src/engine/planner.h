#pragma once

#include <optional>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "index/index_manager.h"
#include "sql/statement.h"
#include "stats/stats_manager.h"

namespace autoindex {

// One atomic condition on a column of a specific table, extracted from the
// WHERE conjunction. `join_source` marks equality with a column of a table
// earlier in the join order (the value becomes known per outer tuple).
struct ColumnCondition {
  std::string column;
  enum Kind { kEq, kRangeLo, kRangeHi, kIn, kOther } kind = kOther;
  bool inclusive = true;            // for ranges
  Value literal;                    // for kEq/kRangeLo/kRangeHi
  std::vector<Value> in_values;     // for kIn
  std::optional<ColumnRef> join_source;  // equality with an earlier table
  const Expr* atom = nullptr;       // borrowed pointer into the statement
};

// The planner's choice for accessing one table.
struct AccessDecision {
  bool use_index = false;
  IndexDef index;           // valid when use_index
  size_t eq_prefix_len = 0; // leading index columns bound by equality
  bool has_range = false;   // range bound on the column after the prefix
  double est_rows = 0.0;    // rows surviving all table-local predicates
  double est_match_rows = 0.0;  // rows fetched via the index prefix
  double est_cost = 0.0;    // access-path cost (read side only)
};

// Per-table information the planner derives for a SELECT.
struct TablePlan {
  TableRef ref;
  std::vector<ColumnCondition> conditions;  // all table-local conditions
  AccessDecision access;
};

// A left-deep plan over the FROM list (joined in `tables` order).
struct SelectPlan {
  std::vector<TablePlan> tables;
  double est_total_cost = 0.0;
  double est_result_rows = 0.0;
};

// Builds access plans from statistics only — usable both for real
// execution (config = built indexes) and what-if estimation (config
// includes hypothetical indexes). Stateless apart from borrowed managers.
class Planner {
 public:
  Planner(Catalog* catalog, StatsManager* stats, const CostParams& params)
      : catalog_(catalog), stats_(stats), params_(params) {}

  // Plans a SELECT against the given per-table index configurations.
  // `config` maps each table (by real name) to the indexes assumed
  // available. Join order: tables are greedily ordered by estimated
  // filtered cardinality, except that tables only reachable by join
  // predicates follow their producers.
  StatusOr<SelectPlan> PlanSelect(
      const SelectStatement& stmt,
      const std::vector<IndexStatsView>& config) const;

  // Plans the row-location part of UPDATE/DELETE (single table).
  StatusOr<TablePlan> PlanWriteLookup(
      const std::string& table, const Expr* where,
      const std::vector<IndexStatsView>& config) const;

  // Chooses the cheapest access path for one table given its conditions.
  AccessDecision ChooseAccessPath(
      const std::string& table, const std::string& alias,
      const std::vector<ColumnCondition>& conditions,
      const std::vector<IndexStatsView>& table_indexes) const;

  // Extracts table-local conditions for `alias` out of a WHERE conjunction.
  // Atoms whose columns belong to other tables are skipped; equality atoms
  // with a column of a table in `earlier` (matched by qualifier, or by
  // probing schemas for unqualified names) become join conditions.
  std::vector<ColumnCondition> ExtractConditions(
      const Expr* where, const std::string& table, const std::string& alias,
      const std::vector<TableRef>& earlier) const;

  // Expected heap pages fetched for `match_rows` rows located via an index
  // whose leading column is `column`. Interpolates between the clustered
  // (contiguous pages) and random (one page per row) extremes with the
  // column's physical correlation squared — the PostgreSQL approach.
  double EstimateHeapFetchPages(const std::string& table,
                                const std::string& column,
                                double match_rows) const;

  const CostParams& params() const { return params_; }

 private:
  double EstimateConditionSelectivity(const std::string& table,
                                      const ColumnCondition& cond) const;

  Catalog* catalog_;
  StatsManager* stats_;
  CostParams params_;
};

// Helper: resolves which FROM-list alias a column reference belongs to.
// Returns -1 when ambiguous/unknown. Unqualified columns are resolved by
// probing each table's schema.
int ResolveColumnTable(const ColumnRef& col,
                       const std::vector<TableRef>& from,
                       const Catalog& catalog);

}  // namespace autoindex
