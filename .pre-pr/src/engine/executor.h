#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "engine/operators/lowering.h"
#include "engine/operators/operator.h"
#include "engine/planner.h"
#include "index/index_manager.h"
#include "sql/statement.h"
#include "stats/stats_manager.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace autoindex {

// The outcome of executing one statement: result rows (SELECT only) plus
// the raw execution counters the cost model prices.
struct ExecResult {
  std::vector<Row> rows;
  ExecStats stats;
  // The plan's chosen indexes (display names), deduplicated, in plan
  // order, for diagnostics.
  std::vector<std::string> indexes_used;
  // Snapshot of the executed operator tree with per-operator counters
  // (absent for INSERT, which has no read pipeline). EXPLAIN ANALYZE
  // renders this; the plan validator cross-checks it against `stats`.
  std::optional<PlanNodeSnapshot> plan;
  // Per-access-path (estimated, observed) pairs collected from the scan
  // operators — the feedback the benefit estimator consumes.
  std::vector<AccessPathFeedback> feedback;
};

// Executes statements by lowering the planner's output into a Volcano-style
// physical operator tree (src/engine/operators/) and pulling it to
// exhaustion. Statement-level ExecStats is derived by summing the
// per-operator counters, so the two accountings cannot drift apart.
class Executor {
 public:
  using FeedbackHook =
      std::function<void(const std::vector<AccessPathFeedback>&)>;

  Executor(Catalog* catalog, IndexManager* indexes, StatsManager* stats,
           const CostParams& params)
      : catalog_(catalog),
        indexes_(indexes),
        stats_(stats),
        planner_(catalog, stats, params),
        params_(params) {}

  StatusOr<ExecResult> Execute(const Statement& stmt);

  const Planner& planner() const { return planner_; }

  // Installed by the manager when cost-model learning is on: receives the
  // access-path feedback of every executed statement that ran a pipeline.
  void set_feedback_hook(FeedbackHook hook) { feedback_hook_ = std::move(hook); }

  // The last executed read pipeline and the statement-level stats it
  // summed into — what the PhysicalPlanValidator checks. Empty until a
  // SELECT/UPDATE/DELETE runs (INSERT clears it).
  const std::optional<PlanNodeSnapshot>& last_plan() const {
    return last_plan_;
  }
  const ExecStats& last_plan_stats() const { return last_plan_stats_; }

  // Test hook: lets check_test corrupt the retained snapshot to prove the
  // validator catches structural and accounting damage.
  PlanNodeSnapshot* TestOnlyMutableLastPlan() {
    return last_plan_.has_value() ? &*last_plan_ : nullptr;
  }

 private:
  StatusOr<ExecResult> ExecuteSelect(const SelectStatement& stmt);
  StatusOr<ExecResult> ExecuteInsert(const InsertStatement& stmt);
  StatusOr<ExecResult> ExecuteUpdate(const UpdateStatement& stmt);
  StatusOr<ExecResult> ExecuteDelete(const DeleteStatement& stmt);

  // Runs the row-location pipeline of a write statement's WHERE: fills the
  // read-side counters, plan snapshot, and feedback of *result and returns
  // the matched RowIds.
  StatusOr<std::vector<RowId>> LookupRows(const std::string& table,
                                          const Expr* where,
                                          ExecResult* result);

  // Current built-index stats for a table (the real execution config).
  std::vector<IndexStatsView> BuiltConfig(const std::string& table) const;

  void FinishStatement(const ExecResult& result);

  Catalog* catalog_;
  IndexManager* indexes_;
  StatsManager* stats_;
  Planner planner_;
  CostParams params_;
  FeedbackHook feedback_hook_;
  std::optional<PlanNodeSnapshot> last_plan_;
  ExecStats last_plan_stats_;
};

}  // namespace autoindex
