#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace autoindex {

// Engine cost hyper-parameters (Sec. V-A of the paper; defaults follow the
// PostgreSQL/openGauss conventions the paper builds on).
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_operator_cost = 0.0025;
  double cpu_index_tuple_cost = 0.005;
};

// The paper's index-update CPU cost (Sec. V-A):
//   t_start   = (ceil(log2 N) + (H+1)*50) * cpu_operator_cost
//   t_running = N_insert * cpu_index_tuple_cost
// N = index entries, H = tree height, N_insert = tuples inserted/updated.
double IndexUpdateCpuCost(size_t num_entries, size_t height,
                          size_t num_insert, const CostParams& params);

// IO cost of touching `pages` pages sequentially / randomly.
double SeqIoCost(size_t pages, const CostParams& params);
double RandomIoCost(size_t pages, const CostParams& params);

// Aggregated cost of one statement execution, split the way the paper's
// estimator consumes it: data-processing cost C_data (read-side IO+CPU),
// index-maintenance IO C_io and CPU C_cpu (write-side).
struct CostBreakdown {
  double data_io = 0.0;    // heap + index pages read
  double data_cpu = 0.0;   // tuples examined, sort/agg work
  double maint_io = 0.0;   // index pages dirtied by writes (C^io)
  double maint_cpu = 0.0;  // index-update CPU (C^cpu)

  double CData() const { return data_io + data_cpu; }
  double Total() const { return data_io + data_cpu + maint_io + maint_cpu; }

  // Feature vector {C_data, C_io, C_cpu} consumed by the learned estimator
  // (Sec. V-B).
  std::vector<double> Features() const {
    return {CData(), maint_io, maint_cpu};
  }

  CostBreakdown& operator+=(const CostBreakdown& o) {
    data_io += o.data_io;
    data_cpu += o.data_cpu;
    maint_io += o.maint_io;
    maint_cpu += o.maint_cpu;
    return *this;
  }
};

// Raw execution counters produced by the executor; ToCost() prices them.
struct ExecStats {
  size_t heap_pages_read = 0;
  size_t index_pages_read = 0;
  size_t tuples_examined = 0;   // heap tuples materialized/filtered
  size_t index_tuples_read = 0; // index entries touched by scans
  size_t rows_returned = 0;
  size_t sort_rows = 0;   // rows passed through sort/group operators
  size_t pages_written = 0;       // heap pages dirtied
  size_t index_entries_written = 0;
  size_t index_pages_written = 0; // leaf writes + splits
  double maint_cpu_cost = 0.0;    // accumulated via IndexUpdateCpuCost
  bool used_index = false;

  CostBreakdown ToCost(const CostParams& params) const;

  ExecStats& operator+=(const ExecStats& o);
};

}  // namespace autoindex
