#pragma once

#include <string>

#include "engine/database.h"
#include "sql/statement.h"

namespace autoindex {

// Renders the plan the engine would run for a statement under a given
// index configuration — access path per table (seq scan / index scan with
// the matched prefix / hash join), join order, and estimated
// rows/costs. The default config is the currently built index set.
//
//   EXPLAIN SELECT ... =>
//     -> index scan on orders via idx_orders_customer_id
//          prefix: customer_id = ?  (est. 10.0 rows, cost 12.4)
//     -> hash join to items on item_id (est. 40.0 rows)
//     estimated total cost: 52.4
std::string ExplainStatement(const Database& db, const Statement& stmt);
std::string ExplainStatement(const Database& db, const Statement& stmt,
                             const IndexConfig& config);

// Parses and explains one SQL string.
StatusOr<std::string> ExplainSql(const Database& db, const std::string& sql);

// Renders an executed operator-tree snapshot: one line per operator with
// the planner's estimates next to the measured counters.
//
//   -> Project a, b  (est. 10.0 rows)  (actual: rows=10)
//     -> IndexScan on t via idx_t_a (eq prefix 1)  (est. 10.0 rows,
//        cost 12.4)  (actual: rows=10, heap_pages=3, index_pages=2, ...)
std::string RenderPlanSnapshot(const PlanNodeSnapshot& node);

// EXPLAIN ANALYZE: actually executes the statement, then renders the
// per-operator tree with estimated vs. measured rows/costs plus a footer
// with the statement's priced cost. Mutating statements DO mutate the
// database, like the real thing.
StatusOr<std::string> ExplainAnalyzeStatement(Database& db,
                                              const Statement& stmt);

// Parses and EXPLAIN ANALYZEs one SQL string.
StatusOr<std::string> ExplainAnalyzeSql(Database& db, const std::string& sql);

}  // namespace autoindex
