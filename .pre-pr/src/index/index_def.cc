#include "index/index_def.h"

#include <algorithm>
#include <cmath>

#include "storage/table.h"
#include "util/string_util.h"

namespace autoindex {

const char* IndexKindName(IndexKind kind) {
  return kind == IndexKind::kGlobal ? "global" : "local";
}

IndexDef::IndexDef(std::string t, std::vector<std::string> cols)
    : table(ToLower(t)), columns() {
  columns.reserve(cols.size());
  for (std::string& c : cols) columns.push_back(ToLower(c));
}

IndexDef::IndexDef(std::string t, std::vector<std::string> cols, IndexKind k)
    : IndexDef(std::move(t), std::move(cols)) {
  kind = k;
}

IndexDef::IndexDef(std::string n, std::string t, std::vector<std::string> cols)
    : IndexDef(std::move(t), std::move(cols)) {
  name = std::move(n);
}

std::string IndexDef::Key() const {
  std::string key = table + "(" + Join(columns, ",") + ")";
  if (kind == IndexKind::kLocal) key += "@local";
  return key;
}

std::string IndexDef::DisplayName() const {
  if (!name.empty()) return name;
  std::string out = "idx_" + table + "_" + Join(columns, "_");
  if (kind == IndexKind::kLocal) out += "_local";
  return out;
}

bool IndexDef::IsPrefixOf(const IndexDef& other) const {
  if (table != other.table) return false;
  if (columns.size() > other.columns.size()) return false;
  return std::equal(columns.begin(), columns.end(), other.columns.begin());
}

size_t IndexDef::KeyWidth(const Schema& schema) const {
  size_t width = 0;
  for (const std::string& col : columns) {
    const int i = schema.FindColumn(col);
    width += (i >= 0) ? schema.column(static_cast<size_t>(i)).avg_width : 8;
  }
  return width;
}

size_t LeafCapacityForWidth(size_t key_width) {
  // Key plus RowId payload and per-entry slot overhead.
  const size_t entry_bytes = key_width + 12;
  const size_t cap = kPageSizeBytes / std::max<size_t>(1, entry_bytes);
  return std::max<size_t>(4, cap);
}

size_t EstimateIndexBytes(size_t num_rows, size_t key_width) {
  if (num_rows == 0) return kPageSizeBytes;  // empty tree = one page
  const size_t per_leaf = LeafCapacityForWidth(key_width);
  // Leaves average ~70% full after random inserts.
  const double fill = 0.70;
  const size_t leaves = static_cast<size_t>(
      std::ceil(static_cast<double>(num_rows) / (per_leaf * fill)));
  const size_t internal = std::max<size_t>(1, leaves / per_leaf + 1);
  return (leaves + internal) * kPageSizeBytes;
}

size_t EstimateIndexHeight(size_t num_rows, size_t key_width) {
  if (num_rows == 0) return 1;
  const size_t per_node =
      std::max<size_t>(2, LeafCapacityForWidth(key_width));
  size_t height = 1;
  size_t reach = per_node;
  while (reach < num_rows) {
    reach *= per_node;
    ++height;
  }
  return height;
}

}  // namespace autoindex
