#include "index/btree.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace autoindex {

int CompareRowPrefix(const Row& a, const Row& b, size_t prefix_len) {
  const size_t n = std::min({a.size(), b.size(), prefix_len});
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

struct BTree::Entry {
  Row key;
  RowId rid;
};

struct BTree::Node {
  bool is_leaf = true;
  std::vector<Entry> entries;                   // leaf payload or separators
  std::vector<std::unique_ptr<Node>> children;  // internal only;
                                                // children.size() ==
                                                // entries.size() + 1
  Node* next = nullptr;  // leaf chain
  Node* prev = nullptr;
};

namespace {

// Total order on (key, rid).
int CompareEntry(const Row& a_key, RowId a_rid, const Row& b_key,
                 RowId b_rid) {
  const int c = CompareRows(a_key, b_key);
  if (c != 0) return c;
  if (a_rid < b_rid) return -1;
  if (a_rid > b_rid) return 1;
  return 0;
}

}  // namespace

BTree::BTree(size_t leaf_capacity, size_t internal_capacity)
    : leaf_capacity_(std::max<size_t>(4, leaf_capacity)),
      internal_capacity_(std::max<size_t>(4, internal_capacity)) {
  root_ = std::make_unique<Node>();
  root_->is_leaf = true;
  num_nodes_ = 1;
  height_ = 1;
}

BTree::~BTree() {
  // Deep trees would overflow the stack with default recursive unique_ptr
  // destruction; flatten iteratively.
  if (!root_) return;
  std::vector<std::unique_ptr<Node>> stack;
  stack.push_back(std::move(root_));
  while (!stack.empty()) {
    std::unique_ptr<Node> node = std::move(stack.back());
    stack.pop_back();
    for (auto& child : node->children) stack.push_back(std::move(child));
  }
}

BTree::Node* BTree::FindLeaf(const Row& key, RowId rid,
                             std::vector<Node*>* path) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    if (path) path->push_back(node);
    // First child whose separator exceeds (key, rid).
    size_t i = 0;
    while (i < node->entries.size() &&
           CompareEntry(key, rid, node->entries[i].key,
                        node->entries[i].rid) >= 0) {
      ++i;
    }
    node = node->children[i].get();
  }
  if (path) path->push_back(node);
  return node;
}

void BTree::SplitChild(Node* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();
  auto right = std::make_unique<Node>();
  right->is_leaf = child->is_leaf;
  const size_t mid = child->entries.size() / 2;

  if (child->is_leaf) {
    // Right leaf takes entries [mid, end); separator is right's first key.
    right->entries.assign(std::make_move_iterator(child->entries.begin() + mid),
                          std::make_move_iterator(child->entries.end()));
    child->entries.resize(mid);
    right->next = child->next;
    if (right->next) right->next->prev = right.get();
    right->prev = child;
    child->next = right.get();
    Entry sep;
    sep.key = right->entries.front().key;
    sep.rid = right->entries.front().rid;
    parent->entries.insert(parent->entries.begin() + child_idx,
                           std::move(sep));
  } else {
    // Internal split: the middle separator moves up.
    Entry sep = std::move(child->entries[mid]);
    right->entries.assign(
        std::make_move_iterator(child->entries.begin() + mid + 1),
        std::make_move_iterator(child->entries.end()));
    right->children.assign(
        std::make_move_iterator(child->children.begin() + mid + 1),
        std::make_move_iterator(child->children.end()));
    child->entries.resize(mid);
    child->children.resize(mid + 1);
    parent->entries.insert(parent->entries.begin() + child_idx,
                           std::move(sep));
  }
  parent->children.insert(parent->children.begin() + child_idx + 1,
                          std::move(right));
  ++num_nodes_;
  ++num_splits_;
}

void BTree::InsertNonFull(Node* node, const Row& key, RowId rid) {
  while (!node->is_leaf) {
    size_t i = 0;
    while (i < node->entries.size() &&
           CompareEntry(key, rid, node->entries[i].key,
                        node->entries[i].rid) >= 0) {
      ++i;
    }
    Node* child = node->children[i].get();
    const size_t cap = child->is_leaf ? leaf_capacity_ : internal_capacity_;
    if (child->entries.size() >= cap) {
      SplitChild(node, i);
      // Re-decide which side to descend.
      if (CompareEntry(key, rid, node->entries[i].key,
                       node->entries[i].rid) >= 0) {
        ++i;
      }
      child = node->children[i].get();
    }
    node = child;
  }
  auto it = std::lower_bound(
      node->entries.begin(), node->entries.end(), key,
      [&](const Entry& e, const Row& k) {
        return CompareEntry(e.key, e.rid, k, rid) < 0;
      });
  Entry entry;
  entry.key = key;
  entry.rid = rid;
  node->entries.insert(it, std::move(entry));
  ++num_entries_;
}

void BTree::Insert(const Row& key, RowId rid) {
  const size_t root_cap =
      root_->is_leaf ? leaf_capacity_ : internal_capacity_;
  if (root_->entries.size() >= root_cap) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    ++num_nodes_;
    ++height_;
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), key, rid);
}

bool BTree::Delete(const Row& key, RowId rid) {
  Node* leaf = FindLeaf(key, rid);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [&](const Entry& e, const Row& k) {
        return CompareEntry(e.key, e.rid, k, rid) < 0;
      });
  if (it == leaf->entries.end() ||
      CompareEntry(it->key, it->rid, key, rid) != 0) {
    return false;
  }
  leaf->entries.erase(it);
  --num_entries_;
  // Empty leaves stay in the chain: the parent still routes inserts to
  // them, so unlinking would orphan future entries. Scans skip them for
  // free (deferred page reclaim, as in PostgreSQL nbtree).
  return true;
}

bool BTree::Contains(const Row& key) const {
  bool found = false;
  Scan(&key, true, &key, true,
       [&](const Row& k, RowId) {
         if (k.size() == key.size()) {
           found = true;
           return false;
         }
         return true;
       });
  return found;
}

void BTree::Scan(const Row* lo, bool lo_inclusive, const Row* hi,
                 bool hi_inclusive,
                 const std::function<bool(const Row&, RowId)>& fn,
                 size_t* pages_touched) const {
  const Node* node = root_.get();
  size_t pages = 1;
  if (lo == nullptr) {
    // Descend to the leftmost leaf.
    while (!node->is_leaf) {
      node = node->children[0].get();
      ++pages;
    }
  } else {
    while (!node->is_leaf) {
      size_t i = 0;
      // Descend into the first child that can contain keys >= lo on the
      // prefix. Separator comparison uses the lo prefix length.
      while (i < node->entries.size() &&
             CompareRowPrefix(node->entries[i].key, *lo, lo->size()) < 0) {
        ++i;
      }
      node = node->children[i].get();
      ++pages;
    }
  }

  const Node* leaf = node;
  // Position within the first leaf.
  size_t idx = 0;
  if (lo != nullptr) {
    while (idx < leaf->entries.size()) {
      const int c = CompareRowPrefix(leaf->entries[idx].key, *lo, lo->size());
      if (c > 0 || (c == 0 && lo_inclusive)) break;
      ++idx;
    }
  }
  while (leaf != nullptr) {
    for (; idx < leaf->entries.size(); ++idx) {
      const Entry& e = leaf->entries[idx];
      if (lo != nullptr) {
        const int c = CompareRowPrefix(e.key, *lo, lo->size());
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi != nullptr) {
        const int c = CompareRowPrefix(e.key, *hi, hi->size());
        if (c > 0 || (c == 0 && !hi_inclusive)) {
          if (pages_touched) *pages_touched += pages;
          return;
        }
      }
      if (!fn(e.key, e.rid)) {
        if (pages_touched) *pages_touched += pages;
        return;
      }
    }
    leaf = leaf->next;
    idx = 0;
    if (leaf != nullptr) ++pages;
  }
  if (pages_touched) *pages_touched += pages;
}

std::vector<RowId> BTree::PrefixLookup(const Row& prefix,
                                       size_t* pages_touched) const {
  std::vector<RowId> rids;
  Scan(&prefix, true, &prefix, true,
       [&](const Row&, RowId rid) {
         rids.push_back(rid);
         return true;
       },
       pages_touched);
  return rids;
}

namespace {

// Walk accumulator for ValidateStructure: one pass collects everything the
// reported stats are checked against.
struct WalkStats {
  size_t nodes = 0;
  size_t entries = 0;
  size_t leaf_depth = 0;  // 0 = no leaf seen yet
};

}  // namespace

Status BTree::ValidateStructure() const {
  if (root_ == nullptr) {
    return Status::Internal("btree: root is null");
  }

  WalkStats stats;
  std::vector<const Node*> leaves_in_order;  // left-to-right recursive order

  // Iterative DFS so that pathologically deep (or cyclic-by-corruption)
  // trees cannot blow the stack; separator containment is checked from the
  // parent's side while its children are still addressable.
  struct Frame {
    const Node* node;
    size_t depth;
  };
  std::vector<Frame> todo;
  todo.push_back({root_.get(), 1});
  // Corruption can introduce cycles (e.g. a child pointing back up); bound
  // the walk so validation always terminates.
  const size_t max_nodes = num_nodes_ + 16;
  while (!todo.empty()) {
    const Frame f = todo.back();
    todo.pop_back();
    if (stats.nodes > max_nodes) {
      return Status::Internal(StrCat(
          "btree: walk exceeded ", max_nodes,
          " nodes (cycle or wildly wrong num_nodes bookkeeping)"));
    }
    const Node* node = f.node;
    ++stats.nodes;
    stats.entries += node->is_leaf ? node->entries.size() : 0;

    // Capacity bound.
    const size_t cap = node->is_leaf ? leaf_capacity_ : internal_capacity_;
    if (node->entries.size() > cap) {
      return Status::Internal(StrCat(
          "btree: node at depth ", f.depth, " holds ", node->entries.size(),
          " entries, over its capacity of ", cap));
    }

    // Keys sorted within the node on (key, rid).
    for (size_t i = 1; i < node->entries.size(); ++i) {
      if (CompareEntry(node->entries[i - 1].key, node->entries[i - 1].rid,
                       node->entries[i].key, node->entries[i].rid) > 0) {
        return Status::Internal(StrCat(
            "btree: entries out of order within ",
            node->is_leaf ? "leaf" : "internal node", " at depth ", f.depth,
            " (positions ", i - 1, " and ", i, ")"));
      }
    }

    if (node->is_leaf) {
      if (!node->children.empty()) {
        return Status::Internal(
            StrCat("btree: leaf at depth ", f.depth, " has ",
                   node->children.size(), " children"));
      }
      if (stats.leaf_depth == 0) {
        stats.leaf_depth = f.depth;
      } else if (f.depth != stats.leaf_depth) {
        return Status::Internal(StrCat("btree: leaf depth not uniform: found ",
                                       f.depth, ", expected ",
                                       stats.leaf_depth));
      }
      leaves_in_order.push_back(node);
    } else {
      if (node->children.size() != node->entries.size() + 1) {
        return Status::Internal(StrCat(
            "btree: internal node at depth ", f.depth, " has ",
            node->children.size(), " children for ", node->entries.size(),
            " separators (want separators + 1)"));
      }
      if (node->entries.empty()) {
        return Status::Internal(StrCat(
            "btree: internal node at depth ", f.depth, " has no separators"));
      }
      // Child key ranges respect separators (first/last entries suffice
      // because per-node ordering is checked independently).
      for (size_t i = 0; i < node->children.size(); ++i) {
        const Node* child = node->children[i].get();
        if (child == nullptr) {
          return Status::Internal(StrCat("btree: null child ", i,
                                         " under internal node at depth ",
                                         f.depth));
        }
        if (!child->entries.empty()) {
          if (i > 0) {
            const Entry& sep = node->entries[i - 1];
            if (CompareEntry(child->entries.front().key,
                             child->entries.front().rid, sep.key,
                             sep.rid) < 0) {
              return Status::Internal(StrCat(
                  "btree: child ", i, " at depth ", f.depth + 1,
                  " starts below its left separator"));
            }
          }
          if (i < node->entries.size()) {
            const Entry& sep = node->entries[i];
            if (CompareEntry(child->entries.back().key,
                             child->entries.back().rid, sep.key,
                             sep.rid) >= 0) {
              return Status::Internal(StrCat(
                  "btree: child ", i, " at depth ", f.depth + 1,
                  " reaches past its right separator"));
            }
          }
        }
      }
      // Push right-to-left so leaves_in_order comes out left-to-right.
      for (size_t i = node->children.size(); i > 0; --i) {
        todo.push_back({node->children[i - 1].get(), f.depth + 1});
      }
    }
  }

  // Reported stats vs the fresh walk.
  if (stats.leaf_depth != height_) {
    return Status::Internal(StrCat("btree: reported height ", height_,
                                   " but leaves sit at depth ",
                                   stats.leaf_depth));
  }
  if (stats.nodes != num_nodes_) {
    return Status::Internal(StrCat("btree: reported num_nodes ", num_nodes_,
                                   " but walk found ", stats.nodes));
  }
  if (stats.entries != num_entries_) {
    return Status::Internal(StrCat("btree: reported num_entries ",
                                   num_entries_, " but leaves hold ",
                                   stats.entries));
  }

  // Leaf chain: next pointers must visit exactly the recursive-order
  // leaves, prev pointers must mirror them, and the chained entries must
  // be globally sorted.
  const Node* chained = leaves_in_order.empty() ? nullptr : leaves_in_order[0];
  if (chained != nullptr && chained->prev != nullptr) {
    return Status::Internal("btree: leftmost leaf has a prev pointer");
  }
  size_t pos = 0;
  const Entry* prev_entry = nullptr;
  while (chained != nullptr) {
    if (pos >= leaves_in_order.size() || chained != leaves_in_order[pos]) {
      return Status::Internal(StrCat(
          "btree: leaf chain diverges from tree order at chain position ",
          pos));
    }
    if (chained->next != nullptr && chained->next->prev != chained) {
      return Status::Internal(StrCat(
          "btree: leaf chain prev/next asymmetry at chain position ", pos));
    }
    for (const Entry& e : chained->entries) {
      if (prev_entry != nullptr &&
          CompareEntry(prev_entry->key, prev_entry->rid, e.key, e.rid) > 0) {
        return Status::Internal(StrCat(
            "btree: leaf chain not globally sorted at chain position ", pos));
      }
      prev_entry = &e;
    }
    chained = chained->next;
    ++pos;
  }
  if (pos != leaves_in_order.size()) {
    return Status::Internal(StrCat("btree: leaf chain covers ", pos,
                                   " leaves but the tree has ",
                                   leaves_in_order.size()));
  }
  return Status::Ok();
}

bool BTree::TestOnlyCorruptLeafOrder() {
  // Find a leaf with two distinct entries and swap them.
  Node* leaf = root_.get();
  while (!leaf->is_leaf) leaf = leaf->children[0].get();
  for (; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 1; i < leaf->entries.size(); ++i) {
      if (CompareEntry(leaf->entries[i - 1].key, leaf->entries[i - 1].rid,
                       leaf->entries[i].key, leaf->entries[i].rid) != 0) {
        std::swap(leaf->entries[i - 1], leaf->entries[i]);
        return true;
      }
    }
  }
  return false;
}

bool BTree::TestOnlyBreakLeafChain() {
  Node* leaf = root_.get();
  while (!leaf->is_leaf) leaf = leaf->children[0].get();
  if (leaf->next == nullptr) return false;
  leaf->next = nullptr;
  return true;
}

}  // namespace autoindex
