#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "storage/table.h"
#include "storage/value.h"
#include "util/status.h"

namespace autoindex {

// Compares the first `prefix_len` columns only (or fewer if a row is
// shorter). Used for prefix range bounds on multi-column keys.
int CompareRowPrefix(const Row& a, const Row& b, size_t prefix_len);

// An in-memory B+Tree over composite keys with RowId payloads. Duplicated
// keys are allowed (entries are totally ordered by (key, rid)). Nodes model
// fixed-capacity pages so that height / page counts feed the cost model the
// same way a disk-resident tree would.
//
// Deletion is lazy at the structural level: entries are removed from leaves
// but underfull nodes are not merged (the common strategy in production
// B-trees, cf. PostgreSQL nbtree which only reclaims fully-empty pages).
// Fully empty leaves stay linked in the chain — the parent still routes
// inserts to them — and scans skip them for free.
class BTree {
 public:
  // `leaf_capacity` / `internal_capacity` entries per node; computed by the
  // caller from the key byte width so page counts are realistic.
  BTree(size_t leaf_capacity, size_t internal_capacity);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  void Insert(const Row& key, RowId rid);

  // Removes the (key, rid) entry; returns false if absent.
  bool Delete(const Row& key, RowId rid);

  // True if any entry equals `key` exactly (all columns).
  bool Contains(const Row& key) const;

  // Visits entries with lo <= entry (on lo->size() prefix columns) and
  // entry <= hi (on hi->size() prefix columns), in key order. Null bounds
  // are unbounded. `lo_inclusive` / `hi_inclusive` control bound openness.
  // The callback returns false to stop early.
  //
  // *pages_touched (optional) accumulates the number of index pages read:
  // the descent path plus every leaf visited.
  void Scan(const Row* lo, bool lo_inclusive, const Row* hi,
            bool hi_inclusive,
            const std::function<bool(const Row&, RowId)>& fn,
            size_t* pages_touched = nullptr) const;

  // Convenience: all rids whose key starts with `prefix`.
  std::vector<RowId> PrefixLookup(const Row& prefix,
                                  size_t* pages_touched = nullptr) const;

  size_t num_entries() const { return num_entries_; }
  // Tree height in levels (1 = a single leaf). 0 when empty.
  size_t height() const { return height_; }
  // Total nodes (≈ pages) in the tree.
  size_t num_nodes() const { return num_nodes_; }
  // Page splits performed since construction — an index-churn signal used
  // by the maintenance-cost features.
  size_t num_splits() const { return num_splits_; }

  size_t leaf_capacity() const { return leaf_capacity_; }

  // Deep structural validation with a precise failure message: keys sorted
  // within nodes, child/fanout shape, separator key-range containment,
  // uniform leaf depth, leaf-chain connectivity (next/prev symmetric,
  // covers every leaf in order), node-capacity bounds, and reported
  // height/num_nodes/num_entries matching a fresh walk. Ok() when healthy;
  // Internal with a message naming the first violated invariant otherwise.
  Status ValidateStructure() const;

  // Structural invariant check for tests: true iff ValidateStructure()
  // reports no issue.
  bool CheckInvariants() const { return ValidateStructure().ok(); }

  // --- Test-only corruption hooks -----------------------------------
  // Used by check_test to prove the validators detect real damage (an
  // always-green checker is worse than none). Never call outside tests.
  // Each returns false when the tree is too small to stage the corruption.
  bool TestOnlyCorruptLeafOrder();   // swaps two entries in a leaf
  bool TestOnlyBreakLeafChain();     // severs one leaf's next pointer
  void TestOnlySetNumEntries(size_t n) { num_entries_ = n; }
  void TestOnlySetHeight(size_t h) { height_ = h; }

 private:
  struct Node;
  struct Entry;

  Node* FindLeaf(const Row& key, RowId rid,
                 std::vector<Node*>* path = nullptr) const;
  void SplitChild(Node* parent, size_t child_idx);
  void InsertNonFull(Node* node, const Row& key, RowId rid);

  std::unique_ptr<Node> root_;
  size_t leaf_capacity_;
  size_t internal_capacity_;
  size_t num_entries_ = 0;
  size_t height_ = 0;
  size_t num_nodes_ = 0;
  size_t num_splits_ = 0;
};

}  // namespace autoindex
