#pragma once

#include <string>
#include <vector>

#include "storage/schema.h"

namespace autoindex {

// Physical layout of an index over a hash-partitioned table (Sec. III
// "index type selection for the data partitioning scenarios"):
//  - kGlobal: one tree over the whole table; fastest lookups regardless of
//    the partition key, but entries carry a partition pointer (wider keys,
//    more space).
//  - kLocal: one tree per partition; smaller in total and cheaper to
//    maintain, but a lookup that does not bind the partition column must
//    probe every partition's tree.
// On unpartitioned tables both kinds collapse to a single tree.
enum class IndexKind { kGlobal, kLocal };

const char* IndexKindName(IndexKind kind);

// The logical identity of a (possibly multi-column) B+Tree index: table +
// ordered column list (+ physical kind for partitioned tables). The column
// order matters (leftmost-prefix rule).
struct IndexDef {
  std::string name;  // empty = derive from table/columns
  std::string table;
  std::vector<std::string> columns;
  IndexKind kind = IndexKind::kGlobal;

  IndexDef() = default;
  IndexDef(std::string t, std::vector<std::string> cols);
  IndexDef(std::string t, std::vector<std::string> cols, IndexKind k);
  IndexDef(std::string n, std::string t, std::vector<std::string> cols);

  // Canonical key "table(c1,c2,...)" (plus "@local") — equality of
  // definitions.
  std::string Key() const;

  // "idx_<table>_<c1>_<c2>[_local]" when no explicit name was given.
  std::string DisplayName() const;

  bool operator==(const IndexDef& other) const {
    return table == other.table && columns == other.columns &&
           kind == other.kind;
  }

  // True when this index's columns are a leftmost prefix of `other`'s
  // (same table). An index that is a strict prefix of another is redundant
  // (Sec. IV-A step 3).
  bool IsPrefixOf(const IndexDef& other) const;

  // Estimated byte width of one key under the table schema.
  size_t KeyWidth(const Schema& schema) const;
};

// Estimated size in bytes of a B+Tree over `num_rows` keys of width
// `key_width` (leaf pages + ~1% internal overhead), page-granular.
size_t EstimateIndexBytes(size_t num_rows, size_t key_width);

// Estimated tree height for the same parameters (>= 1).
size_t EstimateIndexHeight(size_t num_rows, size_t key_width);

// Entries that fit one leaf page for the given key width.
size_t LeafCapacityForWidth(size_t key_width);

}  // namespace autoindex
