#include "sql/expr.h"

#include <cstring>

#include "util/string_util.h"

namespace autoindex {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLike:
      return "LIKE";
  }
  return "?";
}

CompareOp SwapCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
    case CompareOp::kLike:
      return CompareOp::kLike;  // NOT LIKE is handled via kNot wrapping
  }
  return op;
}

ExprPtr Expr::MakeColumn(ColumnRef col) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumn;
  e->column = std::move(col);
  return e;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCompare;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::MakeColCompare(ColumnRef col, CompareOp op, Value v) {
  return MakeCompare(op, MakeColumn(std::move(col)),
                     MakeLiteral(std::move(v)));
}

ExprPtr Expr::MakeAnd(std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAnd;
  e->children = std::move(children);
  return e;
}

ExprPtr Expr::MakeOr(std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kOr;
  e->children = std::move(children);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr Expr::MakeBetween(ExprPtr operand, Value lo, Value hi) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBetween;
  e->children.push_back(std::move(operand));
  e->children.push_back(MakeLiteral(std::move(lo)));
  e->children.push_back(MakeLiteral(std::move(hi)));
  return e;
}

ExprPtr Expr::MakeInList(ExprPtr operand, std::vector<Value> list,
                         bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInList;
  e->children.push_back(std::move(operand));
  e->in_list = std::move(list);
  e->negated = negated;
  return e;
}

ExprPtr Expr::MakeIsNull(ExprPtr operand, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->children.push_back(std::move(operand));
  e->negated = negated;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->op = op;
  e->column = column;
  e->literal = literal;
  e->in_list = in_list;
  e->negated = negated;
  e->children.reserve(children.size());
  for (const ExprPtr& c : children) e->children.push_back(c->Clone());
  return e;
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind || op != other.op || negated != other.negated) {
    return false;
  }
  if (!(column == other.column)) return false;
  if (literal != other.literal &&
      !(literal.is_null() && other.literal.is_null())) {
    return false;
  }
  if (in_list.size() != other.in_list.size()) return false;
  for (size_t i = 0; i < in_list.size(); ++i) {
    if (in_list[i] != other.in_list[i]) return false;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

bool Expr::IsAtomicPredicate() const {
  switch (kind) {
    case ExprKind::kCompare:
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      return true;
    default:
      return false;
  }
}

void Expr::CollectColumns(std::vector<ColumnRef>* out) const {
  if (kind == ExprKind::kColumn) out->push_back(column);
  for (const ExprPtr& c : children) c->CollectColumns(out);
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumn:
      return column.ToString();
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kCompare:
      return children[0]->ToString() + " " + CompareOpName(op) + " " +
             children[1]->ToString();
    case ExprKind::kAnd: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const ExprPtr& c : children) {
        const bool paren = c->kind == ExprKind::kOr;
        parts.push_back(paren ? "(" + c->ToString() + ")" : c->ToString());
      }
      return Join(parts, " AND ");
    }
    case ExprKind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const ExprPtr& c : children) parts.push_back(c->ToString());
      return "(" + Join(parts, " OR ") + ")";
    }
    case ExprKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case ExprKind::kBetween:
      return children[0]->ToString() + " BETWEEN " +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case ExprKind::kInList: {
      std::vector<std::string> parts;
      parts.reserve(in_list.size());
      for (const Value& v : in_list) parts.push_back(v.ToSqlLiteral());
      return children[0]->ToString() + (negated ? " NOT IN (" : " IN (") +
             Join(parts, ", ") + ")";
    }
    case ExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
  }
  return "?";
}

namespace {

// Simple SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern, size_t ti,
               size_t pi) {
  while (pi < pattern.size()) {
    const char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive %.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatch(text, pattern, k, pi)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc != '_' && pc != text[ti]) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

// Evaluates a scalar (kColumn or kLiteral) node. Returns false when the
// column is unbound.
bool EvalScalar(const Expr& expr, const ColumnResolver& resolver, Value* out) {
  if (expr.kind == ExprKind::kLiteral) {
    *out = expr.literal;
    return true;
  }
  if (expr.kind == ExprKind::kColumn) {
    return resolver.Resolve(expr.column, out);
  }
  return false;
}

}  // namespace

bool EvaluatePredicate(const Expr& expr, const ColumnResolver& resolver) {
  switch (expr.kind) {
    case ExprKind::kAnd:
      for (const ExprPtr& c : expr.children) {
        if (!EvaluatePredicate(*c, resolver)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const ExprPtr& c : expr.children) {
        if (EvaluatePredicate(*c, resolver)) return true;
      }
      return false;
    case ExprKind::kNot:
      return !EvaluatePredicate(*expr.children[0], resolver);
    case ExprKind::kCompare: {
      Value lhs, rhs;
      if (!EvalScalar(*expr.children[0], resolver, &lhs)) return false;
      if (!EvalScalar(*expr.children[1], resolver, &rhs)) return false;
      if (lhs.is_null() || rhs.is_null()) return false;
      if (expr.op == CompareOp::kLike) {
        if (lhs.type() != ValueType::kString ||
            rhs.type() != ValueType::kString) {
          return false;
        }
        return LikeMatch(lhs.AsString(), rhs.AsString(), 0, 0);
      }
      const int c = lhs.Compare(rhs);
      switch (expr.op) {
        case CompareOp::kEq:
          return c == 0;
        case CompareOp::kNe:
          return c != 0;
        case CompareOp::kLt:
          return c < 0;
        case CompareOp::kLe:
          return c <= 0;
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGe:
          return c >= 0;
        case CompareOp::kLike:
          return false;  // handled above
      }
      return false;
    }
    case ExprKind::kBetween: {
      Value v, lo, hi;
      if (!EvalScalar(*expr.children[0], resolver, &v)) return false;
      if (!EvalScalar(*expr.children[1], resolver, &lo)) return false;
      if (!EvalScalar(*expr.children[2], resolver, &hi)) return false;
      if (v.is_null() || lo.is_null() || hi.is_null()) return false;
      return v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
    }
    case ExprKind::kInList: {
      Value v;
      if (!EvalScalar(*expr.children[0], resolver, &v)) return false;
      if (v.is_null()) return false;
      bool found = false;
      for (const Value& item : expr.in_list) {
        if (v.Compare(item) == 0) {
          found = true;
          break;
        }
      }
      return expr.negated ? !found : found;
    }
    case ExprKind::kIsNull: {
      Value v;
      if (!EvalScalar(*expr.children[0], resolver, &v)) return false;
      return expr.negated ? !v.is_null() : v.is_null();
    }
    case ExprKind::kColumn:
    case ExprKind::kLiteral: {
      // A bare scalar in boolean context: truthy when non-null/non-zero.
      Value v;
      if (!EvalScalar(expr, resolver, &v)) return false;
      if (v.is_null()) return false;
      if (v.type() == ValueType::kInt) return v.AsInt() != 0;
      return true;
    }
  }
  return false;
}

}  // namespace autoindex
