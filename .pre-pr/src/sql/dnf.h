#pragma once

#include <vector>

#include "sql/expr.h"

namespace autoindex {

// One conjunct of a DNF form: a list of atomic predicates all of which must
// hold. Owned clones of the original atoms.
using DnfConjunction = std::vector<ExprPtr>;

// Rewrites an arbitrary boolean expression into Disjunctive Normal Form
// (Sec. IV-A step 2 of the paper): NOTs are pushed to the leaves via
// De Morgan, then ANDs are distributed over ORs. The result is a list of
// conjunctions whose disjunction is equivalent to the input.
//
// `max_conjunctions` caps the exponential blow-up; when exceeded the tail
// conjunctions are dropped (candidate generation only needs the dominant
// access patterns, not logical completeness).
std::vector<DnfConjunction> ToDnf(const Expr& expr,
                                  size_t max_conjunctions = 64);

// Extracts the atoms of a pure conjunction (no ORs anywhere). Returns false
// if the expression contains an OR; useful as a fast path before full DNF.
bool ExtractConjunctionAtoms(const Expr& expr, std::vector<const Expr*>* out);

}  // namespace autoindex
