#pragma once

#include <string>

#include "sql/statement.h"
#include "util/status.h"

namespace autoindex {

// Parses one SQL statement. Supported grammar (case-insensitive):
//
//   SELECT {* | item[, ...]} FROM table [alias][, ...] | JOIN table ON expr
//     [WHERE expr] [GROUP BY col[, ...]] [ORDER BY col [ASC|DESC][, ...]]
//     [LIMIT n]
//   INSERT INTO table [(cols)] VALUES (lits)[, (lits) ...]
//   UPDATE table SET col = lit[, ...] [WHERE expr]
//   DELETE FROM table [WHERE expr]
//
// Boolean expressions support AND/OR/NOT with parentheses, comparisons
// (= <> < <= > >=, LIKE), BETWEEN, [NOT] IN (list), IS [NOT] NULL.
// Join predicates (col = col across tables) may appear either in ON
// clauses (merged into WHERE) or directly in WHERE.
StatusOr<Statement> ParseSql(const std::string& sql);

}  // namespace autoindex
