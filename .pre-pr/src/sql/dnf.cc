#include "sql/dnf.h"

namespace autoindex {
namespace {

// Pushes NOT down to the leaves. `negate` tracks parity of enclosing NOTs.
// Atoms under an odd number of NOTs are rewritten:
//   NOT (a < b)      ->  a >= b
//   NOT (a IN ...)   ->  a NOT IN ...
//   NOT (a IS NULL)  ->  a IS NOT NULL
//   NOT (a BETWEEN lo AND hi) -> a < lo OR a > hi
ExprPtr PushNegations(const Expr& expr, bool negate) {
  switch (expr.kind) {
    case ExprKind::kNot:
      return PushNegations(*expr.children[0], !negate);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> children;
      children.reserve(expr.children.size());
      for (const ExprPtr& c : expr.children) {
        children.push_back(PushNegations(*c, negate));
      }
      const bool make_and = (expr.kind == ExprKind::kAnd) != negate;
      return make_and ? Expr::MakeAnd(std::move(children))
                      : Expr::MakeOr(std::move(children));
    }
    case ExprKind::kCompare: {
      ExprPtr clone = expr.Clone();
      if (negate) {
        if (clone->op == CompareOp::kLike) {
          // NOT LIKE has no dual comparison; keep the NOT wrapper as an
          // opaque atom (it still names the same column).
          return Expr::MakeNot(std::move(clone));
        }
        clone->op = NegateCompareOp(clone->op);
      }
      return clone;
    }
    case ExprKind::kBetween: {
      if (!negate) return expr.Clone();
      // NOT BETWEEN -> operand < lo OR operand > hi
      std::vector<ExprPtr> ors;
      ors.push_back(Expr::MakeCompare(CompareOp::kLt, expr.children[0]->Clone(),
                                      expr.children[1]->Clone()));
      ors.push_back(Expr::MakeCompare(CompareOp::kGt, expr.children[0]->Clone(),
                                      expr.children[2]->Clone()));
      return Expr::MakeOr(std::move(ors));
    }
    case ExprKind::kInList: {
      ExprPtr clone = expr.Clone();
      if (negate) clone->negated = !clone->negated;
      return clone;
    }
    case ExprKind::kIsNull: {
      ExprPtr clone = expr.Clone();
      if (negate) clone->negated = !clone->negated;
      return clone;
    }
    case ExprKind::kColumn:
    case ExprKind::kLiteral: {
      ExprPtr clone = expr.Clone();
      if (negate) return Expr::MakeNot(std::move(clone));
      return clone;
    }
  }
  return expr.Clone();
}

// Distributes ANDs over ORs on a negation-free tree, producing conjunction
// lists. Truncates at `cap` conjunctions.
void Distribute(const Expr& expr, size_t cap,
                std::vector<DnfConjunction>* out) {
  switch (expr.kind) {
    case ExprKind::kOr: {
      for (const ExprPtr& c : expr.children) {
        if (out->size() >= cap) return;
        Distribute(*c, cap, out);
      }
      return;
    }
    case ExprKind::kAnd: {
      // Cartesian product of children's DNF forms.
      std::vector<DnfConjunction> acc;
      acc.emplace_back();  // empty conjunction = TRUE
      for (const ExprPtr& c : expr.children) {
        std::vector<DnfConjunction> child_dnf;
        Distribute(*c, cap, &child_dnf);
        std::vector<DnfConjunction> next;
        for (const DnfConjunction& a : acc) {
          for (const DnfConjunction& b : child_dnf) {
            if (next.size() >= cap) break;
            DnfConjunction merged;
            merged.reserve(a.size() + b.size());
            for (const ExprPtr& e : a) merged.push_back(e->Clone());
            for (const ExprPtr& e : b) merged.push_back(e->Clone());
            next.push_back(std::move(merged));
          }
          if (next.size() >= cap) break;
        }
        acc = std::move(next);
        if (acc.empty()) return;  // contradiction-free truncation
      }
      for (DnfConjunction& conj : acc) {
        if (out->size() >= cap) return;
        out->push_back(std::move(conj));
      }
      return;
    }
    default: {
      // A leaf atom (including NOT-wrapped LIKE) forms a singleton
      // conjunction.
      DnfConjunction conj;
      conj.push_back(expr.Clone());
      out->push_back(std::move(conj));
      return;
    }
  }
}

}  // namespace

std::vector<DnfConjunction> ToDnf(const Expr& expr, size_t max_conjunctions) {
  ExprPtr nnf = PushNegations(expr, /*negate=*/false);
  std::vector<DnfConjunction> out;
  Distribute(*nnf, max_conjunctions, &out);
  return out;
}

bool ExtractConjunctionAtoms(const Expr& expr,
                             std::vector<const Expr*>* out) {
  switch (expr.kind) {
    case ExprKind::kOr:
      return false;
    case ExprKind::kAnd:
      for (const ExprPtr& c : expr.children) {
        if (!ExtractConjunctionAtoms(*c, out)) return false;
      }
      return true;
    case ExprKind::kNot:
      // Treat a NOT-wrapped subtree as opaque only if it has no OR inside.
      out->push_back(&expr);
      return true;
    default:
      out->push_back(&expr);
      return true;
  }
}

}  // namespace autoindex
