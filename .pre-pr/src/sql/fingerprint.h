#pragma once

#include <string>

#include "util/status.h"

namespace autoindex {

// Maps a SQL string to its query-template fingerprint (Sec. IV-A step 1):
// literals are replaced with '?', IN lists collapse to a single '?',
// identifiers are lowercased, keywords uppercased, whitespace normalized.
// Two queries that differ only in predicate constants share a fingerprint.
//
// Returns the raw input trimmed/lowercased if the string does not tokenize
// (so that malformed queries still bucket deterministically).
std::string FingerprintSql(const std::string& sql);

// Stable 64-bit hash of the fingerprint, for compact template keys.
uint64_t FingerprintHash(const std::string& sql);

}  // namespace autoindex
