#pragma once

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace autoindex {

// Tokenizes one SQL statement. Keywords are uppercased, identifiers
// lowercased, string literals unquoted. The trailing kEnd token is always
// present on success.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

// True if the (uppercased) word is a reserved SQL keyword.
bool IsSqlKeyword(const std::string& upper_word);

}  // namespace autoindex
