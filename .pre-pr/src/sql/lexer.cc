#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/string_util.h"

namespace autoindex {

bool IsSqlKeyword(const std::string& upper_word) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE",  "AND",    "OR",     "NOT",
      "INSERT", "INTO",  "VALUES", "UPDATE", "SET",    "DELETE",
      "GROUP",  "ORDER", "BY",     "ASC",    "DESC",   "LIMIT",
      "JOIN",   "INNER", "ON",     "AS",     "BETWEEN", "IN",
      "IS",     "NULL",  "LIKE",   "COUNT",  "SUM",    "AVG",
      "MIN",    "MAX",   "DISTINCT",
  };
  return kKeywords.count(upper_word) > 0;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = ToLower(word);
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])) &&
                (tokens.empty() || tokens.back().type == TokenType::kOperator ||
                 tokens.back().type == TokenType::kComma ||
                 tokens.back().type == TokenType::kLParen ||
                 tokens.back().type == TokenType::kKeyword))) {
      size_t j = i + 1;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') {
          // A second dot ends the number (e.g. range syntax is unsupported).
          if (is_float) break;
          is_float = true;
        }
        ++j;
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = sql.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      i = j;
    } else {
      switch (c) {
        case ',':
          tok.type = TokenType::kComma;
          tok.text = ",";
          ++i;
          break;
        case '.':
          tok.type = TokenType::kDot;
          tok.text = ".";
          ++i;
          break;
        case '(':
          tok.type = TokenType::kLParen;
          tok.text = "(";
          ++i;
          break;
        case ')':
          tok.type = TokenType::kRParen;
          tok.text = ")";
          ++i;
          break;
        case '*':
          tok.type = TokenType::kStar;
          tok.text = "*";
          ++i;
          break;
        case ';':
          tok.type = TokenType::kSemicolon;
          tok.text = ";";
          ++i;
          break;
        case '=':
          tok.type = TokenType::kOperator;
          tok.text = "=";
          ++i;
          break;
        case '<':
          tok.type = TokenType::kOperator;
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.text = "<=";
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            tok.text = "<>";
            i += 2;
          } else {
            tok.text = "<";
            ++i;
          }
          break;
        case '>':
          tok.type = TokenType::kOperator;
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.text = ">=";
            i += 2;
          } else {
            tok.text = ">";
            ++i;
          }
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            tok.type = TokenType::kOperator;
            tok.text = "<>";
            i += 2;
          } else {
            return Status::InvalidArgument("unexpected character '!'");
          }
          break;
        default:
          return Status::InvalidArgument(
              StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace autoindex
