#include "sql/statement.h"

#include "util/string_util.h"

namespace autoindex {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "";
}

std::string SelectItem::ToString() const {
  if (agg != AggFunc::kNone) {
    return std::string(AggFuncName(agg)) + "(" +
           (star ? "*" : column.ToString()) + ")";
  }
  if (star) return "*";
  return column.ToString();
}

std::unique_ptr<SelectStatement> SelectStatement::Clone() const {
  auto s = std::make_unique<SelectStatement>();
  s->from = from;
  s->items = items;
  if (where) s->where = where->Clone();
  s->group_by = group_by;
  s->order_by = order_by;
  s->limit = limit;
  return s;
}

std::string SelectStatement::ToString() const {
  std::vector<std::string> item_strs;
  item_strs.reserve(items.size());
  for (const SelectItem& it : items) item_strs.push_back(it.ToString());
  std::string out = "SELECT " + Join(item_strs, ", ") + " FROM ";
  std::vector<std::string> from_strs;
  from_strs.reserve(from.size());
  for (const TableRef& t : from) {
    from_strs.push_back(t.alias == t.table ? t.table
                                           : t.table + " AS " + t.alias);
  }
  out += Join(from_strs, ", ");
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    std::vector<std::string> cols;
    cols.reserve(group_by.size());
    for (const ColumnRef& c : group_by) cols.push_back(c.ToString());
    out += " GROUP BY " + Join(cols, ", ");
  }
  if (!order_by.empty()) {
    std::vector<std::string> cols;
    cols.reserve(order_by.size());
    for (const OrderByItem& o : order_by) {
      cols.push_back(o.column.ToString() + (o.desc ? " DESC" : ""));
    }
    out += " ORDER BY " + Join(cols, ", ");
  }
  if (limit >= 0) out += StrFormat(" LIMIT %lld", static_cast<long long>(limit));
  return out;
}

std::unique_ptr<InsertStatement> InsertStatement::Clone() const {
  auto s = std::make_unique<InsertStatement>();
  s->table = table;
  s->columns = columns;
  s->rows = rows;
  return s;
}

std::string InsertStatement::ToString() const {
  std::string out = "INSERT INTO " + table;
  if (!columns.empty()) out += " (" + Join(columns, ", ") + ")";
  out += " VALUES ";
  std::vector<std::string> row_strs;
  row_strs.reserve(rows.size());
  for (const Row& r : rows) {
    std::vector<std::string> vals;
    vals.reserve(r.size());
    for (const Value& v : r) vals.push_back(v.ToSqlLiteral());
    row_strs.push_back("(" + Join(vals, ", ") + ")");
  }
  out += Join(row_strs, ", ");
  return out;
}

std::unique_ptr<UpdateStatement> UpdateStatement::Clone() const {
  auto s = std::make_unique<UpdateStatement>();
  s->table = table;
  s->assignments = assignments;
  if (where) s->where = where->Clone();
  return s;
}

std::string UpdateStatement::ToString() const {
  std::string out = "UPDATE " + table + " SET ";
  std::vector<std::string> sets;
  sets.reserve(assignments.size());
  for (const auto& [col, val] : assignments) {
    sets.push_back(col + " = " + val.ToSqlLiteral());
  }
  out += Join(sets, ", ");
  if (where) out += " WHERE " + where->ToString();
  return out;
}

std::unique_ptr<DeleteStatement> DeleteStatement::Clone() const {
  auto s = std::make_unique<DeleteStatement>();
  s->table = table;
  if (where) s->where = where->Clone();
  return s;
}

std::string DeleteStatement::ToString() const {
  std::string out = "DELETE FROM " + table;
  if (where) out += " WHERE " + where->ToString();
  return out;
}

Statement Statement::Clone() const {
  Statement s;
  s.kind = kind;
  if (select) s.select = select->Clone();
  if (insert) s.insert = insert->Clone();
  if (update) s.update = update->Clone();
  if (del) s.del = del->Clone();
  return s;
}

std::string Statement::ToString() const {
  switch (kind) {
    case StatementKind::kSelect:
      return select ? select->ToString() : "";
    case StatementKind::kInsert:
      return insert ? insert->ToString() : "";
    case StatementKind::kUpdate:
      return update ? update->ToString() : "";
    case StatementKind::kDelete:
      return del ? del->ToString() : "";
  }
  return "";
}

const Expr* Statement::where() const {
  switch (kind) {
    case StatementKind::kSelect:
      return select ? select->where.get() : nullptr;
    case StatementKind::kUpdate:
      return update ? update->where.get() : nullptr;
    case StatementKind::kDelete:
      return del ? del->where.get() : nullptr;
    case StatementKind::kInsert:
      return nullptr;
  }
  return nullptr;
}

}  // namespace autoindex
