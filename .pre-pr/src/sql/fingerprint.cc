#include "sql/fingerprint.h"

#include <vector>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace autoindex {

std::string FingerprintSql(const std::string& sql) {
  StatusOr<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) {
    return ToLower(std::string(Trim(sql)));
  }
  std::string out;
  out.reserve(sql.size());
  const std::vector<Token>& toks = *tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.type == TokenType::kEnd || t.type == TokenType::kSemicolon) break;
    std::string piece;
    switch (t.type) {
      case TokenType::kInteger:
      case TokenType::kFloat:
      case TokenType::kString:
        piece = "?";
        break;
      default:
        piece = t.text;
        break;
    }
    // Collapse "( ? , ? , ... )" (IN lists, VALUES rows) into "(?)" so that
    // row counts / list lengths do not fragment templates.
    if (t.type == TokenType::kLParen) {
      size_t j = i + 1;
      bool all_literals = j < toks.size();
      size_t count = 0;
      while (j < toks.size() && toks[j].type != TokenType::kRParen) {
        if (toks[j].type == TokenType::kInteger ||
            toks[j].type == TokenType::kFloat ||
            toks[j].type == TokenType::kString ||
            (toks[j].type == TokenType::kKeyword && toks[j].text == "NULL")) {
          ++count;
          ++j;
          if (j < toks.size() && toks[j].type == TokenType::kComma) ++j;
          continue;
        }
        all_literals = false;
        break;
      }
      if (all_literals && count > 0 && j < toks.size() &&
          toks[j].type == TokenType::kRParen) {
        if (!out.empty() && out.back() != ' ') out.push_back(' ');
        out += "(?)";
        i = j;  // skip to the ')'
        continue;
      }
    }
    if (!out.empty()) out.push_back(' ');
    out += piece;
  }
  return out;
}

uint64_t FingerprintHash(const std::string& sql) {
  const std::string fp = FingerprintSql(sql);
  // FNV-1a.
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : fp) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace autoindex
