#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sql/expr.h"
#include "storage/value.h"

namespace autoindex {

// One entry in a FROM list. `alias` equals `table` when no alias was given.
struct TableRef {
  std::string table;
  std::string alias;

  TableRef() = default;
  explicit TableRef(std::string t) : table(t), alias(std::move(t)) {}
  TableRef(std::string t, std::string a)
      : table(std::move(t)), alias(std::move(a)) {}
};

enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

// A projection item: `*`, a plain column, or an aggregate over a column
// (COUNT(*) has star==true and agg==kCount).
struct SelectItem {
  bool star = false;
  AggFunc agg = AggFunc::kNone;
  ColumnRef column;

  std::string ToString() const;
};

struct OrderByItem {
  ColumnRef column;
  bool desc = false;
};

struct SelectStatement {
  std::vector<TableRef> from;
  std::vector<SelectItem> items;
  ExprPtr where;  // may be null
  std::vector<ColumnRef> group_by;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  std::unique_ptr<SelectStatement> Clone() const;
  std::string ToString() const;
};

struct InsertStatement {
  std::string table;
  // Optional explicit column list; empty means full-schema order.
  std::vector<std::string> columns;
  std::vector<Row> rows;

  std::unique_ptr<InsertStatement> Clone() const;
  std::string ToString() const;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  ExprPtr where;  // may be null

  std::unique_ptr<UpdateStatement> Clone() const;
  std::string ToString() const;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;  // may be null

  std::unique_ptr<DeleteStatement> Clone() const;
  std::string ToString() const;
};

enum class StatementKind { kSelect, kInsert, kUpdate, kDelete };

// A parsed SQL statement: exactly one of the four pointers is set,
// matching `kind`.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DeleteStatement> del;

  bool IsWrite() const { return kind != StatementKind::kSelect; }

  Statement Clone() const;
  std::string ToString() const;

  // The WHERE expression of the statement (nullptr for inserts or when
  // absent).
  const Expr* where() const;
};

}  // namespace autoindex
