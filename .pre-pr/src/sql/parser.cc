#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

// Recursive-descent parser over the token stream produced by Tokenize().
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement() {
    const Token& t = Peek();
    StatusOr<Statement> result = Status::InvalidArgument("empty statement");
    if (t.IsKeyword("SELECT")) {
      result = ParseSelect();
    } else if (t.IsKeyword("INSERT")) {
      result = ParseInsert();
    } else if (t.IsKeyword("UPDATE")) {
      result = ParseUpdate();
    } else if (t.IsKeyword("DELETE")) {
      result = ParseDelete();
    } else {
      return Status::InvalidArgument("statement must start with "
                                     "SELECT/INSERT/UPDATE/DELETE");
    }
    if (!result.ok()) return result;
    // Allow a trailing semicolon.
    if (Peek().type == TokenType::kSemicolon) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Status::InvalidArgument("unexpected trailing tokens: " +
                                     Peek().text);
    }
    return result;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenType type, const char* what) {
    if (!Match(type)) {
      return Status::InvalidArgument(StrFormat("expected %s near '%s'", what,
                                               Peek().text.c_str()));
    }
    return Status::Ok();
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Status::InvalidArgument(StrFormat("expected %s near '%s'", kw,
                                               Peek().text.c_str()));
    }
    return Status::Ok();
  }

  StatusOr<Statement> ParseSelect() {
    Advance();  // SELECT
    auto sel = std::make_unique<SelectStatement>();
    if (MatchKeyword("DISTINCT")) {
      // DISTINCT is accepted and ignored by the executor; it does not affect
      // index candidates.
    }
    // Projection list.
    while (true) {
      SelectItem item;
      if (Match(TokenType::kStar)) {
        item.star = true;
      } else if (Peek().type == TokenType::kKeyword &&
                 (Peek().text == "COUNT" || Peek().text == "SUM" ||
                  Peek().text == "AVG" || Peek().text == "MIN" ||
                  Peek().text == "MAX")) {
        const std::string fn = Advance().text;
        item.agg = fn == "COUNT"  ? AggFunc::kCount
                   : fn == "SUM" ? AggFunc::kSum
                   : fn == "AVG" ? AggFunc::kAvg
                   : fn == "MIN" ? AggFunc::kMin
                                 : AggFunc::kMax;
        Status s = Expect(TokenType::kLParen, "(");
        if (!s.ok()) return s;
        if (Match(TokenType::kStar)) {
          item.star = true;
        } else {
          StatusOr<ColumnRef> col = ParseColumnRef();
          if (!col.ok()) return col.status();
          item.column = *col;
        }
        s = Expect(TokenType::kRParen, ")");
        if (!s.ok()) return s;
      } else {
        StatusOr<ColumnRef> col = ParseColumnRef();
        if (!col.ok()) return col.status();
        item.column = *col;
      }
      // Optional output alias (ignored).
      if (MatchKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::InvalidArgument("expected alias after AS");
        }
        Advance();
      }
      sel->items.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }

    Status s = ExpectKeyword("FROM");
    if (!s.ok()) return s;

    // FROM list with comma and JOIN..ON forms.
    std::vector<ExprPtr> join_predicates;
    while (true) {
      StatusOr<TableRef> tr = ParseTableRef();
      if (!tr.ok()) return tr.status();
      sel->from.push_back(*tr);
      if (Match(TokenType::kComma)) continue;
      if (MatchKeyword("INNER")) {
        s = ExpectKeyword("JOIN");
        if (!s.ok()) return s;
      } else if (!MatchKeyword("JOIN")) {
        break;
      }
      StatusOr<TableRef> joined = ParseTableRef();
      if (!joined.ok()) return joined.status();
      sel->from.push_back(*joined);
      s = ExpectKeyword("ON");
      if (!s.ok()) return s;
      StatusOr<ExprPtr> on = ParseExpr();
      if (!on.ok()) return on.status();
      join_predicates.push_back(std::move(*on));
      // Allow chained JOIN clauses: loop continues.
      if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
        // Rewind-free: handled by loop head below.
        // Fall through by continuing the while loop with a synthetic comma.
        // The loop continues naturally because we re-enter on JOIN keywords.
        // To do so, emulate: skip the table parse in the loop head by
        // handling JOIN chains here.
        while (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
          if (MatchKeyword("INNER")) {
            s = ExpectKeyword("JOIN");
            if (!s.ok()) return s;
          } else {
            MatchKeyword("JOIN");
          }
          StatusOr<TableRef> t2 = ParseTableRef();
          if (!t2.ok()) return t2.status();
          sel->from.push_back(*t2);
          s = ExpectKeyword("ON");
          if (!s.ok()) return s;
          StatusOr<ExprPtr> on2 = ParseExpr();
          if (!on2.ok()) return on2.status();
          join_predicates.push_back(std::move(*on2));
        }
      }
      break;
    }

    if (MatchKeyword("WHERE")) {
      StatusOr<ExprPtr> where = ParseExpr();
      if (!where.ok()) return where.status();
      sel->where = std::move(*where);
    }
    // Fold ON predicates into WHERE as an AND.
    if (!join_predicates.empty()) {
      std::vector<ExprPtr> conj;
      if (sel->where) conj.push_back(std::move(sel->where));
      for (ExprPtr& p : join_predicates) conj.push_back(std::move(p));
      sel->where =
          conj.size() == 1 ? std::move(conj[0]) : Expr::MakeAnd(std::move(conj));
    }

    if (MatchKeyword("GROUP")) {
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      while (true) {
        StatusOr<ColumnRef> col = ParseColumnRef();
        if (!col.ok()) return col.status();
        sel->group_by.push_back(*col);
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("ORDER")) {
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      while (true) {
        OrderByItem item;
        StatusOr<ColumnRef> col = ParseColumnRef();
        if (!col.ok()) return col.status();
        item.column = *col;
        if (MatchKeyword("DESC")) {
          item.desc = true;
        } else {
          MatchKeyword("ASC");
        }
        sel->order_by.push_back(std::move(item));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Status::InvalidArgument("expected integer after LIMIT");
      }
      sel->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }

    Statement stmt;
    stmt.kind = StatementKind::kSelect;
    stmt.select = std::move(sel);
    return stmt;
  }

  StatusOr<Statement> ParseInsert() {
    Advance();  // INSERT
    Status s = ExpectKeyword("INTO");
    if (!s.ok()) return s;
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name after INSERT INTO");
    }
    auto ins = std::make_unique<InsertStatement>();
    ins->table = Advance().text;
    if (Match(TokenType::kLParen)) {
      while (true) {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::InvalidArgument("expected column name in list");
        }
        ins->columns.push_back(Advance().text);
        if (!Match(TokenType::kComma)) break;
      }
      s = Expect(TokenType::kRParen, ")");
      if (!s.ok()) return s;
    }
    s = ExpectKeyword("VALUES");
    if (!s.ok()) return s;
    while (true) {
      s = Expect(TokenType::kLParen, "(");
      if (!s.ok()) return s;
      Row row;
      while (true) {
        StatusOr<Value> v = ParseLiteral();
        if (!v.ok()) return v.status();
        row.push_back(std::move(*v));
        if (!Match(TokenType::kComma)) break;
      }
      s = Expect(TokenType::kRParen, ")");
      if (!s.ok()) return s;
      ins->rows.push_back(std::move(row));
      if (!Match(TokenType::kComma)) break;
    }
    Statement stmt;
    stmt.kind = StatementKind::kInsert;
    stmt.insert = std::move(ins);
    return stmt;
  }

  StatusOr<Statement> ParseUpdate() {
    Advance();  // UPDATE
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name after UPDATE");
    }
    auto upd = std::make_unique<UpdateStatement>();
    upd->table = Advance().text;
    Status s = ExpectKeyword("SET");
    if (!s.ok()) return s;
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected column name in SET");
      }
      std::string col = Advance().text;
      if (Peek().type != TokenType::kOperator || Peek().text != "=") {
        return Status::InvalidArgument("expected '=' in SET");
      }
      Advance();
      StatusOr<Value> v = ParseLiteral();
      if (!v.ok()) return v.status();
      upd->assignments.emplace_back(std::move(col), std::move(*v));
      if (!Match(TokenType::kComma)) break;
    }
    if (MatchKeyword("WHERE")) {
      StatusOr<ExprPtr> where = ParseExpr();
      if (!where.ok()) return where.status();
      upd->where = std::move(*where);
    }
    Statement stmt;
    stmt.kind = StatementKind::kUpdate;
    stmt.update = std::move(upd);
    return stmt;
  }

  StatusOr<Statement> ParseDelete() {
    Advance();  // DELETE
    Status s = ExpectKeyword("FROM");
    if (!s.ok()) return s;
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name after DELETE FROM");
    }
    auto del = std::make_unique<DeleteStatement>();
    del->table = Advance().text;
    if (MatchKeyword("WHERE")) {
      StatusOr<ExprPtr> where = ParseExpr();
      if (!where.ok()) return where.status();
      del->where = std::move(*where);
    }
    Statement stmt;
    stmt.kind = StatementKind::kDelete;
    stmt.del = std::move(del);
    return stmt;
  }

  StatusOr<TableRef> ParseTableRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name near '" +
                                     Peek().text + "'");
    }
    TableRef tr;
    tr.table = Advance().text;
    tr.alias = tr.table;
    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected alias after AS");
      }
      tr.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      tr.alias = Advance().text;  // implicit alias
    }
    return tr;
  }

  StatusOr<ColumnRef> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected column name near '" +
                                     Peek().text + "'");
    }
    std::string first = Advance().text;
    if (Match(TokenType::kDot)) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected column after '.'");
      }
      return ColumnRef(std::move(first), Advance().text);
    }
    return ColumnRef(std::move(first));
  }

  StatusOr<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        Advance();
        return Value(static_cast<int64_t>(
            std::strtoll(t.text.c_str(), nullptr, 10)));
      }
      case TokenType::kFloat: {
        Advance();
        return Value(std::strtod(t.text.c_str(), nullptr));
      }
      case TokenType::kString: {
        Advance();
        return Value(t.text);
      }
      case TokenType::kKeyword:
        if (t.text == "NULL") {
          Advance();
          return Value::Null();
        }
        break;
      default:
        break;
    }
    return Status::InvalidArgument("expected literal near '" + t.text + "'");
  }

  // expr := and_expr (OR and_expr)*
  StatusOr<ExprPtr> ParseExpr() {
    StatusOr<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    if (!Peek().IsKeyword("OR")) return lhs;
    std::vector<ExprPtr> children;
    children.push_back(std::move(*lhs));
    while (MatchKeyword("OR")) {
      StatusOr<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      children.push_back(std::move(*rhs));
    }
    return Expr::MakeOr(std::move(children));
  }

  // and_expr := not_expr (AND not_expr)*
  StatusOr<ExprPtr> ParseAnd() {
    StatusOr<ExprPtr> lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    if (!Peek().IsKeyword("AND")) return lhs;
    std::vector<ExprPtr> children;
    children.push_back(std::move(*lhs));
    while (MatchKeyword("AND")) {
      StatusOr<ExprPtr> rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      children.push_back(std::move(*rhs));
    }
    return Expr::MakeAnd(std::move(children));
  }

  StatusOr<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      StatusOr<ExprPtr> child = ParseNot();
      if (!child.ok()) return child;
      return Expr::MakeNot(std::move(*child));
    }
    return ParsePrimary();
  }

  // primary := '(' expr ')' | operand predicate_tail
  StatusOr<ExprPtr> ParsePrimary() {
    if (Match(TokenType::kLParen)) {
      StatusOr<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      Status s = Expect(TokenType::kRParen, ")");
      if (!s.ok()) return s;
      return inner;
    }
    // Operand: column ref or literal (rare on the left).
    StatusOr<ExprPtr> operand = ParseOperand();
    if (!operand.ok()) return operand;
    return ParsePredicateTail(std::move(*operand));
  }

  StatusOr<ExprPtr> ParseOperand() {
    const Token& t = Peek();
    if (t.type == TokenType::kIdentifier) {
      StatusOr<ColumnRef> col = ParseColumnRef();
      if (!col.ok()) return col.status();
      return Expr::MakeColumn(std::move(*col));
    }
    StatusOr<Value> v = ParseLiteral();
    if (!v.ok()) return v.status();
    return Expr::MakeLiteral(std::move(*v));
  }

  StatusOr<ExprPtr> ParsePredicateTail(ExprPtr operand) {
    const Token& t = Peek();
    if (t.type == TokenType::kOperator) {
      const std::string op_text = Advance().text;
      CompareOp op;
      if (op_text == "=") {
        op = CompareOp::kEq;
      } else if (op_text == "<>") {
        op = CompareOp::kNe;
      } else if (op_text == "<") {
        op = CompareOp::kLt;
      } else if (op_text == "<=") {
        op = CompareOp::kLe;
      } else if (op_text == ">") {
        op = CompareOp::kGt;
      } else if (op_text == ">=") {
        op = CompareOp::kGe;
      } else {
        return Status::InvalidArgument("unknown operator " + op_text);
      }
      StatusOr<ExprPtr> rhs = ParseOperand();
      if (!rhs.ok()) return rhs;
      return Expr::MakeCompare(op, std::move(operand), std::move(*rhs));
    }
    if (MatchKeyword("BETWEEN")) {
      StatusOr<Value> lo = ParseLiteral();
      if (!lo.ok()) return lo.status();
      Status s = ExpectKeyword("AND");
      if (!s.ok()) return s;
      StatusOr<Value> hi = ParseLiteral();
      if (!hi.ok()) return hi.status();
      return Expr::MakeBetween(std::move(operand), std::move(*lo),
                               std::move(*hi));
    }
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("IN")) {
      Status s = Expect(TokenType::kLParen, "(");
      if (!s.ok()) return s;
      std::vector<Value> list;
      while (true) {
        StatusOr<Value> v = ParseLiteral();
        if (!v.ok()) return v.status();
        list.push_back(std::move(*v));
        if (!Match(TokenType::kComma)) break;
      }
      s = Expect(TokenType::kRParen, ")");
      if (!s.ok()) return s;
      return Expr::MakeInList(std::move(operand), std::move(list), negated);
    }
    if (MatchKeyword("LIKE")) {
      StatusOr<Value> pattern = ParseLiteral();
      if (!pattern.ok()) return pattern.status();
      ExprPtr like = Expr::MakeCompare(CompareOp::kLike, std::move(operand),
                                       Expr::MakeLiteral(std::move(*pattern)));
      if (negated) return Expr::MakeNot(std::move(like));
      return like;
    }
    if (MatchKeyword("IS")) {
      bool is_not = MatchKeyword("NOT");
      Status s = ExpectKeyword("NULL");
      if (!s.ok()) return s;
      return Expr::MakeIsNull(std::move(operand), is_not);
    }
    return Status::InvalidArgument("expected predicate near '" + Peek().text +
                                   "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Statement> ParseSql(const std::string& sql) {
  StatusOr<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseStatement();
}

}  // namespace autoindex
