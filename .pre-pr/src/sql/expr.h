#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace autoindex {

// A possibly table-qualified column reference. `table` is empty when the
// query leaves the column unqualified; the planner resolves it against the
// FROM list.
struct ColumnRef {
  std::string table;
  std::string column;

  ColumnRef() = default;
  ColumnRef(std::string t, std::string c)
      : table(std::move(t)), column(std::move(c)) {}
  explicit ColumnRef(std::string c) : column(std::move(c)) {}

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kLike };

const char* CompareOpName(CompareOp op);
// The op satisfied by swapped operands (e.g. kLt -> kGt).
CompareOp SwapCompareOp(CompareOp op);
// Logical negation (e.g. kLt -> kGe).
CompareOp NegateCompareOp(CompareOp op);

enum class ExprKind {
  kColumn,   // column reference
  kLiteral,  // constant
  kCompare,  // children[0] op children[1]
  kAnd,      // n-ary conjunction
  kOr,       // n-ary disjunction
  kNot,      // children[0]
  kBetween,  // children[0] BETWEEN children[1] AND children[2]
  kInList,   // children[0] IN (list); `negated` flips to NOT IN
  kIsNull,   // children[0] IS [NOT] NULL; `negated` flips
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// Boolean/scalar expression node. A tagged struct (rather than a class
// hierarchy) keeps rewrites like the DNF conversion straightforward.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  CompareOp op = CompareOp::kEq;  // kCompare only
  ColumnRef column;               // kColumn only
  Value literal;                  // kLiteral only
  std::vector<Value> in_list;     // kInList only
  bool negated = false;           // kInList / kIsNull
  std::vector<ExprPtr> children;

  static ExprPtr MakeColumn(ColumnRef col);
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  // Convenience: column <op> literal.
  static ExprPtr MakeColCompare(ColumnRef col, CompareOp op, Value v);
  static ExprPtr MakeAnd(std::vector<ExprPtr> children);
  static ExprPtr MakeOr(std::vector<ExprPtr> children);
  static ExprPtr MakeNot(ExprPtr child);
  static ExprPtr MakeBetween(ExprPtr operand, Value lo, Value hi);
  static ExprPtr MakeInList(ExprPtr operand, std::vector<Value> list,
                            bool negated = false);
  static ExprPtr MakeIsNull(ExprPtr operand, bool negated = false);

  ExprPtr Clone() const;

  // Structural equality (used by tests and template matching).
  bool Equals(const Expr& other) const;

  // True for kCompare/kBetween/kInList/kIsNull — the leaves of the boolean
  // structure.
  bool IsAtomicPredicate() const;

  // Appends every referenced column (depth-first, with duplicates).
  void CollectColumns(std::vector<ColumnRef>* out) const;

  std::string ToString() const;
};

// Evaluates a boolean expression over a row. `resolve` maps a ColumnRef to
// the value in the current row. Atoms involving NULL evaluate to false
// (two-valued logic is sufficient for this engine).
class ColumnResolver {
 public:
  virtual ~ColumnResolver() = default;
  // Returns true and sets *out when the column is bound.
  virtual bool Resolve(const ColumnRef& col, Value* out) const = 0;
};

bool EvaluatePredicate(const Expr& expr, const ColumnResolver& resolver);

}  // namespace autoindex
