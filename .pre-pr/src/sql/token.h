#pragma once

#include <string>

namespace autoindex {

enum class TokenType {
  kIdentifier,  // table/column names (lowercased)
  kKeyword,     // SQL keywords (uppercased)
  kInteger,
  kFloat,
  kString,      // quoted literal, quotes stripped
  kOperator,    // = <> != < <= > >=
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // normalized spelling
  size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

}  // namespace autoindex
