#include "check/heap_validator.h"

#include "storage/catalog.h"
#include "util/string_util.h"

namespace autoindex {

void HeapTableValidator::Validate(const CheckContext& ctx,
                                  CheckReport* report) const {
  if (ctx.catalog == nullptr) return;
  const Catalog& catalog = *ctx.catalog;
  for (const std::string& table_name : catalog.TableNames()) {
    const HeapTable* table = catalog.GetTable(table_name);
    if (table == nullptr) {
      report->AddIssue(name(), StrCat("table ", table_name,
                                      " listed but not resolvable"));
      continue;
    }
    report->NoteStructureChecked();

    // Live-row counter vs a fresh scan; also verify every scanned slot
    // resolves and respects schema arity.
    const size_t arity = table->schema().num_columns();
    size_t scanned = 0;
    table->Scan([&](RowId rid, const Row& row) {
      ++scanned;
      if (!table->IsLive(rid)) {
        report->AddIssue(name(), StrCat("table ", table_name, ": slot ", rid,
                                        " scanned but IsLive says dead"));
      }
      if (row.size() != arity) {
        report->AddIssue(
            name(), StrCat("table ", table_name, ": row ", rid, " has ",
                           row.size(), " columns, schema declares ", arity));
      }
    });
    if (scanned != table->num_rows()) {
      report->AddIssue(
          name(), StrCat("table ", table_name, ": live-row counter says ",
                         table->num_rows(), " but a fresh scan found ",
                         scanned));
    }
    if (table->num_rows() > table->num_slots()) {
      report->AddIssue(
          name(), StrCat("table ", table_name, ": ", table->num_rows(),
                         " live rows exceed ", table->num_slots(),
                         " allocated slots"));
    }

    // Page accounting.
    if (table->RowsPerPage() == 0) {
      report->AddIssue(name(),
                       StrCat("table ", table_name, ": RowsPerPage is 0"));
      continue;
    }
    const size_t want_pages =
        (table->num_slots() + table->RowsPerPage() - 1) / table->RowsPerPage();
    if (table->NumPages() != want_pages) {
      report->AddIssue(
          name(), StrCat("table ", table_name, ": NumPages reports ",
                         table->NumPages(), " for ", table->num_slots(),
                         " slots at ", table->RowsPerPage(),
                         " rows/page (want ", want_pages, ")"));
    }
    if (table->num_slots() > 0 &&
        table->PageOfRow(table->num_slots() - 1) >= want_pages &&
        want_pages > 0) {
      report->AddIssue(name(),
                       StrCat("table ", table_name,
                              ": PageOfRow(last slot) lands past NumPages"));
    }

    // Partitioning metadata, when declared.
    if (table->partitioned()) {
      if (table->num_partitions() == 0) {
        report->AddIssue(name(), StrCat("table ", table_name,
                                        ": partitioned with 0 partitions"));
      }
      if (table->partition_column() >= static_cast<int>(arity)) {
        report->AddIssue(
            name(), StrCat("table ", table_name, ": partition column ordinal ",
                           table->partition_column(),
                           " outside the schema's ", arity, " columns"));
      }
    }
  }
}

}  // namespace autoindex
