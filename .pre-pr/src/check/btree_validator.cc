#include "check/btree_validator.h"

#include "index/index_manager.h"
#include "util/string_util.h"

namespace autoindex {

void BTreeValidator::Validate(const CheckContext& ctx,
                              CheckReport* report) const {
  if (ctx.indexes == nullptr) return;
  for (const BuiltIndex* index : ctx.indexes->AllIndexes()) {
    const std::string display = index->def().DisplayName();
    size_t entries = 0;
    for (size_t t = 0; t < index->num_trees(); ++t) {
      const BTree& tree = index->tree_at(t);
      report->NoteStructureChecked();
      const Status s = tree.ValidateStructure();
      if (!s.ok()) {
        report->AddIssue(name(), StrCat(display, " tree ", t, ": ",
                                        s.message()));
      }
      entries += tree.num_entries();
    }
    // The per-index rollup must agree with its trees (local indexes sum
    // over partitions).
    if (entries != index->num_entries()) {
      report->AddIssue(
          name(), StrCat(display, ": index reports ", index->num_entries(),
                         " entries but its trees hold ", entries));
    }
  }
}

}  // namespace autoindex
