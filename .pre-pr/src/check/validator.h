#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace autoindex {

class Catalog;
class Database;
class IndexManager;
class MctsIndexSelector;
struct ExecStats;
struct PlanNodeSnapshot;

// One violated structural invariant, attributed to the validator that
// found it. `detail` names the exact structure and the nature of the
// damage (e.g. "btree idx_orders_customer_id: reported num_entries 10 but
// leaves hold 9") so a failing check is actionable without a debugger.
struct CheckIssue {
  std::string validator;
  std::string detail;
};

// The outcome of running one or more validators. Empty issue list = every
// structure passed.
class CheckReport {
 public:
  void AddIssue(std::string validator, std::string detail) {
    issues_.push_back({std::move(validator), std::move(detail)});
  }
  // Validators call this once per structure examined, so "0 issues" can be
  // told apart from "0 structures looked at" — an always-green validator
  // that inspects nothing would show up here.
  void NoteStructureChecked() { ++structures_checked_; }

  bool ok() const { return issues_.empty(); }
  const std::vector<CheckIssue>& issues() const { return issues_; }
  size_t structures_checked() const { return structures_checked_; }

  // "OK (7 structures checked)" or one line per issue.
  std::string ToString() const;

  // Folds another report into this one (registry aggregation).
  void Merge(const CheckReport& other);

 private:
  std::vector<CheckIssue> issues_;
  size_t structures_checked_ = 0;
};

// Everything a validator may inspect. Each pointer is optional —
// validators no-op on the parts that are absent — so the storage-level
// validators run equally against a bare Catalog/IndexManager pair (unit
// tests) and a full Database (CheckAll fills all fields it can).
struct CheckContext {
  const Catalog* catalog = nullptr;
  const IndexManager* indexes = nullptr;
  const MctsIndexSelector* mcts = nullptr;
  // The executor's last read pipeline and the statement stats it summed
  // into (absent until a SELECT/UPDATE/DELETE ran). Checked by the
  // physical-plan validator.
  const PlanNodeSnapshot* last_plan = nullptr;
  const ExecStats* last_plan_stats = nullptr;
};

// A structural invariant checker over one subsystem. Implementations live
// in src/check/*_validator.cc and are registered with the default
// registry; new subsystems (sharding, caches, ...) add their own validator
// here and every CheckAll call site picks it up for free.
class Validator {
 public:
  virtual ~Validator() = default;
  virtual const char* name() const = 0;
  virtual void Validate(const CheckContext& ctx, CheckReport* report) const = 0;
};

// Holds validators and runs them in registration order. The default
// registry carries every built-in validator; tests may build private
// registries to run a single validator in isolation.
class ValidatorRegistry {
 public:
  ValidatorRegistry() = default;
  ValidatorRegistry(const ValidatorRegistry&) = delete;
  ValidatorRegistry& operator=(const ValidatorRegistry&) = delete;

  // The process-wide registry, pre-populated with the built-in validators
  // (B+Tree, heap table, catalog/index-manager, MCTS policy tree).
  static ValidatorRegistry& Default();

  void Register(std::unique_ptr<Validator> validator);
  CheckReport RunAll(const CheckContext& ctx) const;
  size_t size() const { return validators_.size(); }

 private:
  std::vector<std::unique_ptr<Validator>> validators_;
};

// Runs every registered validator over the database (and, in the second
// overload, an MCTS selector's policy tree). This is the entry point
// tests, the shell's \check command, and the debug-mode engine hook use.
CheckReport CheckAll(const Database& db);
CheckReport CheckAll(const Database& db, const MctsIndexSelector& mcts);
// Storage-level variant for tests that assemble a Catalog + IndexManager
// without the engine on top.
CheckReport CheckAll(const Catalog& catalog, const IndexManager& indexes);

// Debug-mode wiring: installs an invariant hook on `db` so that every
// mutating statement batch (INSERT/UPDATE/DELETE, BulkInsert, index DDL)
// is followed by a full CheckAll; a failure surfaces as that operation's
// status. Call with install=false to remove the hook.
void InstallDebugChecks(Database* db, bool install = true);

}  // namespace autoindex
