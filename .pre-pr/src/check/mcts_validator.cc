#include "check/mcts_validator.h"

#include "core/mcts.h"

namespace autoindex {

void MctsPolicyTreeValidator::Validate(const CheckContext& ctx,
                                       CheckReport* report) const {
  if (ctx.mcts == nullptr) return;
  report->NoteStructureChecked();
  const Status s = ctx.mcts->ValidateTree();
  if (!s.ok()) {
    report->AddIssue(name(), s.message());
  }
}

}  // namespace autoindex
