#pragma once

#include "check/validator.h"

namespace autoindex {

// Validates catalog <-> index-manager consistency: every built index
// references a live table and existing columns, its entry count matches
// the table's live rows, hypothetical indexes never shadow a built index
// (a what-if config must not double-count), and the manager's byte
// accounting sums over its indexes exactly.
class CatalogConsistencyValidator : public Validator {
 public:
  const char* name() const override { return "catalog"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;
};

}  // namespace autoindex
