#include "check/plan_validator.h"

#include <cstdint>
#include <string>
#include <unordered_map>

#include "engine/cost_model.h"
#include "engine/operators/operator.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

// Expected child count per operator. Unknown names are themselves issues:
// a snapshot can only contain operators the lowering emits.
const std::unordered_map<std::string, size_t>& ArityMap() {
  static const std::unordered_map<std::string, size_t> arity = {
      {"SeqScan", 0},        {"IndexScan", 0},
      {"Filter", 1},         {"Project", 1},
      {"Sort", 1},           {"Limit", 1},
      {"HashAggregate", 1},  {"NestedLoopJoin", 2},
      {"HashJoin", 2},       {"IndexNestedLoopJoin", 2},
  };
  return arity;
}

struct CounterSums {
  int64_t heap_pages_read = 0;
  int64_t index_pages_read = 0;
  int64_t tuples_examined = 0;
  int64_t index_tuples_read = 0;
  int64_t sort_rows = 0;
};

void WalkNode(const PlanNodeSnapshot& node, const char* validator,
              CheckReport* report, CounterSums* sums) {
  auto it = ArityMap().find(node.op);
  if (it == ArityMap().end()) {
    report->AddIssue(validator,
                     StrCat("unknown operator \"", node.op, "\" in plan"));
  } else if (node.children.size() != it->second) {
    report->AddIssue(
        validator, StrCat("operator ", node.op, " has ", node.children.size(),
                          " children, expected ", it->second));
  }

  const struct {
    const char* label;
    int64_t value;
  } counters[] = {
      {"rows_in", node.actual.rows_in},
      {"rows_out", node.actual.rows_out},
      {"heap_pages_read", node.actual.heap_pages_read},
      {"index_pages_read", node.actual.index_pages_read},
      {"tuples_examined", node.actual.tuples_examined},
      {"index_tuples_read", node.actual.index_tuples_read},
      {"sort_rows", node.actual.sort_rows},
      {"comparisons", node.actual.comparisons},
  };
  for (const auto& c : counters) {
    if (c.value < 0) {
      report->AddIssue(validator, StrCat("operator ", node.op,
                                         ": negative counter ", c.label, " (",
                                         c.value, ")"));
    }
  }

  // Tuple-width propagation: scans and row-shaping operators emit width 1,
  // joins extend their outer child by one slot, the rest pass through.
  if (node.op == "SeqScan" || node.op == "IndexScan" ||
      node.op == "Project" || node.op == "HashAggregate") {
    if (node.out_width != 1) {
      report->AddIssue(validator, StrCat("operator ", node.op, ": width ",
                                         node.out_width, ", expected 1"));
    }
  } else if (node.op == "NestedLoopJoin" || node.op == "HashJoin" ||
             node.op == "IndexNestedLoopJoin") {
    if (node.children.size() == 2) {
      if (node.out_width != node.children[0].out_width + 1) {
        report->AddIssue(
            validator,
            StrCat("join ", node.op, ": width ", node.out_width,
                   ", expected outer width + 1 = ",
                   node.children[0].out_width + 1));
      }
      if (node.children[1].out_width != 1) {
        report->AddIssue(validator,
                         StrCat("join ", node.op, ": inner child width ",
                                node.children[1].out_width, ", expected 1"));
      }
    }
  } else if (node.op == "Filter" || node.op == "Sort" || node.op == "Limit") {
    if (node.children.size() == 1 &&
        node.out_width != node.children[0].out_width) {
      report->AddIssue(
          validator,
          StrCat("operator ", node.op, ": width ", node.out_width,
                 " differs from child width ", node.children[0].out_width));
    }
  }

  // Row-count sanity: filters and limits never create tuples.
  if ((node.op == "Filter" || node.op == "Limit") &&
      node.actual.rows_out > node.actual.rows_in) {
    report->AddIssue(validator,
                     StrCat("operator ", node.op, ": rows_out ",
                            node.actual.rows_out, " exceeds rows_in ",
                            node.actual.rows_in));
  }

  sums->heap_pages_read += node.actual.heap_pages_read;
  sums->index_pages_read += node.actual.index_pages_read;
  sums->tuples_examined += node.actual.tuples_examined;
  sums->index_tuples_read += node.actual.index_tuples_read;
  sums->sort_rows += node.actual.sort_rows;

  for (const PlanNodeSnapshot& child : node.children) {
    WalkNode(child, validator, report, sums);
  }
}

}  // namespace

void PhysicalPlanValidator::Validate(const CheckContext& ctx,
                                     CheckReport* report) const {
  if (ctx.last_plan == nullptr) return;
  report->NoteStructureChecked();

  CounterSums sums;
  WalkNode(*ctx.last_plan, name(), report, &sums);

  if (ctx.last_plan_stats == nullptr) return;
  const ExecStats& stats = *ctx.last_plan_stats;
  const struct {
    const char* label;
    int64_t summed;
    size_t statement;
  } totals[] = {
      {"heap_pages_read", sums.heap_pages_read, stats.heap_pages_read},
      {"index_pages_read", sums.index_pages_read, stats.index_pages_read},
      {"tuples_examined", sums.tuples_examined, stats.tuples_examined},
      {"index_tuples_read", sums.index_tuples_read, stats.index_tuples_read},
      {"sort_rows", sums.sort_rows, stats.sort_rows},
  };
  for (const auto& t : totals) {
    if (t.summed < 0 ||
        static_cast<size_t>(t.summed) != t.statement) {
      report->AddIssue(
          name(), StrCat("operator counters sum to ", t.summed, " ", t.label,
                         " but statement ExecStats says ", t.statement));
    }
  }
  if (ctx.last_plan->actual.rows_out >= 0 &&
      static_cast<size_t>(ctx.last_plan->actual.rows_out) !=
          stats.rows_returned) {
    report->AddIssue(name(),
                     StrCat("root operator emitted ",
                            ctx.last_plan->actual.rows_out,
                            " rows but statement ExecStats says rows_returned ",
                            stats.rows_returned));
  }
}

}  // namespace autoindex
