#pragma once

#include "check/validator.h"

namespace autoindex {

// Validates the last executed physical plan snapshot: operator names and
// child arity, schema (tuple width) propagation, non-negative counters,
// and — the load-bearing invariant — that the per-operator counters sum
// exactly to the statement-level ExecStats the cost model priced. If the
// two accountings drift, every benefit estimate silently degrades.
class PhysicalPlanValidator : public Validator {
 public:
  const char* name() const override { return "physical_plan"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;
};

}  // namespace autoindex
