#pragma once

#include "check/validator.h"

namespace autoindex {

// Validates every B+Tree of every built index: key ordering within and
// across nodes, child/separator key-range containment, uniform leaf depth,
// leaf-chain connectivity, capacity bounds, and reported
// height/page/tuple stats matching a fresh walk (the deep walk itself
// lives in BTree::ValidateStructure, which can see node internals).
class BTreeValidator : public Validator {
 public:
  const char* name() const override { return "btree"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;
};

}  // namespace autoindex
