#pragma once

#include "check/validator.h"

namespace autoindex {

// Validates the MCTS selector's persistent policy tree: parent/child link
// symmetry, visit counts monotone down the tree (a node's visits >= the
// sum of its children's), benefit values inside [0, 1] and monotone up the
// tree, and the size counter matching a fresh walk (the walk itself lives
// in MctsIndexSelector::ValidateTree, which can see node internals).
// No-ops when the context carries no selector.
class MctsPolicyTreeValidator : public Validator {
 public:
  const char* name() const override { return "mcts"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;
};

}  // namespace autoindex
