#pragma once

#include "check/validator.h"

namespace autoindex {

// Validates every heap table: the live-row counter matches a fresh scan,
// every live slot resolves to a row of the schema's arity, and the page
// accounting (RowsPerPage / NumPages / PageOfRow) is internally
// consistent — the cost model prices scans off these numbers, so drift
// here silently skews every estimate.
class HeapTableValidator : public Validator {
 public:
  const char* name() const override { return "heap"; }
  void Validate(const CheckContext& ctx, CheckReport* report) const override;
};

}  // namespace autoindex
