#include "check/catalog_validator.h"

#include "index/index_manager.h"
#include "storage/catalog.h"
#include "util/string_util.h"

namespace autoindex {

void CatalogConsistencyValidator::Validate(const CheckContext& ctx,
                                           CheckReport* report) const {
  if (ctx.catalog == nullptr || ctx.indexes == nullptr) return;
  const Catalog& catalog = *ctx.catalog;
  const IndexManager& manager = *ctx.indexes;

  size_t summed_bytes = 0;
  for (const BuiltIndex* index : manager.AllIndexes()) {
    report->NoteStructureChecked();
    const IndexDef& def = index->def();
    const std::string display = def.DisplayName();

    const HeapTable* table = catalog.GetTable(def.table);
    if (table == nullptr) {
      report->AddIssue(name(), StrCat("index ", display,
                                      " references dropped table ",
                                      def.table));
      continue;
    }
    for (const std::string& col : def.columns) {
      if (!table->schema().HasColumn(col)) {
        report->AddIssue(name(),
                         StrCat("index ", display, " references column ", col,
                                " missing from table ", def.table));
      }
    }
    if (def.columns.empty()) {
      report->AddIssue(name(), StrCat("index ", display, " has no columns"));
    }

    // Indexes carry exactly one entry per live row: OnInsert/OnDelete/
    // OnUpdate keep them in lock-step and CreateIndex scans only live
    // rows. Drift here is the "index-size accounting" class of bug.
    if (index->num_entries() != table->num_rows()) {
      report->AddIssue(
          name(), StrCat("index ", display, " holds ", index->num_entries(),
                         " entries but table ", def.table, " has ",
                         table->num_rows(), " live rows"));
    }

    // Local indexes must shard by the table's partitioning; global ones
    // keep a single tree.
    if (def.kind == IndexKind::kLocal && table->partitioned() &&
        index->num_trees() != table->num_partitions()) {
      report->AddIssue(
          name(), StrCat("local index ", display, " has ", index->num_trees(),
                         " trees for ", table->num_partitions(),
                         " partitions"));
    }
    if (def.kind == IndexKind::kGlobal && index->num_trees() != 1) {
      report->AddIssue(name(), StrCat("global index ", display, " has ",
                                      index->num_trees(), " trees"));
    }
    summed_bytes += index->SizeBytes();
  }

  report->NoteStructureChecked();  // the manager-level accounting itself
  if (summed_bytes != manager.TotalIndexBytes()) {
    report->AddIssue(
        name(), StrCat("TotalIndexBytes reports ", manager.TotalIndexBytes(),
                       " but per-index sizes sum to ", summed_bytes));
  }

  // Hypothetical indexes: must reference live tables/columns and must
  // never appear in the physical set — a what-if round that leaks its
  // hypotheticals would double-count them against real plans.
  for (const HypotheticalIndex& hypo : manager.hypothetical()) {
    report->NoteStructureChecked();
    const std::string display = hypo.def.DisplayName();
    if (manager.HasIndex(hypo.def)) {
      report->AddIssue(name(),
                       StrCat("hypothetical index ", display,
                              " also exists in the physical index set"));
    }
    const HeapTable* table = catalog.GetTable(hypo.def.table);
    if (table == nullptr) {
      report->AddIssue(name(), StrCat("hypothetical index ", display,
                                      " references dropped table ",
                                      hypo.def.table));
      continue;
    }
    for (const std::string& col : hypo.def.columns) {
      if (!table->schema().HasColumn(col)) {
        report->AddIssue(name(), StrCat("hypothetical index ", display,
                                        " references column ", col,
                                        " missing from table ",
                                        hypo.def.table));
      }
    }
  }
}

}  // namespace autoindex
