#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "sql/expr.h"
#include "stats/column_stats.h"
#include "storage/catalog.h"

namespace autoindex {

// Caches per-table, per-column statistics and estimates predicate
// selectivities. Stats go stale as tables mutate; callers re-ANALYZE via
// Invalidate()/Analyze() (the workload runner does this between rounds).
class StatsManager {
 public:
  explicit StatsManager(Catalog* catalog) : catalog_(catalog) {}

  StatsManager(const StatsManager&) = delete;
  StatsManager& operator=(const StatsManager&) = delete;

  // (Re)builds statistics for one table.
  void Analyze(const std::string& table);
  // (Re)builds statistics for every table in the catalog.
  void AnalyzeAll();
  void Invalidate(const std::string& table);

  // Stats for a column; builds them lazily on first access. Returns
  // nullptr when the table/column does not exist.
  const ColumnStats* GetColumnStats(const std::string& table,
                                    const std::string& column);

  // Estimated fraction of `table` rows satisfying the boolean expression.
  // ANDs multiply (independence), ORs combine via inclusion-exclusion,
  // NOT complements. Predicates naming other tables are ignored (treated
  // as selectivity 1 for this table).
  double EstimateSelectivity(const Expr& expr, const std::string& table,
                             const std::string& alias = "");

  // Selectivity of a single atomic predicate against `table`.
  double AtomSelectivity(const Expr& atom, const std::string& table,
                         const std::string& alias = "");

 private:
  Catalog* catalog_;
  // table -> column -> stats
  std::unordered_map<std::string,
                     std::unordered_map<std::string, ColumnStats>>
      cache_;
};

}  // namespace autoindex
