#include "storage/schema.h"

#include "util/string_util.h"

namespace autoindex {

namespace {
constexpr size_t kTupleHeaderBytes = 24;
}  // namespace

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (Column& c : columns_) c.name = ToLower(c.name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, static_cast<int>(i));
  }
}

int Schema::FindColumn(const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) return -1;
  return it->second;
}

size_t Schema::EstimatedRowBytes() const {
  size_t bytes = kTupleHeaderBytes;
  for (const Column& c : columns_) bytes += c.avg_width;
  return bytes;
}

}  // namespace autoindex
