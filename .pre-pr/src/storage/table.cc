#include "storage/table.h"

#include "util/string_util.h"

namespace autoindex {

HeapTable::HeapTable(std::string name, Schema schema)
    : name_(ToLower(name)), schema_(std::move(schema)) {
  const size_t row_bytes = schema_.EstimatedRowBytes();
  rows_per_page_ = row_bytes == 0 ? 1 : kPageSizeBytes / row_bytes;
  if (rows_per_page_ == 0) rows_per_page_ = 1;
}

bool HeapTable::SetPartitioning(const std::string& column,
                                size_t num_partitions) {
  const int ord = schema_.FindColumn(column);
  if (ord < 0 || num_partitions == 0) return false;
  partition_column_ = ord;
  num_partitions_ = num_partitions;
  return true;
}

size_t HeapTable::NumPages() const {
  if (rows_.empty()) return 0;
  return (rows_.size() + rows_per_page_ - 1) / rows_per_page_;
}

StatusOr<RowId> HeapTable::Insert(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("table %s expects %zu columns, got %zu", name_.c_str(),
                  schema_.num_columns(), row.size()));
  }
  rows_.push_back(std::move(row));
  deleted_.push_back(false);
  ++live_rows_;
  return static_cast<RowId>(rows_.size() - 1);
}

Status HeapTable::Update(RowId rid, Row row) {
  if (rid >= rows_.size() || deleted_[rid]) {
    return Status::NotFound(StrFormat("row %llu not found in table %s",
                                      static_cast<unsigned long long>(rid),
                                      name_.c_str()));
  }
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch on update");
  }
  rows_[rid] = std::move(row);
  return Status::Ok();
}

Status HeapTable::Delete(RowId rid) {
  if (rid >= rows_.size() || deleted_[rid]) {
    return Status::NotFound(StrFormat("row %llu not found in table %s",
                                      static_cast<unsigned long long>(rid),
                                      name_.c_str()));
  }
  deleted_[rid] = true;
  --live_rows_;
  return Status::Ok();
}

}  // namespace autoindex
