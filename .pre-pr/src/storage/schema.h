#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace autoindex {

// A named, typed column. `avg_width` is used for page accounting of string
// columns whose width is not known up front.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt;
  size_t avg_width = 8;

  Column() = default;
  Column(std::string n, ValueType t) : name(std::move(n)), type(t) {
    avg_width = (t == ValueType::kString) ? 16 : 8;
  }
  Column(std::string n, ValueType t, size_t w)
      : name(std::move(n)), type(t), avg_width(w) {}
};

// Ordered column list for one table. Column names are case-insensitive and
// stored lowercased.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Returns the ordinal of a (lowercased) column name, or -1 if absent.
  int FindColumn(const std::string& name) const;
  bool HasColumn(const std::string& name) const { return FindColumn(name) >= 0; }

  // Estimated bytes of one row under this schema (per-column avg widths plus
  // a fixed tuple header, mirroring heap tuple layout).
  size_t EstimatedRowBytes() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace autoindex
