#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace autoindex {

// Owns all tables of one database instance. Table names are
// case-insensitive.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Creates an empty table; fails if the name is taken.
  StatusOr<HeapTable*> CreateTable(const std::string& name, Schema schema);

  Status DropTable(const std::string& name);

  // nullptr when absent.
  HeapTable* GetTable(const std::string& name);
  const HeapTable* GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

  // Sum of heap bytes across all tables (excludes indexes).
  size_t TotalHeapBytes() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<HeapTable>> tables_;
};

}  // namespace autoindex
