#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace autoindex {

// Column/value types supported by the engine. kNull is the type of the SQL
// NULL literal; typed columns may still hold null cells.
enum class ValueType {
  kNull = 0,
  kInt,     // 64-bit signed integer
  kDouble,  // IEEE double
  kString,  // variable-length UTF-8/ASCII string
};

const char* ValueTypeName(ValueType type);

// A single typed cell. Values order NULL first, then by numeric/lexical
// value; ints and doubles compare numerically against each other so that a
// predicate `x > 3` works on a double column.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  // Accessors; behavior is undefined if the type does not match (the engine
  // always checks type() first or relies on schema typing).
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(data_); }

  // Total ordering: NULL < ints/doubles (numeric) < strings (lexical).
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  // Approximate in-memory footprint used for page accounting.
  size_t ByteSize() const;

  size_t Hash() const;

  std::string ToString() const;

  // Renders as a SQL literal (strings quoted, NULL spelled out).
  std::string ToSqlLiteral() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

using Row = std::vector<Value>;

// Hash of a composite key; order-sensitive.
size_t HashRow(const Row& row);

// Lexicographic comparison of two rows (shorter row is a prefix-smaller).
int CompareRows(const Row& a, const Row& b);

}  // namespace autoindex
