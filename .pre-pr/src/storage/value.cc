#include "storage/value.h"

#include <functional>

#include "util/string_util.h"

namespace autoindex {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  if (std::holds_alternative<std::monostate>(data_)) return ValueType::kNull;
  if (std::holds_alternative<int64_t>(data_)) return ValueType::kInt;
  if (std::holds_alternative<double>(data_)) return ValueType::kDouble;
  return ValueType::kString;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(data_)) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  return std::get<double>(data_);
}

int Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null && b_null) return 0;
  if (a_null) return -1;
  if (b_null) return 1;

  const bool a_num = type() != ValueType::kString;
  const bool b_num = other.type() != ValueType::kString;
  if (a_num && b_num) {
    const double a = AsDouble();
    const double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numbers sort before strings
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return AsString().size() + 4;  // length header
  }
  return 8;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kInt:
      return std::hash<int64_t>()(AsInt());
    case ValueType::kDouble: {
      const double d = AsDouble();
      // Hash integral doubles like their int counterparts so mixed-type
      // equality keys land in the same bucket.
      const int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) return std::hash<int64_t>()(as_int);
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return StrFormat("%g", AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() == ValueType::kString) {
    std::string out = "'";
    for (char c : AsString()) {
      if (c == '\'') out += "''";
      else out.push_back(c);
    }
    out += "'";
    return out;
  }
  return ToString();
}

size_t HashRow(const Row& row) {
  size_t h = 0x345678;
  for (const Value& v : row) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

int CompareRows(const Row& a, const Row& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

}  // namespace autoindex
