#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace autoindex {

// Stable identifier of a row within one table (slot number; never reused).
using RowId = uint64_t;
inline constexpr RowId kInvalidRowId = ~0ULL;

// Logical page size used for IO accounting across the whole engine
// (heap pages and index pages alike).
inline constexpr size_t kPageSizeBytes = 8192;

// An append-only heap table with tombstone deletes. Rows live in insertion
// order; the slot id is the RowId. Page accounting is logical: rows are
// assigned to fixed-capacity pages in slot order, so a sequential scan of
// the table "reads" NumPages() pages — this feeds the cost model.
class HeapTable {
 public:
  HeapTable(std::string name, Schema schema);

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // --- hash partitioning (for global/local index type selection) ---
  // Declares the table hash-partitioned on `column` into `num_partitions`
  // shards. Storage layout is unchanged (partitioning here only routes
  // index entries); returns false if the column does not exist.
  bool SetPartitioning(const std::string& column, size_t num_partitions);
  bool partitioned() const { return partition_column_ >= 0; }
  int partition_column() const { return partition_column_; }
  size_t num_partitions() const { return num_partitions_; }
  // The shard a value of the partition column routes to.
  size_t PartitionOfValue(const Value& v) const {
    return num_partitions_ == 0 ? 0 : v.Hash() % num_partitions_;
  }
  size_t PartitionOfRow(const Row& row) const {
    if (partition_column_ < 0) return 0;
    return PartitionOfValue(row[static_cast<size_t>(partition_column_)]);
  }

  // Number of live (non-deleted) rows.
  size_t num_rows() const { return live_rows_; }
  // Total slots ever allocated, including tombstones.
  size_t num_slots() const { return rows_.size(); }

  // Rows per logical heap page under this schema (>= 1).
  size_t RowsPerPage() const { return rows_per_page_; }
  // Heap pages occupied by the table (based on allocated slots).
  size_t NumPages() const;
  // Estimated on-disk footprint in bytes.
  size_t SizeBytes() const { return NumPages() * kPageSizeBytes; }

  // The page a given slot lives on; used to count distinct pages touched by
  // index scans.
  size_t PageOfRow(RowId rid) const { return rid / rows_per_page_; }

  // Appends a row; the row must match the schema arity. Returns its RowId.
  StatusOr<RowId> Insert(Row row);

  // Replaces the row at `rid`. Fails on a deleted or out-of-range slot.
  Status Update(RowId rid, Row row);

  // Tombstones the row at `rid`.
  Status Delete(RowId rid);

  bool IsLive(RowId rid) const {
    return rid < rows_.size() && !deleted_[rid];
  }

  // Row access; caller must check IsLive first.
  const Row& Get(RowId rid) const { return rows_[rid]; }

  // Visits every live row in slot order.
  template <typename Fn>  // Fn(RowId, const Row&)
  void Scan(Fn&& fn) const {
    for (RowId rid = 0; rid < rows_.size(); ++rid) {
      if (!deleted_[rid]) fn(rid, rows_[rid]);
    }
  }

  // --- Test-only corruption hooks -----------------------------------
  // Let check_test damage the slot accounting to prove the heap validator
  // detects it (see src/check/). Never call outside tests.
  void TestOnlySetLiveRows(size_t n) { live_rows_ = n; }
  // Drops the last column of a live row, breaking schema arity; false if
  // the slot is dead, out of range, or already empty.
  bool TestOnlyTruncateRow(RowId rid) {
    if (!IsLive(rid) || rows_[rid].empty()) return false;
    rows_[rid].pop_back();
    return true;
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> deleted_;
  size_t live_rows_ = 0;
  size_t rows_per_page_ = 1;
  int partition_column_ = -1;
  size_t num_partitions_ = 0;
};

}  // namespace autoindex
