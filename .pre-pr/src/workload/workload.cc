#include "workload/workload.h"

#include <chrono>

namespace autoindex {
namespace {

template <typename ExecFn>
RunMetrics RunImpl(const std::vector<std::string>& queries,
                   std::vector<double>* per_query_costs,
                   const CostParams& params, ExecFn&& exec) {
  RunMetrics metrics;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& sql : queries) {
    StatusOr<ExecResult> result = exec(sql);
    ++metrics.queries;
    if (!result.ok()) {
      ++metrics.failed;
      if (per_query_costs != nullptr) per_query_costs->push_back(0.0);
      continue;
    }
    const CostBreakdown cost = result->stats.ToCost(params);
    metrics.total_cost += cost.Total();
    metrics.breakdown += cost;
    if (per_query_costs != nullptr) per_query_costs->push_back(cost.Total());
  }
  const auto end = std::chrono::steady_clock::now();
  metrics.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return metrics;
}

}  // namespace

RunMetrics RunWorkload(Database* db, const std::vector<std::string>& queries,
                       std::vector<double>* per_query_costs) {
  return RunImpl(queries, per_query_costs, db->params(),
                 [db](const std::string& sql) { return db->Execute(sql); });
}

RunMetrics RunWorkloadObserved(AutoIndexManager* manager,
                               const std::vector<std::string>& queries,
                               std::vector<double>* per_query_costs) {
  return RunImpl(queries, per_query_costs, manager->db().params(),
                 [manager](const std::string& sql) {
                   return manager->ExecuteAndObserve(sql);
                 });
}

void ObserveWorkload(AutoIndexManager* manager,
                     const std::vector<std::string>& queries) {
  for (const std::string& sql : queries) manager->ObserveOnly(sql);
}

}  // namespace autoindex
