#include "workload/tpcc.h"

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

constexpr const char* kLastNames[] = {
    "BARBAR", "OUGHT",  "ABLE",  "PRI",   "PRES",
    "ESE",    "ANTI",   "CALLY", "ATION", "EING",
};

std::string LastName(uint64_t i) {
  return std::string(kLastNames[i % 10]) + kLastNames[(i / 10) % 10];
}

}  // namespace

void TpccWorkload::Populate(Database* db, const TpccConfig& config) {
  Random rng(config.seed);

  CheckOk(db->CreateTable("warehouse", Schema({{"w_id", ValueType::kInt},
                                               {"w_name", ValueType::kString, 12},
                                               {"w_state", ValueType::kString, 4},
                                               {"w_ytd", ValueType::kDouble}})));
  CheckOk(db->CreateTable("district", Schema({{"d_id", ValueType::kInt},
                                              {"d_w_id", ValueType::kInt},
                                              {"d_name", ValueType::kString, 12},
                                              {"d_next_o_id", ValueType::kInt},
                                              {"d_ytd", ValueType::kDouble}})));
  CheckOk(db->CreateTable("customer", Schema({{"c_id", ValueType::kInt},
                                              {"c_d_id", ValueType::kInt},
                                              {"c_w_id", ValueType::kInt},
                                              {"c_last", ValueType::kString, 14},
                                              {"c_first", ValueType::kString, 12},
                                              {"c_balance", ValueType::kDouble},
                                              {"c_ytd_payment", ValueType::kDouble},
                                              {"c_credit", ValueType::kString, 4}})));
  CheckOk(db->CreateTable("history", Schema({{"h_c_id", ValueType::kInt},
                                             {"h_d_id", ValueType::kInt},
                                             {"h_w_id", ValueType::kInt},
                                             {"h_amount", ValueType::kDouble},
                                             {"h_date", ValueType::kInt}})));
  CheckOk(db->CreateTable("neworder", Schema({{"no_o_id", ValueType::kInt},
                                              {"no_d_id", ValueType::kInt},
                                              {"no_w_id", ValueType::kInt}})));
  CheckOk(db->CreateTable("orders", Schema({{"o_id", ValueType::kInt},
                                            {"o_d_id", ValueType::kInt},
                                            {"o_w_id", ValueType::kInt},
                                            {"o_c_id", ValueType::kInt},
                                            {"o_entry_d", ValueType::kInt},
                                            {"o_carrier_id", ValueType::kInt},
                                            {"o_ol_cnt", ValueType::kInt}})));
  CheckOk(db->CreateTable("orderline", Schema({{"ol_o_id", ValueType::kInt},
                                               {"ol_d_id", ValueType::kInt},
                                               {"ol_w_id", ValueType::kInt},
                                               {"ol_number", ValueType::kInt},
                                               {"ol_i_id", ValueType::kInt},
                                               {"ol_quantity", ValueType::kInt},
                                               {"ol_amount", ValueType::kDouble}})));
  CheckOk(db->CreateTable("item", Schema({{"i_id", ValueType::kInt},
                                          {"i_name", ValueType::kString, 16},
                                          {"i_price", ValueType::kDouble},
                                          {"i_data", ValueType::kString, 24}})));
  CheckOk(db->CreateTable("stock", Schema({{"s_i_id", ValueType::kInt},
                                           {"s_w_id", ValueType::kInt},
                                           {"s_quantity", ValueType::kInt},
                                           {"s_ytd", ValueType::kDouble},
                                           {"s_order_cnt", ValueType::kInt},
                                           {"s_quality", ValueType::kInt}})));

  // --- population ---
  std::vector<Row> rows;
  for (int w = 1; w <= config.warehouses; ++w) {
    rows.push_back({Value(int64_t(w)), Value(rng.NextName(8)),
                    Value(rng.NextName(2)), Value(0.0)});
  }
  CheckOk(db->BulkInsert("warehouse", std::move(rows)));

  rows.clear();
  for (int w = 1; w <= config.warehouses; ++w) {
    for (int d = 1; d <= config.districts_per_warehouse; ++d) {
      rows.push_back({Value(int64_t(d)), Value(int64_t(w)),
                      Value(rng.NextName(8)),
                      Value(int64_t(config.orders_per_district + 1)),
                      Value(0.0)});
    }
  }
  CheckOk(db->BulkInsert("district", std::move(rows)));

  rows.clear();
  for (int w = 1; w <= config.warehouses; ++w) {
    for (int d = 1; d <= config.districts_per_warehouse; ++d) {
      for (int c = 1; c <= config.customers_per_district; ++c) {
        rows.push_back({Value(int64_t(c)), Value(int64_t(d)),
                        Value(int64_t(w)), Value(LastName(rng.Uniform(100))),
                        Value(rng.NextName(8)),
                        Value(rng.NextDouble() * 1000.0), Value(0.0),
                        Value(rng.Bernoulli(0.9) ? "GC" : "BC")});
      }
    }
  }
  CheckOk(db->BulkInsert("customer", std::move(rows)));

  rows.clear();
  for (int i = 1; i <= config.items; ++i) {
    rows.push_back({Value(int64_t(i)), Value(rng.NextName(10)),
                    Value(1.0 + rng.NextDouble() * 99.0),
                    Value(rng.NextName(16))});
  }
  CheckOk(db->BulkInsert("item", std::move(rows)));

  rows.clear();
  for (int w = 1; w <= config.warehouses; ++w) {
    for (int i = 1; i <= config.items; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(w)),
                      Value(int64_t(10 + rng.Uniform(91))), Value(0.0),
                      Value(int64_t(0)),
                      Value(int64_t(rng.Uniform(100)))});
    }
  }
  CheckOk(db->BulkInsert("stock", std::move(rows)));

  std::vector<Row> order_rows, ol_rows, no_rows;
  for (int w = 1; w <= config.warehouses; ++w) {
    for (int d = 1; d <= config.districts_per_warehouse; ++d) {
      for (int o = 1; o <= config.orders_per_district; ++o) {
        const int c = 1 + static_cast<int>(
                              rng.Uniform(config.customers_per_district));
        const int ol_cnt = 5 + static_cast<int>(rng.Uniform(6));
        order_rows.push_back(
            {Value(int64_t(o)), Value(int64_t(d)), Value(int64_t(w)),
             Value(int64_t(c)), Value(int64_t(rng.Uniform(100000))),
             Value(int64_t(o < config.orders_per_district * 7 / 10
                               ? 1 + rng.Uniform(10)
                               : 0)),
             Value(int64_t(ol_cnt))});
        for (int l = 1; l <= ol_cnt; ++l) {
          ol_rows.push_back({Value(int64_t(o)), Value(int64_t(d)),
                             Value(int64_t(w)), Value(int64_t(l)),
                             Value(int64_t(1 + rng.Uniform(config.items))),
                             Value(int64_t(1 + rng.Uniform(10))),
                             Value(rng.NextDouble() * 100.0)});
        }
        if (o >= config.orders_per_district * 7 / 10) {
          no_rows.push_back(
              {Value(int64_t(o)), Value(int64_t(d)), Value(int64_t(w))});
        }
      }
    }
  }
  CheckOk(db->BulkInsert("orders", std::move(order_rows)));
  CheckOk(db->BulkInsert("orderline", std::move(ol_rows)));
  CheckOk(db->BulkInsert("neworder", std::move(no_rows)));
  db->Analyze();
}

std::vector<IndexDef> TpccWorkload::DefaultIndexes() {
  return {
      // Primary-key style indexes.
      IndexDef("warehouse", {"w_id"}),
      IndexDef("district", {"d_w_id", "d_id"}),
      IndexDef("customer", {"c_w_id", "c_d_id", "c_id"}),
      IndexDef("item", {"i_id"}),
      IndexDef("stock", {"s_w_id", "s_i_id"}),
      IndexDef("orders", {"o_w_id", "o_d_id", "o_id"}),
      IndexDef("orderline", {"ol_w_id", "ol_d_id", "ol_o_id"}),
      IndexDef("neworder", {"no_w_id", "no_d_id", "no_o_id"}),
      // DBA-habit extras on hot, frequently *updated* columns — the paper
      // notes such Default indexes can be net negative.
      IndexDef("customer", {"c_balance"}),
      IndexDef("stock", {"s_ytd"}),
  };
}

void TpccWorkload::CreateDefaultIndexes(Database* db) {
  for (const IndexDef& def : DefaultIndexes()) CheckOk(db->CreateIndex(def));
}

std::vector<std::string> TpccWorkload::Generate(const TpccConfig& config,
                                                size_t count, uint64_t seed,
                                                const TpccMix& mix) {
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(count * 4);

  auto rand_w = [&] { return 1 + rng.Uniform(config.warehouses); };
  auto rand_d = [&] { return 1 + rng.Uniform(config.districts_per_warehouse); };
  auto rand_c = [&] {
    return 1 + rng.Skewed(config.customers_per_district);
  };
  auto rand_i = [&] { return 1 + rng.Skewed(config.items); };

  size_t emitted_txns = 0;
  int next_o_id = config.orders_per_district + 1;
  while (emitted_txns < count) {
    const int pick = static_cast<int>(rng.Uniform(100));
    const uint64_t w = rand_w();
    const uint64_t d = rand_d();
    ++emitted_txns;
    if (pick < mix.new_order) {
      const uint64_t c = rand_c();
      out.push_back(StrFormat(
          "SELECT c_last, c_credit FROM customer WHERE c_w_id = %llu AND "
          "c_d_id = %llu AND c_id = %llu",
          (unsigned long long)w, (unsigned long long)d,
          (unsigned long long)c));
      const int lines = 2 + static_cast<int>(rng.Uniform(3));
      for (int l = 0; l < lines; ++l) {
        const uint64_t i = rand_i();
        out.push_back(StrFormat(
            "SELECT i_price, i_name FROM item WHERE i_id = %llu",
            (unsigned long long)i));
        out.push_back(StrFormat(
            "SELECT s_quantity FROM stock WHERE s_w_id = %llu AND s_i_id = "
            "%llu",
            (unsigned long long)w, (unsigned long long)i));
        out.push_back(StrFormat(
            "UPDATE stock SET s_quantity = %llu, s_ytd = %.2f WHERE s_w_id "
            "= %llu AND s_i_id = %llu",
            (unsigned long long)(10 + rng.Uniform(90)),
            rng.NextDouble() * 100, (unsigned long long)w,
            (unsigned long long)i));
        out.push_back(StrFormat(
            "INSERT INTO orderline VALUES (%d, %llu, %llu, %d, %llu, %llu, "
            "%.2f)",
            next_o_id, (unsigned long long)d, (unsigned long long)w, l + 1,
            (unsigned long long)i, (unsigned long long)(1 + rng.Uniform(9)),
            rng.NextDouble() * 100));
      }
      out.push_back(StrFormat(
          "INSERT INTO orders VALUES (%d, %llu, %llu, %llu, %llu, 0, %d)",
          next_o_id, (unsigned long long)d, (unsigned long long)w,
          (unsigned long long)c, (unsigned long long)rng.Uniform(100000),
          lines));
      out.push_back(StrFormat("INSERT INTO neworder VALUES (%d, %llu, %llu)",
                              next_o_id, (unsigned long long)d,
                              (unsigned long long)w));
      ++next_o_id;
    } else if (pick < mix.new_order + mix.payment) {
      const uint64_t c = rand_c();
      out.push_back(StrFormat(
          "UPDATE warehouse SET w_ytd = %.2f WHERE w_id = %llu",
          rng.NextDouble() * 100000, (unsigned long long)w));
      out.push_back(StrFormat(
          "UPDATE district SET d_ytd = %.2f WHERE d_w_id = %llu AND d_id = "
          "%llu",
          rng.NextDouble() * 10000, (unsigned long long)w,
          (unsigned long long)d));
      if (rng.Bernoulli(0.4)) {
        // Payment by last name.
        out.push_back(StrFormat(
            "SELECT c_id, c_balance FROM customer WHERE c_w_id = %llu AND "
            "c_d_id = %llu AND c_last = '%s' ORDER BY c_first",
            (unsigned long long)w, (unsigned long long)d,
            LastName(rng.Uniform(100)).c_str()));
      }
      out.push_back(StrFormat(
          "UPDATE customer SET c_balance = %.2f, c_ytd_payment = %.2f WHERE "
          "c_w_id = %llu AND c_d_id = %llu AND c_id = %llu",
          rng.NextDouble() * 1000, rng.NextDouble() * 1000,
          (unsigned long long)w, (unsigned long long)d,
          (unsigned long long)c));
      out.push_back(StrFormat(
          "INSERT INTO history VALUES (%llu, %llu, %llu, %.2f, %llu)",
          (unsigned long long)c, (unsigned long long)d,
          (unsigned long long)w, rng.NextDouble() * 500,
          (unsigned long long)rng.Uniform(100000)));
    } else if (pick < mix.new_order + mix.payment + mix.order_status) {
      const uint64_t c = rand_c();
      // The Table-I access pattern: orders by (o_c_id, o_w_id, o_d_id).
      out.push_back(StrFormat(
          "SELECT o_id, o_entry_d, o_carrier_id FROM orders WHERE o_c_id = "
          "%llu AND o_w_id = %llu AND o_d_id = %llu ORDER BY o_id DESC "
          "LIMIT 1",
          (unsigned long long)c, (unsigned long long)w,
          (unsigned long long)d));
      out.push_back(StrFormat(
          "SELECT ol_i_id, ol_quantity, ol_amount FROM orderline WHERE "
          "ol_w_id = %llu AND ol_d_id = %llu AND ol_o_id = %llu",
          (unsigned long long)w, (unsigned long long)d,
          (unsigned long long)(1 + rng.Uniform(next_o_id))));
    } else if (pick <
               mix.new_order + mix.payment + mix.order_status + mix.delivery) {
      out.push_back(StrFormat(
          "SELECT MIN(no_o_id) FROM neworder WHERE no_w_id = %llu AND "
          "no_d_id = %llu",
          (unsigned long long)w, (unsigned long long)d));
      const uint64_t o = 1 + rng.Uniform(next_o_id);
      out.push_back(StrFormat(
          "DELETE FROM neworder WHERE no_w_id = %llu AND no_d_id = %llu AND "
          "no_o_id = %llu",
          (unsigned long long)w, (unsigned long long)d,
          (unsigned long long)o));
      out.push_back(StrFormat(
          "UPDATE orders SET o_carrier_id = %llu WHERE o_w_id = %llu AND "
          "o_d_id = %llu AND o_id = %llu",
          (unsigned long long)(1 + rng.Uniform(10)), (unsigned long long)w,
          (unsigned long long)d, (unsigned long long)o));
      out.push_back(StrFormat(
          "SELECT SUM(ol_amount) FROM orderline WHERE ol_w_id = %llu AND "
          "ol_d_id = %llu AND ol_o_id = %llu",
          (unsigned long long)w, (unsigned long long)d,
          (unsigned long long)o));
    } else {
      // Stock level, with the s_quality filter that motivates Table I's
      // s_quality index.
      out.push_back(StrFormat(
          "SELECT COUNT(*) FROM stock WHERE s_w_id = %llu AND s_quantity < "
          "%llu AND s_quality > %llu",
          (unsigned long long)w, (unsigned long long)(10 + rng.Uniform(10)),
          (unsigned long long)(85 + rng.Uniform(10))));
    }
  }
  return out;
}

}  // namespace autoindex
