#pragma once

#include <string>
#include <vector>

#include "engine/database.h"

namespace autoindex {

// Synthetic stand-in for the paper's proprietary banking scenario
// (Sec. VI-A: 144 tables, ~1G data, a summarization service (OLAP) and a
// withdrawal-flow service (OLTP), and a DBA-crafted index estate with
// heavy redundancy — 263 indexes on the withdraw business, Fig. 1).
//
// The generator reproduces the *conditions* of the experiments: a large
// multi-table schema where only a few tables are hot, and a manual index
// set dominated by unused/duplicated/prefix-redundant indexes.
struct BankingConfig {
  int num_tables = 144;
  // Hot tables actually touched by the two services.
  int hot_tables = 12;
  int rows_hot = 4000;
  int rows_cold = 300;
  // Manual indexes created by "DBAs" (mostly redundant).
  int manual_indexes = 263;
  uint64_t seed = 20220503;
};

class BankingWorkload {
 public:
  static void Populate(Database* db, const BankingConfig& config);

  // The DBA-crafted index estate (Fig. 1 / Table II "Default").
  static std::vector<IndexDef> ManualIndexes(const BankingConfig& config);
  static void CreateManualIndexes(Database* db, const BankingConfig& config);

  // Withdrawal-flow service: OLTP point lookups + balance updates +
  // journal inserts over the hot tables.
  static std::vector<std::string> WithdrawalService(
      const BankingConfig& config, size_t count, uint64_t seed);

  // Summarization service: OLAP aggregates over branches/status/windows.
  static std::vector<std::string> SummarizationService(
      const BankingConfig& config, size_t count, uint64_t seed);

  // The hybrid workload of both services (paper Table II).
  static std::vector<std::string> HybridService(const BankingConfig& config,
                                                size_t count, uint64_t seed);

  static std::string TableName(int i);
};

}  // namespace autoindex
