#include "workload/epidemic.h"

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

std::string PersonName(uint64_t i) {
  return StrFormat("person_%06llu", (unsigned long long)i);
}

}  // namespace

void EpidemicWorkload::Populate(Database* db, const EpidemicConfig& config) {
  Random rng(config.seed);
  CheckOk(db->CreateTable("people", Schema({{"name", ValueType::kString, 16},
                                            {"community", ValueType::kInt},
                                            {"temperature", ValueType::kDouble},
                                            {"phone", ValueType::kInt},
                                            {"tested", ValueType::kInt}})));
  std::vector<Row> rows;
  rows.reserve(config.people);
  for (int i = 0; i < config.people; ++i) {
    rows.push_back({Value(PersonName(i)),
                    Value(int64_t(rng.Uniform(config.communities))),
                    Value(36.0 + rng.NextDouble() * 4.0),
                    Value(int64_t(rng.Uniform(10000000))),
                    Value(int64_t(rng.Bernoulli(0.2) ? 1 : 0))});
  }
  CheckOk(db->BulkInsert("people", std::move(rows)));
  db->Analyze();
}

std::vector<std::string> EpidemicWorkload::PhaseW1(
    const EpidemicConfig& config, size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (rng.Bernoulli(0.5)) {
      out.push_back(StrFormat(
          "SELECT name, temperature FROM people WHERE community = %llu",
          (unsigned long long)rng.Uniform(config.communities)));
    } else {
      out.push_back(StrFormat(
          "SELECT name, community FROM people WHERE temperature > %.1f",
          38.5 + rng.NextDouble() * 1.2));
    }
  }
  return out;
}

std::vector<std::string> EpidemicWorkload::PhaseW2(
    const EpidemicConfig& config, size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (rng.Bernoulli(0.8)) {
      out.push_back(StrFormat(
          "INSERT INTO people VALUES ('%s', %llu, %.1f, %llu, 0)",
          PersonName(1000000 + seed * 1000 + i).c_str(),
          (unsigned long long)rng.Uniform(config.communities),
          36.0 + rng.NextDouble() * 4.0,
          (unsigned long long)rng.Uniform(10000000)));
    } else {
      out.push_back(StrFormat(
          "SELECT name FROM people WHERE temperature > %.1f",
          38.5 + rng.NextDouble() * 1.2));
    }
  }
  return out;
}

std::vector<std::string> EpidemicWorkload::PhaseW3(
    const EpidemicConfig& config, size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int kind = static_cast<int>(rng.Uniform(100));
    if (kind < 60) {
      out.push_back(StrFormat(
          "UPDATE people SET temperature = %.1f WHERE name = '%s' AND "
          "community = %llu",
          36.0 + rng.NextDouble() * 3.0,
          PersonName(rng.Uniform(config.people)).c_str(),
          (unsigned long long)rng.Uniform(config.communities)));
    } else if (kind < 85) {
      out.push_back(StrFormat(
          "SELECT name FROM people WHERE temperature > %.1f",
          38.0 + rng.NextDouble() * 1.5));
    } else {
      out.push_back(StrFormat(
          "SELECT temperature FROM people WHERE name = '%s' AND community "
          "= %llu",
          PersonName(rng.Uniform(config.people)).c_str(),
          (unsigned long long)rng.Uniform(config.communities)));
    }
  }
  return out;
}

}  // namespace autoindex
