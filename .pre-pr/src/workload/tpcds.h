#pragma once

#include <string>
#include <vector>

#include "engine/database.h"
#include "util/random.h"

namespace autoindex {

// A TPC-DS-style analytic generator: a retail star schema (a sales fact
// table plus dimension tables) and 25 analytic query templates — joins,
// range filters, GROUP BY / ORDER BY, and OR-heavy predicates. Template
// q11 reproduces the paper's Q32 observation: its subquery-style join only
// accelerates when indexes on BOTH i_manufact_id and the date dimension
// exist (Sec. III "Motivation of using MCTS").
struct TpcdsConfig {
  int sales_rows = 200000;
  int items = 12000;
  int customers = 15000;
  int stores = 40;
  int dates = 1825;       // 5 years of days
  int promotions = 300;
  uint64_t seed = 20220502;

  // Derived dimension cardinalities (scale with the item count so filter
  // selectivities stay realistic at any size).
  int NumManufacturers() const { return items / 6 > 0 ? items / 6 : 1; }
  int NumBrands() const { return items / 24 > 0 ? items / 24 : 1; }
};

class TpcdsWorkload {
 public:
  static void Populate(Database* db, const TpcdsConfig& config);

  // Default configuration: surrogate-key indexes on the dimensions only.
  static std::vector<IndexDef> DefaultIndexes();
  static void CreateDefaultIndexes(Database* db);

  // Number of distinct query templates.
  static constexpr int kNumQueryTemplates = 25;

  // One instance of template `qid` (0-based) with random parameters.
  static std::string Query(int qid, const TpcdsConfig& config, Random* rng);

  // `count` queries cycling uniformly over all templates.
  static std::vector<std::string> Generate(const TpcdsConfig& config,
                                           size_t count, uint64_t seed);

  // One instance of every template, in order (per-query figures).
  static std::vector<std::string> OneOfEach(const TpcdsConfig& config,
                                            uint64_t seed);
};

}  // namespace autoindex
