#include "workload/banking.h"

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace autoindex {

std::string BankingWorkload::TableName(int i) {
  return StrFormat("bank_t%03d", i);
}

void BankingWorkload::Populate(Database* db, const BankingConfig& config) {
  Random rng(config.seed);
  for (int t = 0; t < config.num_tables; ++t) {
    // Every table shares the account-ish layout; the workload only knows
    // about a hot subset.
    CheckOk(db->CreateTable(TableName(t),
                            Schema({{"id", ValueType::kInt},
                                    {"cust_id", ValueType::kInt},
                                    {"branch_id", ValueType::kInt},
                                    {"amount", ValueType::kDouble},
                                    {"status", ValueType::kInt},
                                    {"ts", ValueType::kInt},
                                    {"category", ValueType::kInt},
                                    {"note", ValueType::kString, 20}})));
    const int rows = t < config.hot_tables ? config.rows_hot
                                           : config.rows_cold;
    std::vector<Row> data;
    data.reserve(rows);
    for (int i = 0; i < rows; ++i) {
      data.push_back({Value(int64_t(i)),
                      Value(int64_t(rng.Uniform(rows / 2 + 1))),
                      Value(int64_t(rng.Uniform(50))),
                      Value(rng.NextDouble() * 10000.0),
                      Value(int64_t(rng.Uniform(5))),
                      Value(int64_t(rng.Uniform(100000))),
                      Value(int64_t(rng.Uniform(20))),
                      Value(rng.NextName(12))});
    }
    CheckOk(db->BulkInsert(TableName(t), std::move(data)));
  }
  db->Analyze();
}

std::vector<IndexDef> BankingWorkload::ManualIndexes(
    const BankingConfig& config) {
  // The DBA estate: a handful of genuinely useful indexes on hot tables,
  // then layer after layer of redundancy — prefix duplicates, permuted
  // column orders, and indexes on cold tables nothing ever queries.
  std::vector<IndexDef> defs;
  Random rng(config.seed ^ 0xbeef);
  const char* cols[] = {"id", "cust_id", "branch_id", "amount",
                        "status", "ts", "category"};
  int t = 0;
  while (static_cast<int>(defs.size()) < config.manual_indexes) {
    const std::string table = TableName(t % config.num_tables);
    switch (static_cast<int>(defs.size()) % 7) {
      case 0:
        defs.push_back(IndexDef(table, {"id"}));
        break;
      case 1:
        defs.push_back(IndexDef(table, {"cust_id"}));
        break;
      case 2:  // prefix-redundant with case 1
        defs.push_back(IndexDef(table, {"cust_id", "branch_id"}));
        break;
      case 3:  // permuted duplicate of case 2
        defs.push_back(IndexDef(table, {"branch_id", "cust_id"}));
        break;
      case 4:
        defs.push_back(IndexDef(table, {std::string(cols[rng.Uniform(7)])}));
        break;
      case 5:
        defs.push_back(IndexDef(table, {"status", "category"}));
        break;
      case 6:
        defs.push_back(IndexDef(
            table, {std::string(cols[rng.Uniform(7)]),
                    std::string(cols[rng.Uniform(7)])}));
        break;
    }
    ++t;
  }
  // Dedup exact duplicates produced by the random picks (keeps the count
  // close to, possibly slightly under, the target).
  std::vector<IndexDef> unique;
  for (IndexDef& def : defs) {
    bool dup = false;
    if (def.columns.size() == 2 && def.columns[0] == def.columns[1]) {
      def.columns.resize(1);
    }
    for (const IndexDef& u : unique) {
      if (u == def) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(std::move(def));
  }
  return unique;
}

void BankingWorkload::CreateManualIndexes(Database* db,
                                          const BankingConfig& config) {
  for (const IndexDef& def : ManualIndexes(config)) {
    CheckOk(db->CreateIndex(def));
  }
}

std::vector<std::string> BankingWorkload::WithdrawalService(
    const BankingConfig& config, size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  // Withdrawals concentrate on the first few hot tables (accounts,
  // balances, journal).
  const int acct_tables = std::max(1, config.hot_tables / 3);
  for (size_t i = 0; i < count; ++i) {
    const std::string table =
        TableName(static_cast<int>(rng.Uniform(acct_tables)));
    const uint64_t id = rng.Skewed(config.rows_hot);
    const int kind = static_cast<int>(rng.Uniform(100));
    if (kind < 45) {
      out.push_back(StrFormat(
          "SELECT amount, status FROM %s WHERE id = %llu",
          table.c_str(), (unsigned long long)id));
    } else if (kind < 70) {
      out.push_back(StrFormat(
          "SELECT id, amount FROM %s WHERE cust_id = %llu AND status = %llu",
          table.c_str(), (unsigned long long)rng.Skewed(config.rows_hot / 2),
          (unsigned long long)rng.Uniform(5)));
    } else if (kind < 90) {
      out.push_back(StrFormat(
          "UPDATE %s SET amount = %.2f WHERE id = %llu", table.c_str(),
          rng.NextDouble() * 10000, (unsigned long long)id));
    } else {
      // Journal insert into a dedicated hot table.
      out.push_back(StrFormat(
          "INSERT INTO %s VALUES (%llu, %llu, %llu, %.2f, %llu, %llu, %llu, "
          "'%s')",
          TableName(acct_tables).c_str(),
          (unsigned long long)(config.rows_hot + i),
          (unsigned long long)rng.Uniform(config.rows_hot / 2),
          (unsigned long long)rng.Uniform(50), rng.NextDouble() * 500,
          (unsigned long long)rng.Uniform(5),
          (unsigned long long)rng.Uniform(100000),
          (unsigned long long)rng.Uniform(20), rng.NextName(8).c_str()));
    }
  }
  return out;
}

std::vector<std::string> BankingWorkload::SummarizationService(
    const BankingConfig& config, size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  const int lo = std::max(1, config.hot_tables / 3);
  const int hi = config.hot_tables;
  for (size_t i = 0; i < count; ++i) {
    const std::string table = TableName(
        lo + static_cast<int>(rng.Uniform(std::max(1, hi - lo))));
    const int kind = static_cast<int>(rng.Uniform(100));
    if (kind < 35) {
      out.push_back(StrFormat(
          "SELECT branch_id, SUM(amount), COUNT(*) FROM %s WHERE ts "
          "BETWEEN %llu AND %llu GROUP BY branch_id ORDER BY branch_id",
          table.c_str(), (unsigned long long)rng.Uniform(50000),
          (unsigned long long)(50000 + rng.Uniform(50000))));
    } else if (kind < 60) {
      out.push_back(StrFormat(
          "SELECT status, AVG(amount) FROM %s WHERE branch_id = %llu GROUP "
          "BY status",
          table.c_str(), (unsigned long long)rng.Uniform(50)));
    } else if (kind < 85) {
      out.push_back(StrFormat(
          "SELECT COUNT(*) FROM %s WHERE amount > %.2f AND category = %llu",
          table.c_str(), 9000.0 + rng.NextDouble() * 900.0,
          (unsigned long long)rng.Uniform(20)));
    } else {
      out.push_back(StrFormat(
          "SELECT category, MAX(amount) FROM %s WHERE status = %llu AND ts "
          "> %llu GROUP BY category ORDER BY category LIMIT 10",
          table.c_str(), (unsigned long long)rng.Uniform(5),
          (unsigned long long)(80000 + rng.Uniform(20000))));
    }
  }
  return out;
}

std::vector<std::string> BankingWorkload::HybridService(
    const BankingConfig& config, size_t count, uint64_t seed) {
  // Withdrawal-heavy hybrid, matching the paper's throughput split
  // (withdrawal tps >> summarization tps).
  std::vector<std::string> withdraw =
      WithdrawalService(config, count * 7 / 10, seed);
  std::vector<std::string> summarize =
      SummarizationService(config, count - withdraw.size(), seed ^ 0x5u);
  std::vector<std::string> out;
  out.reserve(count);
  Random rng(seed ^ 0x99u);
  size_t wi = 0, si = 0;
  while (wi < withdraw.size() || si < summarize.size()) {
    const bool take_withdraw =
        si >= summarize.size() ||
        (wi < withdraw.size() && rng.Bernoulli(0.7));
    if (take_withdraw) {
      out.push_back(std::move(withdraw[wi++]));
    } else {
      out.push_back(std::move(summarize[si++]));
    }
  }
  return out;
}

}  // namespace autoindex
