#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace autoindex {

// Plain-text workload traces: one SQL statement per line, with a version
// header. This mirrors the paper's setup where workload queries are
// "logged in the server that runs the index management process"
// (Sec. III) and tuned offline. Newlines/backslashes inside statements
// are escaped, so round-trips are loss-free.
Status SaveWorkloadTrace(const std::string& path,
                         const std::vector<std::string>& queries);

StatusOr<std::vector<std::string>> LoadWorkloadTrace(
    const std::string& path);

}  // namespace autoindex
