#include "workload/tpcds.h"

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

constexpr const char* kCategories[] = {"books", "electronics", "home",
                                       "music", "shoes", "sports", "toys"};
constexpr const char* kStates[] = {"ca", "ny", "tx", "wa", "fl", "il"};

}  // namespace

void TpcdsWorkload::Populate(Database* db, const TpcdsConfig& config) {
  Random rng(config.seed);

  CheckOk(db->CreateTable("date_dim", Schema({{"d_date_sk", ValueType::kInt},
                                              {"d_year", ValueType::kInt},
                                              {"d_moy", ValueType::kInt},
                                              {"d_dom", ValueType::kInt},
                                              {"d_qoy", ValueType::kInt}})));
  CheckOk(db->CreateTable("ds_item", Schema({{"i_item_sk", ValueType::kInt},
                                             {"i_manufact_id", ValueType::kInt},
                                             {"i_category", ValueType::kString, 12},
                                             {"i_brand_id", ValueType::kInt},
                                             {"i_current_price", ValueType::kDouble}})));
  CheckOk(db->CreateTable("ds_customer", Schema({{"c_customer_sk", ValueType::kInt},
                                                 {"c_birth_year", ValueType::kInt},
                                                 {"c_state", ValueType::kString, 4},
                                                 {"c_preferred", ValueType::kInt}})));
  CheckOk(db->CreateTable("store", Schema({{"st_store_sk", ValueType::kInt},
                                           {"st_state", ValueType::kString, 4},
                                           {"st_floor_space", ValueType::kInt}})));
  CheckOk(db->CreateTable("promotion", Schema({{"p_promo_sk", ValueType::kInt},
                                               {"p_channel", ValueType::kString, 8},
                                               {"p_cost", ValueType::kDouble}})));
  CheckOk(db->CreateTable("store_sales",
                          Schema({{"ss_sold_date_sk", ValueType::kInt},
                                  {"ss_item_sk", ValueType::kInt},
                                  {"ss_customer_sk", ValueType::kInt},
                                  {"ss_store_sk", ValueType::kInt},
                                  {"ss_promo_sk", ValueType::kInt},
                                  {"ss_quantity", ValueType::kInt},
                                  {"ss_sales_price", ValueType::kDouble},
                                  {"ss_net_profit", ValueType::kDouble}})));

  std::vector<Row> rows;
  for (int i = 1; i <= config.dates; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(1998 + (i / 365))),
                    Value(int64_t(1 + (i / 30) % 12)),
                    Value(int64_t(1 + i % 28)),
                    Value(int64_t(1 + ((i / 30) % 12) / 3))});
  }
  CheckOk(db->BulkInsert("date_dim", std::move(rows)));

  rows.clear();
  for (int i = 1; i <= config.items; ++i) {
    rows.push_back(
        {Value(int64_t(i)),
         Value(int64_t(1 + rng.Uniform(config.NumManufacturers()))),
         Value(std::string(kCategories[rng.Uniform(7)])),
         Value(int64_t(1 + rng.Uniform(config.NumBrands()))),
         Value(0.5 + rng.NextDouble() * 199.5)});
  }
  CheckOk(db->BulkInsert("ds_item", std::move(rows)));

  rows.clear();
  for (int i = 1; i <= config.customers; ++i) {
    rows.push_back({Value(int64_t(i)),
                    Value(int64_t(1930 + rng.Uniform(80))),
                    Value(std::string(kStates[rng.Uniform(6)])),
                    Value(int64_t(rng.Bernoulli(0.3) ? 1 : 0))});
  }
  CheckOk(db->BulkInsert("ds_customer", std::move(rows)));

  rows.clear();
  for (int i = 1; i <= config.stores; ++i) {
    rows.push_back({Value(int64_t(i)), Value(std::string(kStates[rng.Uniform(6)])),
                    Value(int64_t(1000 + rng.Uniform(9000)))});
  }
  CheckOk(db->BulkInsert("store", std::move(rows)));

  rows.clear();
  for (int i = 1; i <= config.promotions; ++i) {
    rows.push_back({Value(int64_t(i)), Value(rng.NextName(6)),
                    Value(rng.NextDouble() * 1000)});
  }
  CheckOk(db->BulkInsert("promotion", std::move(rows)));

  rows.clear();
  rows.reserve(config.sales_rows);
  for (int i = 0; i < config.sales_rows; ++i) {
    // Sales arrive in date order (as in a real nightly load): the fact
    // table is physically correlated with ss_sold_date_sk, so date-range
    // index scans touch contiguous heap pages.
    const int64_t date_sk =
        1 + (static_cast<int64_t>(i) * config.dates) / config.sales_rows;
    rows.push_back({Value(date_sk),
                    Value(int64_t(1 + rng.Skewed(config.items))),
                    Value(int64_t(1 + rng.Skewed(config.customers))),
                    Value(int64_t(1 + rng.Uniform(config.stores))),
                    Value(int64_t(1 + rng.Uniform(config.promotions))),
                    Value(int64_t(1 + rng.Uniform(99))),
                    Value(rng.NextDouble() * 300),
                    Value(rng.NextDouble() * 120 - 20)});
  }
  CheckOk(db->BulkInsert("store_sales", std::move(rows)));
  db->Analyze();
}

std::vector<IndexDef> TpcdsWorkload::DefaultIndexes() {
  return {
      IndexDef("date_dim", {"d_date_sk"}),
      IndexDef("ds_item", {"i_item_sk"}),
      IndexDef("ds_customer", {"c_customer_sk"}),
      IndexDef("store", {"st_store_sk"}),
      IndexDef("promotion", {"p_promo_sk"}),
  };
}

void TpcdsWorkload::CreateDefaultIndexes(Database* db) {
  for (const IndexDef& def : DefaultIndexes()) CheckOk(db->CreateIndex(def));
}

std::string TpcdsWorkload::Query(int qid, const TpcdsConfig& config,
                                 Random* rng) {
  Random& r = *rng;
  const int year = 1998 + static_cast<int>(r.Uniform(4));
  const int moy = 1 + static_cast<int>(r.Uniform(12));
  const int manufact =
      1 + static_cast<int>(r.Uniform(config.NumManufacturers()));
  const int brand = 1 + static_cast<int>(r.Uniform(config.NumBrands()));
  const char* category = kCategories[r.Uniform(7)];
  const char* state = kStates[r.Uniform(6)];
  const int store = 1 + static_cast<int>(r.Uniform(config.stores));
  const int item = 1 + static_cast<int>(r.Uniform(config.items));
  const int customer = 1 + static_cast<int>(r.Uniform(config.customers));
  const int date_lo = 1 + static_cast<int>(r.Uniform(config.dates - 40));

  switch (qid % kNumQueryTemplates) {
    case 0:  // narrow fact range scan by date key
      return StrFormat(
          "SELECT COUNT(*), SUM(ss_net_profit) FROM store_sales WHERE "
          "ss_sold_date_sk BETWEEN %d AND %d",
          date_lo, date_lo + 30);
    case 1:  // per-item profit in a date window
      return StrFormat(
          "SELECT ss_item_sk, SUM(ss_net_profit) FROM store_sales WHERE "
          "ss_sold_date_sk BETWEEN %d AND %d GROUP BY ss_item_sk "
          "ORDER BY ss_item_sk LIMIT 20",
          date_lo, date_lo + 10);
    case 2:  // item dimension filter
      return StrFormat(
          "SELECT COUNT(*) FROM ds_item WHERE i_category = '%s' AND "
          "i_current_price > %.2f",
          category, 50.0 + r.NextDouble() * 100.0);
    case 3:  // fact-item join on manufacturer
      return StrFormat(
          "SELECT SUM(ss_sales_price) FROM store_sales, ds_item WHERE "
          "ss_item_sk = i_item_sk AND i_manufact_id = %d",
          manufact);
    case 4:  // fact-date join on year/month
      return StrFormat(
          "SELECT COUNT(*) FROM store_sales, date_dim WHERE "
          "ss_sold_date_sk = d_date_sk AND d_year = %d AND d_moy = %d",
          year, moy);
    case 5:  // customer-state rollup
      return StrFormat(
          "SELECT c_state, COUNT(*) FROM ds_customer WHERE c_birth_year "
          "BETWEEN %d AND %d GROUP BY c_state ORDER BY c_state",
          1940 + static_cast<int>(r.Uniform(30)),
          1980 + static_cast<int>(r.Uniform(20)));
    case 6:  // store filter with OR (exercises DNF)
      return StrFormat(
          "SELECT COUNT(*) FROM store_sales WHERE ss_store_sk = %d AND "
          "(ss_quantity > %d OR ss_sales_price > %.2f)",
          store, 80 + static_cast<int>(r.Uniform(15)),
          250.0 + r.NextDouble() * 40.0);
    case 7:  // three-way join: fact + item + date
      return StrFormat(
          "SELECT i_category, SUM(ss_net_profit) FROM store_sales, ds_item, "
          "date_dim WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = "
          "d_date_sk AND d_year = %d AND i_brand_id = %d GROUP BY "
          "i_category",
          year, brand);
    case 8:  // customer join
      return StrFormat(
          "SELECT COUNT(*) FROM store_sales, ds_customer WHERE "
          "ss_customer_sk = c_customer_sk AND c_state = '%s' AND "
          "ss_quantity > %d",
          state, 90 + static_cast<int>(r.Uniform(8)));
    case 9:  // point lookup on fact by item
      return StrFormat(
          "SELECT SUM(ss_quantity) FROM store_sales WHERE ss_item_sk = %d",
          item);
    case 10:  // promotion join
      return StrFormat(
          "SELECT p_channel, COUNT(*) FROM store_sales, promotion WHERE "
          "ss_promo_sk = p_promo_sk AND p_cost > %.2f AND ss_net_profit > "
          "%.2f GROUP BY p_channel",
          900.0 + r.NextDouble() * 90.0, 95.0 + r.NextDouble() * 4.0);
    case 11:  // the Q32-style combined-index query: only fast when BOTH
              // ds_item(i_manufact_id) and date_dim(d_year,d_moy) indexes
              // exist (each filter alone is weak; together the join
              // collapses).
      return StrFormat(
          "SELECT SUM(ss_net_profit) FROM ds_item, store_sales, date_dim "
          "WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk "
          "AND i_manufact_id = %d AND d_year = %d AND d_moy = %d",
          manufact, year, moy);
    case 12:  // top customers by spend in window
      return StrFormat(
          "SELECT ss_customer_sk, SUM(ss_sales_price) FROM store_sales "
          "WHERE ss_sold_date_sk BETWEEN %d AND %d GROUP BY ss_customer_sk "
          "ORDER BY ss_customer_sk DESC LIMIT 10",
          date_lo, date_lo + 20);
    case 13:  // expensive-item scan ordered by price
      return StrFormat(
          "SELECT i_item_sk, i_current_price FROM ds_item WHERE "
          "i_current_price BETWEEN %.2f AND %.2f ORDER BY i_current_price "
          "DESC LIMIT 25",
          150.0 + r.NextDouble() * 20.0, 190.0 + r.NextDouble() * 10.0);
    case 14:  // quarter rollup via date join
      return StrFormat(
          "SELECT d_qoy, SUM(ss_net_profit) FROM store_sales, date_dim "
          "WHERE ss_sold_date_sk = d_date_sk AND d_year = %d GROUP BY "
          "d_qoy ORDER BY d_qoy",
          year);
    case 15:  // store + date join
      return StrFormat(
          "SELECT COUNT(*) FROM store_sales, store WHERE ss_store_sk = "
          "st_store_sk AND st_state = '%s' AND ss_sold_date_sk BETWEEN %d "
          "AND %d",
          state, date_lo, date_lo + 15);
    case 16:  // IN-list on category
      return StrFormat(
          "SELECT COUNT(*) FROM ds_item WHERE i_category IN ('%s', '%s') "
          "AND i_manufact_id = %d",
          kCategories[r.Uniform(7)], kCategories[r.Uniform(7)], manufact);
    case 17:  // preferred-customer analysis
      return StrFormat(
          "SELECT c_birth_year, COUNT(*) FROM ds_customer WHERE "
          "c_preferred = 1 AND c_state = '%s' GROUP BY c_birth_year ORDER "
          "BY c_birth_year",
          state);
    case 18:  // fact filter on two measures (AND of ranges)
      return StrFormat(
          "SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN %d "
          "AND %d AND ss_sales_price > %.2f",
          95 + static_cast<int>(r.Uniform(3)), 99,
          290.0 + r.NextDouble() * 9.0);
    case 19:  // four-way join
      return StrFormat(
          "SELECT st_state, SUM(ss_net_profit) FROM store_sales, ds_item, "
          "store, date_dim WHERE ss_item_sk = i_item_sk AND ss_store_sk = "
          "st_store_sk AND ss_sold_date_sk = d_date_sk AND i_category = "
          "'%s' AND d_year = %d GROUP BY st_state",
          category, year);
    case 20:  // single customer drill-down
      return StrFormat(
          "SELECT ss_sold_date_sk, ss_sales_price FROM store_sales WHERE "
          "ss_customer_sk = %d ORDER BY ss_sold_date_sk",
          customer);
    case 21:  // disjunctive item filter (DNF with two conjuncts)
      return StrFormat(
          "SELECT COUNT(*) FROM ds_item WHERE (i_category = '%s' AND "
          "i_current_price < %.2f) OR (i_brand_id = %d AND i_manufact_id = "
          "%d)",
          category, 2.0 + r.NextDouble() * 3.0, brand, manufact);
    case 22:  // day-of-month drill via join
      return StrFormat(
          "SELECT COUNT(*) FROM store_sales, date_dim WHERE "
          "ss_sold_date_sk = d_date_sk AND d_year = %d AND d_moy = %d AND "
          "d_dom BETWEEN 1 AND 7",
          year, moy);
    case 23:  // brand price ordering
      return StrFormat(
          "SELECT i_brand_id, MAX(i_current_price) FROM ds_item WHERE "
          "i_manufact_id BETWEEN %d AND %d GROUP BY i_brand_id ORDER BY "
          "i_brand_id LIMIT 15",
          manufact, manufact + 2);
    case 24:  // profit outliers in window
    default:
      return StrFormat(
          "SELECT ss_item_sk, ss_net_profit FROM store_sales WHERE "
          "ss_net_profit > %.2f AND ss_sold_date_sk BETWEEN %d AND %d "
          "ORDER BY ss_net_profit DESC LIMIT 10",
          97.0 + r.NextDouble() * 3.0, date_lo, date_lo + 30);
  }
}

std::vector<std::string> TpcdsWorkload::Generate(const TpcdsConfig& config,
                                                 size_t count,
                                                 uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(Query(static_cast<int>(i % kNumQueryTemplates), config,
                        &rng));
  }
  return out;
}

std::vector<std::string> TpcdsWorkload::OneOfEach(const TpcdsConfig& config,
                                                  uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(kNumQueryTemplates);
  for (int q = 0; q < kNumQueryTemplates; ++q) {
    out.push_back(Query(q, config, &rng));
  }
  return out;
}

}  // namespace autoindex
