#include "workload/trace.h"

#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace autoindex {
namespace {

constexpr const char* kHeader = "# autoindex-trace v1";

std::string Escape(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  for (char c : sql) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      switch (line[i + 1]) {
        case '\\':
          out.push_back('\\');
          ++i;
          continue;
        case 'n':
          out.push_back('\n');
          ++i;
          continue;
        case 'r':
          out.push_back('\r');
          ++i;
          continue;
        default:
          break;
      }
    }
    out.push_back(line[i]);
  }
  return out;
}

}  // namespace

Status SaveWorkloadTrace(const std::string& path,
                         const std::vector<std::string>& queries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  out << kHeader << "\n";
  for (const std::string& sql : queries) {
    out << Escape(sql) << "\n";
  }
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> LoadWorkloadTrace(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("no such trace file: " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("not an autoindex trace file: " + path);
  }
  std::vector<std::string> queries;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    queries.push_back(Unescape(line));
  }
  return queries;
}

}  // namespace autoindex
