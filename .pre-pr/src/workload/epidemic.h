#pragma once

#include <string>
#include <vector>

#include "engine/database.h"

namespace autoindex {

// The paper's running example (Fig. 2): an epidemic-tracking table whose
// workload moves through three phases with different index needs:
//   W1 — early phase: read-mostly lookups by community / temperature;
//   W2 — outbreak: insert-heavy (new potentially-infected people), where
//        maintaining idx_community costs more than it saves;
//   W3 — controlled: update-heavy temperature refreshes keyed by
//        (name, community), where a multi-column index pays off.
struct EpidemicConfig {
  int people = 20000;
  int communities = 400;
  uint64_t seed = 20220504;
};

class EpidemicWorkload {
 public:
  static void Populate(Database* db, const EpidemicConfig& config);

  static std::vector<std::string> PhaseW1(const EpidemicConfig& config,
                                          size_t count, uint64_t seed);
  static std::vector<std::string> PhaseW2(const EpidemicConfig& config,
                                          size_t count, uint64_t seed);
  static std::vector<std::string> PhaseW3(const EpidemicConfig& config,
                                          size_t count, uint64_t seed);
};

}  // namespace autoindex
