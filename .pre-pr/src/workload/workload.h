#pragma once

#include <string>
#include <vector>

#include "core/manager.h"
#include "engine/database.h"

namespace autoindex {

// Aggregate metrics of one workload run. "Latency" and "throughput" are
// defined over deterministic cost units (see DESIGN.md): latency of a
// query is its total execution cost; throughput is queries per 1000 cost
// units. This keeps every experiment reproducible while preserving the
// paper's comparative shapes.
struct RunMetrics {
  size_t queries = 0;
  size_t failed = 0;
  double total_cost = 0.0;
  CostBreakdown breakdown;
  double wall_ms = 0.0;

  double AvgLatency() const { return queries == 0 ? 0.0 : total_cost / queries; }
  double Throughput() const {
    return total_cost <= 0.0 ? 0.0 : 1000.0 * queries / total_cost;
  }
};

// Executes every query against the database. When `per_query_costs` is
// non-null it receives one total-cost entry per query (used by the
// per-query TPC-DS figures).
RunMetrics RunWorkload(Database* db, const std::vector<std::string>& queries,
                       std::vector<double>* per_query_costs = nullptr);

// Same, but routed through AutoIndex's ExecuteAndObserve so templates and
// estimator training data accumulate.
RunMetrics RunWorkloadObserved(AutoIndexManager* manager,
                               const std::vector<std::string>& queries,
                               std::vector<double>* per_query_costs = nullptr);

// Observe-only pass (no execution): populates the template store.
void ObserveWorkload(AutoIndexManager* manager,
                     const std::vector<std::string>& queries);

}  // namespace autoindex
