#pragma once

#include <string>
#include <vector>

#include "engine/database.h"

namespace autoindex {

// A scaled-down TPC-C-style OLTP generator: the paper's 10-table schema,
// five transaction types with the standard mix, parameterized by a scale
// factor ("TPC-C1x/10x/100x" map to warehouses = scale). Row counts are
// shrunk uniformly so that the 100x configuration stays laptop-sized while
// preserving relative table sizes and access skew.
struct TpccConfig {
  int warehouses = 1;
  int districts_per_warehouse = 5;
  int customers_per_district = 300;
  int items = 2000;
  // Initial orders per district (order lines follow).
  int orders_per_district = 150;
  uint64_t seed = 20220501;
};

// Transaction mix (percentages; the remainder falls to stock-level).
struct TpccMix {
  int new_order = 45;
  int payment = 43;
  int order_status = 4;
  int delivery = 4;
  // stock_level = 100 - sum of the above
};

class TpccWorkload {
 public:
  // Creates the 10 tables and loads the initial population.
  static void Populate(Database* db, const TpccConfig& config);

  // The paper's "Default" configuration: primary-key style indexes plus a
  // couple of DBA-habit indexes on frequently-updated columns (which the
  // paper observes can have net-negative benefit).
  static std::vector<IndexDef> DefaultIndexes();
  static void CreateDefaultIndexes(Database* db);

  // Generates `count` SQL statements following the transaction mix.
  static std::vector<std::string> Generate(const TpccConfig& config,
                                           size_t count, uint64_t seed,
                                           const TpccMix& mix = TpccMix());

  // A read-shifted mix (used by the dynamic-workload experiment).
  static TpccMix ReadHeavyMix() { return TpccMix{10, 10, 40, 5}; }
  static TpccMix WriteHeavyMix() { return TpccMix{60, 35, 2, 2}; }
};

}  // namespace autoindex
