#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace autoindex {

// ASCII-only lowering; SQL identifiers and keywords in this project are
// ASCII by construction.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

// Joins the parts with the separator: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single character, dropping empty fragments.
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Concatenates ostream-able parts: StrCat("n=", 7, "!") == "n=7!". Used
// for diagnostics where the argument list is heterogeneous and StrFormat's
// format string would be all placeholders.
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

}  // namespace autoindex
