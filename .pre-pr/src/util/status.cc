#include "util/status.h"

namespace autoindex {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace autoindex
