#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace autoindex {

// Error categories surfaced by the library. Kept deliberately small: the
// engine treats anything other than kOk as a terminal failure for the
// current statement.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

// A lightweight absl::Status-like result carrier. Copyable, cheap for the
// kOk case (no allocation). [[nodiscard]] so that dropping an error on the
// floor requires an explicit (void) cast — scripts/lint.py enforces the
// same rule textually for toolchains that miss the attribute.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering, e.g. "InvalidArgument: bad token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error holder in the spirit of absl::StatusOr. The value is
// only accessible when ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

// Aborts the process when a status is not OK. For scaffolding code whose
// failures are programming errors (workload populate with a fixed schema,
// example setup) where no caller can act on the error: aborting loudly
// beats threading a Status through a void API or dropping it silently.
inline void CheckOk(const Status& status) {
  if (status.ok()) return;
  std::fprintf(stderr, "CheckOk failed: %s\n", status.ToString().c_str());
  std::abort();
}

template <typename T>
void CheckOk(const StatusOr<T>& status_or) {
  CheckOk(status_or.status());
}

}  // namespace autoindex
