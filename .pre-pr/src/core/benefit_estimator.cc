#include "core/benefit_estimator.h"

#include <functional>

namespace autoindex {

WorkloadModel WorkloadModel::FromTemplates(
    const std::vector<const QueryTemplate*>& templates) {
  WorkloadModel model;
  model.entries.reserve(templates.size());
  for (const QueryTemplate* t : templates) {
    if (t->frequency <= 0.0) continue;
    model.entries.push_back({t, t->frequency});
  }
  return model;
}

uint64_t HashConfig(const IndexConfig& config) {
  // XOR of per-def FNV hashes: order-independent.
  uint64_t h = 0x12345678;
  for (const IndexDef& def : config.defs()) {
    const std::string key = def.Key();
    uint64_t d = 14695981039346656037ULL;
    for (unsigned char c : key) {
      d ^= c;
      d *= 1099511628211ULL;
    }
    h ^= d;
  }
  return h;
}

double IndexBenefitEstimator::CombineFeatures(
    const CostBreakdown& breakdown) const {
  if (model_.trained()) {
    return model_.Predict(breakdown.Features());
  }
  return breakdown.Total();
}

double IndexBenefitEstimator::EstimateStatementCost(
    const Statement& stmt, const IndexConfig& config) const {
  return CombineFeatures(db_->WhatIfCost(stmt, config));
}

double IndexBenefitEstimator::EstimateWorkloadCost(
    const WorkloadModel& workload, const IndexConfig& config) const {
  const uint64_t config_hash = HashConfig(config);
  double total = 0.0;
  for (const WorkloadModel::Entry& entry : workload.entries) {
    const uint64_t key = entry.tmpl->id * 0x9e3779b97f4a7c15ULL ^ config_hash;
    auto it = cache_.find(key);
    double cost;
    if (it != cache_.end()) {
      cost = it->second;
    } else {
      cost = EstimateStatementCost(entry.tmpl->representative, config);
      cache_.emplace(key, cost);
    }
    total += entry.weight * cost;
  }
  return total;
}

double IndexBenefitEstimator::EstimateBenefit(const WorkloadModel& workload,
                                              const IndexConfig& from,
                                              const IndexConfig& to) const {
  return EstimateWorkloadCost(workload, from) -
         EstimateWorkloadCost(workload, to);
}

void IndexBenefitEstimator::AddObservation(const std::vector<double>& features,
                                           double measured_cost) {
  features_.push_back(features);
  targets_.push_back(measured_cost);
}

double IndexBenefitEstimator::TrainModel(size_t min_observations) {
  if (features_.size() < min_observations) return -1.0;
  TrainConfig config;
  config.epochs = 200;
  const double mse = model_.Train(features_, targets_, config);
  cache_.clear();  // model change invalidates memoized costs
  return mse;
}

double IndexBenefitEstimator::CrossValidateRmse() const {
  return SigmoidRegression::CrossValidate(features_, targets_, 9);
}

namespace {

std::string PathKey(const std::string& table, const std::string& index) {
  return table + '\x01' + index;
}

}  // namespace

void IndexBenefitEstimator::RecordExecutionFeedback(
    const std::vector<AccessPathFeedback>& batch) {
  for (const AccessPathFeedback& fb : batch) {
    PathFeedback& agg = path_feedback_[PathKey(fb.table, fb.index)];
    agg.est_cost_sum += fb.est_cost;
    agg.actual_cost_sum += fb.actual_cost;
    agg.est_rows_sum += fb.est_rows;
    agg.actual_rows_sum += fb.actual_rows;
    ++agg.count;
    ++num_feedback_pairs_;
  }
}

bool IndexBenefitEstimator::HasFeedbackFor(const std::string& table,
                                           const std::string& index) const {
  return path_feedback_.find(PathKey(table, index)) != path_feedback_.end();
}

double IndexBenefitEstimator::FeedbackCostRatio(
    const std::string& table, const std::string& index) const {
  auto it = path_feedback_.find(PathKey(table, index));
  if (it == path_feedback_.end()) return 1.0;
  const PathFeedback& agg = it->second;
  if (agg.est_cost_sum <= 0.0) return 1.0;
  return agg.actual_cost_sum / agg.est_cost_sum;
}

}  // namespace autoindex
