#include "core/diagnosis.h"

#include <algorithm>

namespace autoindex {

DiagnosisReport IndexDiagnoser::Diagnose(
    const WorkloadModel& workload,
    const std::vector<IndexDef>& candidates) const {
  DiagnosisReport report;
  const IndexConfig current = db_->CurrentConfig();
  const double base_cost =
      estimator_->EstimateWorkloadCost(workload, current);

  // (i) Beneficial but unbuilt candidates.
  size_t probed = 0;
  for (const IndexDef& def : candidates) {
    if (probed >= config_.max_probe_candidates) break;
    if (current.Contains(def)) continue;
    ++probed;
    IndexConfig with = current;
    with.Add(def);
    const double cost = estimator_->EstimateWorkloadCost(workload, with);
    if (cost < base_cost * (1.0 - 1e-6)) {
      report.unbuilt_beneficial.push_back(def);
    }
  }

  // (ii) Rarely-used built indexes (planner usage counters).
  for (const BuiltIndex* index : db_->index_manager().AllIndexes()) {
    ++report.built_indexes;
    if (index->uses() < config_.rare_use_threshold) {
      report.rarely_used.push_back(index->def());
    }
  }

  // (iii) Negative-benefit built indexes: removing them lowers the
  // estimated workload cost (their maintenance outweighs their savings, or
  // a wider index already covers them).
  for (const BuiltIndex* index : db_->index_manager().AllIndexes()) {
    IndexConfig without = current;
    without.Remove(index->def());
    const double cost = estimator_->EstimateWorkloadCost(workload, without);
    if (cost < base_cost * (1.0 - 1e-9)) {
      report.negative_benefit.push_back(index->def());
    }
  }

  // Problem ratio over the union of classes (Sec. III).
  const size_t denom =
      std::max<size_t>(1, report.built_indexes +
                              report.unbuilt_beneficial.size());
  // Count distinct problem indexes (rarely-used and negative may overlap).
  size_t problems = report.unbuilt_beneficial.size();
  for (const IndexDef& def : report.rarely_used) {
    problems += 1;
    (void)def;
  }
  for (const IndexDef& def : report.negative_benefit) {
    bool dup = false;
    for (const IndexDef& r : report.rarely_used) {
      if (r == def) {
        dup = true;
        break;
      }
    }
    if (!dup) problems += 1;
  }
  report.problem_ratio = static_cast<double>(problems) / denom;
  report.should_tune = report.problem_ratio > config_.trigger_ratio;
  return report;
}

}  // namespace autoindex
