#pragma once

#include <vector>

#include "core/benefit_estimator.h"
#include "engine/what_if.h"

namespace autoindex {

struct GreedyConfig {
  size_t storage_budget_bytes = 0;  // 0 = unlimited
  // kTopK: the paper's baseline — rank candidates by their *individual*
  //   benefit over the existing set and add the best until the budget is
  //   hit. Misses combined index effects (Sec. VI-B, Table I).
  // kHillClimb: stronger variant re-evaluating marginal benefit each step;
  //   kept as an ablation.
  enum Strategy { kTopK, kHillClimb } strategy = kTopK;
  // Stop adding when the marginal benefit falls below this fraction of the
  // base workload cost.
  double min_benefit_fraction = 1e-4;
};

struct GreedyResult {
  IndexConfig config;             // existing + selected additions
  std::vector<IndexDef> to_add;
  double base_cost = 0.0;
  double final_cost = 0.0;
  size_t evaluations = 0;  // estimator calls, for overhead comparison
};

// The heuristic baseline used throughout the paper's evaluation ("Greedy",
// cf. [2],[3],[26]). It shares AutoIndex's benefit estimator so the
// comparison isolates the search strategy — exactly the paper's setup
// ("To ensure the fairness, Greedy and AutoIndex utilized the same cost
// estimation method").
class GreedySelector {
 public:
  GreedySelector(Database* db, IndexBenefitEstimator* estimator,
                 GreedyConfig config = {})
      : db_(db), estimator_(estimator), config_(config) {}

  GreedyResult Run(const IndexConfig& existing,
                   const std::vector<IndexDef>& candidates,
                   const WorkloadModel& workload) const;

  void set_storage_budget(size_t bytes) {
    config_.storage_budget_bytes = bytes;
  }

 private:
  bool WithinBudget(const IndexConfig& config) const;

  Database* db_;
  IndexBenefitEstimator* estimator_;
  GreedyConfig config_;
};

}  // namespace autoindex
