#include "core/candidate_gen.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sql/dnf.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

// Which FROM entry does this column belong to? Returns the real table name
// or "" when unresolved.
std::string TableOfColumn(const ColumnRef& col,
                          const std::vector<TableRef>& from,
                          const Catalog& catalog) {
  if (!col.table.empty()) {
    for (const TableRef& ref : from) {
      if (ref.alias == col.table || ref.table == col.table) return ref.table;
    }
    return "";
  }
  for (const TableRef& ref : from) {
    const HeapTable* t = catalog.GetTable(ref.table);
    if (t != nullptr && t->schema().HasColumn(col.column)) return ref.table;
  }
  return "";
}

// The single column an atomic predicate constrains, when it is sargable
// (column vs literal). Returns false for join atoms and non-column atoms.
bool AtomColumn(const Expr& atom, ColumnRef* col, bool* is_equality) {
  switch (atom.kind) {
    case ExprKind::kCompare: {
      const Expr& lhs = *atom.children[0];
      const Expr& rhs = *atom.children[1];
      if (lhs.kind == ExprKind::kColumn && rhs.kind == ExprKind::kLiteral) {
        *col = lhs.column;
        *is_equality = atom.op == CompareOp::kEq;
        return true;
      }
      if (lhs.kind == ExprKind::kLiteral && rhs.kind == ExprKind::kColumn) {
        *col = rhs.column;
        *is_equality = atom.op == CompareOp::kEq;
        return true;
      }
      return false;
    }
    case ExprKind::kBetween:
    case ExprKind::kInList:
      if (atom.children[0]->kind == ExprKind::kColumn) {
        *col = atom.children[0]->column;
        *is_equality = atom.kind == ExprKind::kInList && !atom.negated;
        return true;
      }
      return false;
    default:
      return false;
  }
}

// True for a cross-column equality (potential join predicate).
bool IsJoinAtom(const Expr& atom, ColumnRef* left, ColumnRef* right) {
  if (atom.kind != ExprKind::kCompare || atom.op != CompareOp::kEq) {
    return false;
  }
  const Expr& lhs = *atom.children[0];
  const Expr& rhs = *atom.children[1];
  if (lhs.kind == ExprKind::kColumn && rhs.kind == ExprKind::kColumn) {
    *left = lhs.column;
    *right = rhs.column;
    return true;
  }
  return false;
}

}  // namespace

std::vector<IndexDef> MergeCandidates(std::vector<IndexDef> candidates) {
  // Exact dedup.
  std::unordered_set<std::string> seen;
  std::vector<IndexDef> unique;
  for (IndexDef& def : candidates) {
    const std::string key = def.Key();
    if (seen.insert(key).second) unique.push_back(std::move(def));
  }
  // Leftmost-prefix merge: drop any candidate that is a strict prefix of
  // another (the wider index also serves the prefix lookups).
  std::vector<IndexDef> merged;
  for (size_t i = 0; i < unique.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < unique.size(); ++j) {
      if (i == j) continue;
      if (unique[i].IsPrefixOf(unique[j]) &&
          unique[i].columns.size() < unique[j].columns.size()) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged.push_back(unique[i]);
  }
  return merged;
}

void CandidateGenerator::EmitFromConjunction(
    const std::string& table, const std::vector<const Expr*>& atoms,
    std::vector<IndexDef>* out) const {
  const HeapTable* t = db_->catalog().GetTable(table);
  if (t == nullptr || t->num_rows() < config_.min_table_rows) return;

  // Partition columns into equality-bound and range-bound; estimate the
  // conjunct's selected fraction on this table.
  struct ColInfo {
    std::string column;
    bool equality;
    double selectivity;
  };
  std::vector<ColInfo> cols;
  double fraction = 1.0;
  for (const Expr* atom : atoms) {
    ColumnRef col;
    bool eq = false;
    if (!AtomColumn(*atom, &col, &eq)) continue;
    const double sel =
        db_->stats_manager().AtomSelectivity(*atom, table, table);
    fraction *= sel;
    // Skip duplicate columns (keep the more selective classification).
    bool found = false;
    for (ColInfo& c : cols) {
      if (c.column == col.column) {
        c.equality = c.equality || eq;
        c.selectivity = std::min(c.selectivity, sel);
        found = true;
        break;
      }
    }
    if (!found) cols.push_back({ToLower(col.column), eq, sel});
  }
  if (cols.empty()) return;
  // The 1/3 rule: predicates keeping more than the threshold fraction of
  // the table do not pay for an index probe.
  if (fraction > config_.max_selected_fraction) return;

  // Order: equality columns first (most selective first), then range
  // columns — the canonical composite-index column order.
  std::stable_sort(cols.begin(), cols.end(),
                   [](const ColInfo& a, const ColInfo& b) {
                     if (a.equality != b.equality) return a.equality;
                     return a.selectivity < b.selectivity;
                   });
  if (cols.size() > config_.max_index_columns) {
    cols.resize(config_.max_index_columns);
  }
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (const ColInfo& c : cols) names.push_back(c.column);
  out->push_back(IndexDef(table, std::move(names)));
}

void CandidateGenerator::FromWhere(const Expr* where,
                                   const std::vector<TableRef>& from,
                                   std::vector<IndexDef>* out) const {
  if (where == nullptr) return;

  // (1) Filter predicates: DNF rewrite, then per-conjunct, per-table
  // factorization (Sec. IV-A "Index Generation (1)").
  const std::vector<DnfConjunction> dnf = ToDnf(*where);
  for (const DnfConjunction& conj : dnf) {
    // Group sargable atoms by table.
    std::unordered_map<std::string, std::vector<const Expr*>> per_table;
    for (const ExprPtr& atom : conj) {
      ColumnRef col;
      bool eq = false;
      if (!AtomColumn(*atom, &col, &eq)) continue;
      const std::string table = TableOfColumn(col, from, db_->catalog());
      if (!table.empty()) per_table[table].push_back(atom.get());
    }
    for (const auto& [table, atoms] : per_table) {
      EmitFromConjunction(table, atoms, out);
    }
  }

  // (2) Join predicates: for each atomic join, index the driven table's
  // join column (Sec. IV-A "Index Generation (2)"). Which side is driven
  // depends on the final join order, so we emit a candidate for each side
  // and let benefit estimation keep the useful one.
  std::vector<const Expr*> atoms;
  std::vector<DnfConjunction> dnf_for_joins = ToDnf(*where, 8);
  for (const DnfConjunction& conj : dnf_for_joins) {
    for (const ExprPtr& atom : conj) {
      ColumnRef left, right;
      if (!IsJoinAtom(*atom, &left, &right)) continue;
      const std::string lt = TableOfColumn(left, from, db_->catalog());
      const std::string rt = TableOfColumn(right, from, db_->catalog());
      if (lt.empty() || rt.empty() || lt == rt) continue;
      const HeapTable* ltab = db_->catalog().GetTable(lt);
      const HeapTable* rtab = db_->catalog().GetTable(rt);
      if (ltab != nullptr && ltab->num_rows() >= config_.min_table_rows) {
        out->push_back(IndexDef(lt, {left.column}));
      }
      if (rtab != nullptr && rtab->num_rows() >= config_.min_table_rows) {
        out->push_back(IndexDef(rt, {right.column}));
      }
    }
  }
  (void)atoms;
}

void CandidateGenerator::FromSelect(const SelectStatement& stmt,
                                    std::vector<IndexDef>* out) const {
  FromWhere(stmt.where.get(), stmt.from, out);

  // (3) Other expressions: GROUP BY / ORDER BY columns (Sec. IV-A "Index
  // Generation (3)") — only when the clause "takes effect" (grouping a
  // column that is unique per row is a no-op).
  auto emit_clause_index = [&](const std::vector<ColumnRef>& cols) {
    std::unordered_map<std::string, std::vector<std::string>> per_table;
    for (const ColumnRef& col : cols) {
      const std::string table =
          TableOfColumn(col, stmt.from, db_->catalog());
      if (table.empty()) continue;
      per_table[table].push_back(ToLower(col.column));
    }
    for (auto& [table, names] : per_table) {
      const HeapTable* t = db_->catalog().GetTable(table);
      if (t == nullptr || t->num_rows() < config_.min_table_rows) continue;
      out->push_back(IndexDef(table, names));
    }
  };

  if (!stmt.group_by.empty()) {
    // Effective only when the grouped columns are not already distinct.
    bool effective = false;
    for (const ColumnRef& col : stmt.group_by) {
      const std::string table =
          TableOfColumn(col, stmt.from, db_->catalog());
      if (table.empty()) continue;
      const ColumnStats* cs =
          db_->stats_manager().GetColumnStats(table, col.column);
      const HeapTable* t = db_->catalog().GetTable(table);
      if (cs != nullptr && t != nullptr &&
          cs->num_distinct() < t->num_rows()) {
        effective = true;
      }
    }
    if (effective) emit_clause_index(stmt.group_by);
  }
  if (!stmt.order_by.empty()) {
    std::vector<ColumnRef> cols;
    cols.reserve(stmt.order_by.size());
    for (const OrderByItem& o : stmt.order_by) cols.push_back(o.column);
    emit_clause_index(cols);
  }
}

std::vector<IndexDef> CandidateGenerator::FromStatement(
    const Statement& stmt) const {
  std::vector<IndexDef> out;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      FromSelect(*stmt.select, &out);
      break;
    case StatementKind::kUpdate: {
      // Indexes speed up locating the rows to update (the paper's W3
      // example builds (name, community) to accelerate temperature
      // updates).
      std::vector<TableRef> from{TableRef(stmt.update->table)};
      FromWhere(stmt.update->where.get(), from, &out);
      break;
    }
    case StatementKind::kDelete: {
      std::vector<TableRef> from{TableRef(stmt.del->table)};
      FromWhere(stmt.del->where.get(), from, &out);
      break;
    }
    case StatementKind::kInsert:
      break;  // inserts only ever pay for indexes
  }
  return out;
}

std::vector<IndexDef> CandidateGenerator::Generate(
    const std::vector<const QueryTemplate*>& templates,
    const IndexConfig& existing) const {
  std::vector<IndexDef> all;
  for (const QueryTemplate* t : templates) {
    std::vector<IndexDef> per = FromStatement(t->representative);
    all.insert(all.end(), std::make_move_iterator(per.begin()),
               std::make_move_iterator(per.end()));
    if (all.size() > config_.max_candidates * 8) break;  // soft guard
  }
  std::vector<IndexDef> merged = MergeCandidates(std::move(all));
  // Index type selection for partitioned tables (Sec. III): each candidate
  // on a partitioned table also gets a LOCAL variant — the search decides
  // which physical kind pays off for the workload.
  std::vector<IndexDef> expanded;
  for (IndexDef& def : merged) {
    const HeapTable* t = db_->catalog().GetTable(def.table);
    if (t != nullptr && t->partitioned()) {
      IndexDef local = def;
      local.kind = IndexKind::kLocal;
      expanded.push_back(std::move(local));
    }
    expanded.push_back(std::move(def));
  }
  // Drop candidates already built.
  std::vector<IndexDef> fresh;
  for (IndexDef& def : expanded) {
    if (!existing.Contains(def)) fresh.push_back(std::move(def));
  }
  if (fresh.size() > config_.max_candidates) {
    fresh.resize(config_.max_candidates);
  }
  return fresh;
}

}  // namespace autoindex
