#pragma once

#include <vector>

#include "core/benefit_estimator.h"
#include "engine/database.h"

namespace autoindex {

struct DiagnosisConfig {
  // An index with fewer planner uses than this (since the last round) is
  // "rarely used".
  size_t rare_use_threshold = 1;
  // Tuning is triggered when the problem-index ratio exceeds this
  // (Sec. III Index Diagnosis).
  double trigger_ratio = 0.2;
  // Max unbuilt candidates to probe for positive benefit.
  size_t max_probe_candidates = 32;
};

// Classification of the current index estate against the live workload
// (Sec. III): (i) beneficial indexes not yet built, (ii) rarely-used
// indexes, (iii) built indexes with negative net benefit (maintenance
// exceeding their read savings).
struct DiagnosisReport {
  std::vector<IndexDef> unbuilt_beneficial;
  std::vector<IndexDef> rarely_used;
  std::vector<IndexDef> negative_benefit;
  size_t built_indexes = 0;
  double problem_ratio = 0.0;
  bool should_tune = false;
};

class IndexDiagnoser {
 public:
  IndexDiagnoser(Database* db, IndexBenefitEstimator* estimator,
                 DiagnosisConfig config = {})
      : db_(db), estimator_(estimator), config_(config) {}

  // Diagnoses the built index set against the workload model.
  // `candidates` are unbuilt candidate indexes to probe for class (i).
  DiagnosisReport Diagnose(const WorkloadModel& workload,
                           const std::vector<IndexDef>& candidates) const;

 private:
  Database* db_;
  IndexBenefitEstimator* estimator_;
  DiagnosisConfig config_;
};

}  // namespace autoindex
