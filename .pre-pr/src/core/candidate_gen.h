#pragma once

#include <vector>

#include "core/query_template.h"
#include "engine/database.h"
#include "engine/what_if.h"
#include "index/index_def.h"

namespace autoindex {

struct CandidateGenConfig {
  // Predicates selecting more than this fraction of the table are not
  // worth an index (the paper's 1/3 rule, Sec. IV-A: "if its selectivity
  // is higher than a threshold" — higher selectivity meaning a sharper
  // filter).
  double max_selected_fraction = 1.0 / 3.0;
  // Cap on index width; composite predicates wider than this are truncated
  // to their most selective columns.
  size_t max_index_columns = 3;
  // Hard cap on emitted candidates (highest-frequency templates win).
  size_t max_candidates = 64;
  // Tables smaller than this are not worth indexing.
  size_t min_table_rows = 64;
};

// Template-based candidate index generation (Sec. IV-A):
//  1. expression extraction per clause (filter / join / GROUP / ORDER),
//  2. DNF rewrite of boolean predicates, per-conjunct factorization,
//     selectivity-thresholded index emission (equality columns before
//     range columns),
//  3. dedup + leftmost-prefix merge + removal of already-built indexes.
class CandidateGenerator {
 public:
  CandidateGenerator(Database* db, CandidateGenConfig config = {})
      : db_(db), config_(config) {}

  // Generates candidates for a set of templates (typically the store's
  // TemplatesByFrequency()). `existing` filters out indexes that are
  // already present.
  std::vector<IndexDef> Generate(
      const std::vector<const QueryTemplate*>& templates,
      const IndexConfig& existing) const;

  // Candidates from a single statement (no existing-index filtering) —
  // exposed for tests and for query-level baselines (Fig. 8 ablation).
  std::vector<IndexDef> FromStatement(const Statement& stmt) const;

 private:
  void FromSelect(const SelectStatement& stmt,
                  std::vector<IndexDef>* out) const;
  void FromWhere(const Expr* where, const std::vector<TableRef>& from,
                 std::vector<IndexDef>* out) const;
  // Emits an index for one DNF conjunction restricted to one table.
  void EmitFromConjunction(const std::string& table,
                           const std::vector<const Expr*>& atoms,
                           std::vector<IndexDef>* out) const;

  Database* db_;
  CandidateGenConfig config_;
};

// Dedup + leftmost-prefix merge (Sec. IV-A step 3): drops exact duplicates
// and any index that is a strict prefix of another candidate. Exposed for
// tests.
std::vector<IndexDef> MergeCandidates(std::vector<IndexDef> candidates);

}  // namespace autoindex
