#include "core/greedy.h"

#include <algorithm>

namespace autoindex {

bool GreedySelector::WithinBudget(const IndexConfig& config) const {
  if (config_.storage_budget_bytes == 0) return true;
  return config.TotalBytes(db_->catalog()) <= config_.storage_budget_bytes;
}

GreedyResult GreedySelector::Run(const IndexConfig& existing,
                                 const std::vector<IndexDef>& candidates,
                                 const WorkloadModel& workload) const {
  GreedyResult result;
  result.config = existing;
  result.base_cost = estimator_->EstimateWorkloadCost(workload, existing);
  ++result.evaluations;
  double current_cost = result.base_cost;
  const double min_gain = config_.min_benefit_fraction * result.base_cost;

  if (config_.strategy == GreedyConfig::kTopK) {
    // Rank by individual benefit against the *existing* set, then add in
    // that fixed order while the budget allows.
    struct Scored {
      const IndexDef* def;
      double benefit;
    };
    std::vector<Scored> scored;
    for (const IndexDef& def : candidates) {
      IndexConfig with = existing;
      with.Add(def);
      const double cost = estimator_->EstimateWorkloadCost(workload, with);
      ++result.evaluations;
      scored.push_back({&def, result.base_cost - cost});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                return a.benefit > b.benefit;
              });
    for (const Scored& s : scored) {
      if (s.benefit <= min_gain) break;
      IndexConfig next = result.config;
      next.Add(*s.def);
      if (!WithinBudget(next)) continue;  // skip what does not fit
      const double cost = estimator_->EstimateWorkloadCost(workload, next);
      ++result.evaluations;
      if (cost >= current_cost) continue;  // no combined gain; skip
      result.config = std::move(next);
      result.to_add.push_back(*s.def);
      current_cost = cost;
    }
  } else {
    // Hill-climbing: re-evaluate every remaining candidate each round.
    std::vector<const IndexDef*> remaining;
    for (const IndexDef& def : candidates) remaining.push_back(&def);
    while (!remaining.empty()) {
      double best_gain = min_gain;
      size_t best_i = remaining.size();
      IndexConfig best_next;
      double best_cost = current_cost;
      for (size_t i = 0; i < remaining.size(); ++i) {
        IndexConfig next = result.config;
        next.Add(*remaining[i]);
        if (!WithinBudget(next)) continue;
        const double cost = estimator_->EstimateWorkloadCost(workload, next);
        ++result.evaluations;
        const double gain = current_cost - cost;
        if (gain > best_gain) {
          best_gain = gain;
          best_i = i;
          best_next = std::move(next);
          best_cost = cost;
        }
      }
      if (best_i == remaining.size()) break;
      result.config = std::move(best_next);
      result.to_add.push_back(*remaining[best_i]);
      current_cost = best_cost;
      remaining.erase(remaining.begin() + best_i);
    }
  }
  result.final_cost = current_cost;
  return result;
}

}  // namespace autoindex
