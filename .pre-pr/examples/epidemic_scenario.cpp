// The paper's Fig. 2 walkthrough: an epidemic-tracking workload moving
// through three phases with different index needs. AutoIndex adapts the
// index set incrementally after each phase.
//
//   $ ./build/examples/epidemic_scenario

#include <cstdio>

#include "core/manager.h"
#include "workload/epidemic.h"
#include "workload/workload.h"

using namespace autoindex;  // NOLINT — example brevity

namespace {

void PrintIndexes(const Database& db, const char* label) {
  std::printf("%s indexes:", label);
  for (const BuiltIndex* index : db.index_manager().AllIndexes()) {
    std::printf(" %s", index->def().DisplayName().c_str());
  }
  if (db.index_manager().AllIndexes().empty()) std::printf(" (none)");
  std::printf("\n");
}

}  // namespace

int main() {
  Database db;
  EpidemicConfig config;
  EpidemicWorkload::Populate(&db, config);

  AutoIndexConfig ai;
  ai.mcts.iterations = 150;
  AutoIndexManager manager(&db, ai);

  struct Phase {
    const char* name;
    std::vector<std::string> queries;
  };
  const Phase phases[] = {
      {"W1 (early, read-mostly)",
       EpidemicWorkload::PhaseW1(config, 400, 1)},
      {"W2 (outbreak, insert-heavy)",
       EpidemicWorkload::PhaseW2(config, 600, 2)},
      {"W3 (controlled, update-heavy)",
       EpidemicWorkload::PhaseW3(config, 400, 3)},
  };

  for (const Phase& phase : phases) {
    std::printf("\n=== phase %s ===\n", phase.name);
    RunMetrics metrics = RunWorkloadObserved(&manager, phase.queries);
    std::printf("ran %zu queries, cost %.1f (read %.1f, maintenance %.1f)\n",
                metrics.queries, metrics.total_cost,
                metrics.breakdown.CData(),
                metrics.breakdown.maint_io + metrics.breakdown.maint_cpu);

    TuningResult tuning = manager.RunManagementRound();
    for (const IndexDef& def : tuning.added) {
      std::printf("  + %s\n", def.DisplayName().c_str());
    }
    for (const IndexDef& def : tuning.removed) {
      std::printf("  - %s\n", def.DisplayName().c_str());
    }
    PrintIndexes(db, "  current");

    RunMetrics after = RunWorkload(
        &db, phase.queries);  // replay the phase on the tuned estate
    std::printf("  replay cost %.1f (%.1f%% change)\n", after.total_cost,
                100.0 * (after.total_cost - metrics.total_cost) /
                    metrics.total_cost);
  }
  return 0;
}
