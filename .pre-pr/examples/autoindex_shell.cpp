// An interactive shell over the engine + AutoIndex: type SQL, see rows and
// per-query cost; meta-commands drive the index manager.
//
//   $ ./build/examples/autoindex_shell
//   autoindex> CREATE TABLE is not SQL here — tables come from \demo
//   autoindex> \demo            (loads a small demo table)
//   autoindex> SELECT * FROM orders WHERE customer_id = 42
//   autoindex> \diagnose
//   autoindex> \tune
//   autoindex> \indexes
//   autoindex> \quit

#include <cctype>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "check/validator.h"
#include "core/manager.h"
#include "engine/explain.h"
#include "util/string_util.h"
#include "workload/workload.h"

using namespace autoindex;  // NOLINT — example brevity

namespace {

void LoadDemo(Database* db) {
  if (db->catalog().GetTable("orders") != nullptr) {
    std::printf("demo already loaded\n");
    return;
  }
  db->CreateTable("orders", Schema({{"order_id", ValueType::kInt},
                                    {"customer_id", ValueType::kInt},
                                    {"status", ValueType::kInt},
                                    {"amount", ValueType::kDouble}}));
  Random rng(42);
  std::vector<Row> rows;
  for (int i = 0; i < 50000; ++i) {
    rows.push_back({Value(int64_t(i)),
                    Value(int64_t(rng.Uniform(5000))),
                    Value(int64_t(rng.Uniform(7))),
                    Value(rng.NextDouble() * 500.0)});
  }
  db->BulkInsert("orders", std::move(rows)).ok();
  db->Analyze();
  std::printf("loaded table orders (50000 rows)\n");
}

void PrintRows(const ExecResult& result, size_t cap = 20) {
  size_t shown = 0;
  for (const Row& row : result.rows) {
    if (shown++ >= cap) {
      std::printf("... (%zu more rows)\n", result.rows.size() - cap);
      break;
    }
    std::string line = "  ";
    for (const Value& v : row) line += v.ToString() + "\t";
    std::printf("%s\n", line.c_str());
  }
}

void PrintIndexes(const Database& db) {
  if (db.index_manager().AllIndexes().empty()) {
    std::printf("(no indexes)\n");
    return;
  }
  for (const BuiltIndex* index : db.index_manager().AllIndexes()) {
    std::printf("  %-40s %8.2f MiB  entries=%zu height=%zu uses=%zu\n",
                index->def().DisplayName().c_str(),
                index->SizeBytes() / 1048576.0, index->num_entries(),
                index->height(), index->uses());
  }
}

}  // namespace

int main() {
  Database db;
  AutoIndexConfig config;
  config.mcts.iterations = 200;
  AutoIndexManager manager(&db, config);

  std::printf("AutoIndex shell — \\demo \\tune \\diagnose \\indexes "
              "\\templates \\explain [analyze] <sql> \\budget <MiB> "
              "\\check [on|off] \\quit\n");
  std::string line;
  while (true) {
    std::printf("autoindex> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string input(Trim(line));
    if (input.empty()) continue;

    if (input[0] == '\\') {
      std::istringstream iss(input.substr(1));
      std::string cmd;
      iss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "demo") {
        LoadDemo(&db);
      } else if (cmd == "indexes") {
        PrintIndexes(db);
      } else if (cmd == "templates") {
        for (const QueryTemplate* t :
             manager.templates().TemplatesByFrequency()) {
          std::printf("  %8.1f  %s\n", t->frequency,
                      t->fingerprint.c_str());
        }
      } else if (cmd == "budget") {
        double mib = 0;
        if (iss >> mib) {
          manager.set_storage_budget(
              static_cast<size_t>(mib * 1048576.0));
          std::printf("storage budget set to %.1f MiB\n", mib);
        } else {
          std::printf("usage: \\budget <MiB>\n");
        }
      } else if (cmd == "check") {
        // "\check" validates every structure now; "\check on" keeps doing
        // it after each mutation batch, "\check off" stops.
        std::string mode;
        iss >> mode;
        if (mode == "on") {
          InstallDebugChecks(&db);
          std::printf("debug checks on: structures validated after every "
                      "mutation batch\n");
        } else if (mode == "off") {
          InstallDebugChecks(&db, /*install=*/false);
          std::printf("debug checks off\n");
        } else if (mode.empty()) {
          const CheckReport report = CheckAll(db);
          std::printf("%s\n", report.ToString().c_str());
        } else {
          std::printf("usage: \\check [on|off]\n");
        }
      } else if (cmd == "diagnose") {
        DiagnosisReport report = manager.Diagnose();
        std::printf("built=%zu unbuilt-beneficial=%zu rarely-used=%zu "
                    "negative=%zu -> problem ratio %.2f, %s\n",
                    report.built_indexes,
                    report.unbuilt_beneficial.size(),
                    report.rarely_used.size(),
                    report.negative_benefit.size(), report.problem_ratio,
                    report.should_tune ? "TUNE" : "healthy");
      } else if (cmd == "explain") {
        std::string rest;
        std::getline(iss, rest);
        std::string sql(Trim(rest));
        // "\explain analyze <sql>" executes and shows measured counters.
        bool analyze = false;
        if (sql.size() >= 7) {
          std::string head = sql.substr(0, 7);
          for (char& c : head) c = static_cast<char>(std::tolower(c));
          if (head == "analyze") {
            analyze = true;
            sql = std::string(Trim(sql.substr(7)));
          }
        }
        auto plan = analyze ? ExplainAnalyzeSql(db, sql) : ExplainSql(db, sql);
        if (plan.ok()) {
          std::printf("%s", plan->c_str());
        } else {
          std::printf("error: %s\n", plan.status().ToString().c_str());
        }
      } else if (cmd == "tune") {
        TuningResult r = manager.RunManagementRound();
        std::printf("round done in %.1f ms: +%zu / -%zu indexes "
                    "(est. benefit %.1f)\n",
                    r.elapsed_ms, r.added.size(), r.removed.size(),
                    r.est_benefit);
        for (const IndexDef& d : r.added) {
          std::printf("  + %s\n", d.DisplayName().c_str());
        }
        for (const IndexDef& d : r.removed) {
          std::printf("  - %s\n", d.DisplayName().c_str());
        }
      } else {
        std::printf("unknown command \\%s\n", cmd.c_str());
      }
      continue;
    }

    StatusOr<ExecResult> result = manager.ExecuteAndObserve(input);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintRows(*result);
    const CostBreakdown cost = result->stats.ToCost(db.params());
    std::printf("(%zu rows, cost %.2f%s)\n", result->rows.size(),
                cost.Total(),
                result->stats.used_index ? ", via index" : "");
  }
  return 0;
}
