// The paper's banking scenario (Fig. 1 / Tables II-III): a DBA-crafted,
// redundancy-heavy index estate over 144 tables. AutoIndex removes the
// dead weight and adds the few indexes the hybrid services actually need.
//
//   $ ./build/examples/banking_tuning

#include <cstdio>

#include "core/manager.h"
#include "workload/banking.h"
#include "workload/workload.h"

using namespace autoindex;  // NOLINT — example brevity

int main() {
  Database db;
  BankingConfig config;
  config.num_tables = 60;  // scaled down for a quick demo
  config.hot_tables = 9;
  config.rows_hot = 3000;
  config.manual_indexes = 120;
  BankingWorkload::Populate(&db, config);
  BankingWorkload::CreateManualIndexes(&db, config);

  const size_t manual_count = db.index_manager().num_indexes();
  const size_t manual_bytes = db.index_manager().TotalIndexBytes();
  std::printf("DBA estate: %zu indexes, %.1f MiB\n", manual_count,
              manual_bytes / 1048576.0);

  AutoIndexConfig ai;
  ai.mcts.iterations = 250;
  ai.mcts.max_actions_per_node = 64;
  AutoIndexManager manager(&db, ai);

  const auto hybrid = BankingWorkload::HybridService(config, 1500, 42);
  RunMetrics before = RunWorkloadObserved(&manager, hybrid);
  std::printf("hybrid service before: cost %.1f, throughput %.2f\n",
              before.total_cost, before.Throughput());

  // Several rounds: each round removes more redundant indexes and adds
  // what the services need.
  for (int round = 0; round < 4; ++round) {
    TuningResult tuning = manager.RunManagementRound();
    std::printf("round %d: +%zu indexes, -%zu indexes (est. benefit %.1f)\n",
                round + 1, tuning.added.size(), tuning.removed.size(),
                tuning.est_benefit);
    if (tuning.added.empty() && tuning.removed.empty()) break;
  }

  const size_t tuned_count = db.index_manager().num_indexes();
  const size_t tuned_bytes = db.index_manager().TotalIndexBytes();
  RunMetrics after =
      RunWorkload(&db, BankingWorkload::HybridService(config, 1500, 43));

  std::printf("\ntuned estate: %zu indexes (%.0f%% removed), %.1f MiB "
              "(%.0f%% saved)\n",
              tuned_count,
              100.0 * (static_cast<double>(manual_count) -
                       static_cast<double>(tuned_count)) /
                  static_cast<double>(manual_count),
              tuned_bytes / 1048576.0,
              100.0 * (static_cast<double>(manual_bytes) -
                       static_cast<double>(tuned_bytes)) /
                  static_cast<double>(manual_bytes));
  std::printf("hybrid service after: cost %.1f, throughput %.2f "
              "(%.1f%% throughput change)\n",
              after.total_cost, after.Throughput(),
              100.0 * (after.Throughput() - before.Throughput()) /
                  before.Throughput());
  return 0;
}
