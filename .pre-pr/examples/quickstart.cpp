// Quickstart: create a table, run a workload, let AutoIndex recommend and
// apply indexes, and verify the measured improvement.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/manager.h"
#include "workload/workload.h"

using namespace autoindex;  // NOLINT — example brevity

int main() {
  // 1. A database with one table and some data.
  Database db;
  db.CreateTable("orders", Schema({{"order_id", ValueType::kInt},
                                   {"customer_id", ValueType::kInt},
                                   {"status", ValueType::kInt},
                                   {"amount", ValueType::kDouble}}));
  std::vector<Row> rows;
  for (int i = 0; i < 50000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(i % 5000)),
                    Value(int64_t(i % 7)), Value(i * 1.5)});
  }
  db.BulkInsert("orders", std::move(rows)).ok();
  db.Analyze();

  // 2. Wrap it with AutoIndex and feed the query stream through it.
  AutoIndexConfig config;
  config.mcts.iterations = 150;
  AutoIndexManager manager(&db, config);

  std::vector<std::string> workload;
  for (int i = 0; i < 300; ++i) {
    workload.push_back("SELECT amount FROM orders WHERE customer_id = " +
                       std::to_string(i * 13 % 5000));
    if (i % 3 == 0) {
      workload.push_back(
          "SELECT COUNT(*) FROM orders WHERE customer_id = " +
          std::to_string(i % 5000) + " AND status = " +
          std::to_string(i % 7));
    }
  }
  RunMetrics before = RunWorkloadObserved(&manager, workload);
  std::printf("before tuning: total cost %.1f, throughput %.2f q/kcost\n",
              before.total_cost, before.Throughput());

  // 3. One management round: diagnose, generate candidates, search, apply.
  TuningResult tuning = manager.RunManagementRound();
  std::printf("management round: %zu templates, %zu candidates, %.1f ms\n",
              tuning.templates_considered, tuning.candidates_generated,
              tuning.elapsed_ms);
  for (const IndexDef& def : tuning.added) {
    std::printf("  + created %s\n", def.DisplayName().c_str());
  }
  for (const IndexDef& def : tuning.removed) {
    std::printf("  - dropped %s\n", def.DisplayName().c_str());
  }

  // 4. Measure again.
  RunMetrics after = RunWorkload(&db, workload);
  std::printf("after tuning:  total cost %.1f, throughput %.2f q/kcost\n",
              after.total_cost, after.Throughput());
  std::printf("cost reduction: %.1f%%\n",
              100.0 * (before.total_cost - after.total_cost) /
                  before.total_cost);
  return 0;
}
