// Index selection under storage budgets (the paper's Fig. 10 scenario):
// the same workload tuned with unlimited, generous, and tight budgets —
// MCTS trades wide indexes for smaller high-value ones as space shrinks.
//
//   $ ./build/examples/storage_budget

#include <cstdio>

#include "core/manager.h"
#include "workload/tpcc.h"
#include "workload/workload.h"

using namespace autoindex;  // NOLINT — example brevity

int main() {
  const size_t budgets[] = {0, 8u << 20, 4u << 20, 1u << 20};  // 0 = none
  const char* labels[] = {"unlimited", "8 MiB", "4 MiB", "1 MiB"};

  for (int b = 0; b < 4; ++b) {
    Database db;
    TpccConfig config;
    config.warehouses = 2;
    TpccWorkload::Populate(&db, config);

    AutoIndexConfig ai;
    ai.mcts.iterations = 200;
    ai.storage_budget_bytes = budgets[b];
    AutoIndexManager manager(&db, ai);

    const auto workload = TpccWorkload::Generate(config, 600, 7);
    RunMetrics before = RunWorkloadObserved(&manager, workload);
    manager.RunManagementRound();
    RunMetrics after =
        RunWorkload(&db, TpccWorkload::Generate(config, 600, 8));

    std::printf(
        "budget %-9s: %zu indexes, %5.2f MiB used, cost %9.1f -> %9.1f "
        "(%+.1f%%)\n",
        labels[b], db.index_manager().num_indexes(),
        db.index_manager().TotalIndexBytes() / 1048576.0,
        before.total_cost, after.total_cost,
        100.0 * (after.total_cost - before.total_cost) / before.total_cost);
  }
  return 0;
}
