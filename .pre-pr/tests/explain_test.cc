// EXPLAIN output: plan rendering reflects the planner's actual choices.

#include <gtest/gtest.h>

#include "engine/explain.h"

namespace autoindex {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt}}));
    db_.CreateTable("d", Schema({{"k", ValueType::kInt},
                                 {"v", ValueType::kInt}}));
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 100))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    rows.clear();
    for (int i = 0; i < 100; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i))});
    }
    ASSERT_TRUE(db_.BulkInsert("d", std::move(rows)).ok());
    db_.Analyze();
  }

  Database db_;
};

TEST_F(ExplainTest, SeqScanWithoutIndexes) {
  auto plan = ExplainSql(db_, "SELECT b FROM t WHERE a = 5");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("seq scan on t"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("estimated total cost"), std::string::npos);
}

TEST_F(ExplainTest, IndexScanWhenAvailable) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  auto plan = ExplainSql(db_, "SELECT b FROM t WHERE a = 5");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("index scan on t via idx_t_a"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("a = ?"), std::string::npos);
}

TEST_F(ExplainTest, HashJoinRendered) {
  auto plan = ExplainSql(
      db_, "SELECT t.b FROM d, t WHERE t.a = d.k AND d.v = 3");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("hash join to t"), std::string::npos) << *plan;
}

TEST_F(ExplainTest, SortAndAggregateMarkers) {
  auto plan = ExplainSql(
      db_, "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("hash aggregate"), std::string::npos);
  EXPECT_NE(plan->find("sort"), std::string::npos);
}

TEST_F(ExplainTest, WhatIfConfigOverridesBuilt) {
  // No built index — but the explain under a hypothetical config shows
  // the index plan (the hypopg-style workflow).
  auto stmt = ParseSql("SELECT b FROM t WHERE a = 5");
  ASSERT_TRUE(stmt.ok());
  const std::string plan = ExplainStatement(
      db_, *stmt, IndexConfig({IndexDef("t", {"a"})}));
  EXPECT_NE(plan.find("index scan"), std::string::npos) << plan;
}

TEST_F(ExplainTest, WriteStatements) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  auto upd = ExplainSql(db_, "UPDATE t SET b = 1 WHERE a = 5");
  ASSERT_TRUE(upd.ok());
  EXPECT_NE(upd->find("update rows"), std::string::npos);
  EXPECT_NE(upd->find("index scan"), std::string::npos);
  auto ins = ExplainSql(db_, "INSERT INTO t VALUES (1, 2)");
  ASSERT_TRUE(ins.ok());
  EXPECT_NE(ins->find("insert into t"), std::string::npos);
}

// --- EXPLAIN ANALYZE: executes for real, renders est vs actual ----------

TEST_F(ExplainTest, AnalyzeRendersOperatorsWithActualCounters) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  auto out = ExplainAnalyzeSql(db_, "SELECT b FROM t WHERE a = 5");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("IndexScan"), std::string::npos) << *out;
  EXPECT_NE(out->find("idx_t_a"), std::string::npos) << *out;
  EXPECT_NE(out->find("Project"), std::string::npos) << *out;
  EXPECT_NE(out->find("(est."), std::string::npos) << *out;
  EXPECT_NE(out->find("(actual: rows=1"), std::string::npos) << *out;
  EXPECT_NE(out->find("measured cost:"), std::string::npos) << *out;
  // The feedback section names the access path with est vs actual.
  EXPECT_NE(out->find("feedback:"), std::string::npos) << *out;
  EXPECT_NE(out->find("t via idx_t_a"), std::string::npos) << *out;
}

TEST_F(ExplainTest, AnalyzeSeqScanFeedbackAndJoinOperators) {
  auto out = ExplainAnalyzeSql(
      db_, "SELECT t.b FROM d, t WHERE t.a = d.k AND d.v = 3");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("HashJoin"), std::string::npos) << *out;
  EXPECT_NE(out->find("SeqScan"), std::string::npos) << *out;
  EXPECT_NE(out->find("via seq scan"), std::string::npos) << *out;
}

TEST_F(ExplainTest, AnalyzeExecutesWriteStatements) {
  // EXPLAIN ANALYZE on an UPDATE really runs it — the mutation sticks and
  // the rendered pipeline is the write's row-location plan.
  auto out = ExplainAnalyzeSql(db_, "UPDATE t SET b = 777 WHERE a = 9");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("measured cost:"), std::string::npos) << *out;
  auto check = db_.Execute("SELECT b FROM t WHERE a = 9");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->rows.size(), 1u);
  EXPECT_EQ(check->rows[0][0].AsInt(), 777);
}

TEST_F(ExplainTest, AnalyzeInsertFallsBackToLogicalShape) {
  auto out = ExplainAnalyzeSql(db_, "INSERT INTO t VALUES (90001, 2)");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("insert into t"), std::string::npos) << *out;
  EXPECT_NE(out->find("measured cost:"), std::string::npos) << *out;
}

TEST_F(ExplainTest, AnalyzeErrorsPropagate) {
  EXPECT_FALSE(ExplainAnalyzeSql(db_, "SELEC nope").ok());
  EXPECT_FALSE(ExplainAnalyzeSql(db_, "SELECT a FROM missing").ok());
}

TEST_F(ExplainTest, ErrorsPropagate) {
  EXPECT_FALSE(ExplainSql(db_, "SELEC nope").ok());
  auto missing = ExplainSql(db_, "SELECT a FROM missing");
  ASSERT_TRUE(missing.ok());  // parses fine; planning fails in the text
  EXPECT_NE(missing->find("error"), std::string::npos);
}

}  // namespace
}  // namespace autoindex
