// Index benefit estimation (Sec. V): feature combination, workload-level
// costs, memoization, and the learned-model upgrade path.

#include <gtest/gtest.h>

#include "core/benefit_estimator.h"
#include "core/query_template.h"
#include "util/random.h"

namespace autoindex {
namespace {

class BenefitEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt}}));
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 100))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
    estimator_ = std::make_unique<IndexBenefitEstimator>(&db_);
  }

  WorkloadModel MakeWorkload(
      const std::vector<std::pair<std::string, double>>& queries) {
    for (const auto& [sql, weight] : queries) {
      QueryTemplate* t = store_.Observe(sql);
      EXPECT_NE(t, nullptr) << sql;
      t->frequency = weight;
    }
    return WorkloadModel::FromTemplates(store_.TemplatesByFrequency());
  }

  Database db_;
  TemplateStore store_{100};
  std::unique_ptr<IndexBenefitEstimator> estimator_;
};

TEST_F(BenefitEstimatorTest, WorkloadCostWeightsByFrequency) {
  WorkloadModel w1 = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 1.0}});
  const double c1 = estimator_->EstimateWorkloadCost(w1, IndexConfig());
  WorkloadModel w10 = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 10.0}});
  const double c10 = estimator_->EstimateWorkloadCost(w10, IndexConfig());
  EXPECT_NEAR(c10, 10.0 * c1, c1 * 0.01);
}

TEST_F(BenefitEstimatorTest, BenefitPositiveForGoodIndex) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 100.0}});
  IndexConfig with({IndexDef("t", {"a"})});
  EXPECT_GT(estimator_->EstimateBenefit(w, IndexConfig(), with), 0.0);
}

TEST_F(BenefitEstimatorTest, BenefitNegativeForWriteOnlyWorkload) {
  WorkloadModel w =
      MakeWorkload({{"INSERT INTO t VALUES (1, 2)", 1000.0}});
  IndexConfig with({IndexDef("t", {"a"})});
  EXPECT_LT(estimator_->EstimateBenefit(w, IndexConfig(), with), 0.0);
}

TEST_F(BenefitEstimatorTest, MemoizationIsTransparent) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 5.0}});
  IndexConfig config({IndexDef("t", {"a"})});
  const double first = estimator_->EstimateWorkloadCost(w, config);
  const double second = estimator_->EstimateWorkloadCost(w, config);
  EXPECT_DOUBLE_EQ(first, second);
  estimator_->InvalidateCache();
  EXPECT_DOUBLE_EQ(estimator_->EstimateWorkloadCost(w, config), first);
}

TEST_F(BenefitEstimatorTest, ConfigHashOrderIndependent) {
  IndexConfig ab({IndexDef("t", {"a"}), IndexDef("t", {"b"})});
  IndexConfig ba({IndexDef("t", {"b"}), IndexDef("t", {"a"})});
  EXPECT_EQ(HashConfig(ab), HashConfig(ba));
  IndexConfig other({IndexDef("t", {"a"})});
  EXPECT_NE(HashConfig(ab), HashConfig(other));
}

TEST_F(BenefitEstimatorTest, TrainingRequiresMinimumObservations) {
  estimator_->AddObservation({1.0, 0.0, 0.0}, 10.0);
  EXPECT_LT(estimator_->TrainModel(64), 0.0);  // skipped
  EXPECT_FALSE(estimator_->model_trained());
}

TEST_F(BenefitEstimatorTest, LearnedModelChangesEstimates) {
  // Feed a synthetic history where true cost = 2*C_data (maintenance
  // features are red herrings), then verify the trained estimator departs
  // from the static sum.
  Random rng(3);
  for (int i = 0; i < 200; ++i) {
    const double c_data = rng.NextDouble() * 100.0;
    const double c_io = rng.NextDouble() * 50.0;
    const double c_cpu = rng.NextDouble() * 50.0;
    estimator_->AddObservation({c_data, c_io, c_cpu}, 2.0 * c_data);
  }
  EXPECT_GE(estimator_->TrainModel(64), 0.0);
  EXPECT_TRUE(estimator_->model_trained());
  EXPECT_EQ(estimator_->num_observations(), 200u);
  const double rmse = estimator_->CrossValidateRmse();
  EXPECT_GT(rmse, 0.0);
  EXPECT_LT(rmse, 40.0);

  // Cost estimates should still rank configurations correctly.
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 100.0}});
  IndexConfig with({IndexDef("t", {"a"})});
  EXPECT_GT(estimator_->EstimateBenefit(w, IndexConfig(), with), 0.0);
}

TEST_F(BenefitEstimatorTest, EmptyWorkloadCostsZero) {
  WorkloadModel empty;
  EXPECT_DOUBLE_EQ(estimator_->EstimateWorkloadCost(empty, IndexConfig()),
                   0.0);
}

TEST_F(BenefitEstimatorTest, ZeroFrequencyTemplatesDropped) {
  QueryTemplate* t = store_.Observe("SELECT b FROM t WHERE a = 1");
  ASSERT_NE(t, nullptr);
  t->frequency = 0.0;
  WorkloadModel w =
      WorkloadModel::FromTemplates(store_.TemplatesByFrequency());
  EXPECT_TRUE(w.entries.empty());
}

}  // namespace
}  // namespace autoindex
