// Greedy baseline (Sec. VI): top-k individual-benefit selection, its
// blindness to combined index effects, and the hill-climbing ablation.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/query_template.h"

namespace autoindex {
namespace {

class GreedyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt},
                                 {"c", ValueType::kInt}}));
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 1000)),
                      Value(int64_t(i % 3))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
    estimator_ = std::make_unique<IndexBenefitEstimator>(&db_);
  }

  WorkloadModel MakeWorkload(
      const std::vector<std::pair<std::string, double>>& queries) {
    for (const auto& [sql, weight] : queries) {
      QueryTemplate* t = store_.Observe(sql);
      EXPECT_NE(t, nullptr) << sql;
      t->frequency = weight;
    }
    return WorkloadModel::FromTemplates(store_.TemplatesByFrequency());
  }

  Database db_;
  TemplateStore store_{100};
  std::unique_ptr<IndexBenefitEstimator> estimator_;
};

TEST_F(GreedyTest, PicksBeneficialIndex) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 100.0}});
  GreedySelector greedy(&db_, estimator_.get());
  GreedyResult result = greedy.Run(IndexConfig(), {IndexDef("t", {"a"})}, w);
  ASSERT_EQ(result.to_add.size(), 1u);
  EXPECT_LT(result.final_cost, result.base_cost);
}

TEST_F(GreedyTest, SkipsUselessIndex) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 100.0}});
  GreedySelector greedy(&db_, estimator_.get());
  GreedyResult result = greedy.Run(IndexConfig(), {IndexDef("t", {"c"})}, w);
  EXPECT_TRUE(result.to_add.empty());
}

TEST_F(GreedyTest, NeverRemovesExistingIndexes) {
  // Even when an existing index is pure maintenance cost, Greedy cannot
  // retire it (the structural limitation the paper highlights).
  WorkloadModel w =
      MakeWorkload({{"INSERT INTO t VALUES (1, 2, 3)", 500.0}});
  IndexConfig existing({IndexDef("t", {"b"})});
  GreedySelector greedy(&db_, estimator_.get());
  GreedyResult result = greedy.Run(existing, {}, w);
  EXPECT_TRUE(result.config.Contains(IndexDef("t", {"b"})));
}

TEST_F(GreedyTest, BudgetStopsSelection) {
  WorkloadModel w = MakeWorkload(
      {{"SELECT b FROM t WHERE a = 7", 50.0},
       {"SELECT a FROM t WHERE b = 5", 50.0}});
  GreedyConfig config;
  config.storage_budget_bytes =
      IndexConfig({IndexDef("t", {"a"})}).TotalBytes(db_.catalog()) +
      kPageSizeBytes;
  GreedySelector greedy(&db_, estimator_.get(), config);
  GreedyResult result = greedy.Run(
      IndexConfig(), {IndexDef("t", {"a"}), IndexDef("t", {"b"})}, w);
  EXPECT_LE(result.to_add.size(), 1u);
  EXPECT_LE(result.config.TotalBytes(db_.catalog()),
            config.storage_budget_bytes);
}

TEST_F(GreedyTest, HillClimbAtLeastAsGoodAsTopK) {
  WorkloadModel w = MakeWorkload(
      {{"SELECT b FROM t WHERE a = 7", 60.0},
       {"SELECT a FROM t WHERE b = 5", 40.0},
       {"SELECT c FROM t WHERE a = 3 AND b = 9", 30.0}});
  const std::vector<IndexDef> candidates = {
      IndexDef("t", {"a"}), IndexDef("t", {"b"}), IndexDef("t", {"a", "b"})};
  GreedyConfig topk;
  topk.strategy = GreedyConfig::kTopK;
  GreedyConfig hill;
  hill.strategy = GreedyConfig::kHillClimb;
  GreedyResult r_topk = GreedySelector(&db_, estimator_.get(), topk)
                            .Run(IndexConfig(), candidates, w);
  GreedyResult r_hill = GreedySelector(&db_, estimator_.get(), hill)
                            .Run(IndexConfig(), candidates, w);
  EXPECT_LE(r_hill.final_cost, r_topk.final_cost * 1.0001);
}

TEST_F(GreedyTest, CountsEvaluations) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 10.0}});
  GreedySelector greedy(&db_, estimator_.get());
  GreedyResult result = greedy.Run(
      IndexConfig(), {IndexDef("t", {"a"}), IndexDef("t", {"b"})}, w);
  EXPECT_GE(result.evaluations, 3u);  // base + 2 candidates
}

}  // namespace
}  // namespace autoindex
