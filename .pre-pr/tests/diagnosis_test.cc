// Index diagnosis (Sec. III): the three problem classes and the tuning
// trigger.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/diagnosis.h"
#include "core/query_template.h"

namespace autoindex {
namespace {

class DiagnosisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("t", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt},
                                 {"c", ValueType::kInt}}));
    std::vector<Row> rows;
    for (int i = 0; i < 30000; ++i) {
      rows.push_back({Value(int64_t(i)), Value(int64_t(i % 1000)),
                      Value(int64_t(i % 3))});
    }
    ASSERT_TRUE(db_.BulkInsert("t", std::move(rows)).ok());
    db_.Analyze();
    estimator_ = std::make_unique<IndexBenefitEstimator>(&db_);
  }

  WorkloadModel MakeWorkload(
      const std::vector<std::pair<std::string, double>>& queries) {
    for (const auto& [sql, weight] : queries) {
      QueryTemplate* t = store_.Observe(sql);
      EXPECT_NE(t, nullptr) << sql;
      t->frequency = weight;
    }
    return WorkloadModel::FromTemplates(store_.TemplatesByFrequency());
  }

  static bool Has(const std::vector<IndexDef>& defs, const IndexDef& want) {
    return std::any_of(defs.begin(), defs.end(),
                       [&](const IndexDef& d) { return d == want; });
  }

  Database db_;
  TemplateStore store_{100};
  std::unique_ptr<IndexBenefitEstimator> estimator_;
};

TEST_F(DiagnosisTest, DetectsUnbuiltBeneficialIndex) {
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 100.0}});
  IndexDiagnoser diagnoser(&db_, estimator_.get());
  DiagnosisReport report = diagnoser.Diagnose(w, {IndexDef("t", {"a"})});
  EXPECT_TRUE(Has(report.unbuilt_beneficial, IndexDef("t", {"a"})));
  EXPECT_TRUE(report.should_tune);
}

TEST_F(DiagnosisTest, DetectsRarelyUsedIndex) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"c"})).ok());
  // No query ever touches c: zero planner uses.
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 10.0}});
  IndexDiagnoser diagnoser(&db_, estimator_.get());
  DiagnosisReport report = diagnoser.Diagnose(w, {});
  EXPECT_TRUE(Has(report.rarely_used, IndexDef("t", {"c"})));
}

TEST_F(DiagnosisTest, UsedIndexNotRare) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  // Execute queries so the planner records uses.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_.Execute("SELECT b FROM t WHERE a = 7").ok());
  }
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 10.0}});
  IndexDiagnoser diagnoser(&db_, estimator_.get());
  DiagnosisReport report = diagnoser.Diagnose(w, {});
  EXPECT_FALSE(Has(report.rarely_used, IndexDef("t", {"a"})));
}

TEST_F(DiagnosisTest, DetectsNegativeBenefitIndex) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"b"})).ok());
  // Write-heavy workload: the b index is pure maintenance cost.
  WorkloadModel w =
      MakeWorkload({{"INSERT INTO t VALUES (1, 2, 3)", 1000.0}});
  IndexDiagnoser diagnoser(&db_, estimator_.get());
  DiagnosisReport report = diagnoser.Diagnose(w, {});
  EXPECT_TRUE(Has(report.negative_benefit, IndexDef("t", {"b"})));
  EXPECT_TRUE(report.should_tune);
}

TEST_F(DiagnosisTest, HealthyEstateDoesNotTrigger) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"a"})).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_.Execute("SELECT b FROM t WHERE a = 7").ok());
  }
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 100.0}});
  IndexDiagnoser diagnoser(&db_, estimator_.get());
  DiagnosisReport report = diagnoser.Diagnose(w, {});
  EXPECT_FALSE(report.should_tune)
      << "problem ratio " << report.problem_ratio;
}

TEST_F(DiagnosisTest, TriggerRatioConfigurable) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("t", {"c"})).ok());
  WorkloadModel w = MakeWorkload({{"SELECT b FROM t WHERE a = 7", 10.0}});
  DiagnosisConfig strict;
  strict.trigger_ratio = 0.0;  // any problem triggers
  DiagnosisConfig lax;
  lax.trigger_ratio = 10.0;  // nothing triggers
  DiagnosisReport strict_report =
      IndexDiagnoser(&db_, estimator_.get(), strict).Diagnose(w, {});
  DiagnosisReport lax_report =
      IndexDiagnoser(&db_, estimator_.get(), lax).Diagnose(w, {});
  EXPECT_TRUE(strict_report.should_tune);
  EXPECT_FALSE(lax_report.should_tune);
}

}  // namespace
}  // namespace autoindex
