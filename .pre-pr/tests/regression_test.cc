// One-layer sigmoid regression (Sec. V-B): fitting, prediction, the
// untrained static-weight fallback, and cross validation.

#include <gtest/gtest.h>

#include "ml/regression.h"
#include "util/random.h"

namespace autoindex {
namespace {

TEST(Regression, UntrainedFallsBackToStaticWeights) {
  SigmoidRegression model;
  EXPECT_FALSE(model.trained());
  // Untrained: classical additive cost model (sum of features).
  EXPECT_DOUBLE_EQ(model.Predict({1.0, 2.0, 3.0}), 6.0);
}

TEST(Regression, LearnsLinearRelation) {
  // cost = 2*x0 + 0.5*x1 + noise-free.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Random rng(5);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.NextDouble() * 100.0;
    const double b = rng.NextDouble() * 100.0;
    x.push_back({a, b});
    y.push_back(2.0 * a + 0.5 * b);
  }
  SigmoidRegression model;
  TrainConfig config;
  config.epochs = 400;
  model.Train(x, y, config);
  EXPECT_TRUE(model.trained());

  double total_rel_err = 0.0;
  int n = 0;
  for (int i = 0; i < 50; ++i) {
    const double a = 10.0 + i;
    const double b = 90.0 - i;
    const double truth = 2.0 * a + 0.5 * b;
    const double pred = model.Predict({a, b});
    total_rel_err += std::abs(pred - truth) / truth;
    ++n;
  }
  EXPECT_LT(total_rel_err / n, 0.15) << "mean relative error too high";
}

TEST(Regression, LearnedWeightsBeatStaticOnSkewedFeatures) {
  // True cost weighs feature 0 heavily and ignores feature 1; the static
  // equal-weight fallback must do worse than the trained model.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Random rng(7);
  for (int i = 0; i < 300; ++i) {
    const double a = rng.NextDouble() * 10.0;
    const double b = rng.NextDouble() * 1000.0;  // red herring
    x.push_back({a, b});
    y.push_back(50.0 * a);
  }
  SigmoidRegression trained;
  trained.Train(x, y);

  double trained_err = 0.0, static_err = 0.0;
  SigmoidRegression untrained;
  for (int i = 0; i < 100; ++i) {
    const double a = rng.NextDouble() * 10.0;
    const double b = rng.NextDouble() * 1000.0;
    const double truth = 50.0 * a;
    trained_err += std::abs(trained.Predict({a, b}) - truth);
    static_err += std::abs(untrained.Predict({a, b}) - truth);
  }
  EXPECT_LT(trained_err, static_err * 0.5);
}

TEST(Regression, DeterministicGivenSeed) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Random rng(11);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.NextDouble();
    x.push_back({a});
    y.push_back(3.0 * a + 1.0);
  }
  SigmoidRegression m1, m2;
  m1.Train(x, y);
  m2.Train(x, y);
  EXPECT_DOUBLE_EQ(m1.Predict({0.5}), m2.Predict({0.5}));
}

TEST(Regression, HandlesDegenerateInputs) {
  SigmoidRegression model;
  EXPECT_DOUBLE_EQ(model.Train({}, {}), 0.0);
  EXPECT_FALSE(model.trained());
  // Constant target.
  std::vector<std::vector<double>> x{{1.0}, {2.0}, {3.0}};
  std::vector<double> y{5.0, 5.0, 5.0};
  model.Train(x, y);
  EXPECT_NEAR(model.Predict({2.0}), 5.0, 1.5);
}

TEST(Regression, MismatchedSizesIgnored) {
  SigmoidRegression model;
  EXPECT_DOUBLE_EQ(model.Train({{1.0}}, {1.0, 2.0}), 0.0);
  EXPECT_FALSE(model.trained());
}

TEST(Regression, CrossValidationRunsNineFolds) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Random rng(13);
  for (int i = 0; i < 180; ++i) {
    const double a = rng.NextDouble() * 10.0;
    x.push_back({a});
    y.push_back(4.0 * a);
  }
  const double rmse = SigmoidRegression::CrossValidate(x, y, 9);
  EXPECT_GT(rmse, 0.0);
  EXPECT_LT(rmse, 8.0);  // decent fit on a noiseless linear target
  // Tiny datasets are skipped.
  EXPECT_DOUBLE_EQ(SigmoidRegression::CrossValidate({{1.0}}, {1.0}, 9), 0.0);
}

// Parameterized sweep: training converges across learning rates.
class RegressionLrSweep : public ::testing::TestWithParam<double> {};

TEST_P(RegressionLrSweep, ConvergesAcrossLearningRates) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Random rng(17);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.NextDouble() * 50.0;
    x.push_back({a});
    y.push_back(2.0 * a + 10.0);
  }
  SigmoidRegression model;
  TrainConfig config;
  config.learning_rate = GetParam();
  config.epochs = 300;
  model.Train(x, y, config);
  const double pred = model.Predict({25.0});
  EXPECT_NEAR(pred, 60.0, 12.0) << "lr=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LearningRates, RegressionLrSweep,
                         ::testing::Values(0.01, 0.03, 0.05, 0.1));

}  // namespace
}  // namespace autoindex
