// Differential property test for the physical-operator pipeline: random
// SELECTs run through the Volcano pipeline must produce the exact row
// multiset of the naive reference evaluator (query_gen.h), AND the
// per-operator counters in the returned plan snapshot must sum exactly to
// the statement-level ExecStats — the invariant the PhysicalPlanValidator
// enforces. 6 seeds x 40 queries = 240 deterministic queries, each checked
// with a mixed index set built so IndexScan / IndexNestedLoopJoin paths are
// exercised alongside SeqScan / HashJoin.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/validator.h"
#include "engine/database.h"
#include "sql/parser.h"
#include "query_gen.h"
#include "util/random.h"

namespace autoindex {
namespace {

using querygen::BuildPropertyTestTables;
using querygen::Canonical;
using querygen::GenContext;
using querygen::ReferenceSelect;

// Re-derives the statement ExecStats from the snapshot's per-operator
// counters and asserts it matches what the executor reported. rows_returned
// must equal the root operator's rows_out.
void ExpectCountersSumToStats(const PlanNodeSnapshot& plan,
                              const ExecStats& stats,
                              const std::string& sql) {
  ExecStats summed;
  AccumulateOperatorCounters(plan, &summed);
  EXPECT_EQ(summed.heap_pages_read, stats.heap_pages_read) << sql;
  EXPECT_EQ(summed.index_pages_read, stats.index_pages_read) << sql;
  EXPECT_EQ(summed.tuples_examined, stats.tuples_examined) << sql;
  EXPECT_EQ(summed.index_tuples_read, stats.index_tuples_read) << sql;
  EXPECT_EQ(summed.sort_rows, stats.sort_rows) << sql;
  ASSERT_GE(plan.actual.rows_out, 0) << sql;
  EXPECT_EQ(static_cast<size_t>(plan.actual.rows_out), stats.rows_returned)
      << sql;
}

class PipelinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelinePropertyTest, PipelineMatchesReferenceAndCountersAreConsistent) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Database db;
  BuildPropertyTestTables(&db, seed);

  // Build a seed-dependent index subset so different seeds exercise
  // different access paths (always at least the join-probe index on t2.x).
  Random idx_rng(seed * 31 + 7);
  ASSERT_TRUE(db.CreateIndex(IndexDef("t2", {"x"})).ok());
  const std::vector<IndexDef> optional_indexes = {
      IndexDef("t1", {"a"}), IndexDef("t1", {"b"}),
      IndexDef("t1", {"a", "b"}), IndexDef("t1", {"b", "c"}),
      IndexDef("t1", {"s"})};
  for (const IndexDef& def : optional_indexes) {
    if (idx_rng.Bernoulli(0.5)) {
      ASSERT_TRUE(db.CreateIndex(def).ok());
    }
  }

  GenContext gen(seed + 1000);  // distinct stream from query_property_test
  for (int i = 0; i < 40; ++i) {
    const std::string sql = gen.RandQuery();
    auto stmt = ParseSql(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    const std::string expected =
        Canonical(ReferenceSelect(db, *stmt->select));

    auto r = db.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql;
    EXPECT_EQ(Canonical(r->rows), expected) << sql;

    // Every SELECT runs a pipeline and must return its snapshot.
    ASSERT_TRUE(r->plan.has_value()) << sql;
    ExpectCountersSumToStats(*r->plan, r->stats, sql);

    // The registered PhysicalPlanValidator re-checks the retained snapshot
    // (plus every storage structure) after each statement.
    const CheckReport report = CheckAll(db);
    EXPECT_TRUE(report.ok()) << sql << "\n" << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace autoindex
