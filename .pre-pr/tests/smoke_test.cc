// End-to-end smoke test: the epidemic scenario from Fig. 2 driven through
// the full AutoIndex stack. If this passes, the substrate and the core
// pipeline are wired correctly.

#include <gtest/gtest.h>

#include "core/manager.h"
#include "workload/epidemic.h"
#include "workload/workload.h"

namespace autoindex {
namespace {

TEST(Smoke, EpidemicScenarioEndToEnd) {
  Database db;
  EpidemicConfig config;
  EpidemicWorkload::Populate(&db, config);
  ASSERT_NE(db.catalog().GetTable("people"), nullptr);
  EXPECT_EQ(db.catalog().GetTable("people")->num_rows(), 20000u);

  AutoIndexConfig ai_config;
  ai_config.mcts.iterations = 80;
  ai_config.learn_cost_model = false;
  AutoIndexManager manager(&db, ai_config);

  // Phase W1: read-heavy. AutoIndex should recommend indexes.
  std::vector<std::string> w1 = EpidemicWorkload::PhaseW1(config, 200, 1);
  RunMetrics before = RunWorkloadObserved(&manager, w1);
  EXPECT_EQ(before.failed, 0u);
  EXPECT_GT(before.total_cost, 0.0);

  TuningResult tuning = manager.RunManagementRound();
  EXPECT_GT(tuning.candidates_generated, 0u);
  EXPECT_FALSE(tuning.added.empty());

  // The same workload must get cheaper with the recommended indexes.
  std::vector<std::string> w1b = EpidemicWorkload::PhaseW1(config, 200, 2);
  RunMetrics after = RunWorkload(&db, w1b);
  EXPECT_EQ(after.failed, 0u);
  EXPECT_LT(after.total_cost, before.total_cost * 0.8)
      << "indexes should reduce W1 cost substantially";
}

TEST(Smoke, BasicSqlRoundTrip) {
  Database db;
  db.CreateTable("t", Schema({{"a", ValueType::kInt},
                              {"b", ValueType::kInt},
                              {"c", ValueType::kString}}));
  for (int i = 0; i < 100; ++i) {
    auto r = db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
                        std::to_string(i % 10) + ", 'x" +
                        std::to_string(i) + "')");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto rows = db.Execute("SELECT a FROM t WHERE b = 3 ORDER BY a");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 10u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 3);
  EXPECT_EQ(rows->rows[9][0].AsInt(), 93);

  auto agg = db.Execute("SELECT COUNT(*), MAX(a) FROM t WHERE b < 5");
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->rows.size(), 1u);
  EXPECT_EQ(agg->rows[0][0].AsInt(), 50);
  EXPECT_EQ(agg->rows[0][1].AsInt(), 94);

  auto upd = db.Execute("UPDATE t SET b = 99 WHERE a = 42");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->stats.rows_returned, 1u);

  auto del = db.Execute("DELETE FROM t WHERE b = 99");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->stats.rows_returned, 1u);

  auto count = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 99);
}

TEST(Smoke, IndexChangesMeasuredCost) {
  Database db;
  db.CreateTable("t", Schema({{"a", ValueType::kInt},
                              {"b", ValueType::kInt}}));
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(int64_t(i % 100))});
  }
  ASSERT_TRUE(db.BulkInsert("t", std::move(rows)).ok());
  db.Analyze();

  auto no_index = db.Execute("SELECT b FROM t WHERE a = 12345");
  ASSERT_TRUE(no_index.ok());
  const double cost_scan = no_index->stats.ToCost(db.params()).Total();
  EXPECT_FALSE(no_index->stats.used_index);

  ASSERT_TRUE(db.CreateIndex(IndexDef("t", {"a"})).ok());
  auto with_index = db.Execute("SELECT b FROM t WHERE a = 12345");
  ASSERT_TRUE(with_index.ok());
  EXPECT_TRUE(with_index->stats.used_index);
  const double cost_index = with_index->stats.ToCost(db.params()).Total();
  EXPECT_LT(cost_index, cost_scan / 10.0);
  ASSERT_EQ(with_index->rows.size(), 1u);
  EXPECT_EQ(with_index->rows[0][0].AsInt(), 12345 % 100);
}

}  // namespace
}  // namespace autoindex
