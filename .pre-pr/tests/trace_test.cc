#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/manager.h"
#include "workload/epidemic.h"
#include "workload/tpcc.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace autoindex {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Trace, RoundTrip) {
  const std::vector<std::string> queries = {
      "SELECT a FROM t WHERE b = 1",
      "INSERT INTO t VALUES (1, 'quoted ''string''')",
      "UPDATE t SET a = 2 WHERE b = 3",
  };
  const std::string path = TempPath("roundtrip.trace");
  ASSERT_TRUE(SaveWorkloadTrace(path, queries).ok());
  auto loaded = LoadWorkloadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ((*loaded)[i], queries[i]);
  }
  std::remove(path.c_str());
}

TEST(Trace, EscapesNewlinesAndBackslashes) {
  const std::vector<std::string> queries = {
      "SELECT a FROM t\nWHERE b = 1",
      "SELECT a FROM t WHERE s = 'back\\slash'",
      "line\r\nmix",
  };
  const std::string path = TempPath("escape.trace");
  ASSERT_TRUE(SaveWorkloadTrace(path, queries).ok());
  auto loaded = LoadWorkloadTrace(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0], queries[0]);
  EXPECT_EQ((*loaded)[1], queries[1]);
  EXPECT_EQ((*loaded)[2], queries[2]);
  std::remove(path.c_str());
}

TEST(Trace, EmptyWorkload) {
  const std::string path = TempPath("empty.trace");
  ASSERT_TRUE(SaveWorkloadTrace(path, {}).ok());
  auto loaded = LoadWorkloadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(Trace, MissingFileFails) {
  auto loaded = LoadWorkloadTrace(TempPath("does_not_exist.trace"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(Trace, RejectsForeignFiles) {
  const std::string path = TempPath("foreign.txt");
  {
    std::ofstream out(path);
    out << "just some text\n";
  }
  auto loaded = LoadWorkloadTrace(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Trace, GeneratedWorkloadSurvivesRoundTrip) {
  TpccConfig config;
  const auto queries = TpccWorkload::Generate(config, 100, 5);
  const std::string path = TempPath("tpcc.trace");
  ASSERT_TRUE(SaveWorkloadTrace(path, queries).ok());
  auto loaded = LoadWorkloadTrace(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ((*loaded)[i], queries[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(Trace, OfflineTuningFromTraceFile) {
  // The paper's deployment: queries are logged server-side, the manager
  // tunes from the log. Record a trace, reload it in a fresh manager
  // (observe-only), and verify tuning still finds the right indexes.
  Database db;
  EpidemicConfig config;
  EpidemicWorkload::Populate(&db, config);
  const auto workload = EpidemicWorkload::PhaseW1(config, 200, 1);
  const std::string path = TempPath("offline.trace");
  ASSERT_TRUE(SaveWorkloadTrace(path, workload).ok());

  auto loaded = LoadWorkloadTrace(path);
  ASSERT_TRUE(loaded.ok());
  AutoIndexConfig ai;
  ai.mcts.iterations = 80;
  ai.learn_cost_model = false;
  AutoIndexManager manager(&db, ai);
  ObserveWorkload(&manager, *loaded);
  TuningResult tuning = manager.RunManagementRound();
  EXPECT_FALSE(tuning.added.empty());
  EXPECT_GT(tuning.est_benefit, 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace autoindex
