// Property tests for the executor: randomly generated queries are executed
// (a) against a naive reference evaluator (cartesian product + filter +
// aggregate, no planner, no indexes) and (b) with random index sets built —
// results must be identical in all three settings. This catches planner
// and index-scan bugs that fixed unit tests miss.
//
// The reference evaluator, canonicalizer, and query generator live in
// query_gen.h and are shared with pipeline_property_test.cc.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "sql/parser.h"
#include "query_gen.h"
#include "util/random.h"
#include "util/string_util.h"

namespace autoindex {
namespace {

using querygen::BuildPropertyTestTables;
using querygen::Canonical;
using querygen::GenContext;
using querygen::ReferenceSelect;

class QueryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryPropertyTest, ExecutorMatchesReferenceWithAndWithoutIndexes) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Database db;
  BuildPropertyTestTables(&db, seed);

  GenContext gen(seed);
  std::vector<std::string> queries;
  for (int i = 0; i < 40; ++i) queries.push_back(gen.RandQuery());

  // Expected results from the reference evaluator (no indexes involved).
  std::vector<std::string> expected;
  for (const std::string& sql : queries) {
    auto stmt = ParseSql(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    expected.push_back(Canonical(ReferenceSelect(db, *stmt->select)));
  }

  // Pass 1: executor without indexes.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = db.Execute(queries[i]);
    ASSERT_TRUE(r.ok()) << queries[i];
    EXPECT_EQ(Canonical(r->rows), expected[i]) << "no-index: " << queries[i];
  }

  // Pass 2: build a random index set; results must not change.
  const std::vector<IndexDef> all_indexes = {
      IndexDef("t1", {"a"}),      IndexDef("t1", {"b"}),
      IndexDef("t1", {"a", "b"}), IndexDef("t1", {"b", "c"}),
      IndexDef("t1", {"s"}),      IndexDef("t2", {"x"}),
      IndexDef("t2", {"x", "y"})};
  for (const IndexDef& def : all_indexes) {
    if (gen.rng.Bernoulli(0.6)) {
      ASSERT_TRUE(db.CreateIndex(def).ok());
    }
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = db.Execute(queries[i]);
    ASSERT_TRUE(r.ok()) << queries[i];
    EXPECT_EQ(Canonical(r->rows), expected[i])
        << "with-index: " << queries[i];
  }

  // Pass 3: mutate the data through SQL writes, re-derive expectations,
  // and verify again (indexes must track the mutations).
  Random mut_rng(seed + 5);
  for (int i = 0; i < 30; ++i) {
    const int kind = static_cast<int>(mut_rng.Uniform(3));
    std::string sql;
    if (kind == 0) {
      sql = StrFormat("INSERT INTO t1 VALUES (%d, %d, %d, 'v%d')",
                      static_cast<int>(mut_rng.Uniform(40)),
                      static_cast<int>(mut_rng.Uniform(40)),
                      static_cast<int>(mut_rng.Uniform(40)),
                      static_cast<int>(mut_rng.Uniform(6)));
    } else if (kind == 1) {
      sql = StrFormat("UPDATE t1 SET b = %d WHERE a = %d",
                      static_cast<int>(mut_rng.Uniform(40)),
                      static_cast<int>(mut_rng.Uniform(40)));
    } else {
      sql = StrFormat("DELETE FROM t1 WHERE c = %d",
                      static_cast<int>(mut_rng.Uniform(40)));
    }
    ASSERT_TRUE(db.Execute(sql).ok()) << sql;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    auto stmt = ParseSql(queries[i]);
    const std::string fresh = Canonical(ReferenceSelect(db, *stmt->select));
    auto r = db.Execute(queries[i]);
    ASSERT_TRUE(r.ok()) << queries[i];
    EXPECT_EQ(Canonical(r->rows), fresh) << "post-mutation: " << queries[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace autoindex
