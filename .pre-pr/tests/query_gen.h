// Shared test infrastructure for query-level property tests: a naive
// reference SELECT evaluator (cartesian product + filter + aggregate, no
// planner, no indexes), a canonical multiset rendering for result
// comparison, and a deterministic random query generator over the
// standard two-table property-test schema (t1(a,b,c,s), t2(x,y)).
//
// Used by query_property_test.cc (executor vs reference, with and without
// indexes) and pipeline_property_test.cc (physical-operator pipeline vs
// reference, plus counter-consistency checks).

#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "engine/database.h"
#include "util/random.h"
#include "util/string_util.h"

namespace autoindex {
namespace querygen {

// Resolves column references against one bound tuple of the cartesian
// product, mirroring the executor's qualifier rules (alias or table name).
class BoundRowResolver : public ColumnResolver {
 public:
  BoundRowResolver(const Catalog& catalog,
                   const std::vector<TableRef>& refs,
                   const std::vector<const Row*>& rows)
      : catalog_(catalog), refs_(refs), rows_(rows) {}

  bool Resolve(const ColumnRef& col, Value* out) const override {
    for (size_t i = 0; i < refs_.size(); ++i) {
      if (!col.table.empty() && col.table != refs_[i].alias &&
          col.table != refs_[i].table) {
        continue;
      }
      const HeapTable* t = catalog_.GetTable(refs_[i].table);
      if (t == nullptr) continue;
      const int ord = t->schema().FindColumn(col.column);
      if (ord < 0) continue;
      *out = (*rows_[i])[static_cast<size_t>(ord)];
      return true;
    }
    return false;
  }

 private:
  const Catalog& catalog_;
  const std::vector<TableRef>& refs_;
  const std::vector<const Row*>& rows_;
};

// Evaluates a SELECT by brute force. Supports the same feature set as the
// real executor (joins via cartesian + filter, aggregation, ORDER BY,
// LIMIT) with completely independent control flow.
inline std::vector<Row> ReferenceSelect(const Database& db,
                                        const SelectStatement& stmt) {
  std::vector<const HeapTable*> tables;
  for (const TableRef& ref : stmt.from) {
    tables.push_back(db.catalog().GetTable(ref.table));
  }
  // Materialize live rows per table.
  std::vector<std::vector<const Row*>> rows_per_table(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    tables[i]->Scan([&](RowId, const Row& row) {
      rows_per_table[i].push_back(&row);
    });
  }
  // Cartesian product with filtering.
  std::vector<std::vector<const Row*>> matches;
  std::vector<const Row*> current(tables.size());
  std::function<void(size_t)> rec = [&](size_t level) {
    if (level == tables.size()) {
      BoundRowResolver resolver(db.catalog(), stmt.from, current);
      if (stmt.where == nullptr ||
          EvaluatePredicate(*stmt.where, resolver)) {
        matches.push_back(current);
      }
      return;
    }
    for (const Row* row : rows_per_table[level]) {
      current[level] = row;
      rec(level + 1);
    }
  };
  rec(0);

  auto project = [&](const std::vector<const Row*>& tuple,
                     const ColumnRef& col) {
    BoundRowResolver resolver(db.catalog(), stmt.from, tuple);
    Value v;
    return resolver.Resolve(col, &v) ? v : Value::Null();
  };

  const bool has_agg = std::any_of(
      stmt.items.begin(), stmt.items.end(),
      [](const SelectItem& it) { return it.agg != AggFunc::kNone; });

  std::vector<Row> out;
  if (!has_agg && stmt.group_by.empty()) {
    if (!stmt.order_by.empty()) {
      std::stable_sort(matches.begin(), matches.end(),
                       [&](const auto& a, const auto& b) {
                         for (const OrderByItem& o : stmt.order_by) {
                           const int c =
                               project(a, o.column).Compare(project(b, o.column));
                           if (c != 0) return o.desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    for (const auto& tuple : matches) {
      if (stmt.limit >= 0 &&
          out.size() >= static_cast<size_t>(stmt.limit)) {
        break;
      }
      Row row;
      for (const SelectItem& item : stmt.items) {
        if (item.star) {
          for (size_t i = 0; i < tuple.size(); ++i) {
            for (const Value& v : *tuple[i]) row.push_back(v);
          }
        } else {
          row.push_back(project(tuple, item.column));
        }
      }
      out.push_back(std::move(row));
    }
    return out;
  }

  // Aggregation path.
  struct Group {
    Row key;
    std::vector<std::vector<Value>> values;  // per item, non-null inputs
    size_t count = 0;
  };
  std::map<std::string, Group> groups;  // key rendered to string
  for (const auto& tuple : matches) {
    Row key;
    for (const ColumnRef& g : stmt.group_by) {
      key.push_back(project(tuple, g));
    }
    std::string skey;
    for (const Value& v : key) skey += v.ToString() + "\x01";
    Group& group = groups[skey];
    if (group.count == 0) {
      group.key = key;
      group.values.resize(stmt.items.size());
    }
    ++group.count;
    for (size_t k = 0; k < stmt.items.size(); ++k) {
      const SelectItem& item = stmt.items[k];
      if (item.agg == AggFunc::kNone || item.star) continue;
      const Value v = project(tuple, item.column);
      if (!v.is_null()) group.values[k].push_back(v);
    }
  }
  if (groups.empty() && stmt.group_by.empty()) {
    Group& g = groups[""];
    g.values.resize(stmt.items.size());
  }
  for (auto& [_, group] : groups) {
    Row row;
    for (size_t k = 0; k < stmt.items.size(); ++k) {
      const SelectItem& item = stmt.items[k];
      const std::vector<Value>& vals = group.values[k];
      switch (item.agg) {
        case AggFunc::kNone: {
          bool found = false;
          for (size_t g = 0; g < stmt.group_by.size(); ++g) {
            if (stmt.group_by[g].column == item.column.column) {
              row.push_back(group.key[g]);
              found = true;
              break;
            }
          }
          if (!found) row.push_back(Value::Null());
          break;
        }
        case AggFunc::kCount:
          row.push_back(Value(static_cast<int64_t>(
              item.star ? group.count : vals.size())));
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg: {
          if (vals.empty()) {
            row.push_back(Value::Null());
            break;
          }
          double sum = 0;
          for (const Value& v : vals) sum += v.AsDouble();
          row.push_back(item.agg == AggFunc::kSum
                            ? Value(sum)
                            : Value(sum / vals.size()));
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          if (vals.empty()) {
            row.push_back(Value::Null());
            break;
          }
          Value best = vals[0];
          for (const Value& v : vals) {
            const int c = v.Compare(best);
            if ((item.agg == AggFunc::kMin && c < 0) ||
                (item.agg == AggFunc::kMax && c > 0)) {
              best = v;
            }
          }
          row.push_back(best);
          break;
        }
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

// Canonical rendering of a result multiset for comparison.
inline std::string Canonical(std::vector<Row> rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const Row& row : rows) {
    std::string line;
    for (const Value& v : row) {
      if (v.type() == ValueType::kDouble) {
        line += StrFormat("%.6f|", v.AsDouble());
      } else {
        line += v.ToString() + "|";
      }
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return Join(lines, "\n");
}

// Deterministic random query generator over t1(a,b,c,s) / t2(x,y).
struct GenContext {
  Random rng;
  explicit GenContext(uint64_t seed) : rng(seed) {}

  std::string RandColumn(bool table2) {
    static const char* t1_cols[] = {"a", "b", "c", "s"};
    static const char* t2_cols[] = {"x", "y"};
    return table2 ? t2_cols[rng.Uniform(2)] : t1_cols[rng.Uniform(4)];
  }

  std::string RandAtom(bool table2) {
    const std::string col = RandColumn(table2);
    if (col == "s") {
      static const char* ops[] = {"=", "<>"};
      return StrFormat("s %s 'v%d'", ops[rng.Uniform(2)],
                       static_cast<int>(rng.Uniform(6)));
    }
    const int pick = static_cast<int>(rng.Uniform(10));
    const int v = static_cast<int>(rng.Uniform(40));
    if (pick < 4) {
      static const char* ops[] = {"=", "<", ">", "<=", ">=", "<>"};
      return StrFormat("%s %s %d", col.c_str(), ops[rng.Uniform(6)], v);
    }
    if (pick < 6) {
      return StrFormat("%s BETWEEN %d AND %d", col.c_str(), v,
                       v + static_cast<int>(rng.Uniform(12)));
    }
    if (pick < 8) {
      return StrFormat("%s IN (%d, %d, %d)", col.c_str(), v,
                       (v + 3) % 40, (v + 11) % 40);
    }
    return StrFormat("NOT (%s = %d)", col.c_str(), v);
  }

  std::string RandExpr(int depth, bool table2) {
    if (depth == 0 || rng.Bernoulli(0.45)) return RandAtom(table2);
    const std::string lhs = RandExpr(depth - 1, table2);
    const std::string rhs = RandExpr(depth - 1, table2);
    const char* op = rng.Bernoulli(0.5) ? "AND" : "OR";
    return "(" + lhs + " " + op + " " + rhs + ")";
  }

  std::string RandQuery() {
    const bool join = rng.Bernoulli(0.3);
    std::string sql;
    const int kind = static_cast<int>(rng.Uniform(10));
    if (join) {
      sql = "SELECT t1.a, t2.y FROM t1, t2 WHERE t1.b = t2.x";
      if (rng.Bernoulli(0.7)) sql += " AND " + RandExpr(1, false);
      return sql;
    }
    if (kind < 5) {
      sql = "SELECT a, b, c FROM t1 WHERE " + RandExpr(2, false);
      if (rng.Bernoulli(0.3)) sql += " ORDER BY a";
      if (rng.Bernoulli(0.2)) sql += " LIMIT 7";
    } else if (kind < 8) {
      sql = "SELECT b, COUNT(*), SUM(a), MIN(c), MAX(a) FROM t1 WHERE " +
            RandExpr(2, false) + " GROUP BY b";
    } else {
      sql = "SELECT COUNT(*), AVG(a) FROM t1 WHERE " + RandExpr(2, false);
    }
    return sql;
  }
};

// Creates and populates the canonical property-test schema on `db`:
// t1(a,b,c,s) with 400 rows (ints in [0,40), ~5% null c, s in 'v0'..'v5')
// and t2(x,y) with 60 rows, then runs ANALYZE. Data is a pure function of
// `seed`.
inline void BuildPropertyTestTables(Database* db, uint64_t seed) {
  db->CreateTable("t1", Schema({{"a", ValueType::kInt},
                                {"b", ValueType::kInt},
                                {"c", ValueType::kInt},
                                {"s", ValueType::kString}}));
  db->CreateTable("t2", Schema({{"x", ValueType::kInt},
                                {"y", ValueType::kInt}}));
  Random data_rng(seed * 977 + 13);
  std::vector<Row> t1_rows, t2_rows;
  for (int i = 0; i < 400; ++i) {
    t1_rows.push_back({Value(data_rng.UniformInt(0, 40)),
                       Value(data_rng.UniformInt(0, 40)),
                       data_rng.Bernoulli(0.05)
                           ? Value()
                           : Value(data_rng.UniformInt(0, 40)),
                       Value(StrFormat("v%d",
                                       static_cast<int>(data_rng.Uniform(6))))});
  }
  for (int i = 0; i < 60; ++i) {
    t2_rows.push_back({Value(data_rng.UniformInt(0, 40)),
                       Value(data_rng.UniformInt(0, 40))});
  }
  CheckOk(db->BulkInsert("t1", std::move(t1_rows)));
  CheckOk(db->BulkInsert("t2", std::move(t2_rows)));
  db->Analyze();
}

}  // namespace querygen
}  // namespace autoindex
