#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace autoindex {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t(5)).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t(5)).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(Value, IntDoubleCompareNumerically) {
  EXPECT_EQ(Value(int64_t(3)).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(int64_t(2)).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t(3))), 0);
}

TEST(Value, NullOrdersFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t(-100))), 0);
  EXPECT_LT(Value().Compare(Value("")), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(Value, NumbersBeforeStrings) {
  EXPECT_LT(Value(int64_t(999)).Compare(Value("0")), 0);
}

TEST(Value, StringComparison) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_GT(Value("b").Compare(Value("ab")), 0);
}

TEST(Value, SqlLiteralQuoting) {
  EXPECT_EQ(Value("o'brien").ToSqlLiteral(), "'o''brien'");
  EXPECT_EQ(Value(int64_t(4)).ToSqlLiteral(), "4");
  EXPECT_EQ(Value().ToSqlLiteral(), "NULL");
}

TEST(Value, HashEqualForMixedNumericEquals) {
  EXPECT_EQ(Value(int64_t(7)).Hash(), Value(7.0).Hash());
}

TEST(Row, CompareLexicographic) {
  Row a{Value(int64_t(1)), Value(int64_t(2))};
  Row b{Value(int64_t(1)), Value(int64_t(3))};
  EXPECT_LT(CompareRows(a, b), 0);
  Row prefix{Value(int64_t(1))};
  EXPECT_LT(CompareRows(prefix, a), 0);  // shorter row sorts first
  EXPECT_EQ(CompareRows(a, a), 0);
}

TEST(Schema, LookupIsCaseInsensitive) {
  Schema s({{"Alpha", ValueType::kInt}, {"beta", ValueType::kString}});
  EXPECT_EQ(s.FindColumn("alpha"), 0);
  EXPECT_EQ(s.FindColumn("ALPHA"), 0);
  EXPECT_EQ(s.FindColumn("beta"), 1);
  EXPECT_EQ(s.FindColumn("gamma"), -1);
}

TEST(Schema, EstimatedRowBytesGrowsWithColumns) {
  Schema narrow({{"a", ValueType::kInt}});
  Schema wide({{"a", ValueType::kInt}, {"b", ValueType::kString, 100}});
  EXPECT_GT(wide.EstimatedRowBytes(), narrow.EstimatedRowBytes());
}

TEST(HeapTable, InsertGetUpdateDelete) {
  HeapTable t("t", Schema({{"a", ValueType::kInt}}));
  auto rid = t.Insert({Value(int64_t(1))});
  ASSERT_TRUE(rid.ok());
  EXPECT_TRUE(t.IsLive(*rid));
  EXPECT_EQ(t.Get(*rid)[0].AsInt(), 1);

  ASSERT_TRUE(t.Update(*rid, {Value(int64_t(2))}).ok());
  EXPECT_EQ(t.Get(*rid)[0].AsInt(), 2);

  ASSERT_TRUE(t.Delete(*rid).ok());
  EXPECT_FALSE(t.IsLive(*rid));
  EXPECT_EQ(t.num_rows(), 0u);
  // Double delete fails.
  EXPECT_FALSE(t.Delete(*rid).ok());
}

TEST(HeapTable, ArityChecked) {
  HeapTable t("t", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  EXPECT_FALSE(t.Insert({Value(int64_t(1))}).ok());
}

TEST(HeapTable, PageAccounting) {
  HeapTable t("t", Schema({{"a", ValueType::kInt}}));
  EXPECT_EQ(t.NumPages(), 0u);
  const size_t per_page = t.RowsPerPage();
  EXPECT_GT(per_page, 1u);
  for (size_t i = 0; i < per_page + 1; ++i) {
    ASSERT_TRUE(t.Insert({Value(int64_t(i))}).ok());
  }
  EXPECT_EQ(t.NumPages(), 2u);
  EXPECT_EQ(t.PageOfRow(0), 0u);
  EXPECT_EQ(t.PageOfRow(per_page), 1u);
  EXPECT_EQ(t.SizeBytes(), 2 * kPageSizeBytes);
}

TEST(HeapTable, ScanSkipsTombstones) {
  HeapTable t("t", Schema({{"a", ValueType::kInt}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value(int64_t(i))}).ok());
  }
  ASSERT_TRUE(t.Delete(3).ok());
  ASSERT_TRUE(t.Delete(7).ok());
  int count = 0;
  t.Scan([&](RowId rid, const Row&) {
    EXPECT_NE(rid, 3u);
    EXPECT_NE(rid, 7u);
    ++count;
  });
  EXPECT_EQ(count, 8);
}

TEST(Catalog, CreateGetDrop) {
  Catalog c;
  auto t = c.CreateTable("Foo", Schema({{"a", ValueType::kInt}}));
  ASSERT_TRUE(t.ok());
  EXPECT_NE(c.GetTable("foo"), nullptr);
  EXPECT_NE(c.GetTable("FOO"), nullptr);
  EXPECT_FALSE(
      c.CreateTable("foo", Schema({{"a", ValueType::kInt}})).ok());
  EXPECT_TRUE(c.DropTable("foo").ok());
  EXPECT_EQ(c.GetTable("foo"), nullptr);
  EXPECT_FALSE(c.DropTable("foo").ok());
}

TEST(Catalog, TableNamesSorted) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("zeta", Schema({{"a", ValueType::kInt}})).ok());
  ASSERT_TRUE(c.CreateTable("alpha", Schema({{"a", ValueType::kInt}})).ok());
  const auto names = c.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace autoindex
