// Executor semantics: projections, filters, joins, aggregation, ordering,
// writes with index maintenance, and cost accounting.

#include <gtest/gtest.h>

#include <functional>

#include "engine/database.h"
#include "util/random.h"

namespace autoindex {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("emp", Schema({{"id", ValueType::kInt},
                                   {"dept", ValueType::kInt},
                                   {"salary", ValueType::kDouble},
                                   {"name", ValueType::kString}}));
    db_.CreateTable("dept", Schema({{"did", ValueType::kInt},
                                    {"dname", ValueType::kString},
                                    {"budget", ValueType::kDouble}}));
    std::vector<Row> emps;
    for (int i = 0; i < 1000; ++i) {
      emps.push_back({Value(int64_t(i)), Value(int64_t(i % 20)),
                      Value(1000.0 + i), Value("emp" + std::to_string(i))});
    }
    ASSERT_TRUE(db_.BulkInsert("emp", std::move(emps)).ok());
    std::vector<Row> depts;
    for (int d = 0; d < 20; ++d) {
      depts.push_back({Value(int64_t(d)), Value("dept" + std::to_string(d)),
                       Value(10000.0 * d)});
    }
    ASSERT_TRUE(db_.BulkInsert("dept", std::move(depts)).ok());
    db_.Analyze();
  }

  Database db_;
};

TEST_F(ExecutorTest, ProjectionOrder) {
  auto r = db_.Execute("SELECT name, id FROM emp WHERE id = 7");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "emp7");
  EXPECT_EQ(r->rows[0][1].AsInt(), 7);
}

TEST_F(ExecutorTest, StarExpandsAllColumns) {
  auto r = db_.Execute("SELECT * FROM emp WHERE id = 3");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0].size(), 4u);
}

TEST_F(ExecutorTest, FilterWithOr) {
  auto r = db_.Execute("SELECT id FROM emp WHERE id = 3 OR id = 997");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(ExecutorTest, OrderByAscDescAndLimit) {
  auto desc = db_.Execute(
      "SELECT id FROM emp WHERE dept = 5 ORDER BY id DESC LIMIT 3");
  ASSERT_TRUE(desc.ok());
  ASSERT_EQ(desc->rows.size(), 3u);
  EXPECT_EQ(desc->rows[0][0].AsInt(), 985);
  EXPECT_EQ(desc->rows[1][0].AsInt(), 965);

  auto asc =
      db_.Execute("SELECT id FROM emp WHERE dept = 5 ORDER BY id LIMIT 2");
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(asc->rows[0][0].AsInt(), 5);
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  auto r = db_.Execute(
      "SELECT dept, COUNT(*), AVG(salary), MIN(id), MAX(id) FROM emp WHERE "
      "dept < 3 GROUP BY dept ORDER BY dept");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
  EXPECT_EQ(r->rows[0][1].AsInt(), 50);
  EXPECT_EQ(r->rows[0][3].AsInt(), 0);
  EXPECT_EQ(r->rows[0][4].AsInt(), 980);
  EXPECT_EQ(r->rows[2][0].AsInt(), 2);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  auto r = db_.Execute("SELECT COUNT(*) FROM emp WHERE id = 123456");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
}

TEST_F(ExecutorTest, SumAvgOnDoubles) {
  auto r = db_.Execute("SELECT SUM(salary) FROM emp WHERE id < 2");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->rows[0][0].AsDouble(), 2001.0);
}

TEST_F(ExecutorTest, JoinHash) {
  // No index on the join column: hash join path.
  auto r = db_.Execute(
      "SELECT emp.id, dept.dname FROM emp, dept WHERE emp.dept = dept.did "
      "AND emp.id < 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 5u);
  // Each emp row matched exactly one dept.
  for (const Row& row : r->rows) {
    EXPECT_EQ(row[1].AsString(),
              "dept" + std::to_string(row[0].AsInt() % 20));
  }
}

TEST_F(ExecutorTest, JoinIndexNestedLoop) {
  // A dimension table large enough that per-probe index lookups beat a
  // hash-join build (tiny inner tables correctly favor hash join).
  db_.CreateTable("big_dim", Schema({{"k", ValueType::kInt},
                                     {"payload", ValueType::kDouble}}));
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value(int64_t(i)), Value(i * 2.0)});
  }
  ASSERT_TRUE(db_.BulkInsert("big_dim", std::move(rows)).ok());
  db_.Analyze();
  ASSERT_TRUE(db_.CreateIndex(IndexDef("big_dim", {"k"})).ok());
  // One outer row: a single index probe beats building a 20k-row hash.
  auto r = db_.Execute(
      "SELECT emp.id, big_dim.payload FROM emp, big_dim WHERE emp.id = "
      "big_dim.k AND emp.id = 42");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(r->stats.used_index);
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 84.0);

  // Many outer rows: the planner must flip to a hash join (one build scan
  // beats 50 random index probes) — and results stay correct.
  auto many = db_.Execute(
      "SELECT emp.id, big_dim.payload FROM emp, big_dim WHERE emp.id = "
      "big_dim.k AND emp.dept = 7");
  ASSERT_TRUE(many.ok());
  ASSERT_EQ(many->rows.size(), 50u);  // 1000 emps, dept = id % 20
  for (const Row& row : many->rows) {
    EXPECT_DOUBLE_EQ(row[1].AsDouble(), row[0].AsInt() * 2.0);
  }
}

TEST_F(ExecutorTest, JoinWithGroupBy) {
  auto r = db_.Execute(
      "SELECT dept.dname, COUNT(*) FROM emp, dept WHERE emp.dept = "
      "dept.did AND dept.did < 2 GROUP BY dept.dname ORDER BY dept.dname");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][1].AsInt(), 50);
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  db_.CreateTable("bonus", Schema({{"bdept", ValueType::kInt},
                                   {"amount", ValueType::kDouble}}));
  std::vector<Row> bonuses;
  for (int d = 0; d < 20; ++d) {
    bonuses.push_back({Value(int64_t(d)), Value(100.0 * d)});
  }
  ASSERT_TRUE(db_.BulkInsert("bonus", std::move(bonuses)).ok());
  db_.Analyze();
  auto r = db_.Execute(
      "SELECT emp.id, bonus.amount FROM emp, dept, bonus WHERE emp.dept = "
      "dept.did AND dept.did = bonus.bdept AND emp.id = 99");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 100.0 * (99 % 20));
}

TEST_F(ExecutorTest, IndexScanUsedWhenSelective) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("emp", {"id"})).ok());
  auto r = db_.Execute("SELECT salary FROM emp WHERE id = 500");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.used_index);
  EXPECT_EQ(r->indexes_used.size(), 1u);
  EXPECT_LT(r->stats.tuples_examined, 5u);
}

TEST_F(ExecutorTest, SeqScanWhenPredicateWeak) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("emp", {"dept"})).ok());
  // dept >= 0 matches everything; the planner must prefer the seq scan.
  auto r = db_.Execute("SELECT COUNT(*) FROM emp WHERE dept >= 0");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->stats.used_index);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1000);
}

TEST_F(ExecutorTest, MultiColumnIndexPrefixAndRange) {
  db_.CreateTable("big", Schema({{"dept", ValueType::kInt},
                                 {"id", ValueType::kInt}}));
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value(int64_t(i % 20)), Value(int64_t(i))});
  }
  ASSERT_TRUE(db_.BulkInsert("big", std::move(rows)).ok());
  db_.Analyze();
  ASSERT_TRUE(db_.CreateIndex(IndexDef("big", {"dept", "id"})).ok());
  auto r = db_.Execute(
      "SELECT id FROM big WHERE dept = 7 AND id > 19900 ORDER BY id");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.used_index);
  ASSERT_EQ(r->rows.size(), 5u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 19907);
  EXPECT_EQ(r->rows[4][0].AsInt(), 19987);
}

TEST_F(ExecutorTest, InsertMaintainsIndexAndCountsCost) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("emp", {"id"})).ok());
  auto ins = db_.Execute("INSERT INTO emp VALUES (5000, 1, 9.0, 'new')");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->stats.index_entries_written, 1u);
  EXPECT_GT(ins->stats.maint_cpu_cost, 0.0);
  EXPECT_GT(ins->stats.pages_written, 0u);

  auto sel = db_.Execute("SELECT name FROM emp WHERE id = 5000");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->rows.size(), 1u);
  EXPECT_EQ(sel->rows[0][0].AsString(), "new");
}

TEST_F(ExecutorTest, InsertWithColumnListFillsNulls) {
  auto ins = db_.Execute("INSERT INTO emp (id, name) VALUES (6000, 'x')");
  ASSERT_TRUE(ins.ok());
  auto sel = db_.Execute("SELECT dept FROM emp WHERE id = 6000");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->rows.size(), 1u);
  EXPECT_TRUE(sel->rows[0][0].is_null());
}

TEST_F(ExecutorTest, UpdateOnlyPaysForAffectedIndexes) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("emp", {"id"})).ok());
  ASSERT_TRUE(db_.CreateIndex(IndexDef("emp", {"dept"})).ok());
  // Updating salary touches neither index key.
  auto upd = db_.Execute("UPDATE emp SET salary = 1.0 WHERE id = 10");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->stats.index_entries_written, 0u);
  // Updating dept touches exactly the dept index.
  auto upd2 = db_.Execute("UPDATE emp SET dept = 19 WHERE id = 10");
  ASSERT_TRUE(upd2.ok());
  EXPECT_EQ(upd2->stats.index_entries_written, 1u);
  EXPECT_GT(upd2->stats.maint_cpu_cost, 0.0);
  // The index reflects the new value.
  auto sel = db_.Execute("SELECT COUNT(*) FROM emp WHERE dept = 19 AND id = 10");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->rows[0][0].AsInt(), 1);
}

TEST_F(ExecutorTest, DeleteHasZeroIndexMaintenanceCost) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("emp", {"id"})).ok());
  auto del = db_.Execute("DELETE FROM emp WHERE id = 11");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->stats.rows_returned, 1u);
  // Sec. V: deletes defer index maintenance; no CPU charged.
  EXPECT_DOUBLE_EQ(del->stats.maint_cpu_cost, 0.0);
  EXPECT_EQ(del->stats.index_entries_written, 0u);
  // The row really is gone, including from the index.
  auto sel = db_.Execute("SELECT COUNT(*) FROM emp WHERE id = 11");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->rows[0][0].AsInt(), 0);
}

TEST_F(ExecutorTest, WriteLookupUsesIndex) {
  ASSERT_TRUE(db_.CreateIndex(IndexDef("emp", {"id"})).ok());
  auto upd = db_.Execute("UPDATE emp SET salary = 2.0 WHERE id = 700");
  ASSERT_TRUE(upd.ok());
  EXPECT_TRUE(upd->stats.used_index);
  EXPECT_LT(upd->stats.tuples_examined, 5u);
}

TEST_F(ExecutorTest, IndexesUsedDeduplicatedAcrossJoinLevels) {
  // A self-join where both sides probe the same index: the executed plan
  // uses it at two levels, but indexes_used reports each distinct index
  // once (deduplicated, deterministic plan order).
  ASSERT_TRUE(db_.CreateIndex(IndexDef("emp", {"id"})).ok());
  auto r = db_.Execute(
      "SELECT e1.salary, e2.salary FROM emp e1, emp e2 "
      "WHERE e1.id = 42 AND e2.id = 42");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(r->stats.used_index);
  // The snapshot proves the index really was placed at two plan levels...
  ASSERT_TRUE(r->plan.has_value());
  std::function<size_t(const PlanNodeSnapshot&)> count_index_scans =
      [&](const PlanNodeSnapshot& node) {
        size_t n = node.op == "IndexScan" ? 1u : 0u;
        for (const PlanNodeSnapshot& child : node.children) {
          n += count_index_scans(child);
        }
        return n;
      };
  EXPECT_EQ(count_index_scans(*r->plan), 2u);
  // ...while the reported list carries each distinct index exactly once.
  ASSERT_EQ(r->indexes_used.size(), 1u);
  EXPECT_EQ(r->indexes_used[0], IndexDef("emp", {"id"}).DisplayName());
}

TEST_F(ExecutorTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_.Execute("SELECT a FROM missing").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO emp VALUES (1)").ok());  // arity
  EXPECT_FALSE(db_.Execute("UPDATE emp SET nope = 1").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO emp (id, nope) VALUES (1, 2)").ok());
}

TEST_F(ExecutorTest, CostMonotoneInRowsScanned) {
  auto small = db_.Execute("SELECT COUNT(*) FROM dept");
  auto large = db_.Execute("SELECT COUNT(*) FROM emp");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->stats.ToCost(db_.params()).Total(),
            small->stats.ToCost(db_.params()).Total());
}

}  // namespace
}  // namespace autoindex

namespace autoindex {
namespace {

TEST(ClusteringTest, CorrelatedRangeScanTouchesFewPages) {
  // A physically date-ordered table: an index range scan over a narrow
  // window must touch contiguous heap pages (few), and the planner must
  // therefore prefer the index over the full scan.
  Database db;
  db.CreateTable("events", Schema({{"day", ValueType::kInt},
                                   {"payload", ValueType::kInt}}));
  std::vector<Row> rows;
  for (int i = 0; i < 60000; ++i) {
    rows.push_back({Value(int64_t(i / 40)), Value(int64_t(i))});
  }
  ASSERT_TRUE(db.BulkInsert("events", std::move(rows)).ok());
  db.Analyze();
  ASSERT_TRUE(db.CreateIndex(IndexDef("events", {"day"})).ok());

  auto r = db.Execute(
      "SELECT COUNT(*) FROM events WHERE day BETWEEN 100 AND 130");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 31 * 40);
  EXPECT_TRUE(r->stats.used_index)
      << "correlation-aware costing should pick the index";
  // 1240 rows over a correlated layout: a handful of contiguous pages,
  // far fewer than one page per row.
  EXPECT_LT(r->stats.heap_pages_read, 40u);
}

TEST(ClusteringTest, UncorrelatedScanStillCountsRandomPages) {
  Database db;
  db.CreateTable("shuffled", Schema({{"v", ValueType::kInt},
                                     {"payload", ValueType::kInt}}));
  Random rng(5);
  std::vector<Row> rows;
  for (int i = 0; i < 60000; ++i) {
    rows.push_back({Value(rng.UniformInt(0, 1500)), Value(int64_t(i))});
  }
  ASSERT_TRUE(db.BulkInsert("shuffled", std::move(rows)).ok());
  db.Analyze();
  ASSERT_TRUE(db.CreateIndex(IndexDef("shuffled", {"v"})).ok());
  // ~40 matching rows scattered over the heap: roughly one page each if
  // the planner chooses the index (either choice is legitimate here; only
  // verify the accounting when it does).
  auto r = db.Execute("SELECT COUNT(*) FROM shuffled WHERE v = 77");
  ASSERT_TRUE(r.ok());
  if (r->stats.used_index) {
    EXPECT_GT(r->stats.heap_pages_read, 20u);
  }
}

}  // namespace
}  // namespace autoindex
